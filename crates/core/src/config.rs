//! Simulation modes and ESP feature flags.

use esp_branch::ContextPolicy;
use esp_types::{Error, Result};
use esp_uarch::{EngineConfig, PerfectFlags};

/// Which ESP machinery is active — the knobs behind Figs. 10–12.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EspFeatures {
    /// Naive ESP (Fig. 10): no cachelets, no lists — pre-execution fills
    /// the real L1/L2 directly and updates the branch predictor in the
    /// normal context, like a long-range runahead would.
    pub naive: bool,
    /// Record and replay the I-list (instruction prefetching).
    pub ilist: bool,
    /// Record and replay the D-list (data prefetching).
    pub dlist: bool,
    /// Record the B-lists and train the predictor ahead during normal
    /// execution.
    pub blist: bool,
    /// Ideal ESP (Figs. 11a/11b): unbounded lists and cachelets, and
    /// perfectly timely replay prefetches.
    pub ideal: bool,
    /// Maximum jump-ahead depth. The shipping design is 2 (§3.1); the
    /// Fig. 13 working-set study probes up to 8.
    pub depth: usize,
    /// Collect per-mode working-set samples (Fig. 13).
    pub measure_working_sets: bool,
    /// Instructions of lead for list prefetch replay (§3.6's preset 190).
    pub prefetch_lead_instrs: u64,
    /// Branches of lead for B-list predictor training (preset 30).
    pub bp_train_lead_branches: u64,
}

impl EspFeatures {
    /// The full shipping ESP design: cachelets + I/D/B lists, depth 2.
    pub fn full() -> Self {
        EspFeatures {
            naive: false,
            ilist: true,
            dlist: true,
            blist: true,
            ideal: false,
            depth: 2,
            measure_working_sets: false,
            prefetch_lead_instrs: 190,
            bp_train_lead_branches: 30,
        }
    }

    /// Naive ESP (no cachelets/lists).
    pub fn naive() -> Self {
        EspFeatures { naive: true, ilist: false, dlist: false, blist: false, ..Self::full() }
    }

    /// Only the instruction-side lists ("ESP-I").
    pub fn i_only() -> Self {
        EspFeatures { dlist: false, blist: false, ..Self::full() }
    }

    /// Instruction lists plus B-list training ("ESP-I,B").
    pub fn ib() -> Self {
        EspFeatures { dlist: false, ..Self::full() }
    }

    /// Only the data-side lists ("ESP-D").
    pub fn d_only() -> Self {
        EspFeatures { ilist: false, blist: false, ..Self::full() }
    }

    /// Idealised ESP.
    pub fn ideal() -> Self {
        EspFeatures { ideal: true, ..Self::full() }
    }

    /// Validates the flag combination.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero depth, a depth over 8,
    /// or naive mode combined with lists.
    pub fn validate(&self) -> Result<()> {
        if self.depth == 0 || self.depth > 8 {
            return Err(Error::invalid_config("ESP depth must be in 1..=8"));
        }
        if self.naive && (self.ilist || self.dlist || self.blist) {
            return Err(Error::invalid_config("naive ESP records no lists"));
        }
        if self.prefetch_lead_instrs == 0 || self.bp_train_lead_branches == 0 {
            return Err(Error::invalid_config("replay leads must be positive"));
        }
        Ok(())
    }
}

/// How stall windows are spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimMode {
    /// Stall windows are idle (the conventional core).
    Baseline,
    /// Classic runahead execution on data LLC misses.
    Runahead {
        /// Runahead-D (Fig. 11b): warm only the data cache — no branch
        /// predictor updates and no instruction-cache fills.
        data_only: bool,
    },
    /// Event Sneak Peek.
    Esp(EspFeatures),
}

/// A complete simulation configuration: the machine plus the mode.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Core, caches, prefetchers, perfect flags, BP policy.
    pub engine: EngineConfig,
    /// How stall windows are spent.
    pub mode: SimMode,
    /// Synthetic looper instructions between events (§3.6 observes ~70
    /// instructions of event-queue management around each event).
    pub looper_instrs: u32,
}

impl SimConfig {
    fn with(engine: EngineConfig, mode: SimMode) -> Self {
        SimConfig { engine, mode, looper_instrs: 70 }
    }

    // ---- Fig. 9 configurations --------------------------------------

    /// The no-prefetch baseline everything normalises to.
    pub fn base() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Baseline)
    }

    /// Next-line prefetching only ("NL").
    pub fn next_line() -> Self {
        Self::with(EngineConfig::next_line(), SimMode::Baseline)
    }

    /// Next-line + stride ("NL + S").
    pub fn next_line_stride() -> Self {
        Self::with(EngineConfig::next_line_stride(), SimMode::Baseline)
    }

    /// Runahead execution without prefetchers.
    pub fn runahead() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Runahead { data_only: false })
    }

    /// Runahead + next-line.
    pub fn runahead_nl() -> Self {
        Self::with(EngineConfig::next_line(), SimMode::Runahead { data_only: false })
    }

    /// ESP without prefetchers.
    pub fn esp() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Esp(EspFeatures::full()))
    }

    /// ESP + next-line — the headline configuration.
    pub fn esp_nl() -> Self {
        Self::with(EngineConfig::next_line(), SimMode::Esp(EspFeatures::full()))
    }

    // ---- Fig. 10 configurations -------------------------------------

    /// Naive ESP (no cachelets/lists), no prefetchers.
    pub fn naive_esp() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Esp(EspFeatures::naive()))
    }

    /// Naive ESP + next-line.
    pub fn naive_esp_nl() -> Self {
        Self::with(EngineConfig::next_line(), SimMode::Esp(EspFeatures::naive()))
    }

    /// ESP-I + NL.
    pub fn esp_i_nl() -> Self {
        Self::with(EngineConfig::next_line(), SimMode::Esp(EspFeatures::i_only()))
    }

    /// ESP-I,B + NL.
    pub fn esp_ib_nl() -> Self {
        Self::with(EngineConfig::next_line(), SimMode::Esp(EspFeatures::ib()))
    }

    /// ESP-I,B,D + NL (same machinery as [`SimConfig::esp_nl`]).
    pub fn esp_ibd_nl() -> Self {
        Self::esp_nl()
    }

    // ---- Fig. 11 configurations -------------------------------------

    /// Instruction-side-only next-line ("NL-I").
    pub fn nl_i_only() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_instr = true;
        Self::with(e, SimMode::Baseline)
    }

    /// Data-side-only next-line ("NL-D").
    pub fn nl_d_only() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_data = true;
        Self::with(e, SimMode::Baseline)
    }

    /// ESP-I alone (no prefetchers).
    pub fn esp_i() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Esp(EspFeatures::i_only()))
    }

    /// ESP-I with NL-I ("ESP-I + NL-I").
    pub fn esp_i_nl_i() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_instr = true;
        Self::with(e, SimMode::Esp(EspFeatures::i_only()))
    }

    /// Ideal ESP-I with NL-I.
    pub fn ideal_esp_i_nl_i() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_instr = true;
        let f = EspFeatures { dlist: false, blist: false, ..EspFeatures::ideal() };
        Self::with(e, SimMode::Esp(f))
    }

    /// Runahead-D (data warming only).
    pub fn runahead_d() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Runahead { data_only: true })
    }

    /// Runahead-D with NL-D.
    pub fn runahead_d_nl_d() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_data = true;
        Self::with(e, SimMode::Runahead { data_only: true })
    }

    /// ESP-D alone.
    pub fn esp_d() -> Self {
        Self::with(EngineConfig::baseline(), SimMode::Esp(EspFeatures::d_only()))
    }

    /// ESP-D with NL-D.
    pub fn esp_d_nl_d() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_data = true;
        Self::with(e, SimMode::Esp(EspFeatures::d_only()))
    }

    /// Ideal ESP-D with NL-D.
    pub fn ideal_esp_d_nl_d() -> Self {
        let mut e = EngineConfig::baseline();
        e.nl_data = true;
        let f = EspFeatures { ilist: false, blist: false, ..EspFeatures::ideal() };
        Self::with(e, SimMode::Esp(f))
    }

    // ---- Fig. 12 configurations -------------------------------------

    /// ESP with no extra branch hardware: shared PIR and tables.
    pub fn esp_bp_shared() -> Self {
        let mut c = Self::esp_nl();
        c.engine.bp_policy = ContextPolicy::SharedAll;
        if let SimMode::Esp(ref mut f) = c.mode {
            f.blist = false;
        }
        c
    }

    /// ESP with a separate PIR per context (no B-list).
    pub fn esp_bp_separate_context() -> Self {
        let mut c = Self::esp_nl();
        c.engine.bp_policy = ContextPolicy::SeparatePir;
        if let SimMode::Esp(ref mut f) = c.mode {
            f.blist = false;
        }
        c
    }

    /// ESP with fully replicated predictor tables (no B-list).
    pub fn esp_bp_separate_tables() -> Self {
        let mut c = Self::esp_nl();
        c.engine.bp_policy = ContextPolicy::SeparateTables;
        if let SimMode::Esp(ref mut f) = c.mode {
            f.blist = false;
        }
        c
    }

    // ---- Fig. 3 configurations --------------------------------------

    /// Baseline with a perfect component subset.
    pub fn perfect(flags: PerfectFlags) -> Self {
        let mut e = EngineConfig::baseline();
        e.perfect = flags;
        Self::with(e, SimMode::Baseline)
    }

    // ---- Fig. 13 ------------------------------------------------------

    /// ESP probing jump-ahead depths up to 8 with working-set tracking.
    pub fn esp_depth_probe() -> Self {
        let f = EspFeatures { depth: 8, measure_working_sets: true, ..EspFeatures::full() };
        Self::with(EngineConfig::next_line(), SimMode::Esp(f))
    }

    /// Validates nested configuration.
    ///
    /// # Errors
    ///
    /// Propagates engine and feature validation errors.
    pub fn validate(&self) -> Result<()> {
        self.engine.validate()?;
        if let SimMode::Esp(f) = &self.mode {
            f.validate()?;
        }
        Ok(())
    }

    /// The ESP features, if this is an ESP configuration.
    pub fn esp_features(&self) -> Option<&EspFeatures> {
        match &self.mode {
            SimMode::Esp(f) => Some(f),
            _ => None,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::esp_nl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        let presets = [
            SimConfig::base(),
            SimConfig::next_line(),
            SimConfig::next_line_stride(),
            SimConfig::runahead(),
            SimConfig::runahead_nl(),
            SimConfig::esp(),
            SimConfig::esp_nl(),
            SimConfig::naive_esp(),
            SimConfig::naive_esp_nl(),
            SimConfig::esp_i_nl(),
            SimConfig::esp_ib_nl(),
            SimConfig::esp_ibd_nl(),
            SimConfig::nl_i_only(),
            SimConfig::nl_d_only(),
            SimConfig::esp_i(),
            SimConfig::esp_i_nl_i(),
            SimConfig::ideal_esp_i_nl_i(),
            SimConfig::runahead_d(),
            SimConfig::runahead_d_nl_d(),
            SimConfig::esp_d(),
            SimConfig::esp_d_nl_d(),
            SimConfig::ideal_esp_d_nl_d(),
            SimConfig::esp_bp_shared(),
            SimConfig::esp_bp_separate_context(),
            SimConfig::esp_bp_separate_tables(),
            SimConfig::perfect(PerfectFlags::all()),
            SimConfig::esp_depth_probe(),
        ];
        for p in presets {
            p.validate().unwrap();
        }
    }

    #[test]
    fn feature_combinations() {
        assert!(EspFeatures::full().validate().is_ok());
        assert!(EspFeatures::naive().validate().is_ok());
        let mut f = EspFeatures::naive();
        f.ilist = true;
        assert!(f.validate().is_err());
        let mut f = EspFeatures::full();
        f.depth = 0;
        assert!(f.validate().is_err());
        f.depth = 9;
        assert!(f.validate().is_err());
    }

    #[test]
    fn fig12_configs_differ_only_in_bp() {
        use esp_branch::ContextPolicy;
        assert_eq!(SimConfig::esp_bp_shared().engine.bp_policy, ContextPolicy::SharedAll);
        assert_eq!(
            SimConfig::esp_bp_separate_tables().engine.bp_policy,
            ContextPolicy::SeparateTables
        );
        let c = SimConfig::esp_bp_separate_context();
        assert_eq!(c.engine.bp_policy, ContextPolicy::SeparatePir);
        assert!(!c.esp_features().unwrap().blist);
        assert!(SimConfig::esp_nl().esp_features().unwrap().blist);
    }

    #[test]
    fn esp_features_accessor() {
        assert!(SimConfig::base().esp_features().is_none());
        assert!(SimConfig::esp_nl().esp_features().is_some());
    }
}
