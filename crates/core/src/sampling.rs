//! SMARTS-style systematic sampling: detailed grains + functional warming.
//!
//! [`Simulator::run_sampled`] splits a run into fixed-size instruction
//! *grains* and simulates only a periodic sample of them in full detail.
//! With period `P`, grain `g` is:
//!
//! * `g % P == 0` — **detailed warmup**: simulated in full detail but not
//!   measured, absorbing the cold-start ("non-sampling") bias left by the
//!   preceding functional warming;
//! * `g % P == 1` — **measured**: simulated in full detail; its
//!   per-instruction cycle deltas become one sample of the estimator;
//! * otherwise — **functional warming**: a fast-forward that performs every
//!   architectural-state update of detailed execution (cache tags and LRU,
//!   prefetcher training, branch-predictor tables/PIR/RAS, ESP context
//!   rotation) while charging no stall cycles and touching no statistics,
//!   via the warm entry points of `esp-uarch`/`esp-mem`/`esp-branch`.
//!
//! Grains are instruction-aligned, not event-aligned: a grain boundary can
//! fall mid-event, and the per-event loop switches between detailed
//! stepping and warming at that exact instruction. Every measured grain is
//! therefore preceded by one full grain of detailed warmup, regardless of
//! how event lengths compare to the grain size.
//!
//! Whole-run counters are then extrapolated from the measured grains by
//! the combined ratio estimator of `esp-stats`, with a per-metric standard
//! error and 95% confidence half-width reported alongside the
//! [`RunReport`]. The default exact mode shares none of this code path:
//! `Simulator::run` is untouched and stays byte-identical.
//!
//! The same warming walk (stat-free cache/predictor/prefetcher/replay
//! updates) is reused by the intra-run parallel mode
//! ([`crate::intra`]) to predict chunk-entry state — there it feeds a
//! behavioural-equality check instead of an estimator, so sampling
//! stays the only mode that returns an estimate.
//!
//! # Learned fast-forwarding
//!
//! Functional warming is only ~1.5–2.5× cheaper than detailed
//! simulation here, so the warm walk caps plain sampling at ~1.4×.
//! [`Simulator::run_sampled_learned`] raises that ceiling: an
//! `esp-learn` controller summarises every warm *stretch* (the
//! `period − 2` warm grains between a measured grain and the next
//! detailed-warmup grain) into a feature vector, trains an online model
//! predicting the next measured grain's per-instruction cycle metrics,
//! and — once trained and in bounds — *skips* the engine-warming walk
//! for the stretch interior. Skipped grains advance the cursor with a
//! decode-free fast-forward ([`esp_trace::EventStream::skip_region`]) —
//! no sink, no operand decode — so retirement and the grain clock stay
//! exact while the walk costs a small fraction of functional warming.
//! The last `warm_suffix_grains` grains of every stretch are always
//! fully warmed to rebuild short-term cache/predictor state, and the
//! suffix is also the only region features are extracted from (in
//! training and skipping modes alike, so the model never sees a
//! train/predict feature skew). Predicted-vs-actual
//! residuals gate the whole thing: a breach falls back to full warming,
//! repeated breaches disable skipping, and a run whose ladder bottoms
//! out is re-executed with plain warming. The residual series also
//! widens the reported confidence intervals
//! (`esp_stats::ResidualAccum::inflate`).
//!
//! See `docs/PERFORMANCE.md` ("Sampling", "Learned fast-forwarding")
//! for the estimator derivation, warming rules, and measured error
//! tables.

use crate::config::SimMode;
use crate::esp_state::{EspRunStats, EspState};
use crate::lineset::LineSet;
use crate::replay::{ReplayLists, ReplayState, ReplayStats};
use crate::report::RunReport;
use crate::simulator::Simulator;
use esp_energy::{ActivityCounts, EnergyModel};
use esp_learn::{FastForward, LearnParams, LearnedStats};
use esp_obs::{CpiStack, EventSpan, NullProbe, Probe, RunSummary};
use esp_stats::{ratio_estimate, RatioEstimate};
use esp_trace::kindbits::{TAG_COND, TAG_LOAD, TAG_MASK, TAG_STORE};
use esp_trace::{EventCursor, EventStream, ForkStream, Instr, Workload, INSTR_BYTES};
use esp_uarch::{Engine, KernelParams, KindTable, WarmTee};

/// Sampling-mode parameters: grain size and sampling period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleParams {
    /// Instructions per grain.
    pub grain_instrs: u64,
    /// Sampling period in grains: out of every `period` grains, one is
    /// detailed warmup, one is measured, and `period - 2` are
    /// functionally warmed. Must be at least 3.
    pub period: u64,
}

impl Default for SampleParams {
    fn default() -> Self {
        SampleParams { grain_instrs: 2_000, period: 20 }
    }
}

impl SampleParams {
    /// Builds parameters, validating them.
    ///
    /// # Panics
    ///
    /// Panics if `grain_instrs` is 0 or `period < 3` (a period below 3
    /// has no warming grains — use exact mode instead).
    pub fn new(grain_instrs: u64, period: u64) -> Self {
        assert!(grain_instrs > 0, "grain_instrs must be positive");
        assert!(period >= 3, "period must be >= 3 (warmup + measured + warming)");
        SampleParams { grain_instrs, period }
    }
}

/// Accuracy metadata of one sampled run: grain counts and per-metric
/// ratio estimates with confidence intervals.
#[derive(Clone, Debug, Default)]
pub struct SamplingEstimate {
    /// Grains the run was split into.
    pub grains_total: u64,
    /// Grains simulated in detail *and* measured.
    pub grains_measured: u64,
    /// Instructions retired inside measured grains.
    pub measured_instrs: u64,
    /// Instructions retired over the whole run (exact — warming counts
    /// retirement precisely).
    pub total_instrs: u64,
    /// Busy cycles per instruction, with standard error and 95% CI.
    pub cpi: RatioEstimate,
    /// Exposed instruction-fetch stall cycles per instruction.
    pub icache_cpi: RatioEstimate,
    /// Exposed data stall cycles per instruction.
    pub dcache_cpi: RatioEstimate,
    /// Branch penalty cycles per instruction.
    pub branch_cpi: RatioEstimate,
    /// True when the workload was too small to sample and the run fell
    /// back to exact simulation (the report is then exact, error 0).
    pub exact_fallback: bool,
}

/// A sampled run: the extrapolated report plus its error estimate.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// The extrapolated whole-run report. `total_cycles` carries the
    /// estimated *busy* cycles (idle is not extrapolated: the sampled
    /// clock is approximate between samples, and every figure of merit
    /// uses [`RunReport::busy_cycles`]).
    pub report: RunReport,
    /// Grain counts and confidence intervals.
    pub estimate: SamplingEstimate,
    /// Learned fast-forward accounting — `Some` only for
    /// [`Simulator::run_sampled_learned`] runs (skip/warm grain counts,
    /// prequential residuals, fallback ladder state, model confidence).
    pub learned: Option<LearnedStats>,
}

/// What a grain's position in the period means for execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GrainKind {
    /// Detailed, unmeasured: absorbs warming bias before a measurement.
    DetailedWarmup,
    /// Detailed and measured.
    Measured,
    /// Functionally warmed.
    Warm,
}

fn kind_of(grain_idx: u64, period: u64) -> GrainKind {
    match grain_idx % period {
        0 => GrainKind::DetailedWarmup,
        1 => GrainKind::Measured,
        _ => GrainKind::Warm,
    }
}

/// One measured grain's per-cycle-class deltas.
#[derive(Clone, Copy, Debug, Default)]
struct GrainSample {
    instrs: u64,
    busy: u64,
    icache: u64,
    dcache: u64,
    br_mis: u64,
    br_fetch: u64,
}

/// Snapshot of everything a measured grain's delta is computed from.
struct MeasureSnapshot {
    stack: CpiStack,
    engine: esp_uarch::EngineStats,
    replay: ReplayStats,
    esp: Option<EspRunStats>,
}

/// Measured-grain totals for every extrapolated counter.
#[derive(Default)]
struct MeasuredTotals {
    stack: CpiStack,
    engine: esp_uarch::EngineStats,
    replay: ReplayStats,
    esp: EspRunStats,
}

pub(crate) fn add_stack(into: &mut CpiStack, d: &CpiStack) {
    into.base += d.base;
    into.icache_l2 += d.icache_l2;
    into.icache_llc += d.icache_llc;
    into.dcache_l2 += d.dcache_l2;
    into.dcache_llc += d.dcache_llc;
    into.branch_mispredict += d.branch_mispredict;
    into.branch_misfetch += d.branch_misfetch;
    into.idle += d.idle;
    into.pre_exec_overlap += d.pre_exec_overlap;
}

pub(crate) fn add_engine(
    into: &mut esp_uarch::EngineStats,
    a: &esp_uarch::EngineStats,
    b: &esp_uarch::EngineStats,
) {
    into.retired += a.retired - b.retired;
    into.l1i_accesses += a.l1i_accesses - b.l1i_accesses;
    into.l1i_misses += a.l1i_misses - b.l1i_misses;
    into.l1d_accesses += a.l1d_accesses - b.l1d_accesses;
    into.l1d_misses += a.l1d_misses - b.l1d_misses;
    into.branches += a.branches - b.branches;
    into.mispredicts += a.mispredicts - b.mispredicts;
    into.misfetches += a.misfetches - b.misfetches;
    into.runahead_instrs += a.runahead_instrs - b.runahead_instrs;
}

pub(crate) fn add_replay(into: &mut ReplayStats, a: &ReplayStats, b: &ReplayStats) {
    into.iprefetches += a.iprefetches - b.iprefetches;
    into.dprefetches += a.dprefetches - b.dprefetches;
    into.btrains += a.btrains - b.btrains;
}

pub(crate) fn add_esp(into: &mut EspRunStats, a: &EspRunStats, b: &EspRunStats) {
    into.windows += a.windows - b.windows;
    into.wasted_window_cycles += a.wasted_window_cycles - b.wasted_window_cycles;
    into.events_started += a.events_started - b.events_started;
    into.lists_discarded += a.lists_discarded - b.lists_discarded;
    into.blocked_switches += a.blocked_switches - b.blocked_switches;
    if into.instrs_by_depth.len() < a.instrs_by_depth.len() {
        into.instrs_by_depth.resize(a.instrs_by_depth.len(), 0);
    }
    for (i, v) in a.instrs_by_depth.iter().enumerate() {
        into.instrs_by_depth[i] += v - b.instrs_by_depth.get(i).copied().unwrap_or(0);
    }
}

/// Integer extrapolation `x * total / measured` without overflow.
fn scaled(x: u64, total: u64, measured: u64) -> u64 {
    if measured == 0 {
        return 0;
    }
    (x as u128 * total as u128 / measured as u128) as u64
}

/// The grain clock: tracks where the run is in the sampling schedule,
/// collects measured-grain samples, and drives the coarse warm clock.
struct SampleCtl {
    grain_instrs: u64,
    period: u64,
    grain_idx: u64,
    grain_acc: u64,
    open: Option<MeasureSnapshot>,
    samples: Vec<GrainSample>,
    totals: MeasuredTotals,
    measured_busy: u64,
    measured_instrs: u64,
    /// Warmed instructions not yet converted into a clock advance.
    warm_pending: u64,
    /// Sub-cycle residue of the warm clock, in milli-cycles.
    warm_millis: u64,
    /// The learned fast-forward controller (learned mode only).
    learn: Option<Box<FastForward>>,
    /// Instructions fast-forwarded (feature-only walk) in the current
    /// warm grain.
    learn_skip_acc: u64,
    /// Instructions fully warmed in the current warm grain.
    learn_warm_acc: u64,
}

impl SampleCtl {
    fn new(params: SampleParams, learn: Option<Box<FastForward>>) -> Self {
        SampleCtl {
            grain_instrs: params.grain_instrs,
            period: params.period,
            grain_idx: 0,
            grain_acc: 0,
            open: None,
            samples: Vec::new(),
            totals: MeasuredTotals::default(),
            measured_busy: 0,
            measured_instrs: 0,
            warm_pending: 0,
            warm_millis: 0,
            learn,
            learn_skip_acc: 0,
            learn_warm_acc: 0,
        }
    }

    /// Whether the current warm grain's engine warming should be
    /// skipped: the controller must be in its skip phase and the grain
    /// must sit in the stretch *interior* — at least
    /// `warm_suffix_grains` before the next detailed-warmup grain, so
    /// every measurement is preceded by freshly warmed state.
    fn skip_now(&self) -> bool {
        let Some(l) = self.learn.as_ref() else { return false };
        if !l.skip_interior() {
            return false;
        }
        let pos = self.grain_idx % self.period;
        pos >= 2 && pos + l.params().warm_suffix_grains < self.period
    }

    /// Whether the current warm grain sits in the stretch *suffix* — the
    /// last `warm_suffix_grains` warm grains before the next detailed-
    /// warmup grain. The suffix is always fully engine-warmed, and it is
    /// the only region features are extracted from, in training and
    /// skipping modes alike: skipped interiors are fast-forwarded with no
    /// observer at all ([`esp_trace::EventStream::skip_region`]), so
    /// collecting training features from interiors would feed the model a
    /// view prediction-time stretches never see.
    fn in_learn_suffix(&self) -> bool {
        let Some(l) = self.learn.as_ref() else { return false };
        let pos = self.grain_idx % self.period;
        pos + l.params().warm_suffix_grains >= self.period
    }

    /// Credits a bulk warm walk of `n` instructions to the learned
    /// accounting and, inside a stretch's suffix, to the feature
    /// extractor.
    fn note_learn_walk(&mut self, n: u64, skipped: bool) {
        let collect = self.in_learn_suffix();
        let Some(l) = self.learn.as_mut() else { return };
        if collect && l.in_stretch() {
            l.extractor_mut().add_instrs(n);
        }
        if skipped {
            self.learn_skip_acc += n;
        } else {
            self.learn_warm_acc += n;
        }
    }

    /// Feeds one looper instruction to the feature extractor (suffix
    /// grains of learned runs; the looper is always engine-warmed).
    fn learn_note_step(&mut self, instr: &Instr) {
        let collect = self.in_learn_suffix();
        let Some(l) = self.learn.as_mut() else { return };
        if collect && l.in_stretch() {
            l.extractor_mut().note_step(instr);
        }
        self.learn_warm_acc += 1;
    }

    /// Notes an event boundary (feature context; ignored outside warm
    /// stretches).
    fn learn_note_event(&mut self) {
        if let Some(l) = self.learn.as_mut() {
            l.note_event();
        }
    }

    /// Flushes the per-grain skip/warm instruction accumulators into
    /// the controller as one completed warm grain. Returns whether the
    /// grain was skipped.
    fn flush_learn_grain(&mut self) -> bool {
        let (skip, warm) = (self.learn_skip_acc, self.learn_warm_acc);
        self.learn_skip_acc = 0;
        self.learn_warm_acc = 0;
        let Some(l) = self.learn.as_mut() else { return false };
        if skip > 0 {
            // The grain's few engine-warmed instructions (the looper
            // prologue) ride along: the skip decision is per grain.
            l.note_grain(skip + warm, true);
            true
        } else {
            if warm > 0 {
                l.note_grain(warm, false);
            }
            false
        }
    }

    /// Reinstalls the skipped region's distinct-line footprint
    /// (collected by the observed skip walk's memory-touch hooks) as
    /// stat-free warm fills — a coarse reconstruction of the cache-state
    /// delta the skipped walk never applied, run once when skipping ends
    /// so the warm suffix and the detailed-warmup grain start from
    /// approximately-warm state instead of a stale one.
    fn reinstall_footprint(&mut self, engine: &mut Engine) {
        let Some(l) = self.learn.as_mut() else { return };
        let now = engine.now();
        let fp = l.footprint();
        for line in fp.i_lines() {
            engine.mem_mut().warm_prefetch_instr(esp_types::LineAddr::new(line), now);
        }
        for line in fp.d_lines() {
            engine.mem_mut().warm_prefetch_data(esp_types::LineAddr::new(line), now);
        }
        l.footprint_mut().clear();
    }

    fn kind(&self) -> GrainKind {
        kind_of(self.grain_idx, self.period)
    }

    /// Notes one functionally-warmed instruction (clock advance deferred
    /// to the next [`SampleCtl::flush_warm`]).
    fn warm_instr(&mut self) {
        self.warm_pending += 1;
    }

    /// Instructions left in the current grain.
    fn until_boundary(&self) -> u64 {
        self.grain_instrs - self.grain_acc
    }

    /// Advances the grain clock by `n` functionally-warmed instructions
    /// in one step. `n` must not overshoot the grain boundary (callers
    /// bound their warm walks by [`SampleCtl::until_boundary`]).
    fn warm_bulk(
        &mut self,
        n: u64,
        engine: &mut Engine,
        replay: &ReplayState,
        esp: &Option<EspState<'_>>,
    ) {
        debug_assert!(n <= self.until_boundary());
        self.warm_pending += n;
        self.grain_acc += n;
        if self.grain_acc >= self.grain_instrs {
            self.grain_acc = 0;
            self.cross_boundary(engine, replay, esp);
        }
    }

    /// Advances the grain clock by `n` detailed instructions that are
    /// guaranteed to stay strictly inside the current grain (`n <
    /// until_boundary()`). Equivalent to `n` calls of
    /// [`SampleCtl::after_instr`] that each return early — the batched
    /// kernel loop uses this for plain-ALU runs it charges in one step.
    fn detailed_bulk(&mut self, n: u64) {
        debug_assert!(n < self.until_boundary());
        self.grain_acc += n;
    }

    /// Advances the grain clock by one retired instruction and performs
    /// the kind transition when a grain boundary is crossed.
    fn after_instr(
        &mut self,
        engine: &mut Engine,
        replay: &ReplayState,
        esp: &Option<EspState<'_>>,
    ) {
        self.grain_acc += 1;
        if self.grain_acc < self.grain_instrs {
            return;
        }
        self.grain_acc = 0;
        self.cross_boundary(engine, replay, esp);
    }

    /// The grain-boundary transition: flushes/closes the grain that just
    /// ended and opens a measurement snapshot when one begins.
    fn cross_boundary(
        &mut self,
        engine: &mut Engine,
        replay: &ReplayState,
        esp: &Option<EspState<'_>>,
    ) {
        let old = self.kind();
        self.grain_idx += 1;
        let new = self.kind();
        if old == GrainKind::Warm {
            // Every completed warm grain settles its skip/warm
            // accounting, including Warm → Warm crossings below; when a
            // skipped region ends (the warm suffix or the next detailed-
            // warmup grain begins), its collected footprint is replayed
            // into the caches first.
            let ended_skipped = self.flush_learn_grain();
            if ended_skipped && !self.skip_now() {
                self.reinstall_footprint(engine);
            }
        }
        if old == new {
            return;
        }
        if old == GrainKind::Warm {
            self.flush_warm(engine);
            if new == GrainKind::DetailedWarmup {
                if let Some(l) = self.learn.as_mut() {
                    // Stretch over: issue the blind prediction for the
                    // measured grain one grain ahead.
                    l.end_stretch();
                }
            }
        }
        if old == GrainKind::Measured {
            self.close_sample(engine, replay, esp);
        }
        if new == GrainKind::Warm {
            if let Some(l) = self.learn.as_mut() {
                l.begin_stretch(replay.pending_entries());
            }
        }
        if new == GrainKind::Measured {
            self.open = Some(MeasureSnapshot {
                stack: *engine.cpi_stack(),
                engine: *engine.stats(),
                replay: replay.stats(),
                esp: esp.as_ref().map(|e| e.stats().clone()),
            });
        }
    }

    /// Converts pending warmed instructions into a coarse clock advance
    /// at the cumulative measured busy-CPI, charged as idle so the
    /// stack's conservation invariant (`total() == now()`) holds.
    fn flush_warm(&mut self, engine: &mut Engine) {
        if self.warm_pending == 0 {
            return;
        }
        let cpi_millis = self
            .measured_busy
            .saturating_mul(1000)
            .checked_div(self.measured_instrs)
            .unwrap_or(1000);
        self.warm_millis += self.warm_pending * cpi_millis;
        self.warm_pending = 0;
        engine.warm_advance(self.warm_millis / 1000);
        self.warm_millis %= 1000;
    }

    fn close_sample(
        &mut self,
        engine: &Engine,
        replay: &ReplayState,
        esp: &Option<EspState<'_>>,
    ) {
        let Some(snap) = self.open.take() else { return };
        let d_stack = engine.cpi_stack().since(&snap.stack);
        let instrs = engine.stats().retired - snap.engine.retired;
        let busy = d_stack.total() - d_stack.idle;
        self.samples.push(GrainSample {
            instrs,
            busy,
            icache: d_stack.icache_l2 + d_stack.icache_llc,
            dcache: d_stack.dcache_l2 + d_stack.dcache_llc,
            br_mis: d_stack.branch_mispredict,
            br_fetch: d_stack.branch_misfetch,
        });
        if let Some(l) = self.learn.as_mut() {
            if instrs > 0 {
                let n = instrs as f64;
                l.observe_measured([
                    busy as f64 / n,
                    (d_stack.icache_l2 + d_stack.icache_llc) as f64 / n,
                    (d_stack.dcache_l2 + d_stack.dcache_llc) as f64 / n,
                    (d_stack.branch_mispredict + d_stack.branch_misfetch) as f64 / n,
                ]);
            }
        }
        add_stack(&mut self.totals.stack, &d_stack);
        add_engine(&mut self.totals.engine, engine.stats(), &snap.engine);
        add_replay(&mut self.totals.replay, &replay.stats(), &snap.replay);
        if let (Some(esp), Some(before)) = (esp.as_ref(), snap.esp.as_ref()) {
            add_esp(&mut self.totals.esp, esp.stats(), before);
        }
        self.measured_busy += busy;
        self.measured_instrs += instrs;
    }

    /// Closes any trailing open sample and flushes the warm clock.
    fn finish(&mut self, engine: &mut Engine, replay: &ReplayState, esp: &Option<EspState<'_>>) {
        self.flush_warm(engine);
        self.close_sample(engine, replay, esp);
    }
}

impl Simulator {
    /// Runs the workload in sampling mode: detailed simulation of a
    /// periodic sample of instruction grains, functional warming in
    /// between, and a whole-run report extrapolated from the measured
    /// grains (see the module docs). Falls back to exact simulation for
    /// workloads too small to hold two sampling periods.
    pub fn run_sampled(&self, workload: &dyn Workload, params: SampleParams) -> SampledRun {
        self.run_sampled_probed(workload, params, &mut NullProbe)
    }

    /// [`Simulator::run_sampled`] with an observability probe. The probe
    /// sees the detailed grains only — stall charges, windows, and one
    /// [`EventSpan`] per event — plus a final [`RunSummary`] carrying the
    /// extrapolated totals.
    pub fn run_sampled_probed<P: Probe>(
        &self,
        workload: &dyn Workload,
        params: SampleParams,
        probe: &mut P,
    ) -> SampledRun {
        assert!(params.grain_instrs > 0, "grain_instrs must be positive");
        assert!(params.period >= 3, "period must be >= 3");
        if let Some(run) = self.sampled_exact_fallback(workload, params, probe) {
            return run;
        }
        self.run_sampled_inner(workload, params, probe, None)
    }

    /// Runs the workload in *learned* sampling mode: like
    /// [`Simulator::run_sampled`], but an `esp-learn` predictor replaces
    /// most of the functional-warming walk once its residuals are in
    /// bounds (see the module docs). Falls back to exact simulation for
    /// tiny workloads, to full warming on residual breaches, and — when
    /// the fallback ladder bottoms out after skipping already happened —
    /// re-executes the run with plain warming so the returned report is
    /// clean (`LearnedStats::rerun_full`).
    ///
    /// # Panics
    ///
    /// Panics if `params` or `learn` are invalid
    /// ([`LearnParams::validate`] — CLI front ends validate first).
    pub fn run_sampled_learned(
        &self,
        workload: &dyn Workload,
        params: SampleParams,
        learn: LearnParams,
    ) -> SampledRun {
        self.run_sampled_learned_probed(workload, params, learn, &mut NullProbe)
    }

    /// [`Simulator::run_sampled_learned`] with an observability probe.
    /// The probe sees the learned attempt; in the rare rerun-with-plain-
    /// warming case the rerun is unprobed (its detailed grains repeat
    /// what the probe already saw, minus the skip bias).
    pub fn run_sampled_learned_probed<P: Probe>(
        &self,
        workload: &dyn Workload,
        params: SampleParams,
        learn: LearnParams,
        probe: &mut P,
    ) -> SampledRun {
        assert!(params.grain_instrs > 0, "grain_instrs must be positive");
        assert!(params.period >= 3, "period must be >= 3");
        if let Err(e) = learn.validate() {
            panic!("invalid learned-mode parameters: {e}");
        }
        if let Some(mut run) = self.sampled_exact_fallback(workload, params, probe) {
            run.learned = Some(LearnedStats::empty(learn.model));
            return run;
        }
        let run = self.run_sampled_inner(workload, params, probe, Some(learn));
        let stats = run.learned.expect("learned run carries stats");
        if stats.disabled && stats.skipped_instrs > 0 {
            // Last rung of the ladder: the model kept breaching its bound
            // after skipping had already touched warm state. Discard the
            // tainted estimate and redo the run with plain warming.
            let mut clean = self.run_sampled_inner(workload, params, &mut NullProbe, None);
            clean.learned = Some(LearnedStats { rerun_full: true, ..stats });
            return clean;
        }
        run
    }

    /// The shared too-small-to-sample escape: `Some(exact run)` when the
    /// workload cannot hold two sampling periods.
    fn sampled_exact_fallback<P: Probe>(
        &self,
        workload: &dyn Workload,
        params: SampleParams,
        probe: &mut P,
    ) -> Option<SampledRun> {
        let events = workload.events();
        let n_looper = self.config().looper_instrs as u64;
        let approx_total =
            workload.approx_total_instructions() + n_looper * events.len() as u64;
        let grains_total = approx_total.div_ceil(params.grain_instrs.max(1));
        if grains_total >= params.period * 2 {
            return None;
        }
        // Too small for two periods: sampling would measure nearly
        // everything anyway. Run exact and report zero error.
        let report = self.run_probed(workload, probe);
        let instrs = report.engine.retired;
        let stack = report.cpi_stack;
        let one = |y: u64| ratio_estimate(&[(instrs, y)]);
        let estimate = SamplingEstimate {
            grains_total,
            grains_measured: grains_total,
            measured_instrs: instrs,
            total_instrs: instrs,
            cpi: one(report.busy_cycles()),
            icache_cpi: one(stack.icache_l2 + stack.icache_llc),
            dcache_cpi: one(stack.dcache_l2 + stack.dcache_llc),
            branch_cpi: one(stack.branch_mispredict + stack.branch_misfetch),
            exact_fallback: true,
        };
        Some(SampledRun { report, estimate, learned: None })
    }

    fn run_sampled_inner<P: Probe>(
        &self,
        workload: &dyn Workload,
        params: SampleParams,
        probe: &mut P,
        learn: Option<LearnParams>,
    ) -> SampledRun {
        let mut engine = Engine::new(self.config().engine.clone());
        let mut esp: Option<EspState<'_>> = match &self.config().mode {
            SimMode::Esp(f) => Some(EspState::new(*f, workload)),
            _ => None,
        };
        let measure_ws = self
            .config()
            .esp_features()
            .is_some_and(|f| f.measure_working_sets);
        let ideal = self.config().esp_features().is_some_and(|f| f.ideal);
        let mut replay = ReplayState::default();
        if let Some(f) = self.config().esp_features() {
            replay.set_leads(f.prefetch_lead_instrs, f.bp_train_lead_branches);
        }
        let mut pending_lists: Option<ReplayLists> = None;
        let events = workload.events();
        let line_bytes = self.config().engine.machine.hierarchy.l1i.line_bytes;
        // Same once-per-run lowering as exact mode: detailed grains over
        // packed workloads run the fused kernel through this table.
        let kernel_params = engine.lower_kernel();
        let kind_table = KindTable::<P>::new(&kernel_params);
        let n_looper = self.config().looper_instrs as u64;
        let mut iws = LineSet::new();
        let mut dws = LineSet::new();
        let ff = learn
            .map(|lp| Box::new(FastForward::new(lp, line_bytes).expect("params pre-validated")));
        let mut ctl = SampleCtl::new(params, ff);

        for (idx, record) in events.iter().enumerate() {
            ctl.learn_note_event();
            let span_start = engine.now();
            let stack_before = *engine.cpi_stack();
            let retired_before = engine.stats().retired;
            let mut span_windows = 0u64;

            engine.idle_until(record.post_time);

            // Pending prediction lists: armed for timed replay when the
            // event opens in a detailed grain, applied as instant warm
            // state otherwise.
            if ctl.kind() == GrainKind::Warm {
                if let Some(lists) = pending_lists.take() {
                    Self::warm_apply_lists(&mut engine, &lists);
                }
                replay.arm(None, ideal, &mut engine);
            } else {
                replay.arm(pending_lists.take(), ideal, &mut engine);
            }

            for i in 0..n_looper {
                let instr = Self::looper_instr(idx, i);
                if ctl.kind() == GrainKind::Warm {
                    engine.warm_step(&instr);
                    ctl.warm_instr();
                    ctl.learn_note_step(&instr);
                } else {
                    replay.tick(&mut engine, 0, 0);
                    engine.step_probed(&instr, probe);
                }
                ctl.after_instr(&mut engine, &replay, &esp);
            }

            span_windows += match workload.as_packed() {
                Some(packed) => {
                    let mut stream =
                        packed.arena().event(record.id.index() as usize).actual_cursor();
                    self.run_event_sampled_kernel(
                        &mut stream,
                        idx,
                        &mut engine,
                        &mut esp,
                        &mut replay,
                        probe,
                        &mut ctl,
                        measure_ws,
                        line_bytes,
                        &kernel_params,
                        &kind_table,
                        &mut iws,
                        &mut dws,
                    )
                }
                None => {
                    let mut stream = workload.actual_stream(record.id);
                    self.run_event_sampled(
                        &mut stream,
                        idx,
                        &mut engine,
                        &mut esp,
                        &mut replay,
                        probe,
                        &mut ctl,
                        measure_ws,
                        line_bytes,
                        &mut iws,
                        &mut dws,
                    )
                }
            };

            if let Some(esp) = esp.as_mut() {
                if measure_ws {
                    esp.record_normal_working_set(iws.len(), dws.len());
                }
                pending_lists = esp.on_event_complete(idx + 1);
                engine.bp_mut().promote_event();
            }
            // Keep the coarse clock caught up before the next event's
            // post-time idling.
            ctl.flush_warm(&mut engine);

            probe.on_event(&EventSpan {
                idx: idx as u64,
                start: span_start,
                end: engine.now(),
                retired: engine.stats().retired - retired_before,
                windows: span_windows,
                stack: engine.cpi_stack().since(&stack_before),
            });
        }
        ctl.finish(&mut engine, &replay, &esp);

        let total_instrs = engine.stats().retired;
        let measured_instrs = ctl.measured_instrs;
        let report = self.extrapolate_report(
            esp,
            &ctl.totals,
            total_instrs,
            measured_instrs,
            events.len() as u64,
            measure_ws,
        );
        let samples = &ctl.samples;
        let mut estimate = SamplingEstimate {
            grains_total: ctl.grain_idx + 1,
            grains_measured: samples.len() as u64,
            measured_instrs,
            total_instrs,
            cpi: ratio_estimate(
                &samples.iter().map(|s| (s.instrs, s.busy)).collect::<Vec<_>>(),
            ),
            icache_cpi: ratio_estimate(
                &samples.iter().map(|s| (s.instrs, s.icache)).collect::<Vec<_>>(),
            ),
            dcache_cpi: ratio_estimate(
                &samples.iter().map(|s| (s.instrs, s.dcache)).collect::<Vec<_>>(),
            ),
            branch_cpi: ratio_estimate(
                &samples
                    .iter()
                    .map(|s| (s.instrs, s.br_mis + s.br_fetch))
                    .collect::<Vec<_>>(),
            ),
            exact_fallback: false,
        };
        let learned = ctl.learn.as_ref().map(|l| {
            // The estimator's intervals assume measured grains are
            // preceded by faithful warming; skipping traded some of that
            // for model predictions, so the prediction noise widens the
            // intervals (never narrows them).
            let r = l.residuals();
            estimate.cpi = r[0].inflate(estimate.cpi);
            estimate.icache_cpi = r[1].inflate(estimate.icache_cpi);
            estimate.dcache_cpi = r[2].inflate(estimate.dcache_cpi);
            estimate.branch_cpi = r[3].inflate(estimate.branch_cpi);
            l.stats()
        });
        let mem_snap = engine.mem().snapshot();
        let (esp_branches, esp_mispredicts) = {
            let b1 = engine.bp().stats(esp_branch::PredictorContext::Esp1);
            let b2 = engine.bp().stats(esp_branch::PredictorContext::Esp2);
            (b1.total() + b2.total(), b1.mispredicted + b2.mispredicted)
        };
        probe.on_run(&RunSummary {
            total_cycles: report.total_cycles,
            events: report.events_run,
            retired: report.engine.retired,
            stack: report.cpi_stack,
            l1i: mem_snap.l1i,
            l1d: mem_snap.l1d,
            l2: mem_snap.l2,
            branches: report.engine.branches,
            mispredicts: report.engine.mispredicts,
            esp_branches,
            esp_mispredicts,
        });
        SampledRun { report, estimate, learned }
    }

    /// The per-instruction loop of one event under the grain clock: the
    /// exact-mode loop body in detailed grains, warm stepping in warming
    /// grains, switching at grain boundaries mid-stream.
    #[allow(clippy::too_many_arguments)]
    fn run_event_sampled<P: Probe, S: ForkStream>(
        &self,
        stream: &mut S,
        idx: usize,
        engine: &mut Engine,
        esp: &mut Option<EspState<'_>>,
        replay: &mut ReplayState,
        probe: &mut P,
        ctl: &mut SampleCtl,
        measure: bool,
        line_bytes: u64,
        iws: &mut LineSet,
        dws: &mut LineSet,
    ) -> u64 {
        let mut span_windows = 0u64;
        let mut branches = 0u64;
        iws.clear();
        dws.clear();
        loop {
            if ctl.kind() == GrainKind::Warm {
                // Fast-forward in bulk, straight off the packed arrays,
                // up to the next grain boundary or end of event. In
                // learned mode the walk depends on the grain: a decode-
                // free cursor advance (skipped interior), engine +
                // extractor tee (stretch suffix), or plain engine
                // warming (everything else).
                let want = ctl.until_boundary();
                let skipped = ctl.skip_now();
                let collect = ctl.in_learn_suffix();
                let walked = if skipped {
                    let l = ctl.learn.as_mut().expect("skipping requires a controller");
                    stream.skip_region_observed(want, line_bytes, l.footprint_mut())
                } else {
                    match ctl.learn.as_mut() {
                        Some(l) if collect && l.in_stretch() => {
                            let mut tee = WarmTee::new(engine, l.extractor_mut());
                            stream.warm_region(want, line_bytes, &mut tee)
                        }
                        _ => stream.warm_region(want, line_bytes, engine),
                    }
                };
                ctl.note_learn_walk(walked, skipped);
                engine.warm_retire(walked);
                ctl.warm_bulk(walked, engine, replay, esp);
                if walked < want {
                    break;
                }
                continue;
            }
            replay.tick(engine, stream.executed(), branches);
            let Some(instr) = stream.next_instr() else {
                break;
            };
            if measure {
                iws.insert(instr.pc.line(line_bytes).as_u64());
                if let Some(a) = instr.mem_addr() {
                    dws.insert(a.line(line_bytes).as_u64());
                }
            }
            let out = engine.step_probed(&instr, probe);
            if instr.is_branch() {
                branches += 1;
            }
            if let Some(stall) = out.stall {
                self.spend_stall(stall, stream, idx, engine, esp, probe, &mut span_windows);
            }
            ctl.after_instr(engine, replay, esp);
        }
        span_windows
    }

    /// The fused-kernel twin of [`Simulator::run_event_sampled`], run for
    /// packed workloads: detailed grains go through the same lowered
    /// dispatch table and raw decode as the exact-mode kernel loop, with
    /// plain-ALU runs batch-charged (clipped to stay strictly inside the
    /// current grain, so the grain clock sees the same boundary
    /// crossings); warming grains keep the bulk `warm_region` walk.
    /// Performs the same engine/ctl call sequence as the generic loop, so
    /// sampled reports stay byte-identical (asserted by
    /// `packed_equivalence`).
    #[allow(clippy::too_many_arguments)]
    fn run_event_sampled_kernel<P: Probe>(
        &self,
        stream: &mut EventCursor<'_>,
        idx: usize,
        engine: &mut Engine,
        esp: &mut Option<EspState<'_>>,
        replay: &mut ReplayState,
        probe: &mut P,
        ctl: &mut SampleCtl,
        measure: bool,
        line_bytes: u64,
        kp: &KernelParams,
        tbl: &KindTable<P>,
        iws: &mut LineSet,
        dws: &mut LineSet,
    ) -> u64 {
        let mut span_windows = 0u64;
        let mut branches = 0u64;
        iws.clear();
        dws.clear();
        loop {
            if ctl.kind() == GrainKind::Warm {
                let want = ctl.until_boundary();
                let skipped = ctl.skip_now();
                let collect = ctl.in_learn_suffix();
                let walked = if skipped {
                    let l = ctl.learn.as_mut().expect("skipping requires a controller");
                    stream.skip_region_observed(want, line_bytes, l.footprint_mut())
                } else {
                    match ctl.learn.as_mut() {
                        Some(l) if collect && l.in_stretch() => {
                            let mut tee = WarmTee::new(engine, l.extractor_mut());
                            stream.warm_region(want, line_bytes, &mut tee)
                        }
                        _ => stream.warm_region(want, line_bytes, engine),
                    }
                };
                ctl.note_learn_walk(walked, skipped);
                engine.warm_retire(walked);
                ctl.warm_bulk(walked, engine, replay, esp);
                if walked < want {
                    break;
                }
                continue;
            }
            replay.tick(engine, stream.executed(), branches);
            // Grain batching, as in the exact kernel loop, additionally
            // clipped below the grain boundary: the skipped `after_instr`
            // calls would all have returned early, so the grain clock and
            // measurement snapshots are unaffected.
            let headroom = ctl.until_boundary().saturating_sub(1);
            if headroom > 0 && replay.drained() {
                let pc = stream.raw_pc();
                let line = pc >> kp.line_shift;
                if engine.on_fetch_line(line) {
                    let line_end = (line + 1) << kp.line_shift;
                    let max =
                        (((line_end - pc) / INSTR_BYTES) as usize).min(headroom as usize);
                    let n = stream.plain_run(max);
                    if n > 0 {
                        if measure {
                            iws.insert(line);
                        }
                        stream.skip_plain(n);
                        engine.charge_plain_alus(n as u64, probe);
                        ctl.detailed_bulk(n as u64);
                        continue;
                    }
                }
            }
            let Some(rs) = stream.next_raw() else {
                break;
            };
            let tag = rs.kind & TAG_MASK;
            if measure {
                iws.insert(rs.pc >> kp.line_shift);
                if tag == TAG_LOAD || tag == TAG_STORE {
                    dws.insert(rs.op >> kp.line_shift);
                }
            }
            let out = engine.step_raw(kp, tbl, rs.kind, rs.pc, rs.op, probe);
            branches += u64::from(tag >= TAG_COND);
            if let Some(stall) = out.stall {
                self.spend_stall(stall, stream, idx, engine, esp, probe, &mut span_windows);
            }
            ctl.after_instr(engine, replay, esp);
        }
        span_windows
    }

    /// Replays pending prediction lists into warmed state: every listed
    /// line becomes an instant stat-free fill, every replayable branch a
    /// predictor training — what the timed replay of a detailed event
    /// would eventually have installed.
    fn warm_apply_lists(engine: &mut Engine, lists: &ReplayLists) {
        let now = engine.now();
        for rec in &lists.ilist {
            for line in rec.lines() {
                engine.mem_mut().warm_prefetch_instr(line, now);
            }
        }
        for rec in &lists.dlist {
            for line in rec.lines() {
                engine.mem_mut().warm_prefetch_data(line, now);
            }
        }
        engine.bp_mut().begin_replay();
        for rec in &lists.blist {
            if let Some(instr) = rec.to_instr() {
                engine.bp_mut().train_ahead(&instr);
            }
        }
    }

    /// Assembles the extrapolated whole-run report: every measured-grain
    /// counter is scaled by `total_instrs / measured_instrs` — the
    /// combined ratio estimator, unbiased under systematic sampling.
    /// Retirement is exact (warming counts it precisely).
    fn extrapolate_report(
        &self,
        esp: Option<EspState<'_>>,
        totals: &MeasuredTotals,
        total_instrs: u64,
        measured_instrs: u64,
        events_run: u64,
        measure_ws: bool,
    ) -> RunReport {
        let s = |x: u64| scaled(x, total_instrs, measured_instrs);
        let stack = CpiStack {
            base: s(totals.stack.base),
            icache_l2: s(totals.stack.icache_l2),
            icache_llc: s(totals.stack.icache_llc),
            dcache_l2: s(totals.stack.dcache_l2),
            dcache_llc: s(totals.stack.dcache_llc),
            branch_mispredict: s(totals.stack.branch_mispredict),
            branch_misfetch: s(totals.stack.branch_misfetch),
            // Idle is not extrapolated: the inter-sample clock is
            // approximate, and busy cycles are the figure of merit.
            idle: 0,
            pre_exec_overlap: s(totals.stack.pre_exec_overlap),
        };
        let engine_stats = esp_uarch::EngineStats {
            retired: total_instrs,
            l1i_accesses: s(totals.engine.l1i_accesses),
            l1i_misses: s(totals.engine.l1i_misses),
            l1d_accesses: s(totals.engine.l1d_accesses),
            l1d_misses: s(totals.engine.l1d_misses),
            branches: s(totals.engine.branches),
            mispredicts: s(totals.engine.mispredicts),
            misfetches: s(totals.engine.misfetches),
            runahead_instrs: s(totals.engine.runahead_instrs),
        };
        let esp_stats = EspRunStats {
            windows: s(totals.esp.windows),
            wasted_window_cycles: s(totals.esp.wasted_window_cycles),
            instrs_by_depth: totals.esp.instrs_by_depth.iter().map(|&v| s(v)).collect(),
            events_started: s(totals.esp.events_started),
            lists_discarded: s(totals.esp.lists_discarded),
            blocked_switches: s(totals.esp.blocked_switches),
        };
        let replay_stats = ReplayStats {
            iprefetches: s(totals.replay.iprefetches),
            dprefetches: s(totals.replay.dprefetches),
            btrains: s(totals.replay.btrains),
        };
        let mut report = RunReport {
            total_cycles: stack.total(),
            breakdown: esp_uarch::CycleBreakdown::from_stack(&stack),
            cpi_stack: stack,
            engine: engine_stats,
            esp: esp_stats,
            replay: replay_stats,
            events_run,
            ..RunReport::default()
        };
        if measure_ws {
            if let Some(mut esp) = esp {
                report.working_sets = Some(esp.take_working_sets());
            }
        }
        let spec = report.esp.spec_instrs() + report.engine.runahead_instrs;
        report.activity = ActivityCounts {
            cycles: report.busy_cycles(),
            normal_instrs: report.engine.retired,
            spec_instrs: spec,
            mispredicts: report.engine.mispredicts,
        };
        report.energy = EnergyModel::mcpat_32nm().report(&report.activity);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use esp_workload::BenchmarkProfile;

    fn pct_err(sampled: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            return 0.0;
        }
        100.0 * (sampled - exact).abs() / exact
    }

    #[test]
    fn sampled_cpi_tracks_exact_for_base_and_esp() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        for cfg in [SimConfig::base(), SimConfig::esp_nl(), SimConfig::runahead()] {
            let sim = Simulator::new(cfg);
            let exact = sim.run(&w);
            let sampled = sim.run_sampled(&w, SampleParams::default());
            assert!(!sampled.estimate.exact_fallback);
            assert!(sampled.estimate.grains_measured >= 2);
            let exact_cpi = exact.busy_cycles() as f64 / exact.engine.retired as f64;
            let got_cpi =
                sampled.report.busy_cycles() as f64 / sampled.report.engine.retired as f64;
            let err = pct_err(got_cpi, exact_cpi);
            assert!(err < 8.0, "cpi error {err:.2}% (exact {exact_cpi:.4}, sampled {got_cpi:.4})");
            // Retirement is tracked exactly through warming.
            assert_eq!(sampled.report.engine.retired, exact.engine.retired);
            assert_eq!(sampled.report.events_run, exact.events_run);
        }
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let w = BenchmarkProfile::pixlr().scaled(120_000).build(7);
        let sim = Simulator::new(SimConfig::esp_nl());
        let a = sim.run_sampled(&w, SampleParams::default());
        let b = sim.run_sampled(&w, SampleParams::default());
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(a.report.engine, b.report.engine);
        assert_eq!(a.estimate.measured_instrs, b.estimate.measured_instrs);
        assert_eq!(a.estimate.cpi, b.estimate.cpi);
    }

    #[test]
    fn tiny_workload_falls_back_to_exact() {
        let w = BenchmarkProfile::amazon().scaled(5_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        let exact = sim.run(&w);
        let sampled = sim.run_sampled(&w, SampleParams::new(10_000, 20));
        assert!(sampled.estimate.exact_fallback);
        assert_eq!(sampled.report.total_cycles, exact.total_cycles);
        assert_eq!(sampled.report.engine, exact.engine);
        assert_eq!(sampled.estimate.cpi.se, 0.0);
    }

    #[test]
    fn estimate_reports_confidence_interval() {
        let w = BenchmarkProfile::gmaps().scaled(200_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        let sampled = sim.run_sampled(&w, SampleParams::default());
        let est = &sampled.estimate;
        assert!(est.grains_measured >= 2, "measured {}", est.grains_measured);
        assert!(est.cpi.ratio > 0.0);
        assert!(est.cpi.ci95 >= 0.0);
        assert_eq!(est.cpi.n, est.grains_measured);
        assert!(est.measured_instrs < est.total_instrs);
    }

    #[test]
    #[should_panic(expected = "period must be >= 3")]
    fn short_period_is_rejected() {
        SampleParams::new(1_000, 2);
    }

    #[test]
    fn learned_cpi_tracks_exact_and_actually_skips() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        for cfg in [SimConfig::base(), SimConfig::esp_nl()] {
            let sim = Simulator::new(cfg);
            let exact = sim.run(&w);
            let run =
                sim.run_sampled_learned(&w, SampleParams::default(), LearnParams::default());
            let stats = run.learned.expect("learned run reports stats");
            assert!(!run.estimate.exact_fallback);
            assert!(!stats.rerun_full, "stable workload must not bottom out");
            assert!(
                stats.skipped_instrs > 0 && stats.skip_fraction() > 0.3,
                "skipping must be non-vacuous (skip fraction {:.2})",
                stats.skip_fraction()
            );
            assert!(stats.predictions > 0);
            let exact_cpi = exact.busy_cycles() as f64 / exact.engine.retired as f64;
            let got_cpi = run.report.busy_cycles() as f64 / run.report.engine.retired as f64;
            let err = pct_err(got_cpi, exact_cpi);
            assert!(err < 8.0, "cpi error {err:.2}% (exact {exact_cpi:.4}, got {got_cpi:.4})");
            // Retirement stays exact: the skip walk still counts every
            // instruction.
            assert_eq!(run.report.engine.retired, exact.engine.retired);
        }
    }

    #[test]
    fn learned_run_is_deterministic() {
        let w = BenchmarkProfile::pixlr().scaled(300_000).build(7);
        let sim = Simulator::new(SimConfig::esp_nl());
        let a = sim.run_sampled_learned(&w, SampleParams::default(), LearnParams::default());
        let b = sim.run_sampled_learned(&w, SampleParams::default(), LearnParams::default());
        assert_eq!(a.report.total_cycles, b.report.total_cycles);
        assert_eq!(a.report.engine, b.report.engine);
        assert_eq!(a.estimate.cpi, b.estimate.cpi);
        assert_eq!(a.learned, b.learned);
    }

    #[test]
    fn learned_tiny_workload_reports_empty_stats() {
        let w = BenchmarkProfile::amazon().scaled(5_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        let run = sim.run_sampled_learned(&w, SampleParams::new(10_000, 20), LearnParams::default());
        assert!(run.estimate.exact_fallback);
        let stats = run.learned.expect("fallback still tags the run as learned");
        assert_eq!(stats, esp_learn::LearnedStats::empty(esp_learn::ModelKind::Ridge));
    }

    #[test]
    fn learned_ladder_bottom_reruns_with_plain_warming() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        // amazon/base at this scale predicts well enough up front to pass
        // the skip-entry gate, then drifts past the bias threshold later
        // in the run; with a single allowed fallback the first breach
        // bottoms the ladder out and the run must be redone with plain
        // warming.
        let learn = LearnParams { max_fallbacks: 1, ..LearnParams::default() };
        let run = sim.run_sampled_learned(&w, SampleParams::default(), learn);
        let stats = run.learned.expect("learned stats");
        assert!(stats.skipped_instrs > 0, "run must actually have skipped before breaching");
        assert!(stats.disabled && stats.fallbacks >= 1);
        assert!(stats.rerun_full, "tainted run must be redone");
        // The delivered report is then exactly the plain sampled one.
        let plain = sim.run_sampled(&w, SampleParams::default());
        assert_eq!(run.report.total_cycles, plain.report.total_cycles);
        assert_eq!(run.report.engine, plain.report.engine);
        assert_eq!(run.estimate.cpi, plain.estimate.cpi);
    }

    #[test]
    fn learned_intervals_never_narrower_than_plain() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        let run =
            sim.run_sampled_learned(&w, SampleParams::default(), LearnParams::default());
        let stats = run.learned.unwrap();
        if stats.predictions > 0 && !stats.rerun_full {
            // Same samples, inflated se: the learned interval dominates
            // what the same estimator would report uninflated.
            assert!(run.estimate.cpi.se > 0.0);
            assert!(run.estimate.cpi.ci95 >= 1.96 * run.estimate.cpi.se - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "--learn-train must be at least 1")]
    fn learned_invalid_params_panic_with_cli_message() {
        let w = BenchmarkProfile::amazon().scaled(10_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        let learn = LearnParams { train_stretches: 0, ..LearnParams::default() };
        let _ = sim.run_sampled_learned(&w, SampleParams::default(), learn);
    }
}
