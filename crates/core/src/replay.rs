//! List replay during normal execution (§3.6, "ESP Predictors").
//!
//! When an event that was pre-executed finally runs for real, the
//! information its pre-execution recorded is played back:
//!
//! * I-list and D-list entries become prefetches issued a preset number
//!   of instructions (190) before the recorded touch point — or at event
//!   start, using the ~70-instruction looper prologue as a head start;
//! * B-list entries train the branch predictor a preset number of
//!   branches (30) ahead of retirement, along a private replay PIR, so
//!   the history "is neither too far in the future nor too short".

use esp_lists::{AddrRecord, BranchRecord};
use esp_uarch::Engine;

/// Default instructions of lead time for list prefetches (§3.6: "a
/// preset number (190) of instructions in advance of its use").
pub(crate) const PREFETCH_LEAD_INSTRS: u64 = 190;
/// Default branches of lead for B-list predictor training.
pub(crate) const BP_TRAIN_LEAD_BRANCHES: u64 = 30;

/// The lists handed over when a pre-executed event becomes current.
#[derive(Clone, Debug, Default)]
pub struct ReplayLists {
    /// Decoded I-list records.
    pub ilist: Vec<AddrRecord>,
    /// Decoded D-list records.
    pub dlist: Vec<AddrRecord>,
    /// Decoded B-list records.
    pub blist: Vec<BranchRecord>,
}

impl ReplayLists {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.ilist.is_empty() && self.dlist.is_empty() && self.blist.is_empty()
    }
}

/// Counters for replay activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// I-list prefetches issued (cache blocks).
    pub iprefetches: u64,
    /// D-list prefetches issued (cache blocks).
    pub dprefetches: u64,
    /// Branch records replayed into the predictor.
    pub btrains: u64,
}

/// The per-event replay cursors.
#[derive(Clone, Debug)]
pub(crate) struct ReplayState {
    lists: ReplayLists,
    ipos: usize,
    dpos: usize,
    bpos: usize,
    ideal: bool,
    prefetch_lead: u64,
    bp_lead: u64,
    stats: ReplayStats,
}

impl Default for ReplayState {
    fn default() -> Self {
        ReplayState {
            lists: ReplayLists::default(),
            ipos: 0,
            dpos: 0,
            bpos: 0,
            ideal: false,
            prefetch_lead: PREFETCH_LEAD_INSTRS,
            bp_lead: BP_TRAIN_LEAD_BRANCHES,
            stats: ReplayStats::default(),
        }
    }
}

impl ReplayState {
    /// Sets the replay lead distances (the §3.6 presets by default).
    pub fn set_leads(&mut self, prefetch_lead: u64, bp_lead: u64) {
        self.prefetch_lead = prefetch_lead;
        self.bp_lead = bp_lead;
    }

    /// Arms the replay for a new current event. `lists` is `None` when
    /// the event was never pre-executed or its order prediction failed.
    pub fn arm(&mut self, lists: Option<ReplayLists>, ideal: bool, engine: &mut Engine) {
        self.lists = lists.unwrap_or_default();
        self.ipos = 0;
        self.dpos = 0;
        self.bpos = 0;
        self.ideal = ideal;
        engine.bp_mut().begin_replay();
    }

    /// List entries not yet replayed across all three lists — the
    /// replay-occupancy feature of the learned fast-forward mode.
    pub fn pending_entries(&self) -> u64 {
        ((self.lists.ilist.len() - self.ipos.min(self.lists.ilist.len()))
            + (self.lists.dlist.len() - self.dpos.min(self.lists.dlist.len()))
            + (self.lists.blist.len() - self.bpos.min(self.lists.blist.len()))) as u64
    }

    /// Whether every list cursor is exhausted — once true it stays true
    /// until the next [`ReplayState::arm`], so callers may batch over
    /// instruction runs without per-instruction ticks.
    #[inline(always)]
    pub fn drained(&self) -> bool {
        self.ipos >= self.lists.ilist.len()
            && self.dpos >= self.lists.dlist.len()
            && self.bpos >= self.lists.blist.len()
    }

    /// Replay progress tick. `icount` is the instructions retired so far
    /// in the current event (the looper prologue counts as negative lead:
    /// call with `icount = 0` during the prologue), `branches` the
    /// branches retired so far.
    #[inline]
    pub fn tick(&mut self, engine: &mut Engine, icount: u64, branches: u64) {
        // Fast path: most events have no lists (non-ESP configs arm with
        // `None`; drained cursors stay drained), and this runs once per
        // retired instruction.
        if self.drained() {
            return;
        }
        self.tick_slow(engine, icount, branches);
    }

    fn tick_slow(&mut self, engine: &mut Engine, icount: u64, branches: u64) {
        let now = engine.now();
        while let Some(rec) = self.lists.ilist.get(self.ipos) {
            if rec.icount > icount + self.prefetch_lead {
                break;
            }
            if self.ideal {
                for line in rec.lines() {
                    engine.mem_mut().prefetch_instr_instant(line, now);
                }
            } else {
                // One branch-free batched probe+fill for the whole run
                // record instead of a scalar prefetch per line.
                engine.mem_mut().prefetch_instr_run(rec.line, rec.run_len() as u64, now, true);
            }
            self.stats.iprefetches += rec.run_len() as u64;
            self.ipos += 1;
        }
        while let Some(rec) = self.lists.dlist.get(self.dpos) {
            if rec.icount > icount + self.prefetch_lead {
                break;
            }
            if self.ideal {
                for line in rec.lines() {
                    engine.mem_mut().prefetch_data_instant(line, now);
                }
            } else {
                engine.mem_mut().prefetch_data_run(rec.line, rec.run_len() as u64, now, true);
            }
            self.stats.dprefetches += rec.run_len() as u64;
            self.dpos += 1;
        }
        while self.bpos < self.lists.blist.len() && (self.bpos as u64) < branches + self.bp_lead
        {
            let rec = self.lists.blist[self.bpos];
            if let Some(instr) = rec.to_instr() {
                engine.bp_mut().train_ahead(&instr);
                self.stats.btrains += 1;
            }
            self.bpos += 1;
        }
    }

    /// Accumulated replay counters.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_lists::AddrRecord;
    use esp_trace::Instr;
    use esp_types::{Addr, LineAddr};
    use esp_uarch::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig::baseline())
    }

    fn irec(line: u64, icount: u64) -> AddrRecord {
        AddrRecord { line: LineAddr::new(line), extra: 0, icount }
    }

    #[test]
    fn prefetches_respect_lead() {
        let mut e = engine();
        let mut r = ReplayState::default();
        r.arm(
            Some(ReplayLists {
                ilist: vec![irec(100, 0), irec(200, 500)],
                dlist: vec![],
                blist: vec![],
            }),
            false,
            &mut e,
        );
        r.tick(&mut e, 0, 0);
        // Entry at icount 0 is within the 190-instr lead; 500 is not.
        assert!(e.mem().l1i().probe(LineAddr::new(100)));
        assert!(!e.mem().l1i().probe(LineAddr::new(200)));
        r.tick(&mut e, 310, 0);
        assert!(e.mem().l1i().probe(LineAddr::new(200)));
        assert_eq!(r.stats().iprefetches, 2);
    }

    #[test]
    fn run_records_expand_to_all_lines() {
        let mut e = engine();
        let mut r = ReplayState::default();
        r.arm(
            Some(ReplayLists {
                ilist: vec![AddrRecord { line: LineAddr::new(50), extra: 3, icount: 0 }],
                dlist: vec![],
                blist: vec![],
            }),
            false,
            &mut e,
        );
        r.tick(&mut e, 0, 0);
        for l in 50..54 {
            assert!(e.mem().l1i().probe(LineAddr::new(l)), "line {l}");
        }
        assert_eq!(r.stats().iprefetches, 4);
    }

    #[test]
    fn ideal_prefetches_complete_instantly() {
        let mut e = engine();
        let mut r = ReplayState::default();
        r.arm(
            Some(ReplayLists { ilist: vec![irec(100, 0)], dlist: vec![irec(300, 0)], blist: vec![] }),
            true,
            &mut e,
        );
        r.tick(&mut e, 0, 0);
        // An immediate demand access is a *full* hit, not a partial one.
        let now = e.now();
        let r_i = e.mem_mut().access_instr(LineAddr::new(100), now);
        assert!(!r_i.l1_miss);
        assert_eq!(r_i.latency, 2);
        let r_d = e.mem_mut().access_data(LineAddr::new(300), now, false);
        assert!(!r_d.l1_miss);
    }

    #[test]
    fn blist_trains_ahead_of_retirement() {
        let mut e = engine();
        let mut r = ReplayState::default();
        let pc = Addr::new(0x9000);
        let target = Addr::new(0x9900);
        r.arm(
            Some(ReplayLists {
                ilist: vec![],
                dlist: vec![],
                blist: vec![esp_lists::BranchRecord {
                    pc,
                    taken: true,
                    indirect: true,
                    target: Some(target),
                    icount: 0,
                    kind: esp_lists::RecordKind::Indirect,
                }],
            }),
            false,
            &mut e,
        );
        r.tick(&mut e, 0, 0);
        assert_eq!(r.stats().btrains, 1);
        // The trained indirect branch now predicts correctly.
        use esp_branch::PredictorContext;
        assert!(e
            .bp_mut()
            .predict_and_update(PredictorContext::Normal, &Instr::indirect(pc, target))
            .is_correct());
    }

    #[test]
    fn empty_lists_are_harmless() {
        let mut e = engine();
        let mut r = ReplayState::default();
        r.arm(None, false, &mut e);
        r.tick(&mut e, 1000, 50);
        assert_eq!(r.stats(), ReplayStats::default());
        assert!(ReplayLists::default().is_empty());
    }
}
