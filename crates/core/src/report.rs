//! The per-run report: cycles, rates, energy.

use crate::esp_state::EspRunStats;
use crate::replay::ReplayStats;
use crate::working_set::WorkingSetReport;
use esp_energy::{ActivityCounts, EnergyBreakdown};
use esp_obs::CpiStack;
use esp_stats::{mpki, percent};
use esp_uarch::{CycleBreakdown, EngineStats};
use std::fmt;

/// Everything one simulation run produced.
///
/// Performance comparisons in the figures use [`RunReport::busy_cycles`]
/// (idle cycles waiting for events to arrive are excluded, matching the
/// paper's per-event execution focus; a faster core waits more, not
/// less).
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Total simulated cycles, including idle.
    pub total_cycles: u64,
    /// The coarse cycle breakdown (the fine stack with L2/LLC and
    /// mispredict/misfetch pairs folded).
    pub breakdown: CycleBreakdown,
    /// The fine-grained CPI stack; its classes sum to `total_cycles`.
    pub cpi_stack: CpiStack,
    /// Normal-mode engine counters.
    pub engine: EngineStats,
    /// ESP activity (zeroed for non-ESP runs).
    pub esp: EspRunStats,
    /// List replay counters.
    pub replay: ReplayStats,
    /// Events executed.
    pub events_run: u64,
    /// The Fig. 14 energy decomposition.
    pub energy: EnergyBreakdown,
    /// The raw activity counts behind `energy`.
    pub activity: ActivityCounts,
    /// Working-set samples (present only with measurement enabled).
    pub working_sets: Option<WorkingSetReport>,
}

impl RunReport {
    /// Cycles spent executing (total minus idle) — the figure of merit.
    pub fn busy_cycles(&self) -> u64 {
        self.total_cycles - self.breakdown.idle
    }

    /// Normal-mode instructions per busy cycle.
    pub fn ipc(&self) -> f64 {
        if self.busy_cycles() == 0 {
            0.0
        } else {
            self.engine.retired as f64 / self.busy_cycles() as f64
        }
    }

    /// L1-I misses per kilo-instruction (Fig. 11a's metric).
    pub fn l1i_mpki(&self) -> f64 {
        mpki(self.engine.l1i_misses, self.engine.retired)
    }

    /// L1-D miss rate in percent (Fig. 11b's metric).
    pub fn l1d_miss_rate_pct(&self) -> f64 {
        percent(self.engine.l1d_misses, self.engine.l1d_accesses)
    }

    /// Branch misprediction rate in percent (Fig. 12's metric).
    pub fn mispredict_rate_pct(&self) -> f64 {
        percent(self.engine.mispredicts, self.engine.branches)
    }

    /// Speculatively executed instructions (runahead + ESP modes) as a
    /// percentage of committed instructions (Fig. 14's bar labels).
    pub fn extra_instr_pct(&self) -> f64 {
        self.activity.extra_instr_pct()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events, {} instructions in {} busy cycles (IPC {:.3}, {} idle)",
            self.events_run,
            self.engine.retired,
            self.busy_cycles(),
            self.ipc(),
            self.breakdown.idle
        )?;
        writeln!(
            f,
            "  stalls: icache {} | dcache {} | branch {} | base {}",
            self.breakdown.icache, self.breakdown.dcache, self.breakdown.branch, self.breakdown.base
        )?;
        writeln!(
            f,
            "  L1-I MPKI {:.2} | L1-D miss {:.2}% | mispredict {:.2}%",
            self.l1i_mpki(),
            self.l1d_miss_rate_pct(),
            self.mispredict_rate_pct()
        )?;
        if self.esp.windows > 0 || self.engine.runahead_instrs > 0 {
            writeln!(
                f,
                "  speculative: {:.1}% extra instructions, {} ESP windows, replay {}i/{}d/{}b",
                self.extra_instr_pct(),
                self.esp.windows,
                self.replay.iprefetches,
                self.replay.dprefetches,
                self.replay.btrains
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let mut r = RunReport { total_cycles: 100, events_run: 2, ..RunReport::default() };
        r.engine.retired = 50;
        let s = r.to_string();
        assert!(s.contains("2 events"));
        assert!(s.contains("MPKI"));
        // Speculative line only appears for speculative runs.
        assert!(!s.contains("speculative"));
        r.esp.windows = 5;
        assert!(r.to_string().contains("speculative"));
    }

    #[test]
    fn derived_metrics() {
        let mut r = RunReport { total_cycles: 1_500, ..RunReport::default() };
        r.breakdown.idle = 500;
        r.engine.retired = 2_000;
        r.engine.l1i_misses = 35;
        r.engine.l1d_accesses = 800;
        r.engine.l1d_misses = 24;
        r.engine.branches = 400;
        r.engine.mispredicts = 40;
        assert_eq!(r.busy_cycles(), 1_000);
        assert!((r.ipc() - 2.0).abs() < 1e-9);
        assert!((r.l1i_mpki() - 17.5).abs() < 1e-9);
        assert!((r.l1d_miss_rate_pct() - 3.0).abs() < 1e-9);
        assert!((r.mispredict_rate_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_safe() {
        let r = RunReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.l1i_mpki(), 0.0);
        assert_eq!(r.extra_instr_pct(), 0.0);
    }
}
