//! The Fig. 8 hardware inventory and area accounting.

use esp_lists::ListCapacities;

/// One hardware structure added by ESP, with its per-mode sizes in bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AreaRow {
    /// Structure name as in Fig. 8.
    pub name: &'static str,
    /// Short description.
    pub description: &'static str,
    /// Bytes provisioned for ESP-1.
    pub esp1_bytes: u64,
    /// Bytes provisioned for ESP-2.
    pub esp2_bytes: u64,
}

/// The complete Fig. 8 table: every structure ESP adds to the baseline,
/// sized exactly as the paper provisions them (12.6 KB for ESP-1 plus
/// 1.2 KB for ESP-2, 13.8 KB total).
///
/// # Examples
///
/// ```
/// let rows = esp_core::area_table();
/// let total: u64 = rows.iter().map(|r| r.esp1_bytes + r.esp2_bytes).sum();
/// assert_eq!(total, esp_core::total_added_bytes());
/// ```
pub fn area_table() -> Vec<AreaRow> {
    let c1 = ListCapacities::esp1();
    let c2 = ListCapacities::esp2();
    vec![
        AreaRow {
            name: "L1-(I,D) Cachelet",
            description: "12-way, 64 B lines, 2 cycle hit latency, LRU",
            // 5.5 KB instruction + 5.5 KB data for ESP-1; 0.5 KB each for
            // ESP-2.
            esp1_bytes: 2 * 5632,
            esp2_bytes: 2 * 512,
        },
        AreaRow {
            name: "I-List",
            description: "Circular queue",
            esp1_bytes: c1.i_list as u64,
            esp2_bytes: c2.i_list as u64,
        },
        AreaRow {
            name: "D-List",
            description: "Circular queue",
            esp1_bytes: c1.d_list as u64,
            esp2_bytes: c2.d_list as u64,
        },
        AreaRow {
            name: "B-List-Direction",
            description: "Circular queue",
            esp1_bytes: c1.b_dir as u64,
            esp2_bytes: c2.b_dir as u64,
        },
        AreaRow {
            name: "B-List-Target",
            description: "Circular queue",
            esp1_bytes: c1.b_tgt as u64,
            esp2_bytes: c2.b_tgt as u64,
        },
        AreaRow {
            name: "RRAT",
            description: "32-entry RAT",
            esp1_bytes: 28,
            esp2_bytes: 28,
        },
        AreaRow {
            name: "HW Event Queue",
            description: "2-entry queue",
            esp1_bytes: 8,
            esp2_bytes: 8,
        },
        AreaRow {
            name: "Special Registers",
            description: "PC, SP, Flags, ESP-mode",
            esp1_bytes: 12,
            esp2_bytes: 12,
        },
    ]
}

/// Total bytes of hardware state ESP adds (the paper reports 13.8 KB).
pub fn total_added_bytes() -> u64 {
    area_table().iter().map(|r| r.esp1_bytes + r.esp2_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_fig8() {
        let rows = area_table();
        let esp1: u64 = rows.iter().map(|r| r.esp1_bytes).sum();
        let esp2: u64 = rows.iter().map(|r| r.esp2_bytes).sum();
        // Fig. 8: ESP-1 additions 12.6 KB, ESP-2 additions 1.2 KB.
        assert!((12_500..13_000).contains(&esp1), "esp1={esp1}");
        assert!((1_100..1_300).contains(&esp2), "esp2={esp2}");
        let total = total_added_bytes();
        // "ESP adds 13.8 KB of hardware state to baseline."
        assert!((13_600..14_400).contains(&total), "total={total}");
    }

    #[test]
    fn list_rows_match_fig8_exactly() {
        let rows = area_table();
        let find = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(find("I-List").esp1_bytes, 499);
        assert_eq!(find("I-List").esp2_bytes, 68);
        assert_eq!(find("D-List").esp1_bytes, 510);
        assert_eq!(find("D-List").esp2_bytes, 57);
        assert_eq!(find("B-List-Direction").esp1_bytes, 566);
        assert_eq!(find("B-List-Direction").esp2_bytes, 80);
        assert_eq!(find("B-List-Target").esp1_bytes, 41);
        assert_eq!(find("B-List-Target").esp2_bytes, 6);
    }
}
