//! The ESP execution contexts and pre-execution machinery (§3, §4).
//!
//! [`EspState`] owns everything the ESP hardware adds to the core: the
//! hardware event queue view, the per-mode execution contexts (resumable
//! stream cursors standing in for the RRAT/PC checkpoints), the shared
//! way-partitioned cachelets, and the per-mode prediction lists. The
//! simulator hands every LLC-miss stall window to
//! [`EspState::spend_window`]; on event completion,
//! [`EspState::on_event_complete`] performs the context shift of §4.2 and
//! yields the promoted event's lists for normal-mode replay.

use crate::config::EspFeatures;
use crate::lineset::LineSet;
use crate::replay::ReplayLists;
use crate::working_set::WorkingSetReport;
use esp_branch::{PredictorContext, SpeculativeCheckpoint};
use esp_lists::{AddrList, BList, ListCapacities};
use esp_mem::{AccessResult, CacheConfig, Cachelet, CacheletSlot, SetAssocCache};
use esp_obs::{CycleClass, NullProbe, Probe, WindowRecord, WindowSpender};
use esp_trace::{EventCursor, EventRecord, EventStream, Instr, InstrKind, Workload};
use esp_types::{Cycle, LineAddr};
use esp_uarch::{Engine, Stall, StallKind};

/// Pipeline-drain cost charged when control switches between execution
/// contexts (entering a window, or jumping one event deeper), modelled on
/// the paper's "drained from the pipeline ... similar to how wrong-path
/// instructions in the case of a branch misprediction are handled".
const SWITCH_COST_CYCLES: u64 = 10;

/// Accumulated ESP activity for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EspRunStats {
    /// Stall windows offered to ESP.
    pub windows: u64,
    /// Window cycles with no runnable slot (every queued event finished,
    /// blocked, or not yet posted).
    pub wasted_window_cycles: u64,
    /// Instructions pre-executed at each jump-ahead depth (index 0 =
    /// ESP-1).
    pub instrs_by_depth: Vec<u64>,
    /// Events whose pre-execution was started (EU bit set).
    pub events_started: u64,
    /// Pre-executions discarded by the order-misprediction bit (§4.5).
    pub lists_discarded: u64,
    /// Deeper-jump transitions caused by ESP-mode LLC misses.
    pub blocked_switches: u64,
}

impl EspRunStats {
    /// Total speculatively pre-executed instructions across depths.
    pub fn spec_instrs(&self) -> u64 {
        self.instrs_by_depth.iter().sum()
    }
}

/// A slot's resumable stream cursor. Packed workloads get the concrete
/// arena cursor — one predictable match instead of a per-instruction
/// virtual call, and the decode inlines into [`EspState::step_slot`] —
/// while any other workload keeps its boxed stream. Both variants
/// produce the same instruction sequence.
enum SlotCursor<'w> {
    Dyn(Box<dyn EventStream + 'w>),
    Packed(EventCursor<'w>),
}

impl SlotCursor<'_> {
    #[inline]
    fn next_instr(&mut self) -> Option<Instr> {
        match self {
            SlotCursor::Dyn(c) => c.next_instr(),
            SlotCursor::Packed(c) => c.next_instr(),
        }
    }

    #[inline]
    fn executed(&self) -> u64 {
        match self {
            SlotCursor::Dyn(c) => c.executed(),
            SlotCursor::Packed(c) => c.executed(),
        }
    }
}

struct Slot<'w> {
    /// Absolute event index this slot pre-executes.
    event_idx: Option<u64>,
    cursor: Option<SlotCursor<'w>>,
    ilist: AddrList,
    dlist: AddrList,
    blist: BList,
    last_fetch_line: Option<LineAddr>,
    blocked_until: Cycle,
    finished: bool,
    /// Instruction count of the slot's last data LLC miss, for the MLP
    /// overlap rule: the pre-execution runs on the same out-of-order
    /// core, so clustered misses overlap instead of each stalling it.
    last_data_llc_at: Option<u64>,
    iws: LineSet,
    dws: LineSet,
}

impl<'w> Slot<'w> {
    fn empty(caps: ListCapacities) -> Self {
        Slot {
            event_idx: None,
            cursor: None,
            ilist: AddrList::new(caps.i_list),
            dlist: AddrList::new(caps.d_list),
            blist: BList::new(caps.b_dir, caps.b_tgt),
            last_fetch_line: None,
            blocked_until: Cycle::ZERO,
            finished: false,
            last_data_llc_at: None,
            iws: LineSet::new(),
            dws: LineSet::new(),
        }
    }

    fn started(&self) -> bool {
        self.cursor.is_some()
    }
}

enum SlotStep {
    /// Executed one instruction for `millis`.
    Ran(u64),
    /// Hit an ESP-mode LLC miss: blocked until the fill returns; the
    /// payload is the millis charged before blocking.
    Blocked(Cycle, u64),
    /// The event's stream ended.
    Finished,
}

fn caps_for(depth_idx: usize, ideal: bool) -> ListCapacities {
    if ideal {
        ListCapacities::unbounded()
    } else if depth_idx == 0 {
        ListCapacities::esp1()
    } else {
        ListCapacities::esp2()
    }
}

/// The ESP hardware state for one simulated core.
pub(crate) struct EspState<'w> {
    features: EspFeatures,
    workload: &'w dyn Workload,
    slots: Vec<Slot<'w>>,
    /// Shared way-partitioned cachelets for ESP-1/ESP-2 (§4.2).
    cachelet_i: Cachelet,
    cachelet_d: Cachelet,
    /// Per-slot caches standing in for the cachelets beyond depth 2 (the
    /// Fig. 13 probe) or for the unbounded ideal configuration.
    side_i: Vec<SetAssocCache>,
    side_d: Vec<SetAssocCache>,
    stats: EspRunStats,
    working_sets: WorkingSetReport,
    /// Scratch buffer for the per-window RAS/PIR checkpoint, reused so
    /// the window hot path performs no allocation after the first.
    bp_checkpoint: Option<SpeculativeCheckpoint>,
}

impl<'w> EspState<'w> {
    pub fn new(features: EspFeatures, workload: &'w dyn Workload) -> Self {
        features.validate().expect("invalid ESP features");
        let depth = features.depth;
        let slots = (0..depth).map(|i| Slot::empty(caps_for(i, features.ideal))).collect();
        let side = |n: usize| -> Vec<SetAssocCache> {
            (0..n).map(|_| SetAssocCache::new(Self::side_cache_config(features.ideal))).collect()
        };
        // Ideal mode gives every slot its own huge cache; otherwise only
        // depths >= 2 (which exist only in the Fig. 13 probe) need side
        // caches.
        let n_side = if features.ideal { depth } else { depth.saturating_sub(2) };
        EspState {
            features,
            workload,
            slots,
            cachelet_i: Cachelet::new(2),
            cachelet_d: Cachelet::new(2),
            side_i: side(n_side),
            side_d: side(n_side),
            stats: EspRunStats { instrs_by_depth: vec![0; depth], ..EspRunStats::default() },
            working_sets: WorkingSetReport::new(depth),
            bp_checkpoint: None,
        }
    }

    fn side_cache_config(ideal: bool) -> CacheConfig {
        if ideal {
            CacheConfig {
                name: "ideal-cachelet".into(),
                size_bytes: 4 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                hit_latency: 2,
            }
        } else {
            // A single-way, 8-set stand-in matching the ESP-2 partition.
            CacheConfig { name: "deep-cachelet".into(), size_bytes: 512, ways: 1, line_bytes: 64, hit_latency: 2 }
        }
    }

    /// Which side-cache index slot `s` uses, if any.
    fn side_index(&self, s: usize) -> Option<usize> {
        if self.features.ideal {
            Some(s)
        } else if s >= 2 {
            Some(s - 2)
        } else {
            None
        }
    }

    pub fn stats(&self) -> &EspRunStats {
        &self.stats
    }

    pub fn take_working_sets(&mut self) -> WorkingSetReport {
        std::mem::take(&mut self.working_sets)
    }

    pub fn record_normal_working_set(&mut self, i_lines: usize, d_lines: usize) {
        if self.features.measure_working_sets {
            self.working_sets.normal_i.push(i_lines);
            self.working_sets.normal_d.push(d_lines);
        }
    }

    fn slot_ready(&self, s: usize, t: Cycle, current_idx: usize, events: &[EventRecord]) -> bool {
        let e = current_idx + 1 + s;
        if e >= events.len() {
            return false;
        }
        if events[e].post_time.is_after(t) {
            return false;
        }
        let slot = &self.slots[s];
        !slot.finished && !slot.blocked_until.is_after(t)
    }

    fn ensure_started(&mut self, s: usize, current_idx: usize, events: &[EventRecord]) {
        if self.slots[s].started() {
            return;
        }
        let e = current_idx + 1 + s;
        let id = events[e].id;
        self.slots[s].event_idx = Some(e as u64);
        self.slots[s].cursor = Some(match self.workload.as_packed() {
            Some(p) => {
                SlotCursor::Packed(p.arena().event(id.index() as usize).speculative_cursor())
            }
            None => SlotCursor::Dyn(self.workload.speculative_stream(id)),
        });
        self.stats.events_started += 1;
    }

    /// Spends one LLC-miss stall window pre-executing queued events
    /// (the unprobed convenience form; the simulator drives the probed
    /// variant directly).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn spend_window(&mut self, engine: &mut Engine, stall: Stall, current_idx: usize) {
        self.spend_window_probed(engine, stall, current_idx, &mut NullProbe);
    }

    /// [`EspState::spend_window`] with an observability probe: emits one
    /// [`WindowRecord`] per window and feeds the engine's
    /// `pre_exec_overlap` memo. Statically dispatched — with
    /// [`NullProbe`] this is the plain `spend_window` path.
    pub fn spend_window_probed<P: Probe>(
        &mut self,
        engine: &mut Engine,
        stall: Stall,
        current_idx: usize,
        probe: &mut P,
    ) {
        self.stats.windows += 1;
        // Checkpoint the normal context's RAS (16 entries) so ESP-mode
        // calls/returns do not corrupt it. The paper clears the RAS on
        // exit (§4.1); a checkpoint register is the same cost class and
        // avoids penalising return-heavy events for every window — see
        // DESIGN.md. Under SharedAll ("no extra hardware") nothing is
        // saved: pollution is the point of that design variant.
        let shared_all = engine.bp().policy() == esp_branch::ContextPolicy::SharedAll;
        let checkpointed = !shared_all;
        if checkpointed {
            match self.bp_checkpoint.as_mut() {
                Some(cp) => engine.bp_mut().checkpoint_speculative_into(cp),
                None => self.bp_checkpoint = Some(engine.bp_mut().checkpoint_speculative()),
            }
        }
        let base_millis = 1000 / engine.config().machine.width as u64
            + engine.config().timing.issue_extra_millis;
        let total_millis = stall.cycles * 1000;
        let mut spent = SWITCH_COST_CYCLES * 1000;
        // Millis of real pre-execution work (switch costs and tail waste
        // excluded) — the window's utilization.
        let mut utilized_millis = 0u64;
        let mut window_instrs = 0u64;
        let events = self.workload.events();

        'window: while spent + base_millis <= total_millis {
            let t = stall.start + spent / 1000;
            let Some(s) = (0..self.features.depth)
                .find(|&i| self.slot_ready(i, t, current_idx, events))
            else {
                self.stats.wasted_window_cycles += (total_millis - spent) / 1000;
                break;
            };
            self.ensure_started(s, current_idx, events);
            loop {
                if spent + base_millis > total_millis {
                    break 'window;
                }
                let t = stall.start + spent / 1000;
                match self.step_slot(s, t, base_millis, engine) {
                    SlotStep::Ran(millis) => {
                        spent += millis;
                        utilized_millis += millis;
                        window_instrs += 1;
                        self.stats.instrs_by_depth[s] += 1;
                    }
                    SlotStep::Blocked(until, millis) => {
                        spent += millis + SWITCH_COST_CYCLES * 1000;
                        utilized_millis += millis;
                        self.slots[s].blocked_until = until;
                        self.stats.blocked_switches += 1;
                        break;
                    }
                    SlotStep::Finished => {
                        self.slots[s].finished = true;
                        break;
                    }
                }
            }
        }
        // Exiting ESP mode: flush the pipeline and restore (or, without
        // the checkpoint hardware, clear) the RAS.
        if checkpointed {
            let cp = self.bp_checkpoint.as_ref().expect("checkpoint taken above");
            engine.bp_mut().restore_speculative_from(cp);
        } else {
            engine.bp_mut().clear_ras();
        }
        let utilized = (utilized_millis / 1000).min(stall.cycles);
        engine.note_pre_exec_overlap(utilized);
        probe.on_window(&WindowRecord {
            at: stall.start,
            stall_class: match stall.kind {
                StallKind::InstrLlcMiss => CycleClass::IcacheLlc,
                StallKind::DataLlcMiss => CycleClass::DcacheLlc,
            },
            offered_cycles: stall.cycles,
            utilized_cycles: utilized,
            instrs: window_instrs,
            spender: WindowSpender::Esp,
        });
    }

    /// Executes one instruction of slot `s` at time `t`. Packed cursors
    /// take the raw-decode kernel path (no [`Instr`] materialised except
    /// for branches); boxed streams keep the decoded path. Both perform
    /// the same cachelet, bypass, predictor, and list calls in the same
    /// order, so runs through either are byte-identical (asserted by
    /// `packed_equivalence`).
    fn step_slot(&mut self, s: usize, t: Cycle, base_millis: u64, engine: &mut Engine) -> SlotStep {
        match self.slots[s].cursor.as_ref().expect("step_slot on unstarted slot") {
            SlotCursor::Packed(_) => self.step_slot_raw(s, t, base_millis, engine),
            SlotCursor::Dyn(_) => self.step_slot_instr(s, t, base_millis, engine),
        }
    }

    /// The raw-decode twin of [`EspState::step_slot_instr`] for packed
    /// cursors — the window-spending half of the specialised kernels.
    fn step_slot_raw(
        &mut self,
        s: usize,
        t: Cycle,
        base_millis: u64,
        engine: &mut Engine,
    ) -> SlotStep {
        use esp_trace::kindbits::{TAG_COND, TAG_LOAD, TAG_MASK, TAG_STORE};

        let features = self.features;
        let side = self.side_index(s);
        let measure = features.measure_working_sets;
        let record_lists = s < 2 || features.ideal;

        let slot = &mut self.slots[s];
        let Some(SlotCursor::Packed(cursor)) = slot.cursor.as_mut() else {
            unreachable!("step_slot_raw on a non-packed cursor");
        };
        let Some(rs) = cursor.next_raw() else {
            return SlotStep::Finished;
        };
        let icount = cursor.executed() - 1;
        let tag = rs.kind & TAG_MASK;
        let mut millis = base_millis;

        // ---- instruction fetch ------------------------------------------
        let fetch_line = LineAddr::new(rs.pc >> 6);
        if slot.last_fetch_line != Some(fetch_line) {
            slot.last_fetch_line = Some(fetch_line);
            if measure {
                slot.iws.insert(fetch_line.as_u64());
            }
            if features.ilist && record_lists {
                slot.ilist.record(fetch_line, icount);
            }
            if features.naive {
                // Naive ESP fetches straight into L1-I/L2, polluting them.
                let r = engine.mem_mut().access_instr(fetch_line, t);
                millis += r.latency.saturating_sub(2) * 1000;
                if r.llc_miss {
                    return SlotStep::Blocked(t + r.latency, millis);
                }
            } else {
                let result = match side {
                    Some(i) => self.side_i[i].access(fetch_line, t),
                    None => {
                        let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                        self.cachelet_i.access(cs, fetch_line, t)
                    }
                };
                match result {
                    AccessResult::Hit(_) => {}
                    AccessResult::PartialHit(rem) => millis += rem * 1000,
                    AccessResult::Miss => {
                        let (lat, llc) = engine.mem().bypass_latency(fetch_line);
                        let ready = if features.ideal { t } else { t + lat };
                        match side {
                            Some(i) => self.side_i[i].fill(fetch_line, t, ready, false),
                            None => {
                                let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                                self.cachelet_i.fill(cs, fetch_line, t, ready);
                            }
                        }
                        if llc {
                            return SlotStep::Blocked(t + lat, millis);
                        }
                        millis += lat * 1000;
                    }
                }
            }
        }

        // ---- branch ------------------------------------------------------
        if tag >= TAG_COND {
            let instr = rs.to_instr();
            let ctx = if features.naive {
                PredictorContext::Normal
            } else if s == 0 {
                PredictorContext::Esp1
            } else {
                PredictorContext::Esp2
            };
            let outcome = engine.bp_mut().predict_and_update(ctx, &instr);
            millis += engine.bp().penalty_of(outcome) * 1000;
            if features.blist && record_lists {
                self.slots[s].blist.record(&instr, icount);
            }
        }

        // ---- data --------------------------------------------------------
        if tag == TAG_LOAD || tag == TAG_STORE {
            let line = LineAddr::new(rs.op >> 6);
            let is_store = tag == TAG_STORE;
            let slot = &mut self.slots[s];
            if measure {
                slot.dws.insert(line.as_u64());
            }
            if features.dlist && record_lists {
                slot.dlist.record(line, icount);
            }
            let overlapped = |slot: &mut Slot<'_>| {
                let within = slot
                    .last_data_llc_at
                    .is_some_and(|at| icount.saturating_sub(at) < 96);
                slot.last_data_llc_at = Some(icount);
                within
            };
            if features.naive {
                let r = engine.mem_mut().access_data(line, t, is_store);
                if r.llc_miss {
                    let slot = &mut self.slots[s];
                    if !overlapped(slot) {
                        return SlotStep::Blocked(t + r.latency, millis);
                    }
                } else {
                    millis += r.latency.saturating_sub(2) * 1000;
                }
            } else {
                let result = match side {
                    Some(i) => self.side_d[i].access(line, t),
                    None => {
                        let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                        self.cachelet_d.access(cs, line, t)
                    }
                };
                match result {
                    AccessResult::Hit(_) => {}
                    AccessResult::PartialHit(rem) => millis += rem * 1000,
                    AccessResult::Miss => {
                        let (lat, llc) = engine.mem().bypass_latency(line);
                        let ready = if features.ideal { t } else { t + lat };
                        match side {
                            Some(i) => self.side_d[i].fill(line, t, ready, false),
                            None => {
                                let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                                self.cachelet_d.fill(cs, line, t, ready);
                            }
                        }
                        if llc {
                            let slot = &mut self.slots[s];
                            if !overlapped(slot) {
                                return SlotStep::Blocked(t + lat, millis);
                            }
                            // Overlapped miss: the fill proceeds in the
                            // background while the pre-execution keeps
                            // issuing, like any other OoO miss cluster.
                        } else {
                            millis += lat * 1000;
                        }
                    }
                }
            }
        }

        SlotStep::Ran(millis)
    }

    /// The decoded-instruction slot step, kept for boxed (non-packed)
    /// workload streams.
    fn step_slot_instr(
        &mut self,
        s: usize,
        t: Cycle,
        base_millis: u64,
        engine: &mut Engine,
    ) -> SlotStep {
        let features = self.features;
        let side = self.side_index(s);
        let measure = features.measure_working_sets;
        let record_lists = s < 2 || features.ideal;

        let slot = &mut self.slots[s];
        let cursor = slot.cursor.as_mut().expect("step_slot on unstarted slot");
        let Some(instr) = cursor.next_instr() else {
            return SlotStep::Finished;
        };
        let icount = cursor.executed() - 1;
        let mut millis = base_millis;

        // ---- instruction fetch ------------------------------------------
        let fetch_line = instr.pc.line(64);
        if slot.last_fetch_line != Some(fetch_line) {
            slot.last_fetch_line = Some(fetch_line);
            if measure {
                slot.iws.insert(fetch_line.as_u64());
            }
            if features.ilist && record_lists {
                slot.ilist.record(fetch_line, icount);
            }
            if features.naive {
                // Naive ESP fetches straight into L1-I/L2, polluting them.
                let r = engine.mem_mut().access_instr(fetch_line, t);
                millis += r.latency.saturating_sub(2) * 1000;
                if r.llc_miss {
                    return SlotStep::Blocked(t + r.latency, millis);
                }
            } else {
                let result = match side {
                    Some(i) => self.side_i[i].access(fetch_line, t),
                    None => {
                        let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                        self.cachelet_i.access(cs, fetch_line, t)
                    }
                };
                match result {
                    AccessResult::Hit(_) => {}
                    AccessResult::PartialHit(rem) => millis += rem * 1000,
                    AccessResult::Miss => {
                        let (lat, llc) = engine.mem().bypass_latency(fetch_line);
                        let ready = if features.ideal { t } else { t + lat };
                        match side {
                            Some(i) => self.side_i[i].fill(fetch_line, t, ready, false),
                            None => {
                                let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                                self.cachelet_i.fill(cs, fetch_line, t, ready);
                            }
                        }
                        if llc {
                            return SlotStep::Blocked(t + lat, millis);
                        }
                        millis += lat * 1000;
                    }
                }
            }
        }

        // ---- branch ------------------------------------------------------
        if instr.is_branch() {
            let ctx = if features.naive {
                PredictorContext::Normal
            } else if s == 0 {
                PredictorContext::Esp1
            } else {
                PredictorContext::Esp2
            };
            let outcome = engine.bp_mut().predict_and_update(ctx, &instr);
            millis += engine.bp().penalty_of(outcome) * 1000;
            if features.blist && record_lists {
                self.slots[s].blist.record(&instr, icount);
            }
        }

        // ---- data --------------------------------------------------------
        if let InstrKind::Load { addr, .. } | InstrKind::Store { addr } = instr.kind {
            let line = addr.line(64);
            let is_store = matches!(instr.kind, InstrKind::Store { .. });
            let slot = &mut self.slots[s];
            if measure {
                slot.dws.insert(line.as_u64());
            }
            if features.dlist && record_lists {
                slot.dlist.record(line, icount);
            }
            let overlapped = |slot: &mut Slot<'_>| {
                let within = slot
                    .last_data_llc_at
                    .is_some_and(|at| icount.saturating_sub(at) < 96);
                slot.last_data_llc_at = Some(icount);
                within
            };
            if features.naive {
                let r = engine.mem_mut().access_data(line, t, is_store);
                if r.llc_miss {
                    let slot = &mut self.slots[s];
                    if !overlapped(slot) {
                        return SlotStep::Blocked(t + r.latency, millis);
                    }
                } else {
                    millis += r.latency.saturating_sub(2) * 1000;
                }
            } else {
                let result = match side {
                    Some(i) => self.side_d[i].access(line, t),
                    None => {
                        let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                        self.cachelet_d.access(cs, line, t)
                    }
                };
                match result {
                    AccessResult::Hit(_) => {}
                    AccessResult::PartialHit(rem) => millis += rem * 1000,
                    AccessResult::Miss => {
                        let (lat, llc) = engine.mem().bypass_latency(line);
                        let ready = if features.ideal { t } else { t + lat };
                        match side {
                            Some(i) => self.side_d[i].fill(line, t, ready, false),
                            None => {
                                let cs = if s == 0 { CacheletSlot::Esp1 } else { CacheletSlot::Esp2 };
                                self.cachelet_d.fill(cs, line, t, ready);
                            }
                        }
                        if llc {
                            let slot = &mut self.slots[s];
                            if !overlapped(slot) {
                                return SlotStep::Blocked(t + lat, millis);
                            }
                            // Overlapped miss: the fill proceeds in the
                            // background while the pre-execution keeps
                            // issuing, like any other OoO miss cluster.
                        } else {
                            millis += lat * 1000;
                        }
                    }
                }
            }
        }

        SlotStep::Ran(millis)
    }

    /// The event-completion context shift (§4.2): the ESP-2 event becomes
    /// the ESP-1 event (keeping its cachelet way and lists, re-homed into
    /// the larger structures), and the freed context is recycled for the
    /// next queued event. Returns the lists gathered for the *new current
    /// event* (the old ESP-1 occupant) for normal-mode replay, or `None`
    /// if it was never pre-executed or its order prediction failed.
    pub fn on_event_complete(&mut self, next_current_idx: usize) -> Option<ReplayLists> {
        let events = self.workload.events();
        let depth = self.features.depth;

        // Working-set tenure samples for every occupied slot.
        if self.features.measure_working_sets {
            for (i, slot) in self.slots.iter_mut().enumerate() {
                if slot.started() {
                    self.working_sets.by_depth_i[i].push(slot.iws.len());
                    self.working_sets.by_depth_d[i].push(slot.dws.len());
                    slot.iws.clear();
                    slot.dws.clear();
                }
            }
        }

        let promoted = self.slots.remove(0);
        self.slots.push(Slot::empty(caps_for(depth - 1, self.features.ideal)));
        // Re-home the shifted slots' lists into their new tiers.
        for (i, slot) in self.slots.iter_mut().enumerate().take(depth - 1) {
            let caps = caps_for(i, self.features.ideal);
            let ilist = std::mem::replace(&mut slot.ilist, AddrList::new(0)).promoted(caps.i_list);
            let dlist = std::mem::replace(&mut slot.dlist, AddrList::new(0)).promoted(caps.d_list);
            let blist = std::mem::replace(&mut slot.blist, BList::new(0, 0)).promoted(caps.b_dir, caps.b_tgt);
            slot.ilist = ilist;
            slot.dlist = dlist;
            slot.blist = blist;
        }
        if !self.features.naive {
            self.cachelet_i.rotate();
            self.cachelet_d.rotate();
        }
        // Side caches shift with their slots; the freed one is recycled.
        if !self.side_i.is_empty() {
            if self.features.ideal {
                self.side_i.remove(0);
                self.side_d.remove(0);
                self.side_i.push(SetAssocCache::new(Self::side_cache_config(true)));
                self.side_d.push(SetAssocCache::new(Self::side_cache_config(true)));
            } else {
                // Depth-2 promotion into the shared cachelet loses the
                // probe slots' contents (they are measurement-only).
                self.side_i[0].flush();
                self.side_d[0].flush();
            }
        }

        if !promoted.started() || promoted.event_idx != Some(next_current_idx as u64) {
            return None;
        }
        if events[next_current_idx].order_mispredicted {
            self.stats.lists_discarded += 1;
            return None;
        }
        Some(ReplayLists {
            ilist: promoted.ilist.records().to_vec(),
            dlist: promoted.dlist.records().to_vec(),
            blist: promoted.blist.records().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::{EventRecord, Instr, VecEventStream};
    use esp_types::{Addr, EventId, EventKindId};
    use esp_uarch::{EngineConfig, StallKind};

    /// A tiny in-memory workload with fully controllable event streams.
    struct ToyWorkload {
        records: Vec<EventRecord>,
        streams: Vec<Vec<Instr>>,
    }

    impl Workload for ToyWorkload {
        fn events(&self) -> &[EventRecord] {
            &self.records
        }

        fn actual_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
            Box::new(VecEventStream::new(self.streams[id.index() as usize].clone()))
        }

        fn speculative_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
            self.actual_stream(id)
        }
    }

    fn toy(n_events: usize, instrs_per_event: usize) -> ToyWorkload {
        let mut records = Vec::new();
        let mut streams = Vec::new();
        for e in 0..n_events {
            records.push(EventRecord {
                id: EventId::new(e as u64),
                kind: EventKindId::new(0),
                handler_pc: Addr::new(0x40_0000),
                arg_addr: Addr::new(0x8000_0000),
                approx_len: instrs_per_event as u64,
                post_time: Cycle::ZERO,
                order_mispredicted: false,
            });
            let mut v = Vec::new();
            for i in 0..instrs_per_event {
                let pc = Addr::new(0x40_0000 + (e as u64) * 0x1_0000 + i as u64 * 4);
                if i % 5 == 3 {
                    v.push(Instr::load(pc, Addr::new(0x10_0000 + (e * instrs_per_event + i) as u64 * 64), false));
                } else {
                    v.push(Instr::alu(pc));
                }
            }
            streams.push(v);
        }
        ToyWorkload { records, streams }
    }

    fn stall(cycles: u64) -> Stall {
        Stall { kind: StallKind::DataLlcMiss, start: Cycle::new(1000), cycles }
    }

    #[test]
    fn window_pre_executes_first_pending_event() {
        let w = toy(3, 1000);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        // The first window blocks almost immediately on the cold fetch
        // (the fill lands in the cachelet); a later window resumes past
        // it, as §3.2's re-entrant pre-execution describes.
        esp.spend_window(&mut engine, stall(101), 0);
        let mut st = stall(101);
        st.start = Cycle::new(5_000);
        esp.spend_window(&mut engine, st, 0);
        assert_eq!(esp.stats().windows, 2);
        assert!(esp.stats().instrs_by_depth[0] > 0, "ESP-1 should have run");
        assert!(esp.stats().events_started >= 1);
    }

    #[test]
    fn esp_mode_llc_miss_jumps_deeper() {
        let w = toy(3, 1000);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        // ESP-1 hits cold-memory misses and blocks, letting ESP-2 run;
        // with everything cold the very first window blocks both slots,
        // so spend a few windows.
        for k in 0..3 {
            let mut st = stall(400);
            st.start = Cycle::new(1_000 + k * 3_000);
            esp.spend_window(&mut engine, st, 0);
        }
        assert!(esp.stats().blocked_switches > 0);
        assert!(esp.stats().instrs_by_depth[1] > 0, "ESP-2 should have run");
    }

    #[test]
    fn pre_execution_resumes_across_windows() {
        let w = toy(2, 200);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        esp.spend_window(&mut engine, stall(101), 0);
        let after_first = esp.stats().instrs_by_depth[0];
        let mut st = stall(101);
        st.start = Cycle::new(5000); // later window: blocked fills resolved
        esp.spend_window(&mut engine, st, 0);
        assert!(
            esp.stats().instrs_by_depth[0] > after_first,
            "second window must resume the same event"
        );
    }

    #[test]
    fn lists_are_recorded_and_promoted() {
        let w = toy(3, 400);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        for k in 0..6 {
            let mut st = stall(101);
            st.start = Cycle::new(1000 + k * 2000);
            esp.spend_window(&mut engine, st, 0);
        }
        let lists = esp.on_event_complete(1).expect("event 1 was pre-executed");
        assert!(!lists.ilist.is_empty(), "I-list should hold fetched lines");
        assert!(!lists.dlist.is_empty(), "D-list should hold loaded lines");
    }

    #[test]
    fn unstarted_event_yields_no_lists() {
        let w = toy(3, 400);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        assert!(esp.on_event_complete(1).is_none());
    }

    #[test]
    fn order_mispredicted_event_discards_lists() {
        let mut w = toy(3, 400);
        w.records[1].order_mispredicted = true;
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        for k in 0..4 {
            let mut st = stall(101);
            st.start = Cycle::new(1000 + k * 2000);
            esp.spend_window(&mut engine, st, 0);
        }
        assert!(esp.on_event_complete(1).is_none());
        assert_eq!(esp.stats().lists_discarded, 1);
    }

    #[test]
    fn unposted_events_are_not_pre_executed() {
        let mut w = toy(2, 400);
        w.records[1].post_time = Cycle::new(1_000_000_000);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        esp.spend_window(&mut engine, stall(101), 0);
        assert_eq!(esp.stats().spec_instrs(), 0);
        assert!(esp.stats().wasted_window_cycles > 0);
    }

    #[test]
    fn depth_one_never_uses_second_slot() {
        let w = toy(4, 500);
        let mut f = EspFeatures::full();
        f.depth = 1;
        let mut esp = EspState::new(f, &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        for k in 0..4 {
            let mut st = stall(200);
            st.start = Cycle::new(1000 + k * 3000);
            esp.spend_window(&mut engine, st, 0);
        }
        assert_eq!(esp.stats().instrs_by_depth.len(), 1);
    }

    #[test]
    fn naive_mode_pollutes_the_real_hierarchy() {
        let w = toy(2, 300);
        let mut esp = EspState::new(EspFeatures::naive(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        esp.spend_window(&mut engine, stall(300), 0);
        // Event 1's code lines were filled into the *real* L1-I.
        let line = Addr::new(0x41_0000).line(64);
        assert!(engine.mem().l1i().probe(line), "naive ESP must fill L1-I");
    }

    #[test]
    fn non_naive_mode_leaves_hierarchy_clean() {
        let w = toy(2, 300);
        let mut esp = EspState::new(EspFeatures::full(), &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        esp.spend_window(&mut engine, stall(300), 0);
        let line = Addr::new(0x41_0000).line(64);
        assert!(!engine.mem().l1i().probe(line), "cachelets must isolate fills");
    }

    #[test]
    fn working_sets_are_sampled_on_completion() {
        let w = toy(3, 300);
        let mut f = EspFeatures::full();
        f.measure_working_sets = true;
        f.depth = 4;
        let mut esp = EspState::new(f, &w);
        let mut engine = Engine::new(EngineConfig::baseline());
        for k in 0..4 {
            let mut st = stall(150);
            st.start = Cycle::new(1000 + k * 2500);
            esp.spend_window(&mut engine, st, 0);
        }
        esp.record_normal_working_set(120, 60);
        let _ = esp.on_event_complete(1);
        let ws = esp.take_working_sets();
        assert_eq!(ws.normal_i, vec![120]);
        assert!(!ws.by_depth_i[0].is_empty(), "ESP-1 tenure must be sampled");
        assert!(ws.by_depth_i[0][0] > 0);
    }
}
