//! The top-level simulation driver.

use crate::config::{SimConfig, SimMode};
use crate::esp_state::EspState;
use crate::lineset::LineSet;
use crate::replay::{ReplayLists, ReplayState};
use crate::report::RunReport;
use esp_branch::{BpOp, PredictorContext};
use esp_energy::{ActivityCounts, EnergyModel};
use esp_mem::{HierarchySnapshot, MemOp};
use esp_obs::{CycleClass, EventSpan, NullProbe, Probe, RunSummary, WindowRecord, WindowSpender};
use esp_stats::BranchStats;
use esp_trace::kindbits::{TAG_COND, TAG_LOAD, TAG_MASK, TAG_STORE};
use esp_trace::{EventCursor, EventStream, ForkStream, Instr, Workload, INSTR_BYTES};
use esp_types::Addr;
use esp_uarch::{Engine, KernelParams, KindTable, StallKind};

/// Code region of the synthetic looper (event-queue management): a small
/// hot loop executed between events.
const LOOPER_PC_BASE: u64 = 0x0040_0000;
/// Data region of the looper's queue structures.
const LOOPER_QUEUE_BASE: u64 = 0x0060_0000;

/// Every externally observable side effect a run applied to its memory
/// hierarchy and branch predictor, captured at the component boundary.
///
/// Produced by [`Simulator::run_logged`]. The `esp-check` oracle replays
/// `mem_ops` and `bp_ops` against fresh components of the same
/// configuration and asserts each recorded outcome and the final
/// [`HierarchySnapshot`] / per-context [`BranchStats`] reproduce exactly
/// — a differential check that the interval engine drives its
/// components only through their public entry points and that those
/// components are deterministic functions of their call sequence.
#[derive(Clone, Debug)]
pub struct SideEffectLog {
    /// Every memory-hierarchy mutation, in program order.
    pub mem_ops: Vec<MemOp>,
    /// Per-level counters at end of run.
    pub mem_snapshot: HierarchySnapshot,
    /// Every branch-predictor mutation, in program order.
    pub bp_ops: Vec<BpOp>,
    /// Per-context prediction statistics at end of run.
    pub bp_stats: [(PredictorContext, BranchStats); 3],
}

/// The complete mutable state of one in-progress simulation: the interval
/// engine plus the mode-specific speculation state that travels with it
/// between events.
///
/// The serial driver owns exactly one of these for a whole run; the
/// intra-run parallel mode (see `intra`) gives each chunk worker its own
/// and moves the authoritative one forward chunk by chunk. Keeping the
/// quadruple together is what lets [`Simulator::run_events_range`] resume
/// a run mid-sequence: everything event `k+1` can observe from event `k`
/// is in here (or in the memory hierarchy and branch predictor inside
/// `engine`).
pub(crate) struct LiveState<'w> {
    /// The interval core: clock, caches, predictor, prefetchers, stack.
    pub engine: Engine,
    /// ESP contexts and list state (ESP modes only).
    pub esp: Option<EspState<'w>>,
    /// The normal-mode list replay cursor.
    pub replay: ReplayState,
    /// Lists promoted at the last event completion, to arm on the next.
    pub pending_lists: Option<ReplayLists>,
}

/// The ESP simulator: one machine configuration, runnable over any
/// [`Workload`].
///
/// # Examples
///
/// ```
/// use esp_core::{SimConfig, Simulator};
/// use esp_workload::BenchmarkProfile;
///
/// let w = BenchmarkProfile::pixlr().scaled(30_000).build(1);
/// let report = Simulator::new(SimConfig::base()).run(&w);
/// assert!(report.engine.retired > 30_000);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("invalid simulation configuration");
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The `i`-th instruction of the looper prologue executed before
    /// event `idx`: queue-management loads over a hot structure plus ALU
    /// work, all in one small code region (§3.6 observes ~70 such
    /// instructions). Generated in place — no per-event buffer.
    #[inline]
    pub(crate) fn looper_instr(idx: usize, i: u64) -> Instr {
        let pc = Addr::new(LOOPER_PC_BASE + (i % 32) * 4);
        if i % 4 == 1 {
            Instr::load(pc, Addr::new(LOOPER_QUEUE_BASE + ((idx as u64 + i) % 16) * 64), false)
        } else {
            Instr::alu(pc)
        }
    }

    /// Runs the workload to completion and reports.
    pub fn run(&self, workload: &dyn Workload) -> RunReport {
        self.run_probed(workload, &mut NullProbe)
    }

    /// [`Simulator::run`] with an observability probe (see `esp-obs`).
    ///
    /// The probe sees every stall charge, every spent pre-execution
    /// window, one [`EventSpan`] per event (whose stack tiles the run:
    /// span stacks sum to the total CPI stack), and a final
    /// [`RunSummary`]. Statically dispatched: `run` is this method
    /// monomorphized over the no-op probe, at identical speed.
    pub fn run_probed<P: Probe>(&self, workload: &dyn Workload, probe: &mut P) -> RunReport {
        self.run_inner(workload, probe, false).0
    }

    /// [`Simulator::run_probed`] with component side-effect recording: on
    /// top of the report, returns the [`SideEffectLog`] of every memory
    /// and branch-predictor mutation the run performed, for differential
    /// replay by `esp-check`.
    pub fn run_logged<P: Probe>(
        &self,
        workload: &dyn Workload,
        probe: &mut P,
    ) -> (RunReport, SideEffectLog) {
        let (report, log) = self.run_inner(workload, probe, true);
        (report, log.expect("recording was requested"))
    }

    /// Builds the initial [`LiveState`] of a run over `workload`: a fresh
    /// engine plus the mode's speculation state, leads configured.
    pub(crate) fn new_live<'w>(&self, workload: &'w dyn Workload) -> LiveState<'w> {
        let engine = Engine::new(self.config.engine.clone());
        let esp: Option<EspState<'w>> = match &self.config.mode {
            SimMode::Esp(f) => Some(EspState::new(*f, workload)),
            _ => None,
        };
        let mut replay = ReplayState::default();
        if let Some(f) = self.config.esp_features() {
            replay.set_leads(f.prefetch_lead_instrs, f.bp_train_lead_branches);
        }
        LiveState { engine, esp, replay, pending_lists: None }
    }

    fn run_inner<P: Probe>(
        &self,
        workload: &dyn Workload,
        probe: &mut P,
        record: bool,
    ) -> (RunReport, Option<SideEffectLog>) {
        let mut live = self.new_live(workload);
        if record {
            live.engine.mem_mut().set_recording(true);
            live.engine.bp_mut().set_recording(true);
        }
        let events = workload.events();
        // Reused across events: cleared in O(1), allocation kept.
        let mut iws = LineSet::new();
        let mut dws = LineSet::new();
        self.run_events_range(workload, &mut live, 0..events.len(), probe, &mut iws, &mut dws);
        let LiveState { mut engine, esp, replay, .. } = live;

        let mem_snap = engine.mem().snapshot();
        let (esp_branches, esp_mispredicts) = {
            let b1 = engine.bp().stats(PredictorContext::Esp1);
            let b2 = engine.bp().stats(PredictorContext::Esp2);
            (b1.total() + b2.total(), b1.mispredicted + b2.mispredicted)
        };
        let log = record.then(|| SideEffectLog {
            mem_ops: engine.mem_mut().take_ops(),
            mem_snapshot: mem_snap,
            bp_ops: engine.bp_mut().take_ops(),
            bp_stats: engine.bp().stats_all(),
        });
        let report = self.assemble_report(engine, esp, replay, events.len() as u64);
        probe.on_run(&RunSummary {
            total_cycles: report.total_cycles,
            events: report.events_run,
            retired: report.engine.retired,
            stack: report.cpi_stack,
            l1i: mem_snap.l1i,
            l1d: mem_snap.l1d,
            l2: mem_snap.l2,
            branches: report.engine.branches,
            mispredicts: report.engine.mispredicts,
            esp_branches,
            esp_mispredicts,
        });
        (report, log)
    }

    /// Runs events `range` (indices into `workload.events()`) on `live`,
    /// the per-event loop of [`Simulator::run`] factored so a run can be
    /// executed in resumable slices: calling this over `[0, n)` is
    /// byte-identical to calling it over any partition of `[0, n)` in
    /// order on the same `live` state. The chunk-parallel mode leans on
    /// exactly that property for its repair path, and on workers it calls
    /// this with a chunk's range over a warm-predicted state.
    ///
    /// Emits window and event records to `probe` (no `on_run`; drivers
    /// summarise once at end of run).
    pub(crate) fn run_events_range<'w, P: Probe>(
        &self,
        workload: &'w dyn Workload,
        live: &mut LiveState<'w>,
        range: std::ops::Range<usize>,
        probe: &mut P,
        iws: &mut LineSet,
        dws: &mut LineSet,
    ) {
        let measure = self
            .config
            .esp_features()
            .is_some_and(|f| f.measure_working_sets);
        let ideal = self.config.esp_features().is_some_and(|f| f.ideal);
        let events = workload.events();
        let line_bytes = self.config.engine.machine.hierarchy.l1i.line_bytes;
        // Lower the configuration once: the packed event loop runs the
        // fused kernel through this flat parameter block + kind table.
        let kernel_params = live.engine.lower_kernel();
        let kind_table = KindTable::<P>::new(&kernel_params);
        let n_looper = self.config.looper_instrs as u64;
        let LiveState { engine, esp, replay, pending_lists } = live;

        for idx in range {
            let record = &events[idx];
            let span_start = engine.now();
            let stack_before = *engine.cpi_stack();
            let retired_before = engine.stats().retired;
            let mut span_windows = 0u64;

            // The looper cannot dequeue an event before it is posted.
            engine.idle_until(record.post_time);

            // Arm replay with whatever the event's pre-execution gathered
            // and use the looper prologue as the prefetch head start.
            replay.arm(pending_lists.take(), ideal, engine);
            for i in 0..n_looper {
                replay.tick(engine, 0, 0);
                engine.step_probed(&Self::looper_instr(idx, i), probe);
            }

            // Dispatch once per event, not once per instruction: packed
            // workloads run the *fused kernel* loop over a concrete arena
            // cursor (raw kind bytes through the lowered dispatch table),
            // everything else the generic decoded loop over its boxed
            // stream. Both instantiations perform the same engine-call
            // sequence, so the outputs are bit-identical.
            span_windows += match workload.as_packed() {
                Some(packed) => {
                    let mut stream =
                        packed.arena().event(record.id.index() as usize).actual_cursor();
                    self.run_event_kernel(
                        &mut stream,
                        idx,
                        engine,
                        esp,
                        replay,
                        probe,
                        measure,
                        &kernel_params,
                        &kind_table,
                        iws,
                        dws,
                    )
                }
                None => {
                    let mut stream = workload.actual_stream(record.id);
                    self.run_event(
                        &mut stream,
                        idx,
                        engine,
                        esp,
                        replay,
                        probe,
                        measure,
                        line_bytes,
                        iws,
                        dws,
                    )
                }
            };

            if let Some(esp) = esp.as_mut() {
                if measure {
                    esp.record_normal_working_set(iws.len(), dws.len());
                }
                *pending_lists = esp.on_event_complete(idx + 1);
                engine.bp_mut().promote_event();
            }

            probe.on_event(&EventSpan {
                idx: idx as u64,
                start: span_start,
                end: engine.now(),
                retired: engine.stats().retired - retired_before,
                windows: span_windows,
                stack: engine.cpi_stack().since(&stack_before),
            });
        }
    }

    /// The per-instruction loop of one event, monomorphised over the
    /// stream type `S`. For packed workloads `S` is the concrete arena
    /// cursor, so `next_instr`/`executed` inline into the loop instead of
    /// going through per-instruction virtual dispatch; generative
    /// workloads instantiate it with their boxed stream. Returns the
    /// number of pre-execution windows the event opened.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_event<P: Probe, S: ForkStream>(
        &self,
        stream: &mut S,
        idx: usize,
        engine: &mut Engine,
        esp: &mut Option<EspState<'_>>,
        replay: &mut ReplayState,
        probe: &mut P,
        measure: bool,
        line_bytes: u64,
        iws: &mut LineSet,
        dws: &mut LineSet,
    ) -> u64 {
        let mut span_windows = 0u64;
        let mut branches = 0u64;
        iws.clear();
        dws.clear();
        loop {
            replay.tick(engine, stream.executed(), branches);
            let Some(instr) = stream.next_instr() else {
                break;
            };
            if measure {
                iws.insert(instr.pc.line(line_bytes).as_u64());
                if let Some(a) = instr.mem_addr() {
                    dws.insert(a.line(line_bytes).as_u64());
                }
            }
            let out = engine.step_probed(&instr, probe);
            if instr.is_branch() {
                branches += 1;
            }
            if let Some(stall) = out.stall {
                self.spend_stall(stall, stream, idx, engine, esp, probe, &mut span_windows);
            }
        }
        span_windows
    }

    /// The fused-kernel twin of [`Simulator::run_event`], run for packed
    /// workloads: decode→predict→access→charge in one pass over the raw
    /// arena (no per-instruction [`Instr`] except for branches), with
    /// runs of plain same-line ALU instructions batch-charged. Performs
    /// the same engine-call sequence as the generic loop, so reports stay
    /// byte-identical (asserted by `packed_equivalence`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_event_kernel<P: Probe>(
        &self,
        stream: &mut EventCursor<'_>,
        idx: usize,
        engine: &mut Engine,
        esp: &mut Option<EspState<'_>>,
        replay: &mut ReplayState,
        probe: &mut P,
        measure: bool,
        kp: &KernelParams,
        tbl: &KindTable<P>,
        iws: &mut LineSet,
        dws: &mut LineSet,
    ) -> u64 {
        let mut span_windows = 0u64;
        let mut branches = 0u64;
        iws.clear();
        dws.clear();
        loop {
            replay.tick(engine, stream.executed(), branches);
            // Grain batching: a run of plain ALU instructions on the
            // already-fetched line performs no fetch, branch, data, or
            // replay work — charge its base cycles in one accumulation.
            // (Replay must be drained: tick_slow's prefetch timing
            // depends on the per-instruction clock.)
            if replay.drained() {
                let pc = stream.raw_pc();
                let line = pc >> kp.line_shift;
                if engine.on_fetch_line(line) {
                    let line_end = (line + 1) << kp.line_shift;
                    let max = ((line_end - pc) / INSTR_BYTES) as usize;
                    let n = stream.plain_run(max);
                    if n > 0 {
                        if measure {
                            // Same line for the whole run; the set insert
                            // is idempotent, as per-instruction inserts
                            // would be.
                            iws.insert(line);
                        }
                        stream.skip_plain(n);
                        engine.charge_plain_alus(n as u64, probe);
                        continue;
                    }
                }
            }
            let Some(rs) = stream.next_raw() else {
                break;
            };
            let tag = rs.kind & TAG_MASK;
            if measure {
                iws.insert(rs.pc >> kp.line_shift);
                if tag == TAG_LOAD || tag == TAG_STORE {
                    dws.insert(rs.op >> kp.line_shift);
                }
            }
            let out = engine.step_raw(kp, tbl, rs.kind, rs.pc, rs.op, probe);
            branches += u64::from(tag >= TAG_COND);
            if let Some(stall) = out.stall {
                self.spend_stall(stall, stream, idx, engine, esp, probe, &mut span_windows);
            }
        }
        span_windows
    }

    /// Spends one exposed LLC-miss stall window according to the mode —
    /// shared by the generic and kernel event loops, exact and sampled.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn spend_stall<P: Probe, S: ForkStream>(
        &self,
        stall: esp_uarch::Stall,
        stream: &S,
        idx: usize,
        engine: &mut Engine,
        esp: &mut Option<EspState<'_>>,
        probe: &mut P,
        span_windows: &mut u64,
    ) {
        match &self.config.mode {
            SimMode::Baseline => {}
            SimMode::Runahead { data_only } => {
                if stall.kind == StallKind::DataLlcMiss {
                    *span_windows += 1;
                    let ra = engine.run_runahead_cursor(
                        stream.fork_stream(),
                        stall.start,
                        stall.cycles,
                        *data_only,
                    );
                    probe.on_window(&WindowRecord {
                        at: stall.start,
                        stall_class: CycleClass::DcacheLlc,
                        offered_cycles: stall.cycles,
                        utilized_cycles: ra.utilized_cycles,
                        instrs: ra.instrs,
                        spender: WindowSpender::Runahead,
                    });
                }
            }
            SimMode::Esp(_) => {
                let esp = esp.as_mut().expect("ESP mode without ESP state");
                *span_windows += 1;
                esp.spend_window_probed(engine, stall, idx, probe);
            }
        }
    }

    fn assemble_report(
        &self,
        engine: Engine,
        esp: Option<EspState<'_>>,
        replay: ReplayState,
        events_run: u64,
    ) -> RunReport {
        let mut report = RunReport {
            total_cycles: engine.now().as_u64(),
            breakdown: engine.breakdown(),
            cpi_stack: *engine.cpi_stack(),
            engine: *engine.stats(),
            events_run,
            replay: replay.stats(),
            ..RunReport::default()
        };
        if let Some(mut esp) = esp {
            let measure = self
                .config
                .esp_features()
                .is_some_and(|f| f.measure_working_sets);
            if measure {
                report.working_sets = Some(esp.take_working_sets());
            }
            report.esp = esp.stats().clone();
        }
        let spec = report.esp.spec_instrs() + report.engine.runahead_instrs;
        report.activity = ActivityCounts {
            cycles: report.busy_cycles(),
            normal_instrs: report.engine.retired,
            spec_instrs: spec,
            mispredicts: report.engine.mispredicts,
        };
        report.energy = EnergyModel::mcpat_32nm().report(&report.activity);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use esp_uarch::PerfectFlags;
    use esp_workload::BenchmarkProfile;

    fn workload() -> esp_workload::GeneratedWorkload {
        BenchmarkProfile::amazon().scaled(120_000).build(42)
    }

    #[test]
    fn baseline_run_completes_and_counts() {
        let w = workload();
        let r = Simulator::new(SimConfig::base()).run(&w);
        assert_eq!(r.events_run, w.events().len() as u64);
        // Retired = workload instructions + looper prologues.
        let expected = w.schedule().total_instructions() + 70 * r.events_run;
        assert_eq!(r.engine.retired, expected);
        assert!(r.total_cycles > 0);
        assert!(r.ipc() > 0.1 && r.ipc() < 4.0, "ipc={}", r.ipc());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = workload();
        let a = Simulator::new(SimConfig::esp_nl()).run(&w);
        let b = Simulator::new(SimConfig::esp_nl()).run(&w);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.esp, b.esp);
    }

    #[test]
    fn perfect_all_is_fastest() {
        let w = workload();
        let base = Simulator::new(SimConfig::base()).run(&w);
        let perfect = Simulator::new(SimConfig::perfect(PerfectFlags::all())).run(&w);
        let esp = Simulator::new(SimConfig::esp_nl()).run(&w);
        assert!(perfect.busy_cycles() < base.busy_cycles());
        assert!(perfect.busy_cycles() < esp.busy_cycles());
    }

    #[test]
    fn next_line_beats_base() {
        let w = workload();
        let base = Simulator::new(SimConfig::base()).run(&w);
        let nl = Simulator::new(SimConfig::next_line()).run(&w);
        assert!(
            nl.busy_cycles() < base.busy_cycles(),
            "NL {} !< base {}",
            nl.busy_cycles(),
            base.busy_cycles()
        );
    }

    #[test]
    fn esp_beats_next_line() {
        let w = workload();
        let nl = Simulator::new(SimConfig::next_line()).run(&w);
        let esp = Simulator::new(SimConfig::esp_nl()).run(&w);
        assert!(
            esp.busy_cycles() < nl.busy_cycles(),
            "ESP+NL {} !< NL {}",
            esp.busy_cycles(),
            nl.busy_cycles()
        );
        assert!(esp.esp.spec_instrs() > 0, "ESP must actually pre-execute");
        assert!(esp.l1i_mpki() < nl.l1i_mpki(), "ESP must cut I-MPKI");
    }

    #[test]
    fn runahead_helps_data_but_less_than_esp() {
        let w = workload();
        let base = Simulator::new(SimConfig::base()).run(&w);
        let ra = Simulator::new(SimConfig::runahead()).run(&w);
        assert!(ra.busy_cycles() < base.busy_cycles());
        assert!(ra.engine.runahead_instrs > 0);
        assert!(ra.l1d_miss_rate_pct() < base.l1d_miss_rate_pct());
    }

    #[test]
    fn blist_improves_branch_prediction() {
        let w = workload();
        let without = Simulator::new(SimConfig::esp_bp_separate_context()).run(&w);
        let with = Simulator::new(SimConfig::esp_nl()).run(&w);
        assert!(
            with.mispredict_rate_pct() < without.mispredict_rate_pct(),
            "B-list {} !< no-B-list {}",
            with.mispredict_rate_pct(),
            without.mispredict_rate_pct()
        );
    }

    #[test]
    fn working_sets_are_collected_in_probe_mode() {
        let w = BenchmarkProfile::pixlr().scaled(60_000).build(3);
        let r = Simulator::new(SimConfig::esp_depth_probe()).run(&w);
        let ws = r.working_sets.expect("probe mode must collect samples");
        assert!(!ws.normal_i.is_empty());
        assert!(!ws.by_depth_i[0].is_empty());
        // ESP-1 working sets are an order of magnitude below normal ones.
        let max_normal = *ws.normal_i.iter().max().unwrap();
        let max_esp1 = ws.by_depth_i[0].iter().max().copied().unwrap_or(0);
        assert!(max_esp1 <= max_normal, "esp1 {max_esp1} > normal {max_normal}");
    }
}
