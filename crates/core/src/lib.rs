//! The Event Sneak Peek (ESP) architecture — the primary contribution of
//! the ISCA 2015 paper, plus the simulator facade that drives it.
//!
//! ESP exploits a structural property of asynchronous programs: events
//! wait in a queue before they execute. By exposing that queue to the
//! processor, a core that would otherwise idle on a last-level-cache miss
//! can *jump ahead* and speculatively pre-execute the next one or two
//! queued events, recording what they touch. When those events later run
//! for real, the recordings drive timely instruction/data prefetches and
//! just-in-time branch-predictor training.
//!
//! This crate implements the whole mechanism:
//!
//! * the hardware event queue view and ESP-1/ESP-2 execution contexts
//!   with re-entrant pre-execution,
//! * the way-partitioned cachelets (from `esp-mem`) and prediction lists
//!   (from `esp-lists`) wired into the window-spending state machine,
//! * the normal-mode replay path (190-instruction prefetch lead,
//!   30-branch predictor training lead, looper-prologue head start),
//! * the event-completion context shift, including list promotion,
//!   cachelet way rotation, and the order-misprediction discard,
//! * the design-space variants of Figs. 10–12 ([`EspFeatures`],
//!   [`SimConfig`]) — naive ESP, list subsets, branch-context policies,
//!   ideal ESP — and the Fig. 13 depth probe with working-set tracking,
//! * the Fig. 8 hardware area inventory ([`area_table`]).
//!
//! # Examples
//!
//! ```
//! use esp_core::{SimConfig, Simulator};
//! use esp_workload::BenchmarkProfile;
//!
//! let w = BenchmarkProfile::amazon().scaled(60_000).build(7);
//! let nl = Simulator::new(SimConfig::next_line()).run(&w);
//! let esp = Simulator::new(SimConfig::esp_nl()).run(&w);
//! assert!(esp.busy_cycles() <= nl.busy_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod config;
mod esp_state;
mod intra;
mod lineset;
mod replay;
mod report;
mod sampling;
mod simulator;
mod working_set;

pub use area::{area_table, total_added_bytes, AreaRow};
pub use config::{EspFeatures, SimConfig, SimMode};
pub use esp_state::EspRunStats;
pub use intra::{IntraRun, IntraStats};
pub use lineset::LineSet;
pub use replay::{ReplayLists, ReplayStats};
pub use report::RunReport;
pub use esp_learn::{LearnParams, LearnedStats, ModelKind};
pub use sampling::{SampleParams, SampledRun, SamplingEstimate};
pub use simulator::{SideEffectLog, Simulator};
pub use working_set::{percentile, WorkingSetReport};
