//! A reusable open-addressing set of cache-line addresses.
//!
//! The simulator's working-set measurement inserts every fetched/accessed
//! line into a per-event set. `std::collections::HashSet<u64>` pays the
//! SipHash keyed hash on every probe and reallocates from scratch when a
//! fresh set is built per event; this set replaces it on the hot path
//! with Fibonacci-hashed linear probing and O(1) epoch-based clearing, so
//! one allocation is reused across all events of a run.

use esp_types::LineAddr;

/// Initial slot count (power of two).
const INITIAL_CAPACITY: usize = 64;
/// Grow when `len * 8 >= capacity * 7` would be exceeded — i.e. keep the
/// load factor below 7/8.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// A set of `u64` line addresses with epoch-based O(1) [`LineSet::clear`].
///
/// # Examples
///
/// ```
/// use esp_core::LineSet;
///
/// let mut s = LineSet::new();
/// assert!(s.insert(42));
/// assert!(!s.insert(42));
/// assert_eq!(s.len(), 1);
/// s.clear();
/// assert_eq!(s.len(), 0);
/// assert!(s.insert(42));
/// ```
#[derive(Clone, Debug)]
pub struct LineSet {
    /// `(key, epoch)` slots; a slot holds a live entry iff its epoch
    /// matches the set's current epoch.
    slots: Vec<(u64, u64)>,
    epoch: u64,
    len: usize,
}

impl Default for LineSet {
    fn default() -> Self {
        Self::new()
    }
}

impl LineSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LineSet { slots: vec![(0, 0); INITIAL_CAPACITY], epoch: 1, len: 0 }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the set in O(1) by advancing the epoch; the allocation is
    /// kept for reuse.
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.len = 0;
    }

    #[inline]
    fn slot_of(key: u64, mask: usize) -> usize {
        // Fibonacci hashing: multiply by 2^64 / phi and keep the high
        // bits that the mask selects.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & mask
    }

    /// Inserts `key`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        if (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::slot_of(key, mask);
        loop {
            let (k, e) = self.slots[i];
            if e != self.epoch {
                self.slots[i] = (key, self.epoch);
                self.len += 1;
                return true;
            }
            if k == key {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a line address (convenience over [`LineSet::insert`]).
    #[inline]
    pub fn insert_line(&mut self, line: LineAddr) -> bool {
        self.insert(line.as_u64())
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = Self::slot_of(key, mask);
        loop {
            let (k, e) = self.slots[i];
            if e != self.epoch {
                return false;
            }
            if k == key {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let live: Vec<u64> = self
            .slots
            .iter()
            .filter(|&&(_, e)| e == self.epoch)
            .map(|&(k, _)| k)
            .collect();
        let new_cap = self.slots.len() * 2;
        self.slots = vec![(0, 0); new_cap];
        self.epoch = 1;
        self.len = 0;
        for k in live {
            self.insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::{Rng, Xoshiro256pp};
    use std::collections::HashSet;

    #[test]
    fn insert_contains_and_dedup() {
        let mut s = LineSet::new();
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(u64::MAX));
        assert!(!s.insert(u64::MAX));
        assert!(s.contains(0));
        assert!(s.contains(u64::MAX));
        assert!(!s.contains(17));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_is_reusable() {
        let mut s = LineSet::new();
        for k in 0..100 {
            s.insert(k);
        }
        assert_eq!(s.len(), 100);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(5));
        for k in 50..60 {
            assert!(s.insert(k), "{k} must be fresh after clear");
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn matches_std_hashset_on_random_streams() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for round in 0..20 {
            let mut ours = LineSet::new();
            let mut reference = HashSet::new();
            for _ in 0..2_000 {
                let k = rng.below(500 + round * 100);
                assert_eq!(ours.insert(k), reference.insert(k), "key {k}");
            }
            assert_eq!(ours.len(), reference.len());
            for k in 0..(500 + round * 100) {
                assert_eq!(ours.contains(k), reference.contains(&k), "key {k}");
            }
        }
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = LineSet::new();
        for k in 0..10_000u64 {
            assert!(s.insert(k * 64));
        }
        assert_eq!(s.len(), 10_000);
        for k in 0..10_000u64 {
            assert!(s.contains(k * 64));
        }
    }

    /// Brute-forces keys that all hash to the table's *last* slot so the
    /// linear probe chain must wrap around to slot 0 — the index
    /// arithmetic edge the masked increment exists for.
    #[test]
    fn probe_chains_wrap_around_the_table_end() {
        let mask = INITIAL_CAPACITY - 1;
        let colliders: Vec<u64> =
            (0..).filter(|&k| LineSet::slot_of(k, mask) == mask).take(5).collect();
        assert_eq!(colliders.len(), 5);

        let mut s = LineSet::new();
        for &k in &colliders {
            assert!(s.insert(k));
        }
        for &k in &colliders {
            assert!(s.contains(k), "key {k} lost across the wraparound");
            assert!(!s.insert(k), "key {k} duplicated across the wraparound");
        }
        // A sixth last-slot collider that was never inserted must probe
        // through the whole wrapped chain and still come back absent.
        let absent = (0..)
            .find(|&k| LineSet::slot_of(k, mask) == mask && !colliders.contains(&k))
            .unwrap();
        assert!(!s.contains(absent));
        assert_eq!(s.len(), colliders.len());
    }

    /// The load-factor ceiling for the initial 64-slot table is 56 live
    /// entries. Right at the ceiling every lookup must still terminate
    /// (the epoch check needs at least one non-live slot), and the next
    /// insert grows without losing anything.
    #[test]
    fn stays_correct_at_the_load_factor_ceiling() {
        let ceiling = INITIAL_CAPACITY * LOAD_NUM / LOAD_DEN; // 56
        let mut s = LineSet::new();
        for k in 0..ceiling as u64 {
            assert!(s.insert(k.wrapping_mul(0x51f3_c2e1) ^ 0xABCD));
        }
        assert_eq!(s.len(), ceiling);
        for k in 0..ceiling as u64 {
            assert!(s.contains(k.wrapping_mul(0x51f3_c2e1) ^ 0xABCD));
        }
        assert!(!s.contains(0xDEAD_BEEF_DEAD_BEEF));
        // One more entry crosses the ceiling: the table doubles and the
        // full contents survive the rehash.
        assert!(s.insert(0x1234_5678_9ABC));
        assert_eq!(s.len(), ceiling + 1);
        for k in 0..ceiling as u64 {
            assert!(s.contains(k.wrapping_mul(0x51f3_c2e1) ^ 0xABCD));
        }
    }

    /// `grow` rebuilds the table and resets the epoch to 1. Entries that
    /// were epoch-cleared *before* the grow must not resurrect when their
    /// old stamped epochs coincide with the reset counter.
    #[test]
    fn cleared_entries_do_not_resurrect_across_grow() {
        let mut s = LineSet::new();
        let dead: Vec<u64> = (0..50).map(|k| k * 3 + 1_000_000).collect();
        for &k in &dead {
            s.insert(k);
        }
        s.clear();
        // Force several grows purely with post-clear keys.
        let live: Vec<u64> = (0..500).map(|k| k * 7 + 9).collect();
        for &k in &live {
            assert!(s.insert(k), "live key {k} rejected");
        }
        assert_eq!(s.len(), live.len());
        for &k in &live {
            assert!(s.contains(k));
        }
        for &k in &dead {
            assert!(!s.contains(k), "cleared key {k} resurrected across grow");
        }
    }

    /// Hundreds of epoch advances interleaved with inserts: every clear
    /// must present a genuinely empty set, and re-inserting the same keys
    /// must report them as fresh every round.
    #[test]
    fn repeated_clear_reinsert_rounds_stay_fresh() {
        let mut s = LineSet::new();
        for round in 0..300u64 {
            assert!(s.is_empty(), "round {round} started non-empty");
            for k in 0..40 {
                assert!(s.insert(k), "round {round}: key {k} stale");
            }
            assert_eq!(s.len(), 40);
            assert!(!s.contains(40));
            s.clear();
            assert!(!s.contains(0), "round {round}: clear left key 0 visible");
        }
    }
}
