//! Working-set measurement for the Fig. 13 cachelet-sizing study.

/// Per-mode working-set samples: for every (event, mode) tenure, the
/// number of distinct cache blocks touched while the event executed in
/// that mode. "Mode 0" in `by_depth` is ESP-1, etc.; `normal` holds the
/// per-event normal-mode working sets for the "Normal" reference bar.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkingSetReport {
    /// Distinct instruction lines per event in normal execution.
    pub normal_i: Vec<usize>,
    /// Distinct data lines per event in normal execution.
    pub normal_d: Vec<usize>,
    /// Instruction-side samples per ESP depth (index 0 = ESP-1).
    pub by_depth_i: Vec<Vec<usize>>,
    /// Data-side samples per ESP depth.
    pub by_depth_d: Vec<Vec<usize>>,
}

impl WorkingSetReport {
    /// Creates an empty report for `depth` ESP modes.
    pub fn new(depth: usize) -> Self {
        WorkingSetReport {
            normal_i: Vec::new(),
            normal_d: Vec::new(),
            by_depth_i: vec![Vec::new(); depth],
            by_depth_d: vec![Vec::new(); depth],
        }
    }
}

/// The `pct`-th percentile of `samples` (0 for an empty set). `pct` is in
/// `[0, 100]`; 100 returns the maximum.
///
/// # Examples
///
/// ```
/// let v = vec![1, 2, 3, 4, 100];
/// assert_eq!(esp_core::percentile(&v, 100.0), 100);
/// assert_eq!(esp_core::percentile(&v, 75.0), 4);
/// assert_eq!(esp_core::percentile(&v, 0.0), 1);
/// ```
pub fn percentile(samples: &[usize], pct: f64) -> usize {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = (pct / 100.0 * (v.len() - 1) as f64).round() as usize;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        assert_eq!(percentile(&[], 95.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<usize> = (1..=100).collect();
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        let p95 = percentile(&v, 95.0);
        assert!((94..=96).contains(&p95), "p95={p95}");
    }

    #[test]
    fn report_shape() {
        let r = WorkingSetReport::new(8);
        assert_eq!(r.by_depth_i.len(), 8);
        assert_eq!(r.by_depth_d.len(), 8);
        assert!(r.normal_i.is_empty());
    }
}
