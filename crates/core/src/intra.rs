//! Intra-run event-level parallelism: optimistic chunk simulation with a
//! deterministic input-order merge.
//!
//! A single simulation is a serial fold over its event sequence — event
//! `k+1` starts from the micro-architectural state event `k` left behind.
//! This module parallelises that fold anyway, without giving up
//! byte-identical output, by exploiting the same property the paper
//! measures for ESP itself: consecutive events of an asynchronous program
//! are overwhelmingly independent (§5 reports > 99 % of pre-executed
//! events match their real execution).
//!
//! The scheme, end to end:
//!
//! 1. **Partition** — the event sequence is split into contiguous chunks
//!    of roughly equal instruction weight ([`esp_par::partition_weighted`]),
//!    one per worker thread.
//! 2. **Warm** — each worker (except chunk 0, which simply starts from
//!    reset) *predicts* its chunk's entry state by functionally warming
//!    over every earlier event: the same stat-free cache/predictor/
//!    prefetcher updates the sampling mode uses for fast-forwarding,
//!    followed by [`esp_uarch::Engine::resync_chunk_entry`] to align the
//!    clock with the chunk's first post time.
//! 3. **Simulate optimistically** — the worker runs its chunk in full
//!    detail from the predicted state via `Simulator::run_events_range`,
//!    recording window/event probe records and its counter deltas.
//! 4. **Merge deterministically** — chunks are folded back *in input
//!    order*. Chunk `k` is accepted only if the authoritative state left
//!    by chunks `0..k` is *behaviourally equal* to the worker's predicted
//!    entry state ([`esp_uarch::Engine::boundary_matches`]: caches
//!    compared by recency rank, settled fill times canonicalised,
//!    predictor tables and prefetchers exact) with no replay lists
//!    pending. Equality is checked *modulo a uniform clock shift*: on the
//!    shipped bursty schedules the core is almost always backlogged, so
//!    the authoritative clock sits some `Δ ≥ 0` cycles past the chunk's
//!    first post time. Every timing rule in the engine is
//!    shift-invariant provided no event in the chunk idled on an
//!    absolute post time (chunks that idled mid-chunk under `Δ > 0` are
//!    rejected), so an accepted chunk's recorded output is translated
//!    `Δ` cycles forward — spans, windows, the exit clock, and in-flight
//!    fill times ([`esp_uarch::Engine::shift_chunk_exit`]) — and is then
//!    *exactly* what the serial path would have produced. A conflicting
//!    chunk is **repaired**: re-simulated serially from the
//!    authoritative state. Either way the merged result is the serial
//!    one; acceptance only decides whether the worker's output could be
//!    reused.
//!
//! Because repair is always available, determinism never depends on the
//! conflict rate: [`Simulator::run_intra`] returns byte-identical
//! [`RunReport`]s (and probe streams — see below) at any thread count,
//! which the `intra_determinism` integration test asserts across the full
//! profile × mode matrix. ESP configurations conflict by construction —
//! speculative ESP state is created inside timing-driven stall windows
//! that functional warming cannot predict — so their chunks always
//! repair; the mode is profitable for Baseline/Runahead-style configs and
//! still merely correct for ESP.
//!
//! **Probe semantics.** Intra-run mode delivers [`Probe::on_window`],
//! [`Probe::on_event`] (in input order) and one final [`Probe::on_run`],
//! exactly as the serial path does; per-instruction `on_step`/`on_stall`
//! callbacks are not delivered (workers record at window/event
//! granularity). JSONL tracing and CPI-conservation observers are built
//! on the delivered subset, so their output is unchanged.

use crate::lineset::LineSet;
use crate::replay::ReplayStats;
use crate::report::RunReport;
use crate::sampling::{add_engine, add_esp, add_replay, add_stack};
use crate::simulator::{LiveState, Simulator};
use crate::EspRunStats;
use esp_branch::PredictorContext;
use esp_energy::{ActivityCounts, EnergyModel};
use esp_mem::HierarchySnapshot;
use esp_obs::{CpiStack, EventSpan, NullProbe, Probe, RunSummary, WindowRecord};
use esp_stats::CacheStats;
use esp_trace::{EventStream, Workload};
use esp_types::Cycle;
use esp_uarch::{BoundaryView, CycleBreakdown, EngineStats};
use std::ops::Range;

/// Below this many events per requested chunk the run falls back to the
/// serial path: chunk overheads (functional warming is linear in the
/// prefix) would dominate, and tiny runs are fast anyway.
const MIN_EVENTS_PER_CHUNK: usize = 4;

/// How one intra-parallel run went: chunk accounting and conflict causes.
#[derive(Clone, Debug, Default)]
pub struct IntraStats {
    /// Worker threads requested.
    pub threads: usize,
    /// Chunks the event sequence was split into (1 on serial fallback).
    pub chunks: usize,
    /// Chunks whose optimistic simulation was accepted at merge (chunk 0
    /// always is — it starts from the authoritative reset state).
    pub accepted: usize,
    /// Chunks re-simulated serially from the authoritative predecessor
    /// state.
    pub repaired: usize,
    /// Events in the run.
    pub events: usize,
    /// True when the run was too small (or `threads <= 1`) and the serial
    /// path ran instead.
    pub serial_fallback: bool,
    /// Why chunks conflicted: `(reason, count)`, first occurrence first.
    pub conflicts: Vec<(&'static str, u64)>,
}

impl IntraStats {
    /// Fraction of speculative chunks (all but chunk 0) that conflicted
    /// and took the repair path. 0 for serial fallbacks.
    pub fn conflict_rate(&self) -> f64 {
        if self.chunks <= 1 {
            0.0
        } else {
            self.repaired as f64 / (self.chunks - 1) as f64
        }
    }

    fn note_conflict(&mut self, reason: &'static str) {
        self.repaired += 1;
        match self.conflicts.iter_mut().find(|(r, _)| *r == reason) {
            Some((_, n)) => *n += 1,
            None => self.conflicts.push((reason, 1)),
        }
    }
}

/// An intra-parallel run: the (serial-identical) report plus the
/// parallelism accounting.
#[derive(Clone, Debug)]
pub struct IntraRun {
    /// The run report — byte-identical to [`Simulator::run`]'s.
    pub report: RunReport,
    /// Chunk/conflict accounting for this run.
    pub stats: IntraStats,
}

/// A window or event record in emission order. Workers buffer these; the
/// merge replays them into the caller's probe once the chunk is ordered.
#[derive(Clone, Copy, Debug)]
enum Item {
    Window(WindowRecord),
    Event(EventSpan),
}

/// Buffers the ordered window/event stream of one chunk.
#[derive(Default)]
struct RecordingProbe {
    items: Vec<Item>,
}

impl Probe for RecordingProbe {
    fn on_window(&mut self, window: &WindowRecord) {
        self.items.push(Item::Window(*window));
    }

    fn on_event(&mut self, span: &EventSpan) {
        self.items.push(Item::Event(*span));
    }
}

/// Every counter a chunk's contribution to the report is computed from,
/// sampled at the chunk's entry and exit.
#[derive(Clone)]
struct CounterSnapshot {
    stack: CpiStack,
    engine: EngineStats,
    replay: ReplayStats,
    mem: HierarchySnapshot,
    /// ESP-context branch totals `(predicted, mispredicted)`.
    esp_bp: (u64, u64),
    esp: Option<EspRunStats>,
}

fn snapshot(live: &LiveState<'_>) -> CounterSnapshot {
    let b1 = live.engine.bp().stats(PredictorContext::Esp1);
    let b2 = live.engine.bp().stats(PredictorContext::Esp2);
    CounterSnapshot {
        stack: *live.engine.cpi_stack(),
        engine: *live.engine.stats(),
        replay: live.replay.stats(),
        mem: live.engine.mem().snapshot(),
        esp_bp: (b1.total() + b2.total(), b1.mispredicted + b2.mispredicted),
        esp: live.esp.as_ref().map(|e| e.stats().clone()),
    }
}

fn add_cache(into: &mut CacheStats, a: &CacheStats, b: &CacheStats) {
    into.hits += a.hits - b.hits;
    into.misses += a.misses - b.misses;
    into.partial_hits += a.partial_hits - b.partial_hits;
    into.prefetch_fills += a.prefetch_fills - b.prefetch_fills;
    into.prefetch_useful += a.prefetch_useful - b.prefetch_useful;
}

/// Input-order totals of every per-chunk counter delta. Because the
/// deltas of accepted chunks equal what the serial run would have charged
/// over the same events (behavioural boundary equality) and repaired
/// chunks *are* the serial run over their events, these totals equal the
/// serial run's final counters exactly.
#[derive(Default)]
struct Totals {
    stack: CpiStack,
    engine: EngineStats,
    replay: ReplayStats,
    mem: HierarchySnapshot,
    esp: EspRunStats,
    esp_branches: u64,
    esp_mispredicts: u64,
}

impl Totals {
    fn accumulate(&mut self, before: &CounterSnapshot, after: &CounterSnapshot) {
        add_stack(&mut self.stack, &after.stack.since(&before.stack));
        add_engine(&mut self.engine, &after.engine, &before.engine);
        add_replay(&mut self.replay, &after.replay, &before.replay);
        add_cache(&mut self.mem.l1i, &after.mem.l1i, &before.mem.l1i);
        add_cache(&mut self.mem.l1d, &after.mem.l1d, &before.mem.l1d);
        add_cache(&mut self.mem.l2, &after.mem.l2, &before.mem.l2);
        self.esp_branches += after.esp_bp.0 - before.esp_bp.0;
        self.esp_mispredicts += after.esp_bp.1 - before.esp_bp.1;
        if let (Some(a), Some(b)) = (after.esp.as_ref(), before.esp.as_ref()) {
            add_esp(&mut self.esp, a, b);
        }
    }
}

/// What one worker produced for its chunk.
enum ChunkSim<'w> {
    /// The chunk was simulated (from reset for chunk 0, from a
    /// warm-predicted entry state otherwise).
    Done {
        /// The predicted entry state the merge must validate
        /// (`None` only for chunk 0, which needs no validation).
        entry: Option<Box<BoundaryView>>,
        before: Box<CounterSnapshot>,
        after: Box<CounterSnapshot>,
        live: Box<LiveState<'w>>,
        items: Vec<Item>,
    },
    /// The worker could not predict a usable entry state; the merge
    /// re-simulates the chunk from the authoritative state.
    Incomparable(&'static str),
}

impl Simulator {
    /// [`Simulator::run`] with intra-run event-level parallelism: the
    /// event sequence is chunked across up to `threads` workers,
    /// simulated optimistically, and merged deterministically (module
    /// docs). The returned report is byte-identical to the serial one at
    /// every thread count; `threads <= 1` or a small run takes the serial
    /// path outright.
    pub fn run_intra(&self, workload: &dyn Workload, threads: usize) -> IntraRun {
        self.run_intra_probed(workload, threads, &mut NullProbe)
    }

    /// [`Simulator::run_intra`] with an observability probe. The probe
    /// receives window and event records in input order plus the final
    /// run summary — the same stream the serial path emits — but no
    /// per-instruction `on_step`/`on_stall` callbacks (see module docs).
    pub fn run_intra_probed<P: Probe>(
        &self,
        workload: &dyn Workload,
        threads: usize,
        probe: &mut P,
    ) -> IntraRun {
        let events = workload.events();
        let n = events.len();
        if threads <= 1 || n < threads * MIN_EVENTS_PER_CHUNK {
            let report = self.run_probed(workload, probe);
            return IntraRun {
                report,
                stats: IntraStats {
                    threads,
                    chunks: 1,
                    accepted: 1,
                    events: n,
                    serial_fallback: true,
                    ..IntraStats::default()
                },
            };
        }
        let n_looper = self.config().looper_instrs as u64;
        let weights: Vec<u64> = events.iter().map(|e| e.approx_len + n_looper).collect();
        let plan = esp_par::partition_weighted(&weights, threads);
        let sims = esp_par::parallel_map(threads, &plan, |k, range| {
            self.simulate_chunk(workload, k, range.clone())
        });
        self.merge_chunks(workload, &plan, sims, threads, probe)
    }

    /// One worker's job: predict the chunk's entry state by functional
    /// warming (chunk 0 starts from reset), then simulate the chunk in
    /// full detail, buffering probe records and counter snapshots.
    fn simulate_chunk<'w>(
        &self,
        workload: &'w dyn Workload,
        k: usize,
        range: Range<usize>,
    ) -> ChunkSim<'w> {
        let mut live = self.new_live(workload);
        let mut entry = None;
        if k > 0 {
            if live.esp.is_some() {
                // ESP speculative state is created inside timing-driven
                // stall windows; a functional warm cannot predict it, so
                // the merge would always repair. Skip the wasted work.
                return ChunkSim::Incomparable("esp-speculative-state");
            }
            let ref_at = workload.events()[range.start].post_time;
            if !self.warm_to_chunk(workload, &mut live, range.start, ref_at) {
                return ChunkSim::Incomparable("entry-clock-overrun");
            }
            entry = Some(Box::new(live.engine.boundary_view()));
        }
        let before = Box::new(snapshot(&live));
        let mut rec = RecordingProbe::default();
        let mut iws = LineSet::new();
        let mut dws = LineSet::new();
        self.run_events_range(workload, &mut live, range, &mut rec, &mut iws, &mut dws);
        let after = Box::new(snapshot(&live));
        ChunkSim::Done { entry, before, after, live: Box::new(live), items: rec.items }
    }

    /// Functionally warms `live` over events `0..start` — the sampling
    /// mode's stat-free fast-forward recipe, whole-run scale — and
    /// resyncs the clock to the chunk's first post time `ref_at`. Returns
    /// false when the warm clock overran `ref_at` (the chunk cannot be
    /// compared and must be repaired).
    fn warm_to_chunk<'w>(
        &self,
        workload: &'w dyn Workload,
        live: &mut LiveState<'w>,
        start: usize,
        ref_at: Cycle,
    ) -> bool {
        let events = workload.events();
        let line_bytes = self.config().engine.machine.hierarchy.l1i.line_bytes;
        let n_looper = self.config().looper_instrs as u64;
        let ideal = self.config().esp_features().is_some_and(|f| f.ideal);
        for (idx, record) in events.iter().enumerate().take(start) {
            live.engine.idle_until(record.post_time);
            // Arm (with no lists — non-ESP) so the replay PIR evolves as
            // it does on the serial path.
            live.replay.arm(None, ideal, &mut live.engine);
            for i in 0..n_looper {
                live.engine.warm_step(&Simulator::looper_instr(idx, i));
            }
            let walked = match workload.as_packed() {
                Some(packed) => {
                    let mut stream =
                        packed.arena().event(record.id.index() as usize).actual_cursor();
                    stream.warm_region(u64::MAX, line_bytes, &mut live.engine)
                }
                None => {
                    let mut stream = workload.actual_stream(record.id);
                    stream.warm_region(u64::MAX, line_bytes, &mut live.engine)
                }
            };
            live.engine.warm_retire(walked);
        }
        live.engine.resync_chunk_entry(ref_at)
    }

    /// The deterministic input-order merge: folds chunk results into the
    /// authoritative state, accepting behaviourally-matching chunks and
    /// repairing the rest, while replaying probe records in order.
    fn merge_chunks<'w, P: Probe>(
        &self,
        workload: &'w dyn Workload,
        plan: &[Range<usize>],
        sims: Vec<ChunkSim<'w>>,
        threads: usize,
        probe: &mut P,
    ) -> IntraRun {
        let events = workload.events();
        let mut stats = IntraStats {
            threads,
            chunks: plan.len(),
            events: events.len(),
            ..IntraStats::default()
        };
        let mut totals = Totals::default();
        let mut iws = LineSet::new();
        let mut dws = LineSet::new();

        let mut sims = sims.into_iter();
        let ChunkSim::Done { before, after, live, items, .. } =
            sims.next().expect("plan has at least one chunk")
        else {
            unreachable!("chunk 0 always simulates from reset")
        };
        totals.accumulate(&before, &after);
        replay_items(&items, None, probe);
        stats.accepted += 1;
        let mut auth = *live;

        for (i, sim) in sims.enumerate() {
            let range = plan[i + 1].clone();
            let ref_at = events[range.start].post_time;
            let auth_now = auth.engine.now();
            // The serial path would start this chunk's first event at
            // max(auth_now, ref_at): idling forward when the queue
            // drained (idle_gap), or already `shift` cycles past the
            // worker's assumed entry clock when the core is backlogged.
            let (shift, idle_gap) = if auth_now.is_after(ref_at) {
                (auth_now - ref_at, 0)
            } else {
                (0, ref_at - auth_now)
            };
            let verdict = match sim {
                ChunkSim::Incomparable(reason) => Err(reason),
                ChunkSim::Done { entry, before, after, live, items } => {
                    let entry = entry.expect("non-zero chunks always carry an entry view");
                    if auth.pending_lists.is_some() {
                        Err("pending-replay-lists")
                    } else if shift > 0 && chunk_idled(&items) {
                        // The worker waited on an absolute post time
                        // mid-chunk; its timeline is not shift-invariant.
                        Err("intra-chunk idle")
                    } else {
                        match auth.engine.boundary_matches(&entry, ref_at + shift) {
                            Ok(()) => Ok((before, after, live, items)),
                            Err(reason) => Err(reason),
                        }
                    }
                }
            };
            match verdict {
                Ok((before, after, mut live, items)) => {
                    // Translate the worker's chunk `shift` cycles forward
                    // onto the serial timeline, and re-anchor the first
                    // span to the predecessor's end (adding the idle gap
                    // the serial path would have charged waiting for
                    // `ref_at`). Exactly one of shift/idle_gap is
                    // non-zero.
                    totals.accumulate(&before, &after);
                    totals.stack.idle += idle_gap;
                    live.engine.shift_chunk_exit(shift);
                    replay_items(&items, Some(Patch { shift, start: auth_now, idle_gap }), probe);
                    auth = *live;
                    stats.accepted += 1;
                }
                Err(reason) => {
                    stats.note_conflict(reason);
                    let before = snapshot(&auth);
                    let mut rec = RecordingProbe::default();
                    self.run_events_range(
                        workload, &mut auth, range, &mut rec, &mut iws, &mut dws,
                    );
                    let after = snapshot(&auth);
                    totals.accumulate(&before, &after);
                    replay_items(&rec.items, None, probe);
                }
            }
        }

        let report = self.assemble_intra_report(&mut auth, &totals, events.len() as u64);
        debug_assert_eq!(
            report.total_cycles,
            auth.engine.now().as_u64(),
            "merged stack must conserve the authoritative clock"
        );
        probe.on_run(&RunSummary {
            total_cycles: report.total_cycles,
            events: report.events_run,
            retired: report.engine.retired,
            stack: report.cpi_stack,
            l1i: totals.mem.l1i,
            l1d: totals.mem.l1d,
            l2: totals.mem.l2,
            branches: report.engine.branches,
            mispredicts: report.engine.mispredicts,
            esp_branches: totals.esp_branches,
            esp_mispredicts: totals.esp_mispredicts,
        });
        IntraRun { report, stats }
    }

    /// Assembles the run report from the merged totals — the same
    /// derivation as the serial `assemble_report`, fed by summed chunk
    /// deltas instead of one engine's absolute counters.
    fn assemble_intra_report(
        &self,
        auth: &mut LiveState<'_>,
        totals: &Totals,
        events_run: u64,
    ) -> RunReport {
        let mut report = RunReport {
            total_cycles: totals.stack.total(),
            breakdown: CycleBreakdown::from_stack(&totals.stack),
            cpi_stack: totals.stack,
            engine: totals.engine,
            esp: totals.esp.clone(),
            replay: totals.replay,
            events_run,
            ..RunReport::default()
        };
        let measure = self
            .config()
            .esp_features()
            .is_some_and(|f| f.measure_working_sets);
        if measure {
            if let Some(esp) = auth.esp.as_mut() {
                report.working_sets = Some(esp.take_working_sets());
            }
        }
        let spec = report.esp.spec_instrs() + report.engine.runahead_instrs;
        report.activity = ActivityCounts {
            cycles: report.busy_cycles(),
            normal_instrs: report.engine.retired,
            spec_instrs: spec,
            mispredicts: report.engine.mispredicts,
        };
        report.energy = EnergyModel::mcpat_32nm().report(&report.activity);
        report
    }
}

/// Whether any event in the chunk idled waiting for its post time —
/// the one behaviour that is not invariant under a clock shift.
fn chunk_idled(items: &[Item]) -> bool {
    items
        .iter()
        .any(|item| matches!(item, Item::Event(span) if span.stack.idle > 0))
}

/// The accepted-chunk translation onto the serial timeline.
struct Patch {
    /// Uniform forward shift of every recorded time (backlogged entry).
    shift: u64,
    /// The authoritative predecessor's end — where the serial path
    /// starts the chunk's first span.
    start: Cycle,
    /// Idle cycles the serial path charges the first event waiting for
    /// its post time (drained-queue entry).
    idle_gap: u64,
}

/// Replays a chunk's buffered records into the caller's probe. For an
/// accepted chunk (`patch` set), every record is shifted onto the serial
/// timeline and the first event span is re-anchored to the authoritative
/// predecessor's end time with the idle gap added — the records the
/// serial path would have emitted.
fn replay_items<P: Probe>(items: &[Item], patch: Option<Patch>, probe: &mut P) {
    let Some(patch) = patch else {
        for item in items {
            match item {
                Item::Window(w) => probe.on_window(w),
                Item::Event(span) => probe.on_event(span),
            }
        }
        return;
    };
    let mut first = true;
    for item in items {
        match item {
            Item::Window(w) => {
                let mut w = *w;
                w.at += patch.shift;
                probe.on_window(&w);
            }
            Item::Event(span) => {
                let mut s = *span;
                s.start += patch.shift;
                s.end += patch.shift;
                if first {
                    first = false;
                    s.start = patch.start;
                    s.stack.idle += patch.idle_gap;
                }
                probe.on_event(&s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use esp_obs::CpiObserver;
    use esp_workload::BenchmarkProfile;

    fn workload() -> esp_workload::GeneratedWorkload {
        BenchmarkProfile::amazon().scaled(120_000).build(42)
    }

    #[test]
    fn serial_fallback_is_the_serial_run() {
        let w = workload();
        let sim = Simulator::new(SimConfig::base());
        let serial = sim.run(&w);
        let intra = sim.run_intra(&w, 1);
        assert!(intra.stats.serial_fallback);
        assert_eq!(format!("{serial:?}"), format!("{:?}", intra.report));
    }

    #[test]
    fn base_chunks_merge_to_serial_bytes() {
        let w = workload();
        let sim = Simulator::new(SimConfig::base());
        let serial = sim.run(&w);
        for threads in [2, 4] {
            let intra = sim.run_intra(&w, threads);
            assert!(!intra.stats.serial_fallback);
            assert_eq!(intra.stats.chunks, threads);
            assert_eq!(intra.stats.accepted + intra.stats.repaired, threads);
            assert_eq!(
                format!("{serial:?}"),
                format!("{:?}", intra.report),
                "threads={threads}"
            );
        }
    }

    /// The genuine accept path: on this profile the merge accepts
    /// speculative chunks (entry predictions validate, possibly modulo a
    /// clock shift), so byte-identity here exercises the
    /// translate-and-reuse machinery rather than the repair fallback.
    #[test]
    fn accepted_speculative_chunks_match_serial_bytes() {
        let w = BenchmarkProfile::bing().scaled(120_000).build(42);
        let sim = Simulator::new(SimConfig::base());
        let serial = sim.run(&w);
        let intra = sim.run_intra(&w, 4);
        assert!(
            intra.stats.accepted >= 2,
            "expected speculative-chunk acceptance, got {:?}",
            intra.stats
        );
        assert_eq!(format!("{serial:?}"), format!("{:?}", intra.report));
    }

    /// The forced-conflict repair path: ESP configurations can never be
    /// boundary-compared (speculative state is born inside timing-driven
    /// stall windows), so every chunk but the first must conflict, take
    /// the repair path, and still merge to the serial bytes.
    #[test]
    fn forced_conflict_repairs_to_serial_bytes() {
        let w = workload();
        let sim = Simulator::new(SimConfig::esp_nl());
        let serial = sim.run(&w);
        let intra = sim.run_intra(&w, 4);
        assert!(!intra.stats.serial_fallback);
        assert_eq!(intra.stats.accepted, 1, "only chunk 0 can be accepted under ESP");
        assert_eq!(intra.stats.repaired, intra.stats.chunks - 1);
        assert!(intra
            .stats
            .conflicts
            .iter()
            .any(|&(r, n)| r == "esp-speculative-state" && n as usize == intra.stats.repaired));
        assert!((intra.stats.conflict_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(format!("{serial:?}"), format!("{:?}", intra.report));
    }

    #[test]
    fn probe_stream_matches_serial() {
        let w = workload();
        for cfg in [SimConfig::base(), SimConfig::runahead(), SimConfig::esp_nl()] {
            let sim = Simulator::new(cfg);
            let mut serial = CpiObserver::default();
            sim.run_probed(&w, &mut serial);
            let mut intra = CpiObserver::default();
            sim.run_intra_probed(&w, 3, &mut intra);
            assert_eq!(serial.events, intra.events);
            assert_eq!(serial.windows, intra.windows);
            assert_eq!(serial.offered_cycles, intra.offered_cycles);
            assert_eq!(serial.utilized_cycles, intra.utilized_cycles);
            assert_eq!(serial.run, intra.run);
        }
    }
}
