//! Sampled-vs-exact error sweep: the calibration tool behind the
//! tolerance constants in `crates/bench/tests/sampling_error.rs` and
//! the error table in `docs/PERFORMANCE.md`.
//!
//! Runs every benchmark profile under base / runahead / ESP+NL, exactly
//! and sampled, and prints the per-cell signed CPI error next to the
//! estimator's own 95 % confidence half-width — an unbiased estimator
//! shows errors scattered inside the interval, a biased one shows them
//! piled on one side.
//!
//! ```text
//! cargo run --release -p esp-core --example sweep [scale] [grain] [period]
//! ```

use esp_core::{SampleParams, SimConfig, Simulator};
use esp_workload::BenchmarkProfile;

fn main() {
    let scale: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_400_000);
    let grain: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let period: u64 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(20);
    let mut worst = 0f64;
    for p in BenchmarkProfile::all() {
        let w = esp_workload::arena::packed_for(&p.scaled(scale), 42, 1);
        let configs =
            [("base", SimConfig::base()), ("ra", SimConfig::runahead()), ("espnl", SimConfig::esp_nl())];
        for (name, cfg) in configs {
            let sim = Simulator::new(cfg);
            let exact = sim.run(&*w);
            let s = sim.run_sampled(&*w, SampleParams::new(grain, period));
            let ec = exact.busy_cycles() as f64 / exact.engine.retired as f64;
            let sc = s.report.busy_cycles() as f64 / s.report.engine.retired as f64;
            let err = 100.0 * (sc - ec) / ec;
            worst = worst.max(err.abs());
            println!(
                "{:<9} {:<5} err {:+6.2}%  ci95 {:5.2}%  n {:4}  exact_cpi {:.4} sampled {:.4}",
                p.name(),
                name,
                err,
                s.estimate.cpi.rel_ci95_pct(),
                s.estimate.grains_measured,
                ec,
                sc
            );
        }
    }
    println!("worst |err| = {worst:.2}%");
}
