//! Behavioural tests of the ESP machinery through the public API:
//! divergence, order misprediction, queue idleness, and feature-subset
//! invariants.

use esp_core::{SimConfig, Simulator};
use esp_workload::{GeneratedWorkload, WorkloadParams};

fn params(target: u64) -> WorkloadParams {
    let mut p = WorkloadParams::web_default();
    p.target_instructions = target;
    p.mean_event_len = 6_000;
    p.code_footprint_bytes = 512 * 1024;
    p
}

#[test]
fn divergence_degrades_but_never_breaks() {
    let mut clean = params(120_000);
    clean.p_divergence = 0.0;
    let mut noisy = clean.clone();
    noisy.p_divergence = 1.0; // every pre-execution veers off somewhere

    // Same seed: schedules differ slightly (divergence draws consume
    // RNG), so compare each against its own baseline.
    let improvement = |p: WorkloadParams| {
        let w = GeneratedWorkload::generate(p, 5);
        let nl = Simulator::new(SimConfig::next_line()).run(&w);
        let esp = Simulator::new(SimConfig::esp_nl()).run(&w);
        esp_stats::improvement_pct(nl.busy_cycles(), esp.busy_cycles())
    };
    let clean_gain = improvement(clean);
    let noisy_gain = improvement(noisy);
    assert!(
        noisy_gain < clean_gain,
        "universally diverging pre-executions ({noisy_gain:.2}%) must help less \
         than accurate ones ({clean_gain:.2}%)"
    );
}

#[test]
fn order_mispredictions_discard_lists() {
    let mut p = params(80_000);
    p.p_order_mispredict = 1.0;
    let w = GeneratedWorkload::generate(p, 6);
    let r = Simulator::new(SimConfig::esp_nl()).run(&w);
    assert!(
        r.esp.lists_discarded > 0,
        "with every event order-mispredicted, discards must occur"
    );
    // Discarded lists mean no replay for those events.
    let per_event = r.replay.iprefetches as f64 / r.events_run as f64;
    let mut p2 = params(80_000);
    p2.p_order_mispredict = 0.0;
    let w2 = GeneratedWorkload::generate(p2, 6);
    let r2 = Simulator::new(SimConfig::esp_nl()).run(&w2);
    let per_event2 = r2.replay.iprefetches as f64 / r2.events_run as f64;
    assert!(
        per_event < per_event2 * 0.25,
        "discards must suppress replay: {per_event:.1} vs {per_event2:.1} prefetches/event"
    );
}

#[test]
fn sparse_arrivals_produce_idle_and_busy_excludes_it() {
    let mut p = params(60_000);
    p.utilization = 0.10; // the looper is mostly waiting
    let w = GeneratedWorkload::generate(p, 7);
    let r = Simulator::new(SimConfig::base()).run(&w);
    assert!(r.breakdown.idle > 0, "low utilization must idle the looper");
    assert_eq!(r.busy_cycles(), r.total_cycles - r.breakdown.idle);
    // Idle must not change the per-instruction metrics' denominators.
    assert!(r.ipc() > 0.1);
}

#[test]
fn dense_arrivals_leave_no_idle_gaps() {
    let mut p = params(60_000);
    p.utilization = 1.0;
    p.mean_burst = 16.0;
    let w = GeneratedWorkload::generate(p, 8);
    let r = Simulator::new(SimConfig::base()).run(&w);
    // The first event posts at 0; with 100% utilization the queue should
    // essentially never drain.
    let idle_frac = r.breakdown.idle as f64 / r.total_cycles as f64;
    assert!(idle_frac < 0.05, "idle fraction {idle_frac:.3}");
}

#[test]
fn feature_subsets_nest_sensibly() {
    let w = GeneratedWorkload::generate(params(150_000), 9);
    let run = |cfg: SimConfig| Simulator::new(cfg).run(&w);
    let nl = run(SimConfig::next_line());
    let i_only = run(SimConfig::esp_i_nl());
    let full = run(SimConfig::esp_nl());
    // Both ESP variants beat plain NL; the full feature set records and
    // replays at least as much as the subset.
    assert!(i_only.busy_cycles() < nl.busy_cycles());
    assert!(full.busy_cycles() < nl.busy_cycles());
    assert_eq!(i_only.replay.dprefetches, 0, "ESP-I must not replay D-lists");
    assert_eq!(i_only.replay.btrains, 0, "ESP-I must not replay B-lists");
    assert!(full.replay.dprefetches > 0);
    assert!(full.replay.btrains > 0);
}

#[test]
fn naive_esp_runs_without_lists_or_cachelets() {
    let w = GeneratedWorkload::generate(params(100_000), 10);
    let r = Simulator::new(SimConfig::naive_esp_nl()).run(&w);
    assert!(r.esp.spec_instrs() > 0, "naive ESP still pre-executes");
    assert_eq!(r.replay.iprefetches, 0);
    assert_eq!(r.replay.dprefetches, 0);
    assert_eq!(r.replay.btrains, 0);
}

#[test]
fn custom_replay_leads_are_respected() {
    let w = GeneratedWorkload::generate(params(100_000), 11);
    let mut short = SimConfig::esp_nl();
    if let esp_core::SimMode::Esp(ref mut f) = short.mode {
        f.prefetch_lead_instrs = 1;
    }
    let r_short = Simulator::new(short).run(&w);
    let r_std = Simulator::new(SimConfig::esp_nl()).run(&w);
    // A 1-instruction lead issues prefetches far too late to convert
    // misses fully; the standard lead must do at least as well.
    assert!(r_std.busy_cycles() <= r_short.busy_cycles());
}

#[test]
fn deeper_probes_do_not_break_correct_accounting() {
    let w = GeneratedWorkload::generate(params(100_000), 12);
    let r = Simulator::new(SimConfig::esp_depth_probe()).run(&w);
    assert_eq!(r.esp.instrs_by_depth.len(), 8);
    // Depth usage is (weakly) front-loaded: ESP-1 gets the most work.
    let d = &r.esp.instrs_by_depth;
    assert!(d[0] >= d[4], "d0={} d4={}", d[0], d[4]);
    assert_eq!(
        r.esp.spec_instrs(),
        d.iter().sum::<u64>(),
        "spec_instrs must equal the per-depth sum"
    );
}
