//! Predictor sizing.

use esp_types::{Error, Result};

/// Sizes of the predictor structures (Fig. 7's Pentium M configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchConfig {
    /// Entries in the tagged global predictor.
    pub global_entries: usize,
    /// Entries in the bimodal local predictor.
    pub local_entries: usize,
    /// Entries in the loop predictor.
    pub loop_entries: usize,
    /// Entries in the branch target buffer for direct branches.
    pub btb_entries: usize,
    /// Entries in the indirect branch target buffer.
    pub ibtb_entries: usize,
    /// Return address stack depth.
    pub ras_entries: usize,
    /// Misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// Decode-stage re-steer penalty for direct-target BTB misses.
    pub misfetch_penalty: u64,
}

impl BranchConfig {
    /// The paper's configuration: 2k-entry global predictor, 4k-entry
    /// local predictor, 256-entry loop predictor, 2k-entry BTB, 256-entry
    /// iBTB, 15-cycle misprediction penalty.
    pub fn pentium_m() -> Self {
        BranchConfig {
            global_entries: 2048,
            local_entries: 4096,
            loop_entries: 256,
            btb_entries: 2048,
            ibtb_entries: 256,
            ras_entries: 16,
            mispredict_penalty: 15,
            misfetch_penalty: 6,
        }
    }

    /// Validates that all table sizes are positive powers of two.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let fields = [
            ("global_entries", self.global_entries),
            ("local_entries", self.local_entries),
            ("loop_entries", self.loop_entries),
            ("btb_entries", self.btb_entries),
            ("ibtb_entries", self.ibtb_entries),
        ];
        for (name, v) in fields {
            if v == 0 || !v.is_power_of_two() {
                return Err(Error::invalid_config(format!(
                    "{name} must be a positive power of two, got {v}"
                )));
            }
        }
        if self.ras_entries == 0 {
            return Err(Error::invalid_config("ras_entries must be positive"));
        }
        Ok(())
    }
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig::pentium_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_is_valid() {
        BranchConfig::pentium_m().validate().unwrap();
        assert_eq!(BranchConfig::default(), BranchConfig::pentium_m());
    }

    #[test]
    fn rejects_bad_sizes() {
        let mut c = BranchConfig::pentium_m();
        c.global_entries = 1000;
        assert!(c.validate().is_err());
        let mut c = BranchConfig::pentium_m();
        c.local_entries = 0;
        assert!(c.validate().is_err());
        let mut c = BranchConfig::pentium_m();
        c.ras_entries = 0;
        assert!(c.validate().is_err());
    }
}
