//! The individual predictor structures.
//!
//! Each structure is independently testable and `Clone`, because the
//! "separate context and tables" design point of Fig. 12 replicates all of
//! them per execution context.

use crate::PathInfoRegister;
use esp_types::Addr;

/// A 2-bit saturating counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    const WEAK_TAKEN: Counter2 = Counter2(2);

    fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// The PIR-indexed, tagged global direction predictor (2k entries in the
/// paper's configuration).
///
/// A lookup only *hits* when the stored tag matches; otherwise the
/// predictor abstains and the local predictor decides. Entries are
/// allocated on branches the local predictor got wrong, mirroring how the
/// Pentium M's global predictor filters for history-correlated branches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalPredictor {
    tags: Vec<u16>,
    valid: Vec<bool>,
    counters: Vec<Counter2>,
}

impl GlobalPredictor {
    /// Creates an empty predictor with `entries` slots (power of two).
    pub fn new(entries: usize) -> Self {
        GlobalPredictor {
            tags: vec![0; entries],
            valid: vec![false; entries],
            counters: vec![Counter2::WEAK_TAKEN; entries],
        }
    }

    /// Looks up a direction; `None` on a tag miss.
    pub fn predict(&self, pir: PathInfoRegister, pc: Addr) -> Option<bool> {
        let i = pir.index(pc, self.tags.len());
        if self.valid[i] && self.tags[i] == pir.tag(pc) {
            Some(self.counters[i].predict_taken())
        } else {
            None
        }
    }

    /// Trains the matching entry, or allocates one when `allocate` is set
    /// (done when the fallback predictor mispredicted).
    pub fn update(&mut self, pir: PathInfoRegister, pc: Addr, taken: bool, allocate: bool) {
        let i = pir.index(pc, self.tags.len());
        let tag = pir.tag(pc);
        if self.valid[i] && self.tags[i] == tag {
            self.counters[i].update(taken);
        } else if allocate {
            self.valid[i] = true;
            self.tags[i] = tag;
            self.counters[i] = if taken { Counter2(3) } else { Counter2(0) };
        }
    }
}

/// The bimodal local predictor (4k entries): a PC-indexed table of 2-bit
/// counters; the fallback when the global predictor abstains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalPredictor {
    counters: Vec<Counter2>,
    /// Tracks whether the entry was ever trained, so cold predictions can
    /// be distinguished in statistics.
    trained: Vec<bool>,
}

impl LocalPredictor {
    /// Creates a predictor with `entries` counters (power of two).
    pub fn new(entries: usize) -> Self {
        LocalPredictor { counters: vec![Counter2::WEAK_TAKEN; entries], trained: vec![false; entries] }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.as_u64() >> 2) & (self.counters.len() as u64 - 1)) as usize
    }

    /// Predicted direction for `pc` (always produces a prediction).
    pub fn predict(&self, pc: Addr) -> bool {
        self.counters[self.index(pc)].predict_taken()
    }

    /// Whether the entry for `pc` has ever been updated.
    pub fn is_trained(&self, pc: Addr) -> bool {
        self.trained[self.index(pc)]
    }

    /// Trains the entry for `pc`.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        self.counters[i].update(taken);
        self.trained[i] = true;
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct LoopEntry {
    tag: u16,
    valid: bool,
    /// Learned trip count (taken iterations before the exit).
    limit: u16,
    /// Iterations observed in the current traversal.
    current: u16,
    /// Confidence that `limit` repeats (saturates at 3; predicts at >= 2).
    confidence: u8,
}

/// The loop predictor (256 entries): learns fixed trip counts and predicts
/// the final not-taken iteration of counted loops, which global/local
/// history predictors systematically miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

impl LoopPredictor {
    /// Creates a predictor with `entries` slots (power of two).
    pub fn new(entries: usize) -> Self {
        LoopPredictor { entries: vec![LoopEntry::default(); entries] }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.as_u64() >> 2) & (self.entries.len() as u64 - 1)) as usize
    }

    fn tag(pc: Addr) -> u16 {
        ((pc.as_u64() >> 10) & 0x3ff) as u16
    }

    /// Predicts the direction of a loop-closing branch, or `None` when the
    /// entry is unknown or not yet confident.
    pub fn predict(&self, pc: Addr) -> Option<bool> {
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == Self::tag(pc) && e.confidence >= 2 && e.limit > 0 {
            Some(e.current < e.limit)
        } else {
            None
        }
    }

    /// Trains on an executed branch direction.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        let tag = Self::tag(pc);
        let e = &mut self.entries[i];
        if !e.valid || e.tag != tag {
            *e = LoopEntry { tag, valid: true, limit: 0, current: 0, confidence: 0 };
        }
        if taken {
            e.current = e.current.saturating_add(1);
        } else {
            // Loop exit: does the observed trip count match the learned one?
            if e.limit == e.current && e.limit > 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.limit = e.current;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }
}

/// The branch target buffer for direct branches (2k entries, tagged).
/// A taken branch whose target is absent from the BTB is a front-end
/// misprediction even when the direction was right.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Btb {
    tags: Vec<u32>,
    targets: Vec<Addr>,
    valid: Vec<bool>,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots (power of two).
    pub fn new(entries: usize) -> Self {
        Btb { tags: vec![0; entries], targets: vec![Addr::NULL; entries], valid: vec![false; entries] }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.as_u64() >> 2) & (self.tags.len() as u64 - 1)) as usize
    }

    fn tag(&self, pc: Addr) -> u32 {
        ((pc.as_u64() >> 2) >> self.tags.len().trailing_zeros()) as u32
    }

    /// The stored target for `pc`, if present.
    pub fn lookup(&self, pc: Addr) -> Option<Addr> {
        let i = self.index(pc);
        (self.valid[i] && self.tags[i] == self.tag(pc)).then(|| self.targets[i])
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let i = self.index(pc);
        self.tags[i] = self.tag(pc);
        self.targets[i] = target;
        self.valid[i] = true;
    }
}

/// The indirect branch target buffer (256 entries), indexed by PIR ^ PC so
/// the same dispatch site can hold different targets on different paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndirectBtb {
    tags: Vec<u16>,
    targets: Vec<Addr>,
    valid: Vec<bool>,
}

impl IndirectBtb {
    /// Creates an empty iBTB with `entries` slots (power of two).
    pub fn new(entries: usize) -> Self {
        IndirectBtb {
            tags: vec![0; entries],
            targets: vec![Addr::NULL; entries],
            valid: vec![false; entries],
        }
    }

    /// The stored target for this (path, pc) pair, if present.
    pub fn lookup(&self, pir: PathInfoRegister, pc: Addr) -> Option<Addr> {
        let i = pir.index(pc, self.tags.len());
        (self.valid[i] && self.tags[i] == pir.tag(pc)).then(|| self.targets[i])
    }

    /// Installs the observed target for this (path, pc) pair.
    pub fn update(&mut self, pir: PathInfoRegister, pc: Addr, target: Addr) {
        let i = pir.index(pc, self.tags.len());
        self.tags[i] = pir.tag(pc);
        self.targets[i] = target;
        self.valid[i] = true;
    }
}

/// The return address stack. ESP clears it when leaving a speculative
/// mode, because it may hold return addresses pushed by pre-executed
/// functions (§4.1, "Exiting ESP mode").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReturnStack {
    stack: Vec<Addr>,
    capacity: usize,
}

impl ReturnStack {
    /// Creates a stack holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Self {
        ReturnStack { stack: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address (a call retired); the oldest entry is
    /// dropped on overflow.
    pub fn push(&mut self, ret: Addr) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops the predicted return address, if any.
    pub fn pop(&mut self) -> Option<Addr> {
        self.stack.pop()
    }

    /// Empties the stack.
    pub fn clear(&mut self) {
        self.stack.clear();
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s storage —
    /// the allocation-free half of a checkpoint/restore round trip.
    pub fn copy_from(&mut self, other: &Self) {
        self.stack.clone_from(&other.stack);
        self.capacity = other.capacity;
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2(0);
        for _ in 0..5 {
            c.update(true);
        }
        assert!(c.predict_taken());
        assert_eq!(c.0, 3);
        for _ in 0..5 {
            c.update(false);
        }
        assert!(!c.predict_taken());
        assert_eq!(c.0, 0);
    }

    #[test]
    fn global_tag_filtering() {
        let mut g = GlobalPredictor::new(64);
        let pir = PathInfoRegister::new();
        let pc = Addr::new(0x1000);
        assert_eq!(g.predict(pir, pc), None);
        g.update(pir, pc, true, true);
        assert_eq!(g.predict(pir, pc), Some(true));
        // Non-allocating update on a missing entry changes nothing.
        let other = Addr::new(0x2f00);
        g.update(pir, other, false, false);
        assert_eq!(g.predict(pir, other), None);
    }

    #[test]
    fn global_is_path_sensitive() {
        let mut g = GlobalPredictor::new(1024);
        let pc = Addr::new(0x1000);
        let pir_a = PathInfoRegister::new();
        let mut pir_b = PathInfoRegister::new();
        pir_b.update_taken(Addr::new(0x500), Addr::new(0x40));
        g.update(pir_a, pc, true, true);
        g.update(pir_b, pc, false, true);
        assert_eq!(g.predict(pir_a, pc), Some(true));
        assert_eq!(g.predict(pir_b, pc), Some(false));
    }

    #[test]
    fn local_learns_bias() {
        let mut l = LocalPredictor::new(64);
        let pc = Addr::new(0x40);
        assert!(!l.is_trained(pc));
        for _ in 0..3 {
            l.update(pc, false);
        }
        assert!(!l.predict(pc));
        assert!(l.is_trained(pc));
    }

    #[test]
    fn loop_predictor_learns_trip_count() {
        let mut lp = LoopPredictor::new(64);
        let pc = Addr::new(0x88);
        // Three traversals of a 5-iteration loop to build confidence.
        for _ in 0..3 {
            for _ in 0..5 {
                lp.update(pc, true);
            }
            lp.update(pc, false);
        }
        // Now it predicts taken for 5 iterations then not-taken.
        for i in 0..5 {
            assert_eq!(lp.predict(pc), Some(true), "iteration {i}");
            lp.update(pc, true);
        }
        assert_eq!(lp.predict(pc), Some(false));
        lp.update(pc, false);
    }

    #[test]
    fn loop_predictor_abstains_without_confidence() {
        let mut lp = LoopPredictor::new(64);
        let pc = Addr::new(0x88);
        lp.update(pc, true);
        lp.update(pc, false);
        assert_eq!(lp.predict(pc), None);
    }

    #[test]
    fn btb_roundtrip_and_conflicts() {
        let mut b = Btb::new(16);
        let pc = Addr::new(0x100);
        assert_eq!(b.lookup(pc), None);
        b.update(pc, Addr::new(0x2000));
        assert_eq!(b.lookup(pc), Some(Addr::new(0x2000)));
        // A conflicting pc (same index, different tag) evicts.
        let conflicting = Addr::new(0x100 + 16 * 4);
        b.update(conflicting, Addr::new(0x3000));
        assert_eq!(b.lookup(pc), None);
        assert_eq!(b.lookup(conflicting), Some(Addr::new(0x3000)));
    }

    #[test]
    fn ibtb_is_path_sensitive() {
        let mut ib = IndirectBtb::new(256);
        let pc = Addr::new(0x500);
        let pir_a = PathInfoRegister::new();
        let mut pir_b = PathInfoRegister::new();
        pir_b.update_taken(Addr::new(0x900), Addr::new(0x10));
        ib.update(pir_a, pc, Addr::new(0x7000));
        ib.update(pir_b, pc, Addr::new(0x8000));
        assert_eq!(ib.lookup(pir_a, pc), Some(Addr::new(0x7000)));
        assert_eq!(ib.lookup(pir_b, pc), Some(Addr::new(0x8000)));
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut r = ReturnStack::new(2);
        r.push(Addr::new(1));
        r.push(Addr::new(2));
        r.push(Addr::new(3)); // drops 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(Addr::new(3)));
        assert_eq!(r.pop(), Some(Addr::new(2)));
        assert_eq!(r.pop(), None);
        r.push(Addr::new(9));
        r.clear();
        assert_eq!(r.depth(), 0);
    }
}
