//! The Path Information Register.

use esp_types::Addr;

/// The 15-bit Path Information Register (PIR) that indexes the global and
/// indirect predictor tables.
///
/// Following the Pentium M scheme, the PIR hashes the addresses and
/// targets of *taken* branches; not-taken branches leave it unchanged.
/// ESP replicates this small register per execution context (§4.3) —
/// "preserving the small PIR states across control switches between
/// events can result in significantly more accurate branch predictions".
///
/// # Examples
///
/// ```
/// use esp_branch::PathInfoRegister;
/// use esp_types::Addr;
///
/// let mut a = PathInfoRegister::new();
/// let mut b = PathInfoRegister::new();
/// a.update_taken(Addr::new(0x1230), Addr::new(0x88));
/// assert_ne!(a, b);
/// b.update_taken(Addr::new(0x1230), Addr::new(0x88));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PathInfoRegister {
    value: u16,
}

/// PIR width in bits.
const PIR_BITS: u32 = 15;
const PIR_MASK: u16 = (1 << PIR_BITS) - 1;

impl PathInfoRegister {
    /// Creates a cleared PIR.
    pub const fn new() -> Self {
        PathInfoRegister { value: 0 }
    }

    /// The current register value (15 bits).
    pub const fn value(self) -> u16 {
        self.value
    }

    /// Folds a taken branch (its address and target) into the path history.
    pub fn update_taken(&mut self, pc: Addr, target: Addr) {
        let pc_bits = ((pc.as_u64() >> 4) & 0x7fff) as u16;
        let tgt_bits = ((target.as_u64() >> 2) & 0x3f) as u16;
        self.value = (((self.value << 2) ^ pc_bits) ^ tgt_bits) & PIR_MASK;
    }

    /// Clears the history (used when a context is recycled for a new
    /// event).
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Combines the PIR with a branch address to index a table of
    /// `entries` slots (power of two).
    pub fn index(self, pc: Addr, entries: usize) -> usize {
        let h = (self.value as u64) ^ (pc.as_u64() >> 4);
        (h & (entries as u64 - 1)) as usize
    }

    /// A short tag distinguishing aliased branches in tagged tables.
    pub fn tag(self, pc: Addr) -> u16 {
        ((((pc.as_u64() >> 4) ^ ((self.value as u64) << 3)) >> 8) & 0x3f) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_15_bits() {
        let mut p = PathInfoRegister::new();
        for i in 0..1000u64 {
            p.update_taken(Addr::new(i * 0x9137), Addr::new(i * 0x51f1));
            assert!(p.value() <= PIR_MASK);
        }
    }

    #[test]
    fn not_updating_preserves_value() {
        let p = PathInfoRegister::new();
        let q = p;
        assert_eq!(p, q);
    }

    #[test]
    fn clear_resets() {
        let mut p = PathInfoRegister::new();
        p.update_taken(Addr::new(0x1234), Addr::new(0x88));
        assert_ne!(p.value(), 0);
        p.clear();
        assert_eq!(p.value(), 0);
    }

    #[test]
    fn different_paths_give_different_indices_usually() {
        let pc = Addr::new(0x4444);
        let mut p = PathInfoRegister::new();
        let mut q = PathInfoRegister::new();
        p.update_taken(Addr::new(0x100), Addr::new(0x10));
        q.update_taken(Addr::new(0x900), Addr::new(0x20));
        assert_ne!(p.index(pc, 2048), q.index(pc, 2048));
    }

    #[test]
    fn index_is_in_range() {
        let mut p = PathInfoRegister::new();
        for i in 0..100u64 {
            p.update_taken(Addr::new(i << 5), Addr::new(i << 7));
            assert!(p.index(Addr::new(i * 12345), 256) < 256);
        }
    }
}
