//! A Pentium-M-style branch predictor with ESP execution contexts.
//!
//! The paper's baseline models the Pentium M predictor (Fig. 7, after
//! Uzelac & Milenkovic's reverse engineering): a PIR-indexed tagged
//! global predictor, a bimodal local predictor, a loop predictor, a BTB
//! for direct-branch targets, a PIR-indexed indirect BTB, and a return
//! address stack. This crate implements all of those structures plus the
//! pieces ESP adds in §4.3:
//!
//! * replicated **Path Information Registers** (one per execution context:
//!   normal, ESP-1, ESP-2) — the design point the paper ships;
//! * optional **fully replicated predictor tables** per context, and an
//!   optional fully **shared** mode — the other two Fig. 12 design points;
//! * an **ahead-training** entry point used by the B-list replay during
//!   normal execution ("the training is kept loosely coupled with the
//!   actual branch execution, a preset number of branches ahead").
//!
//! # Examples
//!
//! ```
//! use esp_branch::{BranchPredictor, BranchConfig, ContextPolicy, PredictorContext};
//! use esp_trace::Instr;
//! use esp_types::Addr;
//!
//! let mut bp = BranchPredictor::new(BranchConfig::pentium_m(), ContextPolicy::SeparatePir);
//! let b = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x40));
//! // First encounter may or may not predict; after training it will.
//! for _ in 0..4 {
//!     bp.predict_and_update(PredictorContext::Normal, &b);
//! }
//! assert!(bp.predict_and_update(PredictorContext::Normal, &b).is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod components;
mod config;
mod pir;
mod predictor;

pub use components::{Btb, GlobalPredictor, IndirectBtb, LocalPredictor, LoopPredictor, ReturnStack};
pub use config::BranchConfig;
pub use pir::PathInfoRegister;
pub use predictor::{
    BpOp, BranchPredictor, ContextPolicy, Prediction, PredictorContext, SpeculativeCheckpoint,
};
