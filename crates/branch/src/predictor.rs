//! The composite predictor with ESP execution contexts.

use crate::components::{Btb, GlobalPredictor, IndirectBtb, LocalPredictor, LoopPredictor, ReturnStack};
use crate::{BranchConfig, PathInfoRegister};
use esp_stats::BranchStats;
use esp_trace::{Instr, InstrKind};

/// Which execution context a prediction belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredictorContext {
    /// The non-speculative current event.
    Normal,
    /// Pre-execution one event ahead.
    Esp1,
    /// Pre-execution two events ahead.
    Esp2,
}

impl PredictorContext {
    const ALL: [PredictorContext; 3] =
        [PredictorContext::Normal, PredictorContext::Esp1, PredictorContext::Esp2];

    fn idx(self) -> usize {
        match self {
            PredictorContext::Normal => 0,
            PredictorContext::Esp1 => 1,
            PredictorContext::Esp2 => 2,
        }
    }
}

/// How much predictor state is replicated across execution contexts — the
/// design space explored in Fig. 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContextPolicy {
    /// No extra hardware: ESP modes share the normal mode's PIR and
    /// tables, interfering freely ("no extra H/W").
    SharedAll,
    /// The shipping ESP design: one PIR per context, shared tables
    /// ("separate context").
    SeparatePir,
    /// Full replication: every context has its own PIR *and* tables; an
    /// event's warmed tables follow it from pre-execution to normal
    /// execution ("separate context and tables").
    SeparateTables,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Tables {
    global: GlobalPredictor,
    local: LocalPredictor,
    loops: LoopPredictor,
    btb: Btb,
    ibtb: IndirectBtb,
}

impl Tables {
    fn new(config: &BranchConfig) -> Self {
        Tables {
            global: GlobalPredictor::new(config.global_entries),
            local: LocalPredictor::new(config.local_entries),
            loops: LoopPredictor::new(config.loop_entries),
            btb: Btb::new(config.btb_entries),
            ibtb: IndirectBtb::new(config.ibtb_entries),
        }
    }
}

/// The outcome class of one prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Prediction {
    /// Direction and target both predicted.
    Correct,
    /// Direction was right but the BTB lacked the (statically known)
    /// direct target: a cheap decode-stage re-steer, not a full pipeline
    /// flush. Counted separately from mispredictions, as front ends
    /// resolve direct targets at decode.
    Misfetch,
    /// Wrong direction, wrong indirect target, or RAS mismatch: the full
    /// misprediction penalty applies.
    Mispredict,
}

impl Prediction {
    /// Whether the front end proceeded without any re-steer.
    pub fn is_correct(self) -> bool {
        self == Prediction::Correct
    }
}

/// A saved copy of the normal context's PIR and return address stack.
#[derive(Clone, Debug)]
pub struct SpeculativeCheckpoint {
    pir: PathInfoRegister,
    ras: ReturnStack,
}

/// One recorded mutation of a [`BranchPredictor`], with its observed
/// outcome where the entry point returns one.
///
/// Like `esp-mem`'s op log, every state-changing entry point appends one
/// op while recording is on (see [`BranchPredictor::set_recording`]), so
/// replaying the log in order against a fresh predictor of the same
/// configuration and policy must reproduce every prediction outcome and
/// the final per-context statistics. Checkpoints are positional: a
/// replayer keeps its own LIFO stack, pushing on [`BpOp::Checkpoint`]
/// and popping on [`BpOp::Restore`], mirroring the strictly nested
/// checkpoint/restore discipline of the runahead and ESP window paths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BpOp {
    /// A retiring branch was predicted and trained in `ctx`.
    Predict {
        /// The execution context.
        ctx: PredictorContext,
        /// The branch micro-op.
        instr: Instr,
        /// The outcome the real predictor returned.
        outcome: Prediction,
    },
    /// A B-list branch was replay-trained ahead of retirement.
    TrainAhead {
        /// The replayed branch micro-op.
        instr: Instr,
    },
    /// The replay PIR was aligned with the normal-mode PIR.
    BeginReplay,
    /// The return address stack was cleared.
    ClearRas,
    /// The normal context's speculative state was checkpointed.
    Checkpoint,
    /// The most recent outstanding checkpoint was restored.
    Restore,
    /// Event completion shifted the ESP contexts.
    Promote,
    /// Statistics were reset.
    ResetStats,
}

/// The full Pentium-M-style predictor with ESP contexts.
///
/// One call, [`BranchPredictor::predict_and_update`], performs the
/// predict → compare → train sequence for a retiring branch and returns
/// whether the prediction was correct; the caller charges the
/// misprediction penalty. The B-list replay path uses
/// [`BranchPredictor::train_ahead`], which trains the *normal* tables
/// along a private replay PIR a preset number of branches ahead of
/// retirement (§3.6).
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    config: BranchConfig,
    policy: ContextPolicy,
    /// 1 table set for `SharedAll`/`SeparatePir`; 3 for `SeparateTables`.
    tables: Vec<Tables>,
    /// Which table set each context currently uses.
    table_of: [usize; 3],
    pirs: [PathInfoRegister; 3],
    replay_pir: PathInfoRegister,
    ras: ReturnStack,
    stats: [BranchStats; 3],
    /// Side-effect log; `Some` only while recording is enabled.
    ops: Option<Vec<BpOp>>,
}

impl BranchPredictor {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`BranchConfig::validate`].
    pub fn new(config: BranchConfig, policy: ContextPolicy) -> Self {
        config.validate().expect("invalid branch predictor configuration");
        let (tables, table_of) = match policy {
            ContextPolicy::SharedAll | ContextPolicy::SeparatePir => {
                (vec![Tables::new(&config)], [0, 0, 0])
            }
            ContextPolicy::SeparateTables => (
                vec![Tables::new(&config), Tables::new(&config), Tables::new(&config)],
                [0, 1, 2],
            ),
        };
        BranchPredictor {
            ras: ReturnStack::new(config.ras_entries),
            config,
            policy,
            tables,
            table_of,
            pirs: [PathInfoRegister::new(); 3],
            replay_pir: PathInfoRegister::new(),
            stats: [BranchStats::default(); 3],
            ops: None,
        }
    }

    /// Turns side-effect recording on or off. Turning it on starts a
    /// fresh, empty log; turning it off discards any recorded ops.
    pub fn set_recording(&mut self, on: bool) {
        self.ops = on.then(Vec::new);
    }

    /// Takes the recorded op log, leaving an empty log behind (recording
    /// stays on). Returns an empty vec when recording was never enabled.
    pub fn take_ops(&mut self) -> Vec<BpOp> {
        match self.ops.as_mut() {
            Some(ops) => std::mem::take(ops),
            None => Vec::new(),
        }
    }

    #[inline]
    fn record(&mut self, op: BpOp) {
        if let Some(ops) = self.ops.as_mut() {
            ops.push(op);
        }
    }

    /// The misprediction penalty in cycles.
    pub fn mispredict_penalty(&self) -> u64 {
        self.config.mispredict_penalty
    }

    /// The decode re-steer penalty for direct-target BTB misses.
    pub fn misfetch_penalty(&self) -> u64 {
        self.config.misfetch_penalty
    }

    /// Cycles to charge for a [`Prediction`].
    pub fn penalty_of(&self, p: Prediction) -> u64 {
        match p {
            Prediction::Correct => 0,
            Prediction::Misfetch => self.config.misfetch_penalty,
            Prediction::Mispredict => self.config.mispredict_penalty,
        }
    }

    /// The replication policy.
    pub fn policy(&self) -> ContextPolicy {
        self.policy
    }

    /// Outcome statistics for one context.
    pub fn stats(&self, ctx: PredictorContext) -> &BranchStats {
        &self.stats[ctx.idx()]
    }

    /// Outcome statistics for every context, in `(context, stats)`
    /// pairs — the branch section of the observability run trace, which
    /// reports speculative ESP-context prediction quality separately
    /// from the normal-mode rate of Fig. 12.
    pub fn stats_all(&self) -> [(PredictorContext, BranchStats); 3] {
        [
            (PredictorContext::Normal, self.stats[0]),
            (PredictorContext::Esp1, self.stats[1]),
            (PredictorContext::Esp2, self.stats[2]),
        ]
    }

    /// Resets statistics for all contexts (state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = [BranchStats::default(); 3];
        self.record(BpOp::ResetStats);
    }

    fn pir_slot(&self, ctx: PredictorContext) -> usize {
        match self.policy {
            // No extra hardware: every context clobbers the one PIR.
            ContextPolicy::SharedAll => 0,
            _ => ctx.idx(),
        }
    }

    /// Predicts the retiring branch `instr` in context `ctx`, trains all
    /// structures with its actual outcome, and classifies the prediction.
    ///
    /// Direction prediction falls back to backward-taken/forward-not-taken
    /// (BTFN) static prediction for never-trained local entries — cold
    /// code is overwhelmingly BTFN-friendly, which is why large-footprint
    /// applications keep usable misprediction rates.
    ///
    /// # Panics
    ///
    /// Panics if `instr` is not a branch.
    pub fn predict_and_update(&mut self, ctx: PredictorContext, instr: &Instr) -> Prediction {
        let outcome = self.predict_train(ctx, instr);
        self.stats[ctx.idx()].record(outcome == Prediction::Correct);
        self.record(BpOp::Predict { ctx, instr: *instr, outcome });
        outcome
    }

    /// Functional-warming update: the full predict → train sequence of
    /// [`Self::predict_and_update`] in the normal context, but with no
    /// statistics recorded and no op-log entry. The sampling mode's
    /// fast-forward uses this so the predictor stays trained across
    /// skipped grains while per-grain measurements remain unpolluted.
    /// Returns what the prediction outcome would have been, so callers
    /// can keep auxiliary event counts for extrapolation.
    ///
    /// # Panics
    ///
    /// Panics if `instr` is not a branch.
    #[inline]
    pub fn warm_update(&mut self, instr: &Instr) -> Prediction {
        self.predict_train(PredictorContext::Normal, instr)
    }

    /// The shared predict → compare → train body: every table, PIR, and
    /// RAS mutation of a retiring branch, with the outcome classification
    /// returned and *no* statistics or op-log side effects.
    fn predict_train(&mut self, ctx: PredictorContext, instr: &Instr) -> Prediction {
        let pir_slot = self.pir_slot(ctx);
        let table_slot = self.table_of[ctx.idx()];
        let pc = instr.pc;
        match instr.kind {
            InstrKind::CondBranch { taken, target } => {
                let pir = self.pirs[pir_slot];
                let t = &mut self.tables[table_slot];
                let dir_pred = t.loops.predict(pc).or_else(|| t.global.predict(pir, pc)).unwrap_or_else(
                    || {
                        if t.local.is_trained(pc) {
                            t.local.predict(pc)
                        } else {
                            // BTFN static prediction for cold entries.
                            target < pc
                        }
                    },
                );
                let target_known = !taken || t.btb.lookup(pc) == Some(target);
                let outcome = if dir_pred != taken {
                    Prediction::Mispredict
                } else if !target_known {
                    Prediction::Misfetch
                } else {
                    Prediction::Correct
                };
                t.local.update(pc, taken);
                t.global.update(pir, pc, taken, dir_pred != taken);
                t.loops.update(pc, taken);
                if taken {
                    t.btb.update(pc, target);
                    self.pirs[pir_slot].update_taken(pc, target);
                }
                outcome
            }
            InstrKind::IndirectBranch { target } | InstrKind::IndirectCall { target } => {
                let pir = self.pirs[pir_slot];
                let t = &mut self.tables[table_slot];
                let outcome = if t.ibtb.lookup(pir, pc) == Some(target) {
                    Prediction::Correct
                } else {
                    Prediction::Mispredict
                };
                t.ibtb.update(pir, pc, target);
                if matches!(instr.kind, InstrKind::IndirectCall { .. }) {
                    self.ras.push(pc + 4);
                }
                self.pirs[pir_slot].update_taken(pc, target);
                outcome
            }
            InstrKind::Call { target } => {
                let t = &mut self.tables[table_slot];
                let outcome = if t.btb.lookup(pc) == Some(target) {
                    Prediction::Correct
                } else {
                    Prediction::Misfetch
                };
                t.btb.update(pc, target);
                self.ras.push(pc + 4);
                self.pirs[pir_slot].update_taken(pc, target);
                outcome
            }
            InstrKind::Return { target } => {
                if self.ras.pop() == Some(target) {
                    Prediction::Correct
                } else {
                    Prediction::Mispredict
                }
            }
            _ => panic!("predict_and_update called on a non-branch: {instr:?}"),
        }
    }

    /// Trains the normal-mode tables with a future branch outcome replayed
    /// from the B-list, along the private replay PIR. Returns nothing and
    /// records no statistics — this is training, not prediction.
    pub fn train_ahead(&mut self, instr: &Instr) {
        self.record(BpOp::TrainAhead { instr: *instr });
        let table_slot = self.table_of[PredictorContext::Normal.idx()];
        let pc = instr.pc;
        match instr.kind {
            InstrKind::CondBranch { taken, target } => {
                let pir = self.replay_pir;
                let t = &mut self.tables[table_slot];
                // Prime the fallback predictor and matching global
                // entries. The loop predictor is deliberately *not*
                // replay-trained: its trip counters track the exact
                // retirement sequence, and a second interleaved training
                // stream corrupts them.
                t.local.update(pc, taken);
                t.global.update(pir, pc, taken, false);
                if taken {
                    t.btb.update(pc, target);
                    self.replay_pir.update_taken(pc, target);
                }
            }
            InstrKind::IndirectBranch { target } | InstrKind::IndirectCall { target } => {
                let pir = self.replay_pir;
                self.tables[table_slot].ibtb.update(pir, pc, target);
                self.replay_pir.update_taken(pc, target);
            }
            InstrKind::Call { target } => {
                self.tables[table_slot].btb.update(pc, target);
                self.replay_pir.update_taken(pc, target);
            }
            _ => {}
        }
    }

    /// Aligns the replay PIR with the normal-mode PIR. Called when B-list
    /// replay (re)starts at an event boundary, so the replay path hashes
    /// to the same table entries the real execution will.
    pub fn begin_replay(&mut self) {
        self.replay_pir = self.pirs[self.pir_slot(PredictorContext::Normal)];
        self.record(BpOp::BeginReplay);
    }

    /// Clears the return address stack — done when the processor exits an
    /// ESP mode, since the RAS may hold return addresses of pre-executed
    /// functions (§4.1).
    pub fn clear_ras(&mut self) {
        self.ras.clear();
        self.record(BpOp::ClearRas);
    }

    /// Checkpoints the normal context's speculatively-clobberable state
    /// (PIR and RAS). Runahead execution snapshots this at the blocking
    /// load and restores it on exit, exactly as real runahead recovers
    /// its branch-history checkpoint; predictor *tables* keep their
    /// runahead training.
    ///
    /// Takes `&mut self` only to note the checkpoint in the side-effect
    /// log; the predictor's state is otherwise unchanged.
    pub fn checkpoint_speculative(&mut self) -> SpeculativeCheckpoint {
        self.record(BpOp::Checkpoint);
        SpeculativeCheckpoint {
            pir: self.pirs[PredictorContext::Normal.idx()],
            ras: self.ras.clone(),
        }
    }

    /// [`Self::checkpoint_speculative`] into an existing checkpoint,
    /// reusing its RAS storage. The window-spending hot loop checkpoints
    /// once per stall window; the in-place form keeps that allocation
    /// free after the first window.
    pub fn checkpoint_speculative_into(&mut self, cp: &mut SpeculativeCheckpoint) {
        self.record(BpOp::Checkpoint);
        cp.pir = self.pirs[PredictorContext::Normal.idx()];
        cp.ras.copy_from(&self.ras);
    }

    /// Restores a [`SpeculativeCheckpoint`].
    pub fn restore_speculative(&mut self, cp: SpeculativeCheckpoint) {
        self.pirs[PredictorContext::Normal.idx()] = cp.pir;
        self.ras = cp.ras;
        self.record(BpOp::Restore);
    }

    /// [`Self::restore_speculative`] from a borrowed checkpoint, reusing
    /// the live RAS's storage (the allocation-free pair of
    /// [`Self::checkpoint_speculative_into`]).
    pub fn restore_speculative_from(&mut self, cp: &SpeculativeCheckpoint) {
        self.pirs[PredictorContext::Normal.idx()] = cp.pir;
        self.ras.copy_from(&cp.ras);
        self.record(BpOp::Restore);
    }

    /// Whether `self` and `other` hold identical *predictive* state:
    /// every table set, the context-to-table assignment, all PIRs, the
    /// replay PIR, and the RAS. Statistics and the side-effect log are
    /// deliberately excluded — two predictors that agree on this method
    /// produce identical outcomes for any subsequent input sequence.
    /// The intra-run merge uses it to decide whether an optimistically
    /// warmed worker's predictor matches the authoritative one.
    pub fn same_state(&self, other: &Self) -> bool {
        self.tables == other.tables
            && self.table_of == other.table_of
            && self.pirs == other.pirs
            && self.replay_pir == other.replay_pir
            && self.ras == other.ras
    }

    /// Event-completion shift: the ESP-2 context's state follows its event
    /// into ESP-1, and the ESP-2 context is recycled for the next queued
    /// event. Under [`ContextPolicy::SeparateTables`] the warmed tables
    /// move with their events, and the new current event's tables are the
    /// ones its own pre-execution warmed.
    pub fn promote_event(&mut self) {
        self.record(BpOp::Promote);
        // PIRs: ESP-2's in-progress path history moves to the ESP-1 slot;
        // the fresh ESP-2 slot starts clean. The normal-mode PIR is the
        // architectural thread's and simply keeps evolving.
        if self.policy != ContextPolicy::SharedAll {
            self.pirs[PredictorContext::Esp1.idx()] = self.pirs[PredictorContext::Esp2.idx()];
            self.pirs[PredictorContext::Esp2.idx()].clear();
        }
        if self.policy == ContextPolicy::SeparateTables {
            let normal_old = self.table_of[0];
            self.table_of[0] = self.table_of[1];
            self.table_of[1] = self.table_of[2];
            self.table_of[2] = normal_old;
            // Warm-start the recycled set from the new normal set, so the
            // next pre-execution does not begin from scratch.
            let src = self.table_of[0];
            let dst = self.table_of[2];
            if src != dst {
                self.tables[dst] = self.tables[src].clone();
            }
        }
        let _ = PredictorContext::ALL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::Instr;
    use esp_types::Addr;

    fn bp(policy: ContextPolicy) -> BranchPredictor {
        BranchPredictor::new(BranchConfig::pentium_m(), policy)
    }

    #[test]
    fn biased_branch_becomes_predictable() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let b = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x40));
        for _ in 0..4 {
            p.predict_and_update(PredictorContext::Normal, &b);
        }
        assert!(p.predict_and_update(PredictorContext::Normal, &b).is_correct());
        assert!(p.stats(PredictorContext::Normal).total() == 5);
    }

    #[test]
    fn not_taken_branch_needs_no_btb() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let b = Instr::cond_branch(Addr::new(0x200), false, Addr::new(0x4000));
        // Weakly-taken init mispredicts at first; converges quickly.
        for _ in 0..3 {
            p.predict_and_update(PredictorContext::Normal, &b);
        }
        assert!(p.predict_and_update(PredictorContext::Normal, &b).is_correct());
    }

    #[test]
    fn taken_branch_mispredicts_without_btb_entry() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let pc = Addr::new(0x300);
        // Train direction via a conflicting-but-different target each time:
        // direction becomes predictable but the changing target still hits.
        let b1 = Instr::cond_branch(pc, true, Addr::new(0x1000));
        p.predict_and_update(PredictorContext::Normal, &b1);
        p.predict_and_update(PredictorContext::Normal, &b1);
        // Direction right, target right: correct.
        assert!(p.predict_and_update(PredictorContext::Normal, &b1).is_correct());
        // Same branch, different dynamic target: BTB holds the old
        // target — a misfetch (direction was right, target stale).
        let b2 = Instr::cond_branch(pc, true, Addr::new(0x9000));
        assert_eq!(p.predict_and_update(PredictorContext::Normal, &b2), Prediction::Misfetch);
    }

    #[test]
    fn indirect_uses_path_history() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let pc = Addr::new(0x500);
        let t1 = Addr::new(0x7000);
        // Without path divergence, a stable indirect target trains up.
        let b = Instr::indirect(pc, t1);
        p.predict_and_update(PredictorContext::Normal, &b);
        // The PIR changed after the first execution, so the second lookup
        // uses a different index; train again on the recurring path.
        p.predict_and_update(PredictorContext::Normal, &b);
        p.predict_and_update(PredictorContext::Normal, &b);
        let correct = (0..4)
            .filter(|_| p.predict_and_update(PredictorContext::Normal, &b).is_correct())
            .count();
        assert!(correct >= 2, "correct={correct}");
    }

    #[test]
    fn call_return_pairs_predict_via_ras() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let call_pc = Addr::new(0x100);
        let callee = Addr::new(0x8000);
        let call = Instr::call(call_pc, callee);
        let ret = Instr::ret(Addr::new(0x8010), call_pc + 4);
        assert_eq!(p.predict_and_update(PredictorContext::Normal, &call), Prediction::Misfetch);
        assert!(p.predict_and_update(PredictorContext::Normal, &ret).is_correct());
        // Second round: call hits BTB too.
        assert!(p.predict_and_update(PredictorContext::Normal, &call).is_correct());
        assert!(p.predict_and_update(PredictorContext::Normal, &ret).is_correct());
    }

    #[test]
    fn ras_clear_breaks_return_prediction() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let call = Instr::call(Addr::new(0x100), Addr::new(0x8000));
        let ret = Instr::ret(Addr::new(0x8010), Addr::new(0x104));
        p.predict_and_update(PredictorContext::Normal, &call);
        p.clear_ras();
        assert_eq!(p.predict_and_update(PredictorContext::Normal, &ret), Prediction::Mispredict);
    }

    #[test]
    fn separate_pir_isolates_contexts() {
        let mut p = bp(ContextPolicy::SeparatePir);
        // A branch whose global-predictor behaviour depends on the PIR:
        // execute taken branches in ESP-1 to perturb only ESP-1's PIR.
        for i in 0..8u64 {
            let b = Instr::cond_branch(Addr::new(0x1000 + i * 64), true, Addr::new(0x40));
            p.predict_and_update(PredictorContext::Esp1, &b);
        }
        // Normal PIR is untouched (still cleared); ESP-1's has moved on.
        assert_eq!(p.pirs[PredictorContext::Normal.idx()].value(), 0);
        assert_ne!(p.pirs[PredictorContext::Esp1.idx()].value(), 0);
    }

    #[test]
    fn shared_all_pollutes_normal_pir() {
        let mut p = bp(ContextPolicy::SharedAll);
        let before = p.pirs[0];
        let b = Instr::cond_branch(Addr::new(0x1000), true, Addr::new(0x40));
        p.predict_and_update(PredictorContext::Esp1, &b);
        assert_ne!(p.pirs[0], before, "shared PIR must be clobbered by ESP-mode branches");

        let mut q = bp(ContextPolicy::SeparatePir);
        let before = q.pirs[0];
        q.predict_and_update(PredictorContext::Esp1, &b);
        assert_eq!(q.pirs[0], before, "separate PIR must protect normal mode");
    }

    #[test]
    fn train_ahead_fixes_cold_indirect() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let pc = Addr::new(0x500);
        let target = Addr::new(0x9000);
        p.begin_replay();
        p.train_ahead(&Instr::indirect(pc, target));
        // The very next normal execution of the same dynamic branch hits.
        assert!(p
            .predict_and_update(PredictorContext::Normal, &Instr::indirect(pc, target))
            .is_correct());
    }

    #[test]
    fn train_ahead_tracks_path() {
        let mut p = bp(ContextPolicy::SeparatePir);
        p.begin_replay();
        // Replay a taken conditional then an indirect; the real execution
        // follows the same path, so the indirect must hit.
        let c = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x200));
        let i = Instr::indirect(Addr::new(0x220), Addr::new(0x4000));
        p.train_ahead(&c);
        p.train_ahead(&i);
        p.predict_and_update(PredictorContext::Normal, &c);
        assert!(p.predict_and_update(PredictorContext::Normal, &i).is_correct());
    }

    #[test]
    fn separate_tables_follow_events() {
        let mut p = bp(ContextPolicy::SeparateTables);
        let pc = Addr::new(0x700);
        let b = Instr::cond_branch(pc, false, Addr::new(0x40));
        // Warm the ESP-1 tables with this event's branch.
        for _ in 0..4 {
            p.predict_and_update(PredictorContext::Esp1, &b);
        }
        // Promote: the warmed tables become the normal tables.
        p.promote_event();
        assert!(p.predict_and_update(PredictorContext::Normal, &b).is_correct());
    }

    #[test]
    fn promote_rotates_table_assignment() {
        let mut p = bp(ContextPolicy::SeparateTables);
        let t0 = p.table_of;
        p.promote_event();
        assert_eq!(p.table_of[0], t0[1]);
        assert_eq!(p.table_of[1], t0[2]);
        assert_eq!(p.table_of[2], t0[0]);
        p.promote_event();
        p.promote_event();
        assert_eq!(p.table_of, t0);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn non_branch_panics() {
        let mut p = bp(ContextPolicy::SeparatePir);
        p.predict_and_update(PredictorContext::Normal, &Instr::alu(Addr::new(0)));
    }

    #[test]
    fn op_log_replays_to_identical_stats() {
        let mut p = bp(ContextPolicy::SeparatePir);
        p.set_recording(true);
        let call = Instr::call(Addr::new(0x100), Addr::new(0x8000));
        let ret = Instr::ret(Addr::new(0x8010), Addr::new(0x104));
        let cond = Instr::cond_branch(Addr::new(0x200), true, Addr::new(0x40));
        p.predict_and_update(PredictorContext::Normal, &call);
        let cp = p.checkpoint_speculative();
        p.predict_and_update(PredictorContext::Esp1, &cond);
        p.clear_ras();
        p.restore_speculative(cp);
        p.begin_replay();
        p.train_ahead(&cond);
        p.predict_and_update(PredictorContext::Normal, &ret);
        p.promote_event();
        let ops = p.take_ops();
        assert_eq!(ops.len(), 9);

        // Shadow replay on a fresh predictor with an explicit LIFO
        // checkpoint stack: every recorded outcome must reproduce.
        let mut shadow = bp(ContextPolicy::SeparatePir);
        let mut cps: Vec<SpeculativeCheckpoint> = Vec::new();
        for op in &ops {
            match *op {
                BpOp::Predict { ctx, instr, outcome } => {
                    assert_eq!(shadow.predict_and_update(ctx, &instr), outcome);
                }
                BpOp::TrainAhead { instr } => shadow.train_ahead(&instr),
                BpOp::BeginReplay => shadow.begin_replay(),
                BpOp::ClearRas => shadow.clear_ras(),
                BpOp::Checkpoint => cps.push(shadow.checkpoint_speculative()),
                BpOp::Restore => {
                    shadow.restore_speculative(cps.pop().expect("unbalanced restore"));
                }
                BpOp::Promote => shadow.promote_event(),
                BpOp::ResetStats => shadow.reset_stats(),
            }
        }
        assert_eq!(shadow.stats_all(), p.stats_all());
    }

    #[test]
    fn recording_off_keeps_no_log() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let b = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x40));
        p.predict_and_update(PredictorContext::Normal, &b);
        assert!(p.take_ops().is_empty());
    }

    #[test]
    fn warm_update_trains_without_stats_or_ops() {
        let mut p = bp(ContextPolicy::SeparatePir);
        p.set_recording(true);
        let b = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x40));
        for _ in 0..4 {
            p.warm_update(&b);
        }
        assert_eq!(p.stats(PredictorContext::Normal).total(), 0);
        assert!(p.take_ops().is_empty());
        // Warm training is real training: the next prediction hits.
        assert!(p.predict_and_update(PredictorContext::Normal, &b).is_correct());
    }

    #[test]
    fn warm_update_matches_detailed_training() {
        // A predictor warmed on a branch sequence must end in the same
        // table state as one trained by detailed execution.
        let seq = [
            Instr::call(Addr::new(0x100), Addr::new(0x8000)),
            Instr::cond_branch(Addr::new(0x8000), true, Addr::new(0x8040)),
            Instr::indirect(Addr::new(0x8044), Addr::new(0x9000)),
            Instr::ret(Addr::new(0x9010), Addr::new(0x104)),
        ];
        let mut warm = bp(ContextPolicy::SeparatePir);
        let mut detailed = bp(ContextPolicy::SeparatePir);
        for b in &seq {
            warm.warm_update(b);
            detailed.predict_and_update(PredictorContext::Normal, b);
        }
        // Same subsequent predictions prove identical trained state.
        for b in &seq {
            assert_eq!(
                warm.predict_and_update(PredictorContext::Normal, b),
                detailed.predict_and_update(PredictorContext::Normal, b)
            );
        }
    }

    #[test]
    fn stats_per_context() {
        let mut p = bp(ContextPolicy::SeparatePir);
        let b = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x40));
        p.predict_and_update(PredictorContext::Esp1, &b);
        assert_eq!(p.stats(PredictorContext::Esp1).total(), 1);
        assert_eq!(p.stats(PredictorContext::Normal).total(), 0);
        p.reset_stats();
        assert_eq!(p.stats(PredictorContext::Esp1).total(), 0);
    }
}
