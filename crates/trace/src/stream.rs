//! Resumable event instruction streams and the workload abstraction.

use crate::{EventRecord, Instr, InstrKind, PackedWorkload, WarmSink};
use esp_types::EventId;

/// A resumable cursor over one event's dynamic instruction stream.
///
/// The simulator never holds whole traces in memory; it pulls instructions
/// one at a time. Cursors must be *suspendable*: ESP pre-execution runs a
/// future event's stream for a while, gets switched away (miss resolved, or
/// a deeper jump), and later resumes **exactly where it left off** (§3.4,
/// "Persisting Event Execution Contexts"). Implementations therefore carry
/// all generator state internally.
///
/// Streams are `Send`: the intra-run parallel mode moves live cursors
/// between the worker that simulated a chunk and the merging thread.
/// Every implementation is plain owned data, so this costs nothing.
pub trait EventStream: Send {
    /// Produces the next instruction, or `None` when the event's handler
    /// returns to the looper.
    fn next_instr(&mut self) -> Option<Instr>;

    /// The number of instructions produced so far (the "instruction count
    /// from the beginning of the event" that list entries timestamp).
    fn executed(&self) -> u64;

    /// Checkpoints the cursor: returns an independent stream that
    /// continues from the current position. Runahead execution forks the
    /// current event's stream at the blocking load; the original cursor
    /// resumes normal execution untouched.
    fn fork(&self) -> Box<dyn EventStream + '_>;

    /// Consumes up to `max_instrs` instructions, feeding their
    /// architectural state into a functional-warming `sink` instead of
    /// returning them (the sampling mode's fast-forward). Returns the
    /// number of instructions consumed, short of `max_instrs` only at end
    /// of stream.
    ///
    /// The default decodes through [`EventStream::next_instr`]; packed
    /// cursors override it with a walk straight off the packed arrays
    /// (see `PackedCursor::warm_walk_bounded`). Fetch lines are reported
    /// on transitions within one call, first instruction included, so
    /// sinks that dedup fetch lines themselves see identical sequences
    /// from either path.
    fn warm_region<S: WarmSink>(&mut self, max_instrs: u64, line_bytes: u64, sink: &mut S) -> u64
    where
        Self: Sized,
    {
        let mut last_line = u64::MAX;
        let mut walked = 0u64;
        while walked < max_instrs {
            let Some(i) = self.next_instr() else { break };
            let line = i.pc.line(line_bytes).as_u64();
            if line != last_line {
                sink.warm_fetch_line(line);
                last_line = line;
            }
            match i.kind {
                InstrKind::Alu => {}
                InstrKind::Load { addr, .. } => sink.warm_load(i.pc.as_u64(), addr.as_u64()),
                InstrKind::Store { addr } => sink.warm_store(addr.as_u64()),
                _ => sink.warm_branch(&i),
            }
            walked += 1;
        }
        walked
    }

    /// Consumes up to `max_instrs` instructions with no observer at all —
    /// the learned sampling mode's skipped-grain fast-forward. The cursor
    /// advances exactly as [`EventStream::warm_region`] would (so
    /// retirement accounting stays exact), but no architectural state is
    /// reported anywhere. Returns the number of instructions consumed,
    /// short of `max_instrs` only at end of stream.
    ///
    /// The default decodes through [`EventStream::next_instr`]; packed
    /// cursors override it with a decode-free walk over the packed
    /// arrays (see `PackedCursor::skip_walk`).
    fn skip_region(&mut self, max_instrs: u64) -> u64 {
        let mut walked = 0u64;
        while walked < max_instrs && self.next_instr().is_some() {
            walked += 1;
        }
        walked
    }

    /// [`EventStream::skip_region`] with a memory-touch observer: fetch
    /// lines and load/store addresses are reported to `sink` so a
    /// footprint can be collected almost for free, but branch reporting
    /// is *not* guaranteed — packed cursors never call
    /// [`WarmSink::warm_branch`] here (see
    /// `PackedCursor::skip_walk_observed`), while this decoded default
    /// does. Sinks used with this method must not depend on the branch
    /// hook.
    fn skip_region_observed<S: WarmSink>(
        &mut self,
        max_instrs: u64,
        line_bytes: u64,
        sink: &mut S,
    ) -> u64
    where
        Self: Sized,
    {
        self.warm_region(max_instrs, line_bytes, sink)
    }
}

impl<S: EventStream + ?Sized> EventStream for Box<S> {
    #[inline]
    fn next_instr(&mut self) -> Option<Instr> {
        (**self).next_instr()
    }

    #[inline]
    fn executed(&self) -> u64 {
        (**self).executed()
    }

    fn fork(&self) -> Box<dyn EventStream + '_> {
        (**self).fork()
    }

    #[inline]
    fn skip_region(&mut self, max_instrs: u64) -> u64 {
        (**self).skip_region(max_instrs)
    }
}

/// [`EventStream::fork`] without the mandatory box: implementors name
/// the concrete cursor type their fork produces, so a monomorphised
/// simulation loop (see `as_packed` on [`Workload`]) can spin off a
/// runahead side-execution with a plain struct copy instead of a heap
/// allocation and virtual dispatch per pre-executed instruction.
/// Runahead opens one fork per stall window — hundreds of thousands per
/// simulation.
pub trait ForkStream: EventStream {
    /// The stream type a fork yields.
    type Forked<'s>: EventStream
    where
        Self: 's;

    /// Checkpoints the cursor, like [`EventStream::fork`].
    fn fork_stream(&self) -> Self::Forked<'_>;
}

impl<S: EventStream + ?Sized> ForkStream for Box<S> {
    type Forked<'s>
        = Box<dyn EventStream + 's>
    where
        Self: 's;

    fn fork_stream(&self) -> Box<dyn EventStream + '_> {
        (**self).fork()
    }
}

/// A complete asynchronous program: an ordered schedule of events, each of
/// which can be opened for normal execution or for speculative
/// pre-execution.
///
/// The two stream methods model the paper's methodology (§5): the *actual*
/// stream is what the event does when it really runs; the *speculative*
/// stream is what a forked-off pre-execution observes. For most events they
/// are identical (the paper measured > 99 % match); a workload may inject
/// divergence to model inter-event dependences.
///
/// Workloads are `Sync`: one workload is shared by reference across the
/// matrix workers and, within a single run, across the intra-run chunk
/// workers. Implementations are immutable once built, so this is free.
pub trait Workload: Sync {
    /// The events of the program in execution order.
    fn events(&self) -> &[EventRecord];

    /// Opens the authoritative instruction stream of event `id`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `id` is out of range.
    fn actual_stream(&self, id: EventId) -> Box<dyn EventStream + '_>;

    /// Opens the stream a speculative pre-execution of event `id` would
    /// observe. May diverge from [`Workload::actual_stream`] part-way
    /// through.
    fn speculative_stream(&self, id: EventId) -> Box<dyn EventStream + '_>;

    /// Downcast hook for the decode-once arena: [`PackedWorkload`]
    /// returns itself, letting the simulator's per-instruction loops run
    /// over a concrete, inlinable cursor instead of a boxed trait object.
    /// Timing and statistics are identical on both paths — this is purely
    /// a dispatch optimisation.
    fn as_packed(&self) -> Option<&PackedWorkload> {
        None
    }

    /// Total dynamic instructions across all events (sum of `approx_len`
    /// unless an implementation knows better).
    fn approx_total_instructions(&self) -> u64 {
        self.events().iter().map(|e| e.approx_len).sum()
    }
}

/// An [`EventStream`] that replays a pre-recorded vector of instructions.
///
/// The workhorse of unit tests, and the replay side of [`record_stream`].
///
/// # Examples
///
/// ```
/// use esp_trace::{EventStream, Instr, VecEventStream};
/// use esp_types::Addr;
///
/// let mut s = VecEventStream::new(vec![Instr::alu(Addr::new(0))]);
/// assert_eq!(s.next_instr(), Some(Instr::alu(Addr::new(0))));
/// assert_eq!(s.next_instr(), None);
/// assert_eq!(s.executed(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecEventStream {
    instrs: Vec<Instr>,
    pos: usize,
}

impl VecEventStream {
    /// Creates a stream replaying `instrs` front to back.
    pub fn new(instrs: Vec<Instr>) -> Self {
        VecEventStream { instrs, pos: 0 }
    }

    /// Returns the instructions not yet produced.
    pub fn remaining(&self) -> &[Instr] {
        &self.instrs[self.pos..]
    }
}

impl EventStream for VecEventStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied()?;
        self.pos += 1;
        Some(i)
    }

    fn executed(&self) -> u64 {
        self.pos as u64
    }

    fn fork(&self) -> Box<dyn EventStream + '_> {
        Box::new(self.clone())
    }
}

impl FromIterator<Instr> for VecEventStream {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        VecEventStream::new(iter.into_iter().collect())
    }
}

/// Drains `stream` to completion (or `limit` instructions, whichever comes
/// first) and returns the instructions it produced.
///
/// # Examples
///
/// ```
/// use esp_trace::{record_stream, Instr, VecEventStream};
/// use esp_types::Addr;
///
/// let mut s = VecEventStream::new(vec![Instr::alu(Addr::new(0)); 10]);
/// let got = record_stream(&mut s, 3);
/// assert_eq!(got.len(), 3);
/// ```
pub fn record_stream(stream: &mut dyn EventStream, limit: usize) -> Vec<Instr> {
    let mut out = Vec::new();
    while out.len() < limit {
        match stream.next_instr() {
            Some(i) => out.push(i),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_types::Addr;

    fn sample() -> Vec<Instr> {
        (0..5).map(|i| Instr::alu(Addr::new(i * 4))).collect()
    }

    #[test]
    fn vec_stream_replays_in_order() {
        let v = sample();
        let mut s = VecEventStream::new(v.clone());
        let got = record_stream(&mut s, usize::MAX);
        assert_eq!(got, v);
        assert_eq!(s.executed(), 5);
        assert!(s.next_instr().is_none());
        assert_eq!(s.executed(), 5);
    }

    #[test]
    fn record_stream_respects_limit() {
        let mut s = VecEventStream::new(sample());
        assert_eq!(record_stream(&mut s, 2).len(), 2);
        assert_eq!(s.remaining().len(), 3);
    }

    #[test]
    fn from_iterator() {
        let s: VecEventStream = sample().into_iter().collect();
        assert_eq!(s.remaining().len(), 5);
    }

    #[test]
    fn executed_counts_incrementally() {
        let mut s = VecEventStream::new(sample());
        assert_eq!(s.executed(), 0);
        s.next_instr();
        assert_eq!(s.executed(), 1);
        s.next_instr();
        s.next_instr();
        assert_eq!(s.executed(), 3);
    }
}
