//! Static metadata for one dynamic event.

use esp_types::{Addr, Cycle, EventId, EventKindId};

/// Metadata for one dynamic event in a workload schedule.
///
/// This is the information the *software* event queue holds about a pending
/// event, and the subset of it that the paper's ISA extension exposes to the
/// 2-entry hardware event queue (§4.1): the handler's starting instruction
/// address and the argument-object address.
///
/// # Examples
///
/// ```
/// use esp_trace::EventRecord;
/// use esp_types::{Addr, Cycle, EventId, EventKindId};
///
/// let e = EventRecord {
///     id: EventId::new(0),
///     kind: EventKindId::new(2),
///     handler_pc: Addr::new(0x40_0000),
///     arg_addr: Addr::new(0x8000_0000),
///     approx_len: 55_000,
///     post_time: Cycle::ZERO,
///     order_mispredicted: false,
/// };
/// assert_eq!(e.id.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// The event's position in posting (and execution) order.
    pub id: EventId,
    /// Which handler type this event invokes.
    pub kind: EventKindId,
    /// The handler's first instruction address — what the hardware event
    /// queue entry stores.
    pub handler_pc: Addr,
    /// The address of the argument object passed to the handler (the
    /// calling-convention change proposed in §4.1).
    pub arg_addr: Addr,
    /// The approximate dynamic instruction count of the handler. Only a
    /// hint (used for scheduling and reporting); the authoritative length
    /// is whatever the event's stream produces.
    pub approx_len: u64,
    /// The cycle at which the event was posted to the software queue. An
    /// event cannot begin (or be pre-executed) before this time.
    pub post_time: Cycle,
    /// True if the software runtime's prediction of execution order turned
    /// out wrong for this event (e.g. a synchronous barrier reordered it,
    /// §4.5). The hardware event queue sets its "incorrect prediction" bit
    /// and ESP must discard the lists gathered for it.
    pub order_mispredicted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_copy() {
        let e = EventRecord {
            id: EventId::new(3),
            kind: EventKindId::new(1),
            handler_pc: Addr::new(0x1000),
            arg_addr: Addr::new(0x2000),
            approx_len: 10,
            post_time: Cycle::new(5),
            order_mispredicted: true,
        };
        let f = e; // Copy
        assert_eq!(e, f);
        assert!(f.order_mispredicted);
        assert_eq!(f.post_time, Cycle::new(5));
    }
}
