//! ESPT v1: the versioned on-disk interchange form of a packed workload.
//!
//! The simulator is trace driven, but until this module traces only ever
//! existed in memory: `esp-workload` regenerates them from seeds on every
//! process start. ESPT (`.espt` files) makes the materialised
//! [`PackedWorkload`] a first-class, durable input — a captured or
//! generated trace can be exported once and replayed anywhere, byte for
//! byte, without the generator. The layout serialises the packed
//! struct-of-arrays arena directly (kind bytes and operand words are
//! written verbatim), so export→import→replay is lossless by
//! construction; `docs/TRACE_FORMAT.md` documents the byte layout and the
//! versioning policy in full.
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! magic "ESPT" · version u32 · endian tag u32 · section count u32
//! section table: (id u32, byte length u64) per section, in file order
//! sections: META(1) EVENTS(2) KINDS(3) OPS(4)
//! footer: FNV-1a 64 checksum of every preceding byte, as u64
//! ```
//!
//! * **META** — provenance: profile name (u16 length + UTF-8 bytes),
//!   scale, seed, event count, total instructions.
//! * **EVENTS** — one fixed 96-byte record per event: the
//!   [`EventRecord`] fields plus the shapes (start pc, kind-byte count,
//!   operand count) of the event's actual stream and speculative tail.
//! * **KINDS** — every stream's kind bytes, concatenated in event order
//!   (actual stream then tail, per event).
//! * **OPS** — every stream's operand words, same order.
//!
//! # Validation
//!
//! The reader is total over arbitrary bytes: any input either decodes to
//! a replayable workload or returns a structured [`EsptError`] — never a
//! panic, and never an allocation larger than the input itself (declared
//! section lengths are read incrementally, so a forged multi-terabyte
//! length faults as [`EsptError::Truncated`] once the real bytes run
//! out). The checksum is verified before the payload is interpreted, so
//! random corruption surfaces as [`EsptError::ChecksumMismatch`];
//! deliberately crafted payloads then face the structural checks
//! (section ids and lengths, count cross-sums, per-stream
//! [`PackedTrace::from_raw_parts`] validation).
//!
//! # Examples
//!
//! ```
//! use esp_trace::{espt, EventRecord, PackedEvent, PackedTrace, PackedWorkload, TraceArena};
//! use esp_trace::{Instr, Workload};
//! use esp_types::{Addr, Cycle, EventId, EventKindId};
//! use std::sync::Arc;
//!
//! let instrs = vec![Instr::alu(Addr::new(0x100)), Instr::ret(Addr::new(0x104), Addr::new(0x42))];
//! let event = PackedEvent::new(PackedTrace::from_instrs(&instrs), None, PackedTrace::new());
//! let record = EventRecord {
//!     id: EventId::new(0),
//!     kind: EventKindId::new(0),
//!     handler_pc: Addr::new(0x100),
//!     arg_addr: Addr::new(0x8000),
//!     approx_len: 2,
//!     post_time: Cycle::ZERO,
//!     order_mispredicted: false,
//! };
//! let w = PackedWorkload::new(vec![record], Arc::new(TraceArena::new(vec![event])), 2);
//! let meta = espt::TraceMeta { profile: "doc".into(), scale: 2, seed: 7 };
//!
//! let mut bytes = Vec::new();
//! espt::write(&mut bytes, &meta, &w).unwrap();
//! let (meta2, w2) = espt::read(&bytes[..]).unwrap();
//! assert_eq!(meta2.profile, "doc");
//! assert_eq!(w2.events(), w.events());
//! ```

use crate::packed::RawTraceError;
use crate::{EventRecord, PackedEvent, PackedTrace, PackedWorkload, TraceArena, Workload};
use esp_types::{Addr, Cycle, EventId, EventKindId};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// The four magic bytes opening every `.espt` file.
pub const MAGIC: [u8; 4] = *b"ESPT";
/// The format version this module writes and accepts.
pub const VERSION: u32 = 1;
/// Endianness sentinel: an asymmetric constant whose byte order flips if
/// a writer ever emits native big-endian integers, turning the mistake
/// into a structured [`EsptError::BadEndianTag`] instead of garbage.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;
/// Longest accepted profile name, in bytes.
pub const MAX_NAME_BYTES: usize = 4096;

/// Section id of the provenance metadata section.
pub const SECTION_META: u32 = 1;
/// Section id of the fixed-size event index.
pub const SECTION_EVENTS: u32 = 2;
/// Section id of the concatenated kind bytes.
pub const SECTION_KINDS: u32 = 3;
/// Section id of the concatenated operand words.
pub const SECTION_OPS: u32 = 4;

/// Bytes of one EVENTS-section record.
const EVENT_RECORD_BYTES: u64 = 96;
/// Fixed META bytes besides the variable-length name.
const META_FIXED_BYTES: u64 = 2 + 8 * 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Event-record flag: the runtime's order prediction was wrong.
const FLAG_ORDER_MISPREDICTED: u8 = 0b01;
/// Event-record flag: the event carries a divergence point and tail.
const FLAG_HAS_DIVERGE: u8 = 0b10;

/// Provenance carried in a trace file's META section: which profile the
/// trace came from, at what instruction scale, from which generator (or
/// capture) seed. Imports key the process-wide arena memo with exactly
/// this triple, so an imported trace substitutes for the generated one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// The profile or capture name (lowercase by convention).
    pub profile: String,
    /// Target dynamic instructions the trace was built for.
    pub scale: u64,
    /// Generation (or capture) seed.
    pub seed: u64,
}

/// A structured decode (or encode) failure. Every variant names what was
/// violated; none of them ever panics or over-allocates, which the
/// corrupt-input fuzzer in `esp-check` asserts over thousands of mutated
/// files.
#[derive(Debug)]
#[non_exhaustive]
pub enum EsptError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not the one this reader speaks.
    UnsupportedVersion {
        /// The version this reader expects.
        expected: u32,
        /// The version the file declares.
        found: u32,
    },
    /// The endianness sentinel is wrong (a byte-swapped writer).
    BadEndianTag {
        /// The value actually found.
        found: u32,
    },
    /// The section table is malformed (wrong count, id, or order).
    BadSectionTable {
        /// What exactly is wrong.
        detail: String,
    },
    /// The input ended before a declared structure was complete.
    Truncated {
        /// The structure being read.
        what: &'static str,
        /// Bytes the structure needs.
        needed: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// The META section is malformed.
    BadMeta {
        /// What exactly is wrong.
        detail: String,
    },
    /// An event record violates a per-event invariant.
    BadEventRecord {
        /// The offending event index.
        event: u64,
        /// What exactly is wrong.
        detail: String,
    },
    /// A stream's raw arrays fail [`PackedTrace::from_raw_parts`]
    /// validation.
    BadTrace {
        /// The owning event index.
        event: u64,
        /// `"actual"` or `"spec_tail"`.
        stream: &'static str,
        /// The structural defect.
        source: RawTraceError,
    },
    /// Two declared quantities that must agree do not.
    CountMismatch {
        /// The quantity being cross-checked.
        what: &'static str,
        /// The value the header or index declares.
        declared: u64,
        /// The value implied by the payload.
        found: u64,
    },
    /// The footer checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum computed over the bytes read.
        computed: u64,
        /// Checksum stored in the footer.
        stored: u64,
    },
    /// Bytes follow the footer.
    TrailingBytes {
        /// How many extra bytes were found.
        extra: u64,
    },
    /// A size field exceeds the format's sanity limit.
    Oversized {
        /// The field being limited.
        what: &'static str,
        /// The limit.
        limit: u64,
        /// The declared value.
        found: u64,
    },
}

impl std::fmt::Display for EsptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EsptError::Io(e) => write!(f, "i/o error: {e}"),
            EsptError::BadMagic { found } => {
                write!(f, "not an ESPT file: magic {found:02x?} != {MAGIC:02x?}")
            }
            EsptError::UnsupportedVersion { expected, found } => {
                write!(f, "unsupported ESPT version: expected {expected}, found {found}")
            }
            EsptError::BadEndianTag { found } => write!(
                f,
                "bad endianness tag {found:#010x} (expected {ENDIAN_TAG:#010x}; \
                 file written with non-little-endian integers?)"
            ),
            EsptError::BadSectionTable { detail } => write!(f, "bad section table: {detail}"),
            EsptError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {got}")
            }
            EsptError::BadMeta { detail } => write!(f, "bad META section: {detail}"),
            EsptError::BadEventRecord { event, detail } => {
                write!(f, "bad event record {event}: {detail}")
            }
            EsptError::BadTrace { event, stream, source } => {
                write!(f, "bad {stream} trace of event {event}: {source}")
            }
            EsptError::CountMismatch { what, declared, found } => {
                write!(f, "{what} mismatch: declared {declared}, found {found}")
            }
            EsptError::ChecksumMismatch { computed, stored } => write!(
                f,
                "checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            EsptError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the checksum footer")
            }
            EsptError::Oversized { what, limit, found } => {
                write!(f, "{what} too large: {found} exceeds the limit of {limit}")
            }
        }
    }
}

impl std::error::Error for EsptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EsptError::Io(e) => Some(e),
            EsptError::BadTrace { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for EsptError {
    fn from(e: io::Error) -> Self {
        EsptError::Io(e)
    }
}

#[inline]
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------- writer

struct HashWriter<W: Write> {
    inner: W,
    hash: u64,
    written: u64,
}

impl<W: Write> HashWriter<W> {
    fn new(inner: W) -> Self {
        HashWriter { inner, hash: FNV_OFFSET, written: 0 }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), EsptError> {
        self.inner.write_all(bytes)?;
        self.hash = fnv1a(self.hash, bytes);
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn put_u16(&mut self, v: u16) -> Result<(), EsptError> {
        self.put(&v.to_le_bytes())
    }

    fn put_u32(&mut self, v: u32) -> Result<(), EsptError> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> Result<(), EsptError> {
        self.put(&v.to_le_bytes())
    }
}

/// Serialises `workload` (with its provenance `meta`) to `w` in ESPT v1,
/// streaming section by section. Returns the total bytes written,
/// footer included.
///
/// # Errors
///
/// Returns [`EsptError::Io`] on write failure, [`EsptError::Oversized`]
/// for an over-long profile name, and [`EsptError::BadEventRecord`] if
/// the workload's event ids are not the dense `0..n` sequence the format
/// (and the simulator's event queue) requires.
pub fn write<W: Write>(w: W, meta: &TraceMeta, workload: &PackedWorkload) -> Result<u64, EsptError> {
    let name = meta.profile.as_bytes();
    if name.len() > MAX_NAME_BYTES {
        return Err(EsptError::Oversized {
            what: "profile name",
            limit: MAX_NAME_BYTES as u64,
            found: name.len() as u64,
        });
    }
    let records = workload.events();
    let arena = workload.arena();
    for (i, r) in records.iter().enumerate() {
        if r.id.index() != i as u64 {
            return Err(EsptError::BadEventRecord {
                event: i as u64,
                detail: format!("id {} is not its schedule position {i}", r.id.index()),
            });
        }
    }

    let n = records.len() as u64;
    let mut kinds_len: u64 = 0;
    let mut ops_words: u64 = 0;
    for i in 0..arena.len() {
        let ev = arena.event(i);
        kinds_len += (ev.actual().kind_bytes().len() + ev.spec_tail().kind_bytes().len()) as u64;
        ops_words += (ev.actual().op_words().len() + ev.spec_tail().op_words().len()) as u64;
    }

    let mut hw = HashWriter::new(w);
    hw.put(&MAGIC)?;
    hw.put_u32(VERSION)?;
    hw.put_u32(ENDIAN_TAG)?;
    hw.put_u32(4)?; // section count
    for (id, len) in [
        (SECTION_META, META_FIXED_BYTES + name.len() as u64),
        (SECTION_EVENTS, n * EVENT_RECORD_BYTES),
        (SECTION_KINDS, kinds_len),
        (SECTION_OPS, ops_words * 8),
    ] {
        hw.put_u32(id)?;
        hw.put_u64(len)?;
    }

    // META
    hw.put_u16(name.len() as u16)?;
    hw.put(name)?;
    hw.put_u64(meta.scale)?;
    hw.put_u64(meta.seed)?;
    hw.put_u64(n)?;
    hw.put_u64(workload.approx_total_instructions())?;

    // EVENTS
    for (i, r) in records.iter().enumerate() {
        let ev = arena.event(i);
        let mut flags = 0u8;
        if r.order_mispredicted {
            flags |= FLAG_ORDER_MISPREDICTED;
        }
        if ev.diverge_at().is_some() {
            flags |= FLAG_HAS_DIVERGE;
        }
        hw.put_u32(r.kind.index())?;
        hw.put(&[flags, 0, 0, 0])?;
        hw.put_u64(r.handler_pc.as_u64())?;
        hw.put_u64(r.arg_addr.as_u64())?;
        hw.put_u64(r.approx_len)?;
        hw.put_u64(r.post_time.as_u64())?;
        hw.put_u64(ev.diverge_at().unwrap_or(0))?;
        for t in [ev.actual(), ev.spec_tail()] {
            hw.put_u64(t.start_pc())?;
            hw.put_u64(t.kind_bytes().len() as u64)?;
            hw.put_u64(t.op_words().len() as u64)?;
        }
    }

    // KINDS
    for i in 0..arena.len() {
        let ev = arena.event(i);
        hw.put(ev.actual().kind_bytes())?;
        hw.put(ev.spec_tail().kind_bytes())?;
    }

    // OPS
    let mut buf = Vec::with_capacity(64 * 1024);
    for i in 0..arena.len() {
        let ev = arena.event(i);
        for t in [ev.actual(), ev.spec_tail()] {
            for &op in t.op_words() {
                buf.extend_from_slice(&op.to_le_bytes());
                if buf.len() >= 64 * 1024 {
                    hw.put(&buf)?;
                    buf.clear();
                }
            }
        }
    }
    if !buf.is_empty() {
        hw.put(&buf)?;
    }

    // Footer: the checksum of everything before it.
    let checksum = hw.hash;
    hw.put_u64(checksum)?;
    hw.inner.flush()?;
    Ok(hw.written)
}

/// [`write()`] to a freshly created (truncated) file at `path`, buffered.
///
/// # Errors
///
/// As [`write()`], plus [`EsptError::Io`] from file creation.
pub fn write_path<P: AsRef<Path>>(
    path: P,
    meta: &TraceMeta,
    workload: &PackedWorkload,
) -> Result<u64, EsptError> {
    let file = std::fs::File::create(path)?;
    write(io::BufWriter::new(file), meta, workload)
}

// ---------------------------------------------------------------- reader

struct HashReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashReader<R> {
    fn new(inner: R) -> Self {
        HashReader { inner, hash: FNV_OFFSET }
    }

    /// Fills `buf` exactly, hashing what was read; reports a structured
    /// [`EsptError::Truncated`] carrying how far it got.
    fn fill(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), EsptError> {
        let got = self.fill_raw(buf)?;
        if got < buf.len() {
            return Err(EsptError::Truncated {
                what,
                needed: buf.len() as u64,
                got: got as u64,
            });
        }
        self.hash = fnv1a(self.hash, buf);
        Ok(())
    }

    /// Reads as much of `buf` as the input holds, without hashing.
    fn fill_raw(&mut self, buf: &mut [u8]) -> Result<usize, EsptError> {
        let mut done = 0;
        while done < buf.len() {
            match self.inner.read(&mut buf[done..]) {
                Ok(0) => break,
                Ok(k) => done += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(EsptError::Io(e)),
            }
        }
        Ok(done)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, EsptError> {
        let mut b = [0u8; 4];
        self.fill(&mut b, what)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, EsptError> {
        let mut b = [0u8; 8];
        self.fill(&mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `len`-byte blob incrementally: allocation grows in bounded
    /// chunks as bytes actually arrive, so a forged astronomical length
    /// costs at most one chunk of memory beyond the real input size.
    fn blob(&mut self, len: u64, what: &'static str) -> Result<Vec<u8>, EsptError> {
        const CHUNK: u64 = 1 << 20;
        let mut v = Vec::new();
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(CHUNK) as usize;
            let old = v.len();
            v.resize(old + n, 0);
            let got = self.fill_raw(&mut v[old..])?;
            self.hash = fnv1a(self.hash, &v[old..old + got]);
            if got < n {
                return Err(EsptError::Truncated {
                    what,
                    needed: len,
                    got: old as u64 + got as u64,
                });
            }
            remaining -= n as u64;
        }
        Ok(v)
    }
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8-byte slice"))
}

/// The per-event stream shapes parsed from an EVENTS record.
struct EventShape {
    diverge_at: Option<u64>,
    actual: (u64, u64, u64),
    tail: (u64, u64, u64),
}

/// Deserialises an ESPT v1 stream into its provenance and a replayable
/// [`PackedWorkload`]. Total over arbitrary input: returns a structured
/// [`EsptError`] for anything malformed, verifying the footer checksum
/// before interpreting the payload.
///
/// # Errors
///
/// Every [`EsptError`] variant is reachable; see the module docs for the
/// validation order.
pub fn read<R: Read>(r: R) -> Result<(TraceMeta, PackedWorkload), EsptError> {
    let mut hr = HashReader::new(r);

    let mut magic = [0u8; 4];
    hr.fill(&mut magic, "magic")?;
    if magic != MAGIC {
        return Err(EsptError::BadMagic { found: magic });
    }
    let version = hr.u32("version")?;
    if version != VERSION {
        return Err(EsptError::UnsupportedVersion { expected: VERSION, found: version });
    }
    let endian = hr.u32("endian tag")?;
    if endian != ENDIAN_TAG {
        return Err(EsptError::BadEndianTag { found: endian });
    }
    let n_sections = hr.u32("section count")?;
    if n_sections != 4 {
        return Err(EsptError::BadSectionTable {
            detail: format!("v1 has exactly 4 sections, table declares {n_sections}"),
        });
    }
    let mut lens = [0u64; 4];
    for (slot, want_id) in [SECTION_META, SECTION_EVENTS, SECTION_KINDS, SECTION_OPS]
        .into_iter()
        .enumerate()
    {
        let id = hr.u32("section id")?;
        if id != want_id {
            return Err(EsptError::BadSectionTable {
                detail: format!("section {slot}: id {id}, v1 requires {want_id} here"),
            });
        }
        lens[slot] = hr.u64("section length")?;
    }
    let [meta_len, events_len, kinds_len, ops_len] = lens;
    if meta_len > META_FIXED_BYTES + MAX_NAME_BYTES as u64 {
        return Err(EsptError::Oversized {
            what: "META section",
            limit: META_FIXED_BYTES + MAX_NAME_BYTES as u64,
            found: meta_len,
        });
    }

    // Pull the payload through the hasher, checksum first: random
    // corruption must surface as ChecksumMismatch, not as whichever
    // structural check the flipped bit happens to land in.
    let meta_blob = hr.blob(meta_len, "META section")?;
    let events_blob = hr.blob(events_len, "EVENTS section")?;
    let kinds_blob = hr.blob(kinds_len, "KINDS section")?;
    let ops_blob = hr.blob(ops_len, "OPS section")?;
    let computed = hr.hash;
    let mut footer = [0u8; 8];
    let got = hr.fill_raw(&mut footer)?;
    if got < 8 {
        return Err(EsptError::Truncated { what: "checksum footer", needed: 8, got: got as u64 });
    }
    let stored = u64::from_le_bytes(footer);
    if stored != computed {
        return Err(EsptError::ChecksumMismatch { computed, stored });
    }
    let mut extra = 0u64;
    let mut drain = [0u8; 4096];
    loop {
        let k = hr.fill_raw(&mut drain)?;
        extra += k as u64;
        if k < drain.len() {
            break;
        }
    }
    if extra > 0 {
        return Err(EsptError::TrailingBytes { extra });
    }

    // META
    if meta_blob.len() < 2 {
        return Err(EsptError::BadMeta { detail: "shorter than its name-length field".into() });
    }
    let name_len = u16::from_le_bytes([meta_blob[0], meta_blob[1]]) as usize;
    if meta_blob.len() as u64 != META_FIXED_BYTES + name_len as u64 {
        return Err(EsptError::BadMeta {
            detail: format!(
                "section length {} does not match name length {name_len}",
                meta_blob.len()
            ),
        });
    }
    let profile = std::str::from_utf8(&meta_blob[2..2 + name_len])
        .map_err(|e| EsptError::BadMeta { detail: format!("profile name is not UTF-8: {e}") })?
        .to_string();
    let fixed = &meta_blob[2 + name_len..];
    let scale = le_u64(fixed, 0);
    let seed = le_u64(fixed, 8);
    let event_count = le_u64(fixed, 16);
    let total_instructions = le_u64(fixed, 24);

    // EVENTS
    let declared_events_len = event_count
        .checked_mul(EVENT_RECORD_BYTES)
        .ok_or(EsptError::Oversized { what: "event count", limit: u64::MAX / EVENT_RECORD_BYTES, found: event_count })?;
    if events_len != declared_events_len {
        return Err(EsptError::CountMismatch {
            what: "EVENTS section length",
            declared: declared_events_len,
            found: events_len,
        });
    }
    let n = event_count as usize;
    let mut records = Vec::with_capacity(n.min(1 << 20));
    let mut shapes = Vec::with_capacity(n.min(1 << 20));
    let mut sum_kinds = 0u64;
    let mut sum_ops = 0u64;
    let mut sum_approx = 0u64;
    for i in 0..n {
        let b = &events_blob[i * EVENT_RECORD_BYTES as usize..(i + 1) * EVENT_RECORD_BYTES as usize];
        let kind = u32::from_le_bytes(b[0..4].try_into().expect("4-byte slice"));
        let flags = b[4];
        if b[5] != 0 || b[6] != 0 || b[7] != 0 {
            return Err(EsptError::BadEventRecord {
                event: i as u64,
                detail: "non-zero padding bytes".into(),
            });
        }
        if flags & !(FLAG_ORDER_MISPREDICTED | FLAG_HAS_DIVERGE) != 0 {
            return Err(EsptError::BadEventRecord {
                event: i as u64,
                detail: format!("unknown flag bits in {flags:#04x}"),
            });
        }
        let handler_pc = le_u64(b, 8);
        let arg_addr = le_u64(b, 16);
        let approx_len = le_u64(b, 24);
        let post_time = le_u64(b, 32);
        let diverge_raw = le_u64(b, 40);
        let actual = (le_u64(b, 48), le_u64(b, 56), le_u64(b, 64));
        let tail = (le_u64(b, 72), le_u64(b, 80), le_u64(b, 88));
        let has_diverge = flags & FLAG_HAS_DIVERGE != 0;
        if !has_diverge && (diverge_raw != 0 || tail != (0, 0, 0)) {
            return Err(EsptError::BadEventRecord {
                event: i as u64,
                detail: "non-diverging event carries a divergence point or tail".into(),
            });
        }
        if has_diverge && diverge_raw > actual.1 {
            return Err(EsptError::BadEventRecord {
                event: i as u64,
                detail: format!(
                    "divergence point {diverge_raw} beyond the actual stream's {} instructions",
                    actual.1
                ),
            });
        }
        for (what, v) in [("kind bytes", actual.1), ("operand words", actual.2), ("tail kind bytes", tail.1), ("tail operand words", tail.2)] {
            if v > u64::MAX / 8 {
                return Err(EsptError::Oversized { what, limit: u64::MAX / 8, found: v });
            }
        }
        sum_kinds = sum_kinds
            .checked_add(actual.1)
            .and_then(|s| s.checked_add(tail.1))
            .ok_or(EsptError::Oversized { what: "total kind bytes", limit: u64::MAX, found: u64::MAX })?;
        sum_ops = sum_ops
            .checked_add(actual.2)
            .and_then(|s| s.checked_add(tail.2))
            .ok_or(EsptError::Oversized { what: "total operand words", limit: u64::MAX, found: u64::MAX })?;
        sum_approx = sum_approx.wrapping_add(approx_len);
        records.push(EventRecord {
            id: EventId::new(i as u64),
            kind: EventKindId::new(kind),
            handler_pc: Addr::new(handler_pc),
            arg_addr: Addr::new(arg_addr),
            approx_len,
            post_time: Cycle::new(post_time),
            order_mispredicted: flags & FLAG_ORDER_MISPREDICTED != 0,
        });
        shapes.push(EventShape {
            diverge_at: has_diverge.then_some(diverge_raw),
            actual,
            tail,
        });
    }
    if sum_kinds != kinds_len {
        return Err(EsptError::CountMismatch {
            what: "KINDS section length",
            declared: kinds_len,
            found: sum_kinds,
        });
    }
    let ops_bytes = sum_ops
        .checked_mul(8)
        .ok_or(EsptError::Oversized { what: "total operand words", limit: u64::MAX / 8, found: sum_ops })?;
    if ops_bytes != ops_len {
        return Err(EsptError::CountMismatch {
            what: "OPS section length",
            declared: ops_len,
            found: ops_bytes,
        });
    }
    if total_instructions != sum_approx {
        return Err(EsptError::CountMismatch {
            what: "total instructions",
            declared: total_instructions,
            found: sum_approx,
        });
    }

    // KINDS + OPS: carve each event's streams out of the blobs and
    // validate them into packed traces.
    let mut events = Vec::with_capacity(n.min(1 << 20));
    let mut koff = 0usize;
    let mut ooff = 0usize;
    let build = |event: u64,
                 stream: &'static str,
                 (start_pc, n_kinds, n_ops): (u64, u64, u64),
                 koff: &mut usize,
                 ooff: &mut usize|
     -> Result<PackedTrace, EsptError> {
        let kinds = kinds_blob[*koff..*koff + n_kinds as usize].to_vec();
        *koff += n_kinds as usize;
        let mut ops = Vec::with_capacity(n_ops as usize);
        for w in 0..n_ops as usize {
            ops.push(le_u64(&ops_blob, *ooff + w * 8));
        }
        *ooff += n_ops as usize * 8;
        PackedTrace::from_raw_parts(start_pc, kinds, ops)
            .map_err(|source| EsptError::BadTrace { event, stream, source })
    };
    for (i, shape) in shapes.iter().enumerate() {
        let actual = build(i as u64, "actual", shape.actual, &mut koff, &mut ooff)?;
        let tail = build(i as u64, "spec_tail", shape.tail, &mut koff, &mut ooff)?;
        events.push(PackedEvent::new(actual, shape.diverge_at, tail));
    }

    let meta = TraceMeta { profile, scale, seed };
    let workload = PackedWorkload::new(records, Arc::new(TraceArena::new(events)), total_instructions);
    Ok((meta, workload))
}

/// [`read`] from the file at `path`, buffered.
///
/// # Errors
///
/// As [`read`], plus [`EsptError::Io`] from opening the file.
pub fn read_path<P: AsRef<Path>>(path: P) -> Result<(TraceMeta, PackedWorkload), EsptError> {
    let file = std::fs::File::open(path)?;
    read(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    /// A two-event hand-built workload: one plain event, one diverging.
    fn sample() -> PackedWorkload {
        let plain = vec![
            Instr::alu(a(0x1000)),
            Instr::load(a(0x1004), a(0x8000_0000), true),
            Instr::cond_branch(a(0x1008), true, a(0x1000)),
        ];
        let actual = vec![
            Instr::alu(a(0x2000)),
            Instr::store(a(0x2004), a(0x9000)),
            Instr::call(a(0x2008), a(0x3000)),
            Instr::ret(a(0x3000), a(0x200c)),
        ];
        let mut spec = actual[..2].to_vec();
        spec.push(Instr::alu(a(0x4444)));
        let records = vec![
            EventRecord {
                id: EventId::new(0),
                kind: EventKindId::new(3),
                handler_pc: a(0x1000),
                arg_addr: a(0x8000_0000),
                approx_len: 3,
                post_time: Cycle::ZERO,
                order_mispredicted: false,
            },
            EventRecord {
                id: EventId::new(1),
                kind: EventKindId::new(1),
                handler_pc: a(0x2000),
                arg_addr: a(0x9000),
                approx_len: 4,
                post_time: Cycle::new(17),
                order_mispredicted: true,
            },
        ];
        let events = vec![
            PackedEvent::new(PackedTrace::from_instrs(&plain), None, PackedTrace::new()),
            PackedEvent::new(
                PackedTrace::from_instrs(&actual),
                Some(2),
                PackedTrace::from_instrs(&spec[2..]),
            ),
        ];
        PackedWorkload::new(records, Arc::new(TraceArena::new(events)), 7)
    }

    fn meta() -> TraceMeta {
        TraceMeta { profile: "sample".into(), scale: 7, seed: 99 }
    }

    fn encode(w: &PackedWorkload) -> Vec<u8> {
        let mut bytes = Vec::new();
        let n = write(&mut bytes, &meta(), w).unwrap();
        assert_eq!(n, bytes.len() as u64);
        bytes
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let w = sample();
        let bytes = encode(&w);
        let (m, w2) = read(&bytes[..]).unwrap();
        assert_eq!(m, meta());
        assert_eq!(w2.events(), w.events());
        assert_eq!(w2.approx_total_instructions(), w.approx_total_instructions());
        for i in 0..w.arena().len() {
            assert_eq!(w2.arena().event(i), w.arena().event(i), "event {i}");
        }
    }

    #[test]
    fn reencode_is_byte_identical() {
        let w = sample();
        let bytes = encode(&w);
        let (m, w2) = read(&bytes[..]).unwrap();
        let mut again = Vec::new();
        write(&mut again, &m, &w2).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(read(&bytes[..]), Err(EsptError::BadMagic { found }) if found[0] == b'X'));
    }

    #[test]
    fn rejects_future_version_naming_both() {
        let mut bytes = encode(&sample());
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        let err = read(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, EsptError::UnsupportedVersion { expected: 1, found: 2 }),
            "got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("expected 1") && msg.contains("found 2"), "{msg}");
    }

    #[test]
    fn rejects_byte_swapped_endian_tag() {
        let mut bytes = encode(&sample());
        bytes[8..12].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        assert!(matches!(read(&bytes[..]), Err(EsptError::BadEndianTag { .. })));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            let err = read(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, EsptError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_flipped_payload_bits_via_checksum() {
        let bytes = encode(&sample());
        // Flip one bit in each section's territory (past the 64-byte
        // header+table, whose fields have their own structured errors).
        for &pos in &[70usize, bytes.len() / 2, bytes.len() - 12] {
            let mut b = bytes.clone();
            b[pos] ^= 0x40;
            let err = read(&b[..]).unwrap_err();
            assert!(
                matches!(err, EsptError::ChecksumMismatch { .. }),
                "flip at {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode(&sample());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(read(&bytes[..]), Err(EsptError::TrailingBytes { extra: 4 })));
    }

    #[test]
    fn rejects_oversized_declared_section_without_allocating() {
        let bytes = encode(&sample());
        // Forge the KINDS section length to 1 TiB and leave the rest
        // untouched: the reader must fault on truncation after the real
        // bytes run out, not attempt the allocation up front.
        let mut b = bytes.clone();
        let kinds_len_off = 4 + 4 + 4 + 4 + 2 * 12 + 4; // header + 2 entries + id
        b[kinds_len_off..kinds_len_off + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let err = read(&b[..]).unwrap_err();
        assert!(matches!(err, EsptError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn empty_workload_roundtrips() {
        let w = PackedWorkload::new(Vec::new(), Arc::new(TraceArena::new(Vec::new())), 0);
        let mut bytes = Vec::new();
        write(&mut bytes, &meta(), &w).unwrap();
        let (m, w2) = read(&bytes[..]).unwrap();
        assert_eq!(m, meta());
        assert!(w2.events().is_empty());
    }

    #[test]
    fn writer_rejects_non_dense_ids() {
        let w = sample();
        let mut records = w.events().to_vec();
        records[1].id = EventId::new(5);
        let bad = PackedWorkload::new(records, w.arena().clone(), 7);
        let err = write(&mut Vec::new(), &meta(), &bad).unwrap_err();
        assert!(matches!(err, EsptError::BadEventRecord { event: 1, .. }), "{err:?}");
    }

    #[test]
    fn display_is_informative() {
        let e = EsptError::UnsupportedVersion { expected: 1, found: 9 };
        assert_eq!(e.to_string(), "unsupported ESPT version: expected 1, found 9");
        let e = EsptError::Truncated { what: "magic", needed: 4, got: 1 };
        assert!(e.to_string().contains("magic"));
    }
}
