//! One dynamic micro-op.

use esp_types::Addr;

/// The operation class of an [`Instr`], with its resolved operands.
///
/// Branch variants carry the *actual* dynamic outcome (taken/target), the
/// way a post-retirement trace would. The simulator's branch predictor makes
/// its own prediction and compares against these outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// An arithmetic or logic operation (no memory or control side effects).
    Alu,
    /// A load from `addr`.
    Load {
        /// The byte address read.
        addr: Addr,
        /// Whether the load's *address* depends on a recent in-flight load
        /// (pointer chasing). Runahead execution cannot pre-execute such
        /// loads when the producer is the blocking miss, which is the
        /// paper's "limited by the number of independent instructions"
        /// critique of runahead (§1).
        chained: bool,
    },
    /// A store to `addr`.
    Store {
        /// The byte address written.
        addr: Addr,
    },
    /// A conditional direct branch.
    CondBranch {
        /// Whether the branch was actually taken.
        taken: bool,
        /// The taken-path target (the fall-through is `pc + 4`).
        target: Addr,
    },
    /// An unconditional indirect branch (e.g. a computed goto); always
    /// taken, target comes from data.
    IndirectBranch {
        /// The actual dynamic target.
        target: Addr,
    },
    /// An indirect call (e.g. a JS method dispatch): like
    /// [`InstrKind::IndirectBranch`] but pushes `pc + 4` on the return
    /// stack.
    IndirectCall {
        /// The actual dynamic callee.
        target: Addr,
    },
    /// A direct call; always taken, pushes `pc + 4` on the return stack.
    Call {
        /// The callee entry point.
        target: Addr,
    },
    /// A return; always taken, target is the matching call's return address.
    Return {
        /// The actual return address.
        target: Addr,
    },
}

/// One dynamic instruction: a program counter plus an [`InstrKind`].
///
/// Instructions in this model occupy 4 bytes each, so `pc + 4` is the
/// sequential successor; cache behaviour only depends on the 64-byte line
/// of `pc`, so the fixed width loses nothing the study measures.
///
/// # Examples
///
/// ```
/// use esp_trace::Instr;
/// use esp_types::Addr;
///
/// let i = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x80));
/// assert!(i.is_branch());
/// assert_eq!(i.next_pc(), Addr::new(0x80));
/// assert_eq!(Instr::alu(Addr::new(0x100)).next_pc(), Addr::new(0x104));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The instruction's address.
    pub pc: Addr,
    /// What the instruction does.
    pub kind: InstrKind,
}

/// The architectural instruction width in bytes.
pub const INSTR_BYTES: u64 = 4;

impl Instr {
    /// Creates an ALU instruction.
    pub const fn alu(pc: Addr) -> Self {
        Instr { pc, kind: InstrKind::Alu }
    }

    /// Creates a load of `addr`; `chained` marks pointer-chasing loads.
    pub const fn load(pc: Addr, addr: Addr, chained: bool) -> Self {
        Instr { pc, kind: InstrKind::Load { addr, chained } }
    }

    /// Creates a store to `addr`.
    pub const fn store(pc: Addr, addr: Addr) -> Self {
        Instr { pc, kind: InstrKind::Store { addr } }
    }

    /// Creates a conditional branch with its actual outcome.
    pub const fn cond_branch(pc: Addr, taken: bool, target: Addr) -> Self {
        Instr { pc, kind: InstrKind::CondBranch { taken, target } }
    }

    /// Creates an indirect branch with its actual target.
    pub const fn indirect(pc: Addr, target: Addr) -> Self {
        Instr { pc, kind: InstrKind::IndirectBranch { target } }
    }

    /// Creates an indirect call with its actual callee.
    pub const fn indirect_call(pc: Addr, target: Addr) -> Self {
        Instr { pc, kind: InstrKind::IndirectCall { target } }
    }

    /// Creates a direct call.
    pub const fn call(pc: Addr, target: Addr) -> Self {
        Instr { pc, kind: InstrKind::Call { target } }
    }

    /// Creates a return to `target`.
    pub const fn ret(pc: Addr, target: Addr) -> Self {
        Instr { pc, kind: InstrKind::Return { target } }
    }

    /// Returns `true` for any control-flow instruction.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(
            self.kind,
            InstrKind::CondBranch { .. }
                | InstrKind::IndirectBranch { .. }
                | InstrKind::IndirectCall { .. }
                | InstrKind::Call { .. }
                | InstrKind::Return { .. }
        )
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. } | InstrKind::Store { .. })
    }

    /// Returns the data address for loads and stores, `None` otherwise.
    #[inline]
    pub fn mem_addr(&self) -> Option<Addr> {
        match self.kind {
            InstrKind::Load { addr, .. } | InstrKind::Store { addr } => Some(addr),
            _ => None,
        }
    }

    /// Returns the dynamic next program counter (the address the front end
    /// must fetch after this instruction retires).
    #[inline]
    pub fn next_pc(&self) -> Addr {
        match self.kind {
            InstrKind::Alu | InstrKind::Load { .. } | InstrKind::Store { .. } => {
                self.pc + INSTR_BYTES
            }
            InstrKind::CondBranch { taken, target } => {
                if taken {
                    target
                } else {
                    self.pc + INSTR_BYTES
                }
            }
            InstrKind::IndirectBranch { target }
            | InstrKind::IndirectCall { target }
            | InstrKind::Call { target }
            | InstrKind::Return { target } => target,
        }
    }

    /// Returns whether the branch was taken; `None` for non-branches.
    #[inline]
    pub fn branch_taken(&self) -> Option<bool> {
        match self.kind {
            InstrKind::CondBranch { taken, .. } => Some(taken),
            InstrKind::IndirectBranch { .. }
            | InstrKind::IndirectCall { .. }
            | InstrKind::Call { .. }
            | InstrKind::Return { .. } => Some(true),
            _ => None,
        }
    }

    /// Returns the taken-path target for branches, `None` otherwise.
    pub fn branch_target(&self) -> Option<Addr> {
        match self.kind {
            InstrKind::CondBranch { target, .. }
            | InstrKind::IndirectBranch { target }
            | InstrKind::IndirectCall { target }
            | InstrKind::Call { target }
            | InstrKind::Return { target } => Some(target),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let pc = Addr::new(0x1000);
        assert!(!Instr::alu(pc).is_branch());
        assert!(!Instr::alu(pc).is_mem());
        assert!(Instr::load(pc, Addr::new(8), false).is_mem());
        assert!(Instr::store(pc, Addr::new(8)).is_mem());
        assert!(Instr::cond_branch(pc, false, pc).is_branch());
        assert!(Instr::indirect(pc, pc).is_branch());
        assert!(Instr::call(pc, pc).is_branch());
        assert!(Instr::ret(pc, pc).is_branch());
    }

    #[test]
    fn next_pc_sequential() {
        let pc = Addr::new(0x1000);
        assert_eq!(Instr::alu(pc).next_pc(), Addr::new(0x1004));
        assert_eq!(Instr::load(pc, Addr::new(8), false).next_pc(), Addr::new(0x1004));
        assert_eq!(Instr::store(pc, Addr::new(8)).next_pc(), Addr::new(0x1004));
    }

    #[test]
    fn next_pc_branches() {
        let pc = Addr::new(0x1000);
        let t = Addr::new(0x2000);
        assert_eq!(Instr::cond_branch(pc, true, t).next_pc(), t);
        assert_eq!(Instr::cond_branch(pc, false, t).next_pc(), Addr::new(0x1004));
        assert_eq!(Instr::indirect(pc, t).next_pc(), t);
        assert_eq!(Instr::call(pc, t).next_pc(), t);
        assert_eq!(Instr::ret(pc, t).next_pc(), t);
    }

    #[test]
    fn branch_outcomes() {
        let pc = Addr::new(0x10);
        let t = Addr::new(0x20);
        assert_eq!(Instr::cond_branch(pc, true, t).branch_taken(), Some(true));
        assert_eq!(Instr::cond_branch(pc, false, t).branch_taken(), Some(false));
        assert_eq!(Instr::indirect(pc, t).branch_taken(), Some(true));
        assert_eq!(Instr::alu(pc).branch_taken(), None);
        assert_eq!(Instr::cond_branch(pc, false, t).branch_target(), Some(t));
        assert_eq!(Instr::alu(pc).branch_target(), None);
        assert_eq!(Instr::load(pc, t, true).mem_addr(), Some(t));
        assert_eq!(Instr::alu(pc).mem_addr(), None);
    }
}
