//! Micro-op and event-trace model for the ESP simulator.
//!
//! The ESP study (ISCA 2015) is trace driven: the authors recorded
//! instruction traces of Chromium's renderer process, one trace per
//! JavaScript event, plus a second *speculative* trace per event recorded in
//! a forked-off renderer (the stream an ESP pre-execution would see). This
//! crate defines the vocabulary those traces are expressed in:
//!
//! * [`Instr`] / [`InstrKind`] — one dynamic micro-op: ALU, load, store, or
//!   one of the branch flavours, with resolved addresses and outcomes.
//! * [`EventRecord`] — static metadata for one dynamic event: handler entry
//!   point, argument-object address, posting time, and the
//!   order-misprediction flag of §4.5 of the paper.
//! * [`EventStream`] — a resumable cursor over one event's instruction
//!   stream. Resumability is load-bearing: ESP pre-execution is re-entrant
//!   (§3.4), so the simulator suspends and resumes these cursors as the
//!   processor bounces between normal and ESP modes.
//! * [`Workload`] — a full program: an ordered schedule of events, each of
//!   which can be opened as an *actual* stream (normal execution) or a
//!   *speculative* stream (what a pre-execution would observe, which may
//!   diverge).
//! * [`VecEventStream`] / [`record_stream`] — in-memory trace replay and
//!   capture, used heavily by tests.
//! * [`PackedTrace`] / [`TraceArena`] / [`PackedWorkload`] — the
//!   decode-once, replay-many form: instruction streams materialised once
//!   into compact struct-of-arrays storage and replayed by allocation-free
//!   cursors, shared across simulator configurations (see
//!   `docs/PERFORMANCE.md`).
//! * [`espt`] — the versioned on-disk interchange form of a packed
//!   workload (`.espt` files): export a materialised trace once, import
//!   and replay it byte-identically without the generator (see
//!   `docs/TRACE_FORMAT.md`).
//!
//! # Examples
//!
//! ```
//! use esp_trace::{Instr, EventStream, VecEventStream};
//! use esp_types::Addr;
//!
//! let trace = vec![
//!     Instr::alu(Addr::new(0x100)),
//!     Instr::load(Addr::new(0x104), Addr::new(0x8000), false),
//!     Instr::cond_branch(Addr::new(0x108), true, Addr::new(0x100)),
//! ];
//! let mut s = VecEventStream::new(trace);
//! assert!(s.next_instr().is_some());
//! assert_eq!(s.executed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod espt;
mod instr;
mod packed;
mod record;
mod stream;

pub use instr::{Instr, InstrKind, INSTR_BYTES};
pub use packed::{
    kindbits, EventCursor, PackedCursor, PackedEvent, PackedTrace, PackedWorkload, RawStep,
    RawTraceError, TraceArena, WarmSink,
};
pub use record::EventRecord;
pub use stream::{record_stream, EventStream, ForkStream, VecEventStream, Workload};
