//! Decode-once packed traces: a struct-of-arrays instruction store.
//!
//! The generator in `esp-workload` re-derives an event's instruction
//! stream from its seed every time a stream is opened. That is perfect
//! for memory (nothing is stored) but wrong for the evaluation matrix,
//! where the *same* streams are replayed under dozens of machine
//! configurations: the dominant cost of a matrix run becomes stream
//! regeneration, not timing simulation. This module provides the
//! replay-many half of the trade:
//!
//! * [`PackedTrace`] — one instruction stream, packed into parallel
//!   arrays: one *kind byte* per instruction (discriminant + flags) and
//!   one `u64` operand slot per instruction that needs one. Program
//!   counters are not stored at all: within an event a trace is
//!   control-flow consistent (each instruction's `next_pc` is the next
//!   instruction's `pc`), so the cursor re-derives them; the rare
//!   discontinuity is flagged and spills an explicit pc operand.
//! * [`PackedCursor`] — an allocation-free [`EventStream`] over a
//!   packed trace: three integers of state, no heap, `Clone` for cheap
//!   forking.
//! * [`PackedEvent`] — one event's *actual* stream plus, when the event
//!   diverges, the speculative tail from the divergence point onward.
//!   A speculative cursor reads the shared actual arrays up to the
//!   divergence point and then switches to the tail — the prefix is
//!   stored exactly once.
//! * [`TraceArena`] / [`PackedWorkload`] — a whole program materialised
//!   event by event, shared (`Arc`) across every simulator configuration
//!   and worker thread that replays it.
//!
//! Packing is lossless: a cursor reproduces the recorded [`Instr`]
//! sequence bit for bit (the equivalence tests in `esp-bench` assert
//! byte-identical `RunReport`s and JSONL traces against the
//! regenerative walk).
//!
//! # Examples
//!
//! ```
//! use esp_trace::{EventStream, Instr, PackedTrace};
//! use esp_types::Addr;
//!
//! let instrs = vec![
//!     Instr::alu(Addr::new(0x100)),
//!     Instr::load(Addr::new(0x104), Addr::new(0x8000), false),
//!     Instr::cond_branch(Addr::new(0x108), true, Addr::new(0x100)),
//! ];
//! let packed = PackedTrace::from_instrs(&instrs);
//! let mut cursor = packed.cursor();
//! for want in &instrs {
//!     assert_eq!(cursor.next_instr().as_ref(), Some(want));
//! }
//! assert_eq!(cursor.next_instr(), None);
//! ```

use crate::instr::INSTR_BYTES;
use crate::{EventRecord, EventStream, Instr, InstrKind, Workload};
use esp_types::{Addr, EventId};
use std::sync::Arc;

/// A consumer of the functional-warming walk ([`PackedTrace::warm_walk`]):
/// the architectural-state updates a detailed engine would make — cache
/// tags/LRU, predictor tables, prefetcher training — minus all timing.
///
/// The walk is monomorphized over the sink, so a sink with `#[inline]`
/// methods warms at decode speed; instructions that carry no warmable
/// state (ALUs on an already-fetched line) cost one table lookup and two
/// adds.
pub trait WarmSink {
    /// The fetch stream entered instruction-cache line `line`
    /// (`pc / line_bytes`). Called once per run of same-line
    /// instructions, mirroring the detailed engine's fetch dedup.
    fn warm_fetch_line(&mut self, line: u64);
    /// A load at `pc` touched data address `addr`.
    fn warm_load(&mut self, pc: u64, addr: u64);
    /// A store touched data address `addr`.
    fn warm_store(&mut self, addr: u64);
    /// A branch executed; `instr` carries its kind, outcome, and target.
    fn warm_branch(&mut self, instr: &Instr);
}

/// The kind-byte encoding of a [`PackedTrace`], shared with the
/// specialised simulation kernels in `esp-uarch`: the kernel's flat
/// per-kind dispatch table is indexed directly by the low tag bits, so
/// the encoding is part of the crate's public contract.
pub mod kindbits {
    /// Plain ALU work (no operand slot).
    pub const TAG_ALU: u8 = 0;
    /// A load; the flag bit carries `chained`.
    pub const TAG_LOAD: u8 = 1;
    /// A store.
    pub const TAG_STORE: u8 = 2;
    /// A conditional branch; the flag bit carries `taken`.
    pub const TAG_COND: u8 = 3;
    /// An indirect branch.
    pub const TAG_IND_BRANCH: u8 = 4;
    /// An indirect call.
    pub const TAG_IND_CALL: u8 = 5;
    /// A direct call.
    pub const TAG_CALL: u8 = 6;
    /// A return.
    pub const TAG_RET: u8 = 7;
    /// Low bits holding the discriminant tag.
    pub const TAG_MASK: u8 = 0b0000_0111;
    /// Kind-byte flag: `chained` for loads, `taken` for conditional
    /// branches.
    pub const FLAG_BIT: u8 = 0b0000_1000;
    /// Kind-byte flag: this instruction's pc does not follow from the
    /// previous instruction's `next_pc`; an explicit pc operand precedes
    /// the instruction's own operand in the operand array.
    pub const EXPLICIT_PC: u8 = 0b0001_0000;
}
use kindbits::{
    EXPLICIT_PC, FLAG_BIT, TAG_ALU, TAG_CALL, TAG_COND, TAG_IND_BRANCH, TAG_IND_CALL, TAG_LOAD,
    TAG_MASK, TAG_RET, TAG_STORE,
};

/// One instruction decoded to its packed essentials: the raw kind byte,
/// the re-derived pc, and the single operand word (data address for
/// loads/stores, branch target for control flow, 0 for ALUs). The
/// specialised kernels consume this instead of a 32-byte [`Instr`]; the
/// mapping back to an `Instr` is total and lossless (see
/// [`PackedCursor::next`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawStep {
    /// The kind byte ([`kindbits`] tag + flags as stored).
    pub kind: u8,
    /// The instruction's program counter.
    pub pc: u64,
    /// The operand word; 0 for ALU instructions.
    pub op: u64,
}

impl RawStep {
    /// The total mapping back to a decoded [`Instr`] — exactly what
    /// [`PackedCursor::next`] would have produced for this step. The
    /// specialised kernels use it to materialise instructions only where
    /// a consumer needs the full form (the branch predictor).
    #[inline(always)]
    pub fn to_instr(&self) -> Instr {
        let pc = Addr::new(self.pc);
        let op = Addr::new(self.op);
        let flag = self.kind & FLAG_BIT != 0;
        match self.kind & TAG_MASK {
            TAG_ALU => Instr::alu(pc),
            TAG_LOAD => Instr::load(pc, op, flag),
            TAG_STORE => Instr::store(pc, op),
            TAG_COND => Instr::cond_branch(pc, flag, op),
            TAG_IND_BRANCH => Instr::indirect(pc, op),
            TAG_IND_CALL => Instr::indirect_call(pc, op),
            TAG_CALL => Instr::call(pc, op),
            _ => Instr::ret(pc, op),
        }
    }
}

/// A structural defect found while validating raw packed arrays
/// ([`PackedTrace::from_raw_parts`]) — the decode-side contract of the
/// on-disk ESPT format ([`crate::espt`]).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RawTraceError {
    /// A kind byte set one of the reserved high bits (5..=7), which v1
    /// of the encoding defines as zero.
    ReservedKindBits {
        /// Index of the offending instruction.
        index: u64,
        /// The raw kind byte.
        kind: u8,
    },
    /// The operand array ran out before the kind bytes' demand was met.
    MissingOperands {
        /// Operand slots the kind bytes consume.
        expected: u64,
        /// Operand words actually present.
        found: u64,
    },
    /// The operand array holds words no kind byte consumes.
    ExtraOperands {
        /// Operand slots the kind bytes consume.
        expected: u64,
        /// Operand words actually present.
        found: u64,
    },
    /// Re-deriving program counters overflowed the 64-bit address space;
    /// no generated or recorded trace does this, so the input is corrupt.
    PcOverflow {
        /// Index of the instruction whose sequential pc overflowed.
        index: u64,
    },
}

impl std::fmt::Display for RawTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RawTraceError::ReservedKindBits { index, kind } => {
                write!(f, "instruction {index}: kind byte {kind:#04x} sets reserved bits")
            }
            RawTraceError::MissingOperands { expected, found } => {
                write!(f, "operand array too short: kind bytes demand {expected} words, found {found}")
            }
            RawTraceError::ExtraOperands { expected, found } => {
                write!(f, "operand array too long: kind bytes demand {expected} words, found {found}")
            }
            RawTraceError::PcOverflow { index } => {
                write!(f, "instruction {index}: sequential pc overflows the address space")
            }
        }
    }
}

impl std::error::Error for RawTraceError {}

/// One instruction stream in struct-of-arrays form.
///
/// Layout: `kinds` holds one byte per instruction; `ops` holds one `u64`
/// per operand in stream order — an explicit pc first when the
/// `EXPLICIT_PC` kind bit is set, then the data address (loads/stores) or
/// branch target (control flow). ALU instructions consume no operand
/// slot, so a typical generated stream packs to ~5 bytes per
/// instruction versus the 32-byte in-memory [`Instr`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedTrace {
    start_pc: u64,
    kinds: Vec<u8>,
    ops: Vec<u64>,
    /// The pc the next pushed instruction is predicted to have
    /// (build-time state only; replay re-derives it).
    expect_pc: u64,
}

impl PackedTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PackedTrace::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, i: &Instr) {
        let pc = i.pc.as_u64();
        let explicit = if self.kinds.is_empty() {
            self.start_pc = pc;
            false
        } else {
            pc != self.expect_pc
        };
        let (tag, flag, op) = match i.kind {
            InstrKind::Alu => (TAG_ALU, false, None),
            InstrKind::Load { addr, chained } => (TAG_LOAD, chained, Some(addr.as_u64())),
            InstrKind::Store { addr } => (TAG_STORE, false, Some(addr.as_u64())),
            InstrKind::CondBranch { taken, target } => (TAG_COND, taken, Some(target.as_u64())),
            InstrKind::IndirectBranch { target } => (TAG_IND_BRANCH, false, Some(target.as_u64())),
            InstrKind::IndirectCall { target } => (TAG_IND_CALL, false, Some(target.as_u64())),
            InstrKind::Call { target } => (TAG_CALL, false, Some(target.as_u64())),
            InstrKind::Return { target } => (TAG_RET, false, Some(target.as_u64())),
        };
        let mut kind = tag;
        if flag {
            kind |= FLAG_BIT;
        }
        if explicit {
            kind |= EXPLICIT_PC;
            self.ops.push(pc);
        }
        if let Some(op) = op {
            self.ops.push(op);
        }
        self.kinds.push(kind);
        self.expect_pc = i.next_pc().as_u64();
    }

    /// Drains `stream` to completion into a packed trace.
    pub fn from_stream(stream: &mut dyn EventStream) -> Self {
        let mut t = PackedTrace::new();
        while let Some(i) = stream.next_instr() {
            t.push(&i);
        }
        t
    }

    /// Packs a recorded instruction slice.
    pub fn from_instrs(instrs: &[Instr]) -> Self {
        let mut t = PackedTrace::new();
        for i in instrs {
            t.push(i);
        }
        t
    }

    /// The pc of the first instruction (0 for an empty trace) — the
    /// anchor every replay cursor re-derives pcs from.
    pub fn start_pc(&self) -> u64 {
        self.start_pc
    }

    /// The raw kind bytes, one per instruction, in the [`kindbits`]
    /// encoding. Together with [`PackedTrace::op_words`] and
    /// [`PackedTrace::start_pc`] this is the complete serialised form of
    /// the trace; [`PackedTrace::from_raw_parts`] is the inverse.
    pub fn kind_bytes(&self) -> &[u8] {
        &self.kinds
    }

    /// The raw operand words in stream order (explicit pcs interleaved
    /// where the [`kindbits::EXPLICIT_PC`] flag is set).
    pub fn op_words(&self) -> &[u64] {
        &self.ops
    }

    /// Reassembles a trace from its raw serialised arrays, validating
    /// the structural invariants replay relies on: no reserved kind
    /// bits, operand supply exactly matching the kind bytes' demand, and
    /// no pc overflow anywhere along the re-derived control flow. A
    /// trace accepted here replays safely with every cursor in this
    /// module and re-serialises to the identical arrays.
    ///
    /// # Errors
    ///
    /// Returns a [`RawTraceError`] naming the first violated invariant.
    pub fn from_raw_parts(start_pc: u64, kinds: Vec<u8>, ops: Vec<u64>) -> Result<Self, RawTraceError> {
        // Demand pass: how many operand words do the kind bytes consume?
        let mut demand: u64 = 0;
        for (i, &kind) in kinds.iter().enumerate() {
            if kind & !(TAG_MASK | FLAG_BIT | EXPLICIT_PC) != 0 {
                return Err(RawTraceError::ReservedKindBits { index: i as u64, kind });
            }
            if kind & EXPLICIT_PC != 0 {
                demand += 1;
            }
            if kind & TAG_MASK != TAG_ALU {
                demand += 1;
            }
        }
        let found = ops.len() as u64;
        if demand > found {
            return Err(RawTraceError::MissingOperands { expected: demand, found });
        }
        if demand < found {
            return Err(RawTraceError::ExtraOperands { expected: demand, found });
        }
        // Replay pass: mirror `PackedCursor::next_raw` with checked
        // arithmetic, landing on the trace's final expected pc. Replay
        // cursors repeat exactly this arithmetic unchecked, so passing
        // here guarantees they cannot overflow.
        let mut pc = start_pc;
        let mut op_idx = 0usize;
        for (i, &kind) in kinds.iter().enumerate() {
            if kind & EXPLICIT_PC != 0 {
                pc = ops[op_idx];
                op_idx += 1;
            }
            let tag = kind & TAG_MASK;
            let op = if tag == TAG_ALU {
                0
            } else {
                let v = ops[op_idx];
                op_idx += 1;
                v
            };
            pc = if tag < TAG_COND || (tag == TAG_COND && kind & FLAG_BIT == 0) {
                pc.checked_add(INSTR_BYTES)
                    .ok_or(RawTraceError::PcOverflow { index: i as u64 })?
            } else {
                op
            };
        }
        Ok(PackedTrace { start_pc, kinds, ops, expect_pc: pc })
    }

    /// The number of instructions stored.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Bytes of heap the packed arrays occupy (capacity, not length —
    /// what the process actually holds resident).
    pub fn resident_bytes(&self) -> u64 {
        (self.kinds.capacity() + self.ops.capacity() * std::mem::size_of::<u64>()) as u64
    }

    /// Trims excess capacity left over from growth during recording.
    pub fn shrink_to_fit(&mut self) {
        self.kinds.shrink_to_fit();
        self.ops.shrink_to_fit();
    }

    /// Opens an allocation-free replay cursor at the start.
    pub fn cursor(&self) -> PackedCursor<'_> {
        PackedCursor { trace: self, pos: 0, op_idx: 0, pc: self.start_pc }
    }

    /// Walks the whole trace feeding architectural state into `sink`
    /// without materialising an [`Instr`] per instruction — the
    /// functional-warming fast path of the sampling mode.
    ///
    /// Only branches are decoded into full instructions (the predictor
    /// needs kind, outcome, and target); loads and stores hand over raw
    /// addresses, and the fetch line is reported once per run of
    /// same-line pcs. Returns the number of instructions walked.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line_bytes` is not a power of two.
    pub fn warm_walk<S: WarmSink>(&self, line_bytes: u64, sink: &mut S) -> u64 {
        self.cursor().warm_walk_bounded(u64::MAX, line_bytes, sink)
    }
}

impl FromIterator<Instr> for PackedTrace {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        let mut t = PackedTrace::new();
        for i in iter {
            t.push(&i);
        }
        t
    }
}

/// An allocation-free [`EventStream`] cursor over a [`PackedTrace`].
///
/// Three words of state: position, operand index, and the re-derived
/// program counter. [`EventStream::fork`] boxes a plain copy, so forking
/// a pre-execution or runahead cursor costs a small fixed allocation
/// instead of cloning a generator (frames, pools, RNG).
#[derive(Clone, Debug)]
pub struct PackedCursor<'a> {
    trace: &'a PackedTrace,
    pos: usize,
    op_idx: usize,
    pc: u64,
}

impl PackedCursor<'_> {
    /// Decodes the next instruction, advancing the cursor.
    ///
    /// `inline(always)`: this is the grain of every simulation loop; when
    /// it stays a call, the `Option<Instr>` return travels through memory
    /// on every one of the run's hundreds of millions of instructions.
    // Deliberately named like `Iterator::next` but not an `Iterator` impl:
    // the simulator drives cursors through `EventStream`, and a borrowing
    // iterator adapter would add nothing but an extra vtable surface.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn next(&mut self) -> Option<Instr> {
        let kind = *self.trace.kinds.get(self.pos)?;
        let mut pc = self.pc;
        if kind & EXPLICIT_PC != 0 {
            pc = self.trace.ops[self.op_idx];
            self.op_idx += 1;
        }
        let pc = Addr::new(pc);
        let flag = kind & FLAG_BIT != 0;
        let mut operand = || {
            let v = Addr::new(self.trace.ops[self.op_idx]);
            self.op_idx += 1;
            v
        };
        let instr = match kind & TAG_MASK {
            TAG_ALU => Instr::alu(pc),
            TAG_LOAD => {
                let addr = operand();
                Instr::load(pc, addr, flag)
            }
            TAG_STORE => Instr::store(pc, operand()),
            TAG_COND => {
                let target = operand();
                Instr::cond_branch(pc, flag, target)
            }
            TAG_IND_BRANCH => Instr::indirect(pc, operand()),
            TAG_IND_CALL => Instr::indirect_call(pc, operand()),
            TAG_CALL => Instr::call(pc, operand()),
            _ => Instr::ret(pc, operand()),
        };
        self.pos += 1;
        self.pc = instr.next_pc().as_u64();
        Some(instr)
    }

    /// Instructions decoded so far.
    pub fn position(&self) -> u64 {
        self.pos as u64
    }

    /// Decodes the next instruction into its packed essentials without
    /// materialising an [`Instr`], advancing the cursor exactly as
    /// [`PackedCursor::next`] would. The kernel-specialised simulation
    /// loops consume this form; `RawStep` and `Instr` are related by a
    /// total, lossless mapping, so a raw walk and a decoded walk observe
    /// the same stream.
    #[inline(always)]
    pub fn next_raw(&mut self) -> Option<RawStep> {
        let kind = *self.trace.kinds.get(self.pos)?;
        if kind & EXPLICIT_PC != 0 {
            self.pc = self.trace.ops[self.op_idx];
            self.op_idx += 1;
        }
        let pc = self.pc;
        let tag = kind & TAG_MASK;
        let op = if tag == TAG_ALU {
            0
        } else {
            let v = self.trace.ops[self.op_idx];
            self.op_idx += 1;
            v
        };
        self.pos += 1;
        // Mirror `Instr::next_pc`: sequential for ALU/load/store and
        // not-taken conditionals, the target otherwise.
        self.pc = if tag < TAG_COND || (tag == TAG_COND && kind & FLAG_BIT == 0) {
            pc + INSTR_BYTES
        } else {
            op
        };
        Some(RawStep { kind, pc, op })
    }

    /// The pc the next decoded instruction would carry, assuming its kind
    /// byte has no [`kindbits::EXPLICIT_PC`] flag (plain-run batching
    /// checks the kind bytes first, which excludes explicit-pc entries).
    #[inline(always)]
    pub fn raw_pc(&self) -> u64 {
        self.pc
    }

    /// The length of the run of *plain* ALU instructions (kind byte
    /// exactly [`kindbits::TAG_ALU`]: no flags, no explicit pc) starting
    /// at the cursor, capped at `max`. The scan is a branch-free byte
    /// sweep over the kind array — the grain-batching probe of the
    /// specialised kernels.
    #[inline(always)]
    pub fn plain_alu_run(&self, max: usize) -> usize {
        let ks = &self.trace.kinds[self.pos.min(self.trace.kinds.len())..];
        let lim = ks.len().min(max);
        let mut n = 0;
        while n < lim && ks[n] == TAG_ALU {
            n += 1;
        }
        n
    }

    /// Skips `n` instructions previously sized with
    /// [`PackedCursor::plain_alu_run`]: plain ALUs consume no operand
    /// slot and advance the pc sequentially, so the cursor state after
    /// the skip equals `n` calls of [`PackedCursor::next`].
    #[inline(always)]
    pub fn skip_plain(&mut self, n: usize) {
        debug_assert!(self.trace.kinds[self.pos..self.pos + n].iter().all(|&k| k == TAG_ALU));
        self.pos += n;
        self.pc += n as u64 * INSTR_BYTES;
    }

    /// Bounded, resumable functional-warming walk: feeds up to
    /// `max_instrs` instructions into `sink` straight off the packed
    /// arrays — no [`Instr`] is materialised except for branches — and
    /// advances the cursor exactly as decoding them with
    /// [`PackedCursor::next`] would. Returns the number of instructions
    /// walked, which falls short of `max_instrs` only at end of trace.
    ///
    /// Fetch lines are reported on line *transitions within this call*;
    /// the first instruction always reports its line, so a sink that
    /// dedups fetch lines itself (as the engine does) sees the same
    /// sequence a per-instruction walk would.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line_bytes` is not a power of two.
    pub fn warm_walk_bounded<S: WarmSink>(
        &mut self,
        max_instrs: u64,
        line_bytes: u64,
        sink: &mut S,
    ) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        let shift = line_bytes.trailing_zeros();
        let mut last_line = u64::MAX;
        let mut walked = 0u64;
        while walked < max_instrs {
            // Batch runs of plain ALUs (kind byte exactly `TAG_ALU`): they
            // carry no operand and advance the pc sequentially, so the only
            // sink traffic is the fetch-line transitions the run crosses —
            // one call per line instead of one decode per instruction. The
            // reported line sequence is identical to the per-instruction
            // walk (sequential pcs enter each line exactly once).
            let cap = (max_instrs - walked).min(u32::MAX as u64) as usize;
            let run = self.plain_alu_run(cap);
            if run > 0 {
                let mut line = self.pc >> shift;
                if line != last_line {
                    sink.warm_fetch_line(line);
                }
                let end_line = (self.pc + (run as u64 - 1) * INSTR_BYTES) >> shift;
                while line < end_line {
                    line += 1;
                    sink.warm_fetch_line(line);
                }
                last_line = end_line;
                self.skip_plain(run);
                walked += run as u64;
                continue;
            }
            let Some(&kind) = self.trace.kinds.get(self.pos) else { break };
            if kind & EXPLICIT_PC != 0 {
                self.pc = self.trace.ops[self.op_idx];
                self.op_idx += 1;
            }
            let line = self.pc >> shift;
            if line != last_line {
                sink.warm_fetch_line(line);
                last_line = line;
            }
            match kind & TAG_MASK {
                TAG_ALU => self.pc += INSTR_BYTES,
                TAG_LOAD => {
                    sink.warm_load(self.pc, self.trace.ops[self.op_idx]);
                    self.op_idx += 1;
                    self.pc += INSTR_BYTES;
                }
                TAG_STORE => {
                    sink.warm_store(self.trace.ops[self.op_idx]);
                    self.op_idx += 1;
                    self.pc += INSTR_BYTES;
                }
                tag => {
                    let target = Addr::new(self.trace.ops[self.op_idx]);
                    self.op_idx += 1;
                    let at = Addr::new(self.pc);
                    let instr = match tag {
                        TAG_COND => Instr::cond_branch(at, kind & FLAG_BIT != 0, target),
                        TAG_IND_BRANCH => Instr::indirect(at, target),
                        TAG_IND_CALL => Instr::indirect_call(at, target),
                        TAG_CALL => Instr::call(at, target),
                        _ => Instr::ret(at, target),
                    };
                    sink.warm_branch(&instr);
                    self.pc = instr.next_pc().as_u64();
                }
            }
            self.pos += 1;
            walked += 1;
        }
        walked
    }

    /// Decode-free fast-forward: advances the cursor past up to
    /// `max_instrs` instructions with no sink, no [`Instr`], and no
    /// fetch-line tracking — just the position, operand-index, and pc
    /// bookkeeping [`PackedCursor::next`] would have performed. Plain-ALU
    /// runs are skipped with a single byte sweep; everything else is a
    /// three-field update per instruction. This is the learned sampling
    /// mode's skipped-grain walk: the cursor (and therefore retirement
    /// and the grain clock) stays exact while the walk touches none of
    /// the operand-derived state a warming walk would.
    pub fn skip_walk(&mut self, max_instrs: u64) -> u64 {
        let mut walked = 0u64;
        while walked < max_instrs {
            let cap = (max_instrs - walked).min(u32::MAX as u64) as usize;
            let run = self.plain_alu_run(cap);
            if run > 0 {
                self.skip_plain(run);
                walked += run as u64;
                continue;
            }
            let Some(&kind) = self.trace.kinds.get(self.pos) else { break };
            if kind & EXPLICIT_PC != 0 {
                self.pc = self.trace.ops[self.op_idx];
                self.op_idx += 1;
            }
            let tag = kind & TAG_MASK;
            if tag == TAG_ALU {
                self.pc += INSTR_BYTES;
            } else {
                let op = self.trace.ops[self.op_idx];
                self.op_idx += 1;
                // Mirror `Instr::next_pc`, as `next_raw` does.
                self.pc = if tag < TAG_COND || (tag == TAG_COND && kind & FLAG_BIT == 0) {
                    self.pc + INSTR_BYTES
                } else {
                    op
                };
            }
            self.pos += 1;
            walked += 1;
        }
        walked
    }

    /// [`PackedCursor::skip_walk`] with a memory-touch observer: fetch
    /// lines (on transitions, as in
    /// [`PackedCursor::warm_walk_bounded`]) and load/store addresses are
    /// reported to `sink`, but **`warm_branch` is never called** — no
    /// [`Instr`] is materialised, which is where most of the observed
    /// walk's cost over a bare fast-forward lives. The operand words are
    /// loaded for cursor advance anyway, so the reporting adds only the
    /// sink calls themselves. Observers that need branch outcomes must
    /// use the full warming walk.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `line_bytes` is not a power of two.
    pub fn skip_walk_observed<S: WarmSink>(
        &mut self,
        max_instrs: u64,
        line_bytes: u64,
        sink: &mut S,
    ) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        let shift = line_bytes.trailing_zeros();
        // Hot loop: cursor state lives in locals (written back once at
        // the end) so the compiler keeps it in registers across the
        // sink calls instead of reloading through `&mut self`.
        let kinds = self.trace.kinds.as_slice();
        let ops = self.trace.ops.as_slice();
        let start = self.pos;
        let mut pos = start;
        let mut op_idx = self.op_idx;
        let mut pc = self.pc;
        let end = start + ((kinds.len() - start.min(kinds.len())) as u64).min(max_instrs) as usize;
        let mut last_line = u64::MAX;
        while pos < end {
            let kind = kinds[pos];
            if kind == TAG_ALU {
                // Plain-ALU run: one fused scan sizes it, the fetch
                // lines it crosses are reported, and the cursor jumps.
                let mut n = pos + 1;
                while n < end && kinds[n] == TAG_ALU {
                    n += 1;
                }
                let run = (n - pos) as u64;
                let mut line = pc >> shift;
                if line != last_line {
                    sink.warm_fetch_line(line);
                }
                let end_line = (pc + (run - 1) * INSTR_BYTES) >> shift;
                while line < end_line {
                    line += 1;
                    sink.warm_fetch_line(line);
                }
                last_line = end_line;
                pc += run * INSTR_BYTES;
                pos = n;
                continue;
            }
            if kind & EXPLICIT_PC != 0 {
                pc = ops[op_idx];
                op_idx += 1;
            }
            let line = pc >> shift;
            if line != last_line {
                sink.warm_fetch_line(line);
                last_line = line;
            }
            let tag = kind & TAG_MASK;
            if tag == TAG_ALU {
                pc += INSTR_BYTES;
            } else {
                let op = ops[op_idx];
                op_idx += 1;
                if tag == TAG_LOAD {
                    sink.warm_load(pc, op);
                    pc += INSTR_BYTES;
                } else if tag == TAG_STORE {
                    sink.warm_store(op);
                    pc += INSTR_BYTES;
                } else {
                    // Branch tags: sequential only for a not-taken
                    // conditional, the target otherwise (as `next_raw`).
                    pc = if tag == TAG_COND && kind & FLAG_BIT == 0 {
                        pc + INSTR_BYTES
                    } else {
                        op
                    };
                }
            }
            pos += 1;
        }
        self.pos = pos;
        self.op_idx = op_idx;
        self.pc = pc;
        (pos - start) as u64
    }
}

impl EventStream for PackedCursor<'_> {
    #[inline]
    fn next_instr(&mut self) -> Option<Instr> {
        self.next()
    }

    #[inline]
    fn executed(&self) -> u64 {
        self.pos as u64
    }

    fn fork(&self) -> Box<dyn EventStream + '_> {
        Box::new(self.clone())
    }

    fn skip_region(&mut self, max_instrs: u64) -> u64 {
        self.skip_walk(max_instrs)
    }

    fn skip_region_observed<S: WarmSink>(
        &mut self,
        max_instrs: u64,
        line_bytes: u64,
        sink: &mut S,
    ) -> u64 {
        self.skip_walk_observed(max_instrs, line_bytes, sink)
    }
}

/// One event's packed streams: the actual trace, and — when the event's
/// pre-execution diverges — the speculative tail from the divergence
/// point onward. The common prefix is stored once, in `actual`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedEvent {
    actual: PackedTrace,
    /// Instruction index at which a speculative view leaves the actual
    /// path, recorded at materialisation time. `None` for the > 98 % of
    /// events whose pre-execution matches reality.
    diverge_at: Option<u64>,
    /// The speculative stream from `diverge_at` onward (empty when the
    /// event never diverges within its budget).
    spec_tail: PackedTrace,
}

impl PackedEvent {
    /// Assembles a packed event. `spec_tail` must hold the speculative
    /// stream's instructions from `diverge_at` onward (callers record it
    /// by skipping `diverge_at` instructions of the speculative stream).
    pub fn new(actual: PackedTrace, diverge_at: Option<u64>, spec_tail: PackedTrace) -> Self {
        PackedEvent { actual, diverge_at, spec_tail }
    }

    /// The event's actual (authoritative) trace.
    pub fn actual(&self) -> &PackedTrace {
        &self.actual
    }

    /// The recorded divergence point, if any.
    pub fn diverge_at(&self) -> Option<u64> {
        self.diverge_at
    }

    /// The recorded speculative tail (empty when the event never
    /// diverges within its budget).
    pub fn spec_tail(&self) -> &PackedTrace {
        &self.spec_tail
    }

    /// Opens a cursor over the actual stream.
    pub fn actual_cursor(&self) -> EventCursor<'_> {
        EventCursor { event: self, seg: self.actual.cursor(), base: 0, speculative: false, in_tail: false }
    }

    /// Opens a cursor over the speculative view: the actual arrays up to
    /// the divergence point, then the speculative tail.
    pub fn speculative_cursor(&self) -> EventCursor<'_> {
        EventCursor { event: self, seg: self.actual.cursor(), base: 0, speculative: true, in_tail: false }
    }

    /// Bytes of heap this event's packed arrays occupy.
    pub fn resident_bytes(&self) -> u64 {
        self.actual.resident_bytes() + self.spec_tail.resident_bytes()
    }
}

/// A resumable cursor over one [`PackedEvent`], in either the actual or
/// the speculative view. Forking (for runahead) copies the cursor; no
/// event state is duplicated.
#[derive(Clone, Debug)]
pub struct EventCursor<'a> {
    event: &'a PackedEvent,
    seg: PackedCursor<'a>,
    /// Instructions emitted before the current segment (0 while reading
    /// the actual arrays; the divergence point once in the tail).
    base: u64,
    speculative: bool,
    in_tail: bool,
}

impl EventCursor<'_> {
    /// Raw twin of [`EventStream::next_instr`] for the specialised
    /// kernels: same divergence handling, no [`Instr`] materialised.
    #[inline(always)]
    pub fn next_raw(&mut self) -> Option<RawStep> {
        if self.speculative && !self.in_tail && Some(self.seg.position()) == self.event.diverge_at
        {
            self.base = self.seg.position();
            self.seg = self.event.spec_tail.cursor();
            self.in_tail = true;
        }
        self.seg.next_raw()
    }

    /// See [`PackedCursor::raw_pc`].
    #[inline(always)]
    pub fn raw_pc(&self) -> u64 {
        self.seg.raw_pc()
    }

    /// See [`PackedCursor::plain_alu_run`]; a speculative cursor's run is
    /// additionally clipped at the divergence point so batching never
    /// skips the segment switch.
    #[inline(always)]
    pub fn plain_run(&self, max: usize) -> usize {
        if self.speculative && !self.in_tail {
            if let Some(d) = self.event.diverge_at {
                let to_diverge = (d - self.seg.position()) as usize;
                return self.seg.plain_alu_run(max.min(to_diverge));
            }
        }
        self.seg.plain_alu_run(max)
    }

    /// See [`PackedCursor::skip_plain`].
    #[inline(always)]
    pub fn skip_plain(&mut self, n: usize) {
        self.seg.skip_plain(n);
    }
}

impl EventStream for EventCursor<'_> {
    #[inline(always)]
    fn next_instr(&mut self) -> Option<Instr> {
        if self.speculative && !self.in_tail && Some(self.seg.position()) == self.event.diverge_at
        {
            // The pre-execution veers off the actual path here; continue
            // in the recorded speculative tail.
            self.base = self.seg.position();
            self.seg = self.event.spec_tail.cursor();
            self.in_tail = true;
        }
        self.seg.next()
    }

    #[inline]
    fn executed(&self) -> u64 {
        self.base + self.seg.position()
    }

    fn fork(&self) -> Box<dyn EventStream + '_> {
        Box::new(self.clone())
    }

    fn warm_region<S: WarmSink>(&mut self, max_instrs: u64, line_bytes: u64, sink: &mut S) -> u64 {
        let mut walked = 0u64;
        while walked < max_instrs {
            let mut budget = max_instrs - walked;
            if self.speculative && !self.in_tail {
                if let Some(d) = self.event.diverge_at {
                    let to_diverge = d - self.seg.position();
                    if to_diverge == 0 {
                        self.base = self.seg.position();
                        self.seg = self.event.spec_tail.cursor();
                        self.in_tail = true;
                    } else {
                        budget = budget.min(to_diverge);
                    }
                }
            }
            let n = self.seg.warm_walk_bounded(budget, line_bytes, sink);
            walked += n;
            if n < budget {
                break;
            }
        }
        walked
    }

    fn skip_region(&mut self, max_instrs: u64) -> u64 {
        let mut walked = 0u64;
        while walked < max_instrs {
            let mut budget = max_instrs - walked;
            if self.speculative && !self.in_tail {
                if let Some(d) = self.event.diverge_at {
                    let to_diverge = d - self.seg.position();
                    if to_diverge == 0 {
                        self.base = self.seg.position();
                        self.seg = self.event.spec_tail.cursor();
                        self.in_tail = true;
                    } else {
                        budget = budget.min(to_diverge);
                    }
                }
            }
            let n = self.seg.skip_walk(budget);
            walked += n;
            if n < budget {
                break;
            }
        }
        walked
    }

    fn skip_region_observed<S: WarmSink>(
        &mut self,
        max_instrs: u64,
        line_bytes: u64,
        sink: &mut S,
    ) -> u64 {
        let mut walked = 0u64;
        while walked < max_instrs {
            let mut budget = max_instrs - walked;
            if self.speculative && !self.in_tail {
                if let Some(d) = self.event.diverge_at {
                    let to_diverge = d - self.seg.position();
                    if to_diverge == 0 {
                        self.base = self.seg.position();
                        self.seg = self.event.spec_tail.cursor();
                        self.in_tail = true;
                    } else {
                        budget = budget.min(to_diverge);
                    }
                }
            }
            let n = self.seg.skip_walk_observed(budget, line_bytes, sink);
            walked += n;
            if n < budget {
                break;
            }
        }
        walked
    }
}

impl<'a> crate::ForkStream for EventCursor<'a> {
    type Forked<'s>
        = EventCursor<'a>
    where
        Self: 's;

    #[inline]
    fn fork_stream(&self) -> EventCursor<'a> {
        self.clone()
    }
}

/// Every event of one workload, packed. Simulations share one arena
/// read-only across all configurations and worker threads.
#[derive(Clone, Debug, Default)]
pub struct TraceArena {
    events: Vec<PackedEvent>,
}

impl TraceArena {
    /// Wraps materialised events (indexed by event id).
    pub fn new(events: Vec<PackedEvent>) -> Self {
        TraceArena { events }
    }

    /// The number of events stored.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the arena holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The packed streams of event `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn event(&self, idx: usize) -> &PackedEvent {
        &self.events[idx]
    }

    /// Total instructions stored across all actual streams.
    pub fn total_instructions(&self) -> u64 {
        self.events.iter().map(|e| e.actual.len() as u64).sum()
    }

    /// Bytes of heap the whole arena occupies.
    pub fn resident_bytes(&self) -> u64 {
        self.events.iter().map(PackedEvent::resident_bytes).sum()
    }
}

/// A [`Workload`] that replays a shared [`TraceArena`] instead of
/// regenerating streams: the decode-once, replay-many form of a
/// generated workload.
///
/// Opening a stream is O(1) and allocation-free apart from the trait
/// object box; the arena is behind an [`Arc`] so clones of the workload
/// (e.g. across worker threads) share the instruction store.
#[derive(Clone, Debug)]
pub struct PackedWorkload {
    records: Vec<EventRecord>,
    arena: Arc<TraceArena>,
    total_instructions: u64,
}

impl PackedWorkload {
    /// Builds a packed workload from its event metadata and arena.
    ///
    /// # Panics
    ///
    /// Panics if `records` and `arena` disagree on the event count.
    pub fn new(records: Vec<EventRecord>, arena: Arc<TraceArena>, total_instructions: u64) -> Self {
        assert_eq!(records.len(), arena.len(), "one packed event per record");
        PackedWorkload { records, arena, total_instructions }
    }

    /// The shared instruction store.
    pub fn arena(&self) -> &Arc<TraceArena> {
        &self.arena
    }

    /// Bytes of heap the shared arena occupies.
    pub fn resident_bytes(&self) -> u64 {
        self.arena.resident_bytes()
    }
}

impl Workload for PackedWorkload {
    fn events(&self) -> &[EventRecord] {
        &self.records
    }

    fn actual_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
        Box::new(self.arena.event(id.index() as usize).actual_cursor())
    }

    fn speculative_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
        Box::new(self.arena.event(id.index() as usize).speculative_cursor())
    }

    fn approx_total_instructions(&self) -> u64 {
        self.total_instructions
    }

    fn as_packed(&self) -> Option<&PackedWorkload> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_stream, VecEventStream};

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    /// A control-flow-consistent stream exercising every kind.
    fn consistent() -> Vec<Instr> {
        vec![
            Instr::alu(a(0x1000)),
            Instr::load(a(0x1004), a(0x8000_0000), true),
            Instr::store(a(0x1008), a(0x7fff_0008)),
            Instr::cond_branch(a(0x100c), false, a(0x2000)),
            Instr::cond_branch(a(0x1010), true, a(0x2000)),
            Instr::indirect(a(0x2000), a(0x3000)),
            Instr::indirect_call(a(0x3000), a(0x4000)),
            Instr::call(a(0x4000), a(0x5000)),
            Instr::ret(a(0x5000), a(0x4004)),
            Instr::load(a(0x4004), a(0xdead_bee8), false),
        ]
    }

    /// A stream with pc discontinuities (as an arbitrary external trace
    /// may have).
    fn discontinuous() -> Vec<Instr> {
        vec![
            Instr::alu(a(0x1000)),
            Instr::alu(a(0x9000)),
            Instr::load(a(0x9004), a(0x100), false),
            Instr::alu(a(0x40)),
            Instr::ret(a(0x44), a(0x48)),
            Instr::alu(a(0x100)),
        ]
    }

    #[test]
    fn roundtrip_consistent_stream() {
        let v = consistent();
        let p = PackedTrace::from_instrs(&v);
        assert_eq!(p.len(), v.len());
        let got = record_stream(&mut p.cursor(), usize::MAX);
        assert_eq!(got, v);
        // No discontinuities: every operand slot is a real operand (9
        // non-ALU instructions), no explicit pcs.
        assert_eq!(p.ops.len(), 9);
    }

    #[test]
    fn roundtrip_discontinuous_stream() {
        let v = discontinuous();
        let p = PackedTrace::from_instrs(&v);
        let got = record_stream(&mut p.cursor(), usize::MAX);
        assert_eq!(got, v);
        // 2 real operands + 4 explicit pcs (0x9000, 0x40, and 0x100
        // after the return... count via flags instead).
        let explicit = p.kinds.iter().filter(|&&k| k & EXPLICIT_PC != 0).count();
        assert!(explicit >= 3, "discontinuities must be flagged");
    }

    #[test]
    fn packing_is_compact() {
        let v = consistent();
        let p = PackedTrace::from_instrs(&v);
        let fat = std::mem::size_of::<Instr>() * v.len();
        assert!(
            (p.kinds.len() + p.ops.len() * 8) < fat,
            "packed {} !< fat {fat}",
            p.kinds.len() + p.ops.len() * 8
        );
        assert!(p.resident_bytes() > 0);
    }

    #[test]
    fn cursor_matches_vec_stream_incrementally() {
        let v = consistent();
        let p = PackedTrace::from_instrs(&v);
        let mut cursor = p.cursor();
        let mut reference = VecEventStream::new(v);
        loop {
            assert_eq!(cursor.executed(), reference.executed());
            let (got, want) = (cursor.next_instr(), reference.next_instr());
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn fork_resumes_identically() {
        let p = PackedTrace::from_instrs(&consistent());
        let mut cur = p.cursor();
        cur.next_instr();
        cur.next_instr();
        let rest_forked = {
            let mut forked = cur.fork();
            assert_eq!(forked.executed(), cur.executed());
            record_stream(&mut *forked, usize::MAX)
        };
        let rest_original = record_stream(&mut cur, usize::MAX);
        assert_eq!(rest_forked, rest_original);
    }

    #[test]
    fn from_stream_drains_everything() {
        let v = consistent();
        let mut s = VecEventStream::new(v.clone());
        let p = PackedTrace::from_stream(&mut s);
        assert_eq!(p.len(), v.len());
        assert_eq!(record_stream(&mut p.cursor(), usize::MAX), v);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let p = PackedTrace::new();
        assert!(p.is_empty());
        assert_eq!(p.cursor().next(), None);
    }

    fn diverging_event() -> (PackedEvent, Vec<Instr>, Vec<Instr>) {
        let actual = consistent();
        // The speculative view matches for 4 instructions, then veers.
        let mut spec = actual[..4].to_vec();
        spec.push(Instr::alu(a(0x8888)));
        spec.push(Instr::load(a(0x888c), a(0x42_0000), false));
        let tail = PackedTrace::from_instrs(&spec[4..]);
        let ev = PackedEvent::new(PackedTrace::from_instrs(&actual), Some(4), tail);
        (ev, actual, spec)
    }

    #[test]
    fn event_cursor_actual_ignores_divergence() {
        let (ev, actual, _) = diverging_event();
        let got = record_stream(&mut ev.actual_cursor(), usize::MAX);
        assert_eq!(got, actual);
    }

    #[test]
    fn event_cursor_speculative_switches_at_divergence() {
        let (ev, actual, spec) = diverging_event();
        let mut cur = ev.speculative_cursor();
        let got = record_stream(&mut cur, usize::MAX);
        assert_eq!(got, spec);
        assert_eq!(got[..4], actual[..4], "shared prefix reads the actual arrays");
        assert_eq!(cur.executed(), spec.len() as u64);
    }

    #[test]
    fn event_cursor_fork_across_divergence() {
        let (ev, _, spec) = diverging_event();
        let mut cur = ev.speculative_cursor();
        for _ in 0..3 {
            cur.next_instr();
        }
        let mut forked = cur.fork();
        let rest = record_stream(&mut *forked, usize::MAX);
        assert_eq!(rest, spec[3..]);
    }

    #[test]
    fn no_divergence_event_replays_actual_in_both_views() {
        let actual = consistent();
        let ev = PackedEvent::new(PackedTrace::from_instrs(&actual), None, PackedTrace::new());
        assert_eq!(record_stream(&mut ev.actual_cursor(), usize::MAX), actual);
        assert_eq!(record_stream(&mut ev.speculative_cursor(), usize::MAX), actual);
    }

    #[test]
    fn divergence_beyond_budget_never_triggers() {
        let actual = consistent();
        let ev =
            PackedEvent::new(PackedTrace::from_instrs(&actual), Some(10_000), PackedTrace::new());
        assert_eq!(record_stream(&mut ev.speculative_cursor(), usize::MAX), actual);
    }

    #[derive(Default)]
    struct RecordingSink {
        fetches: Vec<u64>,
        loads: Vec<(u64, u64)>,
        stores: Vec<u64>,
        branches: Vec<Instr>,
    }

    impl WarmSink for RecordingSink {
        fn warm_fetch_line(&mut self, line: u64) {
            self.fetches.push(line);
        }
        fn warm_load(&mut self, pc: u64, addr: u64) {
            self.loads.push((pc, addr));
        }
        fn warm_store(&mut self, addr: u64) {
            self.stores.push(addr);
        }
        fn warm_branch(&mut self, instr: &Instr) {
            self.branches.push(*instr);
        }
    }

    #[test]
    fn warm_walk_matches_cursor_replay() {
        for v in [consistent(), discontinuous()] {
            let p = PackedTrace::from_instrs(&v);
            let mut sink = RecordingSink::default();
            assert_eq!(p.warm_walk(64, &mut sink), v.len() as u64);
            let mut want = RecordingSink::default();
            let mut last_line = u64::MAX;
            for i in &v {
                let line = i.pc.as_u64() / 64;
                if line != last_line {
                    want.fetches.push(line);
                    last_line = line;
                }
                match i.kind {
                    InstrKind::Alu => {}
                    InstrKind::Load { addr, .. } => {
                        want.loads.push((i.pc.as_u64(), addr.as_u64()))
                    }
                    InstrKind::Store { addr } => want.stores.push(addr.as_u64()),
                    _ => want.branches.push(*i),
                }
            }
            assert_eq!(sink.fetches, want.fetches);
            assert_eq!(sink.loads, want.loads);
            assert_eq!(sink.stores, want.stores);
            assert_eq!(sink.branches, want.branches);
        }
    }

    #[test]
    fn skip_walk_lands_where_decoding_does() {
        // After fast-forwarding k instructions the cursor must decode
        // exactly the suffix a freshly decoded cursor would — position,
        // operand index, and pc all line up at every split point.
        for v in [consistent(), discontinuous()] {
            let p = PackedTrace::from_instrs(&v);
            for k in 0..=v.len() {
                let mut cur = p.cursor();
                assert_eq!(cur.skip_walk(k as u64), k as u64);
                assert_eq!(record_stream(&mut cur, usize::MAX), v[k..]);
            }
            // Budget past the end stops at the end.
            let mut cur = p.cursor();
            assert_eq!(cur.skip_walk(u64::MAX), v.len() as u64);
            assert_eq!(cur.next_instr(), None);
        }
    }

    #[test]
    fn skip_walk_observed_matches_warm_walk_touches_sans_branches() {
        // The observed fast-forward must report the same fetch lines,
        // loads, and stores as the full warming walk — branches are the
        // one documented omission — and land the cursor identically.
        for v in [consistent(), discontinuous()] {
            let p = PackedTrace::from_instrs(&v);
            let mut warm = RecordingSink::default();
            p.warm_walk(64, &mut warm);
            for k in 0..=v.len() {
                let mut sink = RecordingSink::default();
                let mut cur = p.cursor();
                assert_eq!(cur.skip_walk_observed(k as u64, 64, &mut sink), k as u64);
                assert_eq!(record_stream(&mut cur, usize::MAX), v[k..]);
                assert!(sink.branches.is_empty(), "observed walk must not decode branches");
                assert_eq!(sink.loads, warm.loads[..sink.loads.len()]);
                assert_eq!(sink.stores, warm.stores[..sink.stores.len()]);
            }
            // Over the whole trace the memory touches agree exactly.
            let mut sink = RecordingSink::default();
            let mut cur = p.cursor();
            assert_eq!(cur.skip_walk_observed(u64::MAX, 64, &mut sink), v.len() as u64);
            assert_eq!(sink.fetches, warm.fetches);
            assert_eq!(sink.loads, warm.loads);
            assert_eq!(sink.stores, warm.stores);
        }
    }

    #[test]
    fn raw_parts_roundtrip_rebuilds_equal_traces() {
        for v in [consistent(), discontinuous(), Vec::new()] {
            let p = PackedTrace::from_instrs(&v);
            let q = PackedTrace::from_raw_parts(
                p.start_pc(),
                p.kind_bytes().to_vec(),
                p.op_words().to_vec(),
            )
            .expect("serialised arrays of a built trace must validate");
            // Derived PartialEq covers expect_pc: the validation walk
            // must land on the same final pc the builder recorded.
            assert_eq!(p, q);
            assert_eq!(record_stream(&mut q.cursor(), usize::MAX), v);
        }
    }

    #[test]
    fn raw_parts_rejects_structural_defects() {
        let p = PackedTrace::from_instrs(&consistent());
        let (pc, kinds, ops) = (p.start_pc(), p.kind_bytes().to_vec(), p.op_words().to_vec());

        let mut reserved = kinds.clone();
        reserved[0] |= 0b0010_0000;
        assert!(matches!(
            PackedTrace::from_raw_parts(pc, reserved, ops.clone()),
            Err(RawTraceError::ReservedKindBits { index: 0, .. })
        ));

        let mut short = ops.clone();
        short.pop();
        assert!(matches!(
            PackedTrace::from_raw_parts(pc, kinds.clone(), short),
            Err(RawTraceError::MissingOperands { .. })
        ));

        let mut long = ops.clone();
        long.push(7);
        assert!(matches!(
            PackedTrace::from_raw_parts(pc, kinds.clone(), long),
            Err(RawTraceError::ExtraOperands { .. })
        ));

        // An ALU at the top of the address space cannot advance.
        assert!(matches!(
            PackedTrace::from_raw_parts(u64::MAX - 1, vec![TAG_ALU], vec![]),
            Err(RawTraceError::PcOverflow { index: 0 })
        ));
    }

    #[test]
    fn arena_and_workload_accessors() {
        let (ev, actual, _) = diverging_event();
        let arena = Arc::new(TraceArena::new(vec![ev]));
        assert_eq!(arena.len(), 1);
        assert!(!arena.is_empty());
        assert_eq!(arena.total_instructions(), actual.len() as u64);
        assert!(arena.resident_bytes() > 0);
        let record = EventRecord {
            id: EventId::new(0),
            kind: esp_types::EventKindId::new(0),
            handler_pc: a(0x1000),
            arg_addr: a(0x8000_0000),
            approx_len: actual.len() as u64,
            post_time: esp_types::Cycle::ZERO,
            order_mispredicted: false,
        };
        let w = PackedWorkload::new(vec![record], arena, actual.len() as u64);
        assert_eq!(w.events().len(), 1);
        assert_eq!(w.approx_total_instructions(), actual.len() as u64);
        assert!(w.resident_bytes() > 0);
        let got = record_stream(&mut *w.actual_stream(EventId::new(0)), usize::MAX);
        assert_eq!(got, actual);
        let spec = record_stream(&mut *w.speculative_stream(EventId::new(0)), usize::MAX);
        assert_eq!(spec.len(), 4 + 2, "divergence prefix plus recorded tail");
    }
}
