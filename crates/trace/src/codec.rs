//! Trace serialization: record an event's instruction stream to a
//! writer, and replay it later from a reader.
//!
//! The paper's methodology is trace driven (§5): traces are captured
//! once, then simulated under many configurations. The generator in
//! `esp-workload` makes stored traces unnecessary for the built-in
//! benchmarks (streams regenerate from seeds), but the codec lets users
//! capture *external* traces — or dump generated ones for inspection —
//! in a simple line-oriented text format:
//!
//! ```text
//! A <pc>                    # alu
//! L <pc> <addr> <0|1>       # load (flag: address chains a recent load)
//! S <pc> <addr>             # store
//! B <pc> <0|1> <target>     # conditional branch (taken flag)
//! J <pc> <target>           # indirect branch
//! X <pc> <target>           # indirect call
//! C <pc> <target>           # direct call
//! R <pc> <target>           # return
//! ```
//!
//! All values are lower-case hex without a `0x` prefix. Lines starting
//! with `#` and blank lines are ignored.

use crate::{EventStream, Instr, InstrKind, VecEventStream};
use esp_types::Addr;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors produced while decoding a trace.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// A line did not parse; the payload is (line number, content).
    Malformed(usize, String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "trace i/o error: {e}"),
            CodecError::Malformed(n, line) => write!(f, "malformed trace line {n}: {line:?}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Encodes one instruction as its trace line (without the newline).
pub fn encode_instr(i: &Instr) -> String {
    let pc = i.pc.as_u64();
    match i.kind {
        InstrKind::Alu => format!("A {pc:x}"),
        InstrKind::Load { addr, chained } => {
            format!("L {pc:x} {:x} {}", addr.as_u64(), chained as u8)
        }
        InstrKind::Store { addr } => format!("S {pc:x} {:x}", addr.as_u64()),
        InstrKind::CondBranch { taken, target } => {
            format!("B {pc:x} {} {:x}", taken as u8, target.as_u64())
        }
        InstrKind::IndirectBranch { target } => format!("J {pc:x} {:x}", target.as_u64()),
        InstrKind::IndirectCall { target } => format!("X {pc:x} {:x}", target.as_u64()),
        InstrKind::Call { target } => format!("C {pc:x} {:x}", target.as_u64()),
        InstrKind::Return { target } => format!("R {pc:x} {:x}", target.as_u64()),
    }
}

/// Decodes one trace line (no surrounding whitespace handling beyond
/// token splitting). Returns `None` for comments and blank lines.
///
/// # Errors
///
/// Returns [`CodecError::Malformed`] (with `line_no`) for anything else
/// that does not parse.
pub fn decode_instr(line: &str, line_no: usize) -> Result<Option<Instr>, CodecError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let bad = || CodecError::Malformed(line_no, line.to_string());
    let mut parts = line.split_ascii_whitespace();
    let op = parts.next().ok_or_else(bad)?;
    let hex = |p: &mut std::str::SplitAsciiWhitespace<'_>| -> Result<u64, CodecError> {
        u64::from_str_radix(p.next().ok_or_else(bad)?, 16).map_err(|_| bad())
    };
    let pc = Addr::new(hex(&mut parts)?);
    let instr = match op {
        "A" => Instr::alu(pc),
        "L" => {
            let addr = Addr::new(hex(&mut parts)?);
            let flag = hex(&mut parts)?;
            if flag > 1 {
                return Err(bad());
            }
            Instr::load(pc, addr, flag == 1)
        }
        "S" => Instr::store(pc, Addr::new(hex(&mut parts)?)),
        "B" => {
            let taken = hex(&mut parts)?;
            if taken > 1 {
                return Err(bad());
            }
            Instr::cond_branch(pc, taken == 1, Addr::new(hex(&mut parts)?))
        }
        "J" => Instr::indirect(pc, Addr::new(hex(&mut parts)?)),
        "X" => Instr::indirect_call(pc, Addr::new(hex(&mut parts)?)),
        "C" => Instr::call(pc, Addr::new(hex(&mut parts)?)),
        "R" => Instr::ret(pc, Addr::new(hex(&mut parts)?)),
        _ => return Err(bad()),
    };
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(Some(instr))
}

/// Drains `stream` (up to `limit` instructions) into `writer`, one line
/// per instruction. Returns the number written.
///
/// A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] when the writer fails.
pub fn write_stream<W: Write>(
    stream: &mut dyn EventStream,
    limit: usize,
    mut writer: W,
) -> Result<usize, CodecError> {
    let mut n = 0;
    while n < limit {
        let Some(i) = stream.next_instr() else { break };
        writeln!(writer, "{}", encode_instr(&i))?;
        n += 1;
    }
    Ok(n)
}

/// Reads a whole trace from `reader` into a replayable
/// [`VecEventStream`]. A `&mut` reference can be passed for `reader`.
///
/// # Errors
///
/// Returns [`CodecError::Io`] on reader failure and
/// [`CodecError::Malformed`] on the first unparsable line.
pub fn read_stream<R: Read>(reader: R) -> Result<VecEventStream, CodecError> {
    let mut instrs = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        if let Some(i) = decode_instr(&line?, idx + 1)? {
            instrs.push(i);
        }
    }
    Ok(VecEventStream::new(instrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_stream;

    fn sample() -> Vec<Instr> {
        let a = Addr::new;
        vec![
            Instr::alu(a(0x1000)),
            Instr::load(a(0x1004), a(0x8000_0000), true),
            Instr::load(a(0x1008), a(0xdead_beef), false),
            Instr::store(a(0x100c), a(0x7fff_0008)),
            Instr::cond_branch(a(0x1010), true, a(0x0040_0000)),
            Instr::cond_branch(a(0x1014), false, a(0x9999_0000)),
            Instr::indirect(a(0x1018), a(0x1_0000)),
            Instr::indirect_call(a(0x101c), a(0x2_0000)),
            Instr::call(a(0x1020), a(0x3_0000)),
            Instr::ret(a(0x1024), a(0x1028)),
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        let original = sample();
        let mut buf = Vec::new();
        let mut s = VecEventStream::new(original.clone());
        let n = write_stream(&mut s, usize::MAX, &mut buf).unwrap();
        assert_eq!(n, original.len());
        let mut replay = read_stream(buf.as_slice()).unwrap();
        assert_eq!(record_stream(&mut replay, usize::MAX), original);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a trace\n\nA 10\n  \n# tail\nC 14 8000\n";
        let mut s = read_stream(text.as_bytes()).unwrap();
        let got = record_stream(&mut s, usize::MAX);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Instr::alu(Addr::new(0x10)));
        assert_eq!(got[1], Instr::call(Addr::new(0x14), Addr::new(0x8000)));
    }

    #[test]
    fn limit_truncates() {
        let mut buf = Vec::new();
        let mut s = VecEventStream::new(sample());
        assert_eq!(write_stream(&mut s, 3, &mut buf).unwrap(), 3);
        let replay = read_stream(buf.as_slice()).unwrap();
        assert_eq!(replay.remaining().len(), 3);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        for (text, bad_line) in [
            ("A 10\nZ 14\n", 2),
            ("L 10\n", 1),
            ("B 10 2 40\n", 1),
            ("A xyz\n", 1),
            ("A 10 extra\n", 1),
            ("L 10 20 5\n", 1),
        ] {
            match read_stream(text.as_bytes()) {
                Err(CodecError::Malformed(n, _)) => assert_eq!(n, bad_line, "{text:?}"),
                other => panic!("{text:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn encode_is_stable() {
        assert_eq!(
            encode_instr(&Instr::load(Addr::new(0x10), Addr::new(0xff), true)),
            "L 10 ff 1"
        );
        assert_eq!(
            encode_instr(&Instr::cond_branch(Addr::new(0x10), false, Addr::new(0x20))),
            "B 10 0 20"
        );
    }

    #[test]
    fn display_of_errors() {
        let e = CodecError::Malformed(3, "Z".into());
        assert!(e.to_string().contains("line 3"));
    }
}
