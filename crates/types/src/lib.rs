//! Shared foundation types for the Event Sneak Peek (ESP) simulator.
//!
//! This crate holds the small vocabulary types that every other crate in the
//! workspace speaks: byte/line addresses, cycle counts, event identities, a
//! deterministic pseudo-random number generator, and the workspace error
//! type.
//!
//! The types here are deliberately tiny newtypes ([`Addr`], [`LineAddr`],
//! [`Cycle`], [`EventId`]) so that, for example, a byte address can never be
//! passed where a cache-line address is expected — a classic source of
//! off-by-`log2(line)` bugs in cache simulators.
//!
//! # Examples
//!
//! ```
//! use esp_types::{Addr, LineAddr, Cycle};
//!
//! let a = Addr::new(0x1234_5678);
//! let line = a.line(64);
//! assert_eq!(line, LineAddr::new(0x1234_5678 / 64));
//! assert_eq!(line.base(64), Addr::new(0x1234_5640));
//!
//! let t = Cycle::ZERO + 100;
//! assert_eq!(t.as_u64(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cycle;
mod error;
mod ids;
mod rng;

pub use addr::{Addr, LineAddr};
pub use cycle::Cycle;
pub use error::{Error, Result};
pub use ids::{EventId, EventKindId};
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
