//! Identity newtypes for events and event kinds.

use core::fmt;

/// The identity of one dynamic event instance in a workload schedule.
///
/// Event ids are dense and monotonically increasing in posting order, so
/// they double as positions in the software event queue's history.
///
/// # Examples
///
/// ```
/// use esp_types::EventId;
///
/// let e = EventId::new(3);
/// assert_eq!(e.next(), EventId::new(4));
/// assert_eq!(e.index(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The first event in a schedule.
    pub const FIRST: EventId = EventId(0);

    /// Creates an event id from a raw index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        EventId(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the id of the event posted immediately after this one.
    #[inline]
    pub const fn next(self) -> EventId {
        EventId(self.0 + 1)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// The identity of an event *kind*: a handler type such as "mouse click" or
/// "timer fire" in an asynchronous program.
///
/// All dynamic events of the same kind share a handler entry point and a
/// code/data working-set profile, but each dynamic instance walks the code
/// image with its own seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKindId(u32);

impl EventKindId {
    /// Creates a kind id from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        EventKindId(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for EventKindId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_sequence() {
        let mut e = EventId::FIRST;
        for i in 0..5 {
            assert_eq!(e.index(), i);
            e = e.next();
        }
    }

    #[test]
    fn ordering() {
        assert!(EventId::new(1) < EventId::new(2));
        assert!(EventKindId::new(0) < EventKindId::new(7));
    }

    #[test]
    fn display() {
        assert_eq!(EventId::new(12).to_string(), "E12");
        assert_eq!(EventKindId::new(3).to_string(), "K3");
    }
}
