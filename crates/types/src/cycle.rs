//! Simulated-time cycle counter.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles.
///
/// `Cycle` is a monotonically increasing counter; differences between two
/// `Cycle` values are plain `u64` durations.
///
/// # Examples
///
/// ```
/// use esp_types::Cycle;
///
/// let start = Cycle::ZERO + 10;
/// let end = start + 101;
/// assert_eq!(end - start, 101);
/// assert!(end.is_after(start));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Simulated time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns `true` if `self` is strictly later than `other`.
    #[inline]
    pub fn is_after(self, other: Cycle) -> bool {
        self > other
    }

    /// Returns the number of cycles from `earlier` to `self`, or 0 if
    /// `earlier` is actually later (saturating).
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two points in time.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Cycle::new(5);
        let b = a + 10;
        assert_eq!(b - a, 10);
        assert!(b.is_after(a));
        assert!(!a.is_after(a));
        assert_eq!(a.since(b), 0);
        assert_eq!(b.since(a), 10);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn add_assign() {
        let mut t = Cycle::ZERO;
        t += 7;
        t += 3;
        assert_eq!(t.as_u64(), 10);
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "42c");
    }
}
