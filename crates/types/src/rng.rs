//! Deterministic pseudo-random number generation.
//!
//! The simulator's workload generation must be *bit-stable*: the same seed
//! must produce the same instruction stream on every platform and toolchain,
//! forever, because (a) the ESP speculative-replay machinery relies on
//! re-deriving an event's stream from its seed, and (b) the calibration and
//! regression tests pin exact metric values. We therefore implement two
//! small, well-known generators here instead of depending on an external
//! crate whose stream might change across versions:
//!
//! * [`SplitMix64`] — used to derive seeds from seeds (its 64-bit state
//!   makes it ideal for seeding).
//! * [`Xoshiro256pp`] — xoshiro256++, the workhorse generator.

/// A source of pseudo-random 64-bit values.
///
/// Implemented by [`SplitMix64`] and [`Xoshiro256pp`]. The provided helpers
/// derive bounded integers, floats, and Bernoulli draws from `next_u64`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction (without the rejection step;
    /// the bias is below 2^-32 for the bounds used in this workspace and
    /// determinism matters more than the last ulp of uniformity here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Returns a sample from an approximately standard normal distribution
    /// (Irwin–Hall sum of 4 uniforms, rescaled; cheap and deterministic).
    fn approx_normal(&mut self) -> f64 {
        let s: f64 = (0..4).map(|_| self.unit_f64()).sum();
        (s - 2.0) * (12.0f64 / 4.0).sqrt()
    }

    /// Returns a sample from a log-normal distribution with the given
    /// parameters of the underlying normal.
    fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.approx_normal()).exp()
    }
}

/// The SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used to expand one seed into many independent seeds.
///
/// # Examples
///
/// ```
/// use esp_types::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child seed for a labelled sub-stream.
    ///
    /// The label keeps sibling streams (e.g. "code layout" vs "event
    /// lengths") independent even when derived from the same parent seed.
    pub fn derive(seed: u64, label: u64) -> u64 {
        let mut g = SplitMix64::new(seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        g.next_u64()
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator (Blackman & Vigna 2019).
///
/// The main generator used during trace generation. State is `Clone` so a
/// trace cursor can be checkpointed and resumed — the mechanism behind
/// re-entrant ESP pre-execution.
///
/// # Examples
///
/// ```
/// use esp_types::{Rng, Xoshiro256pp};
///
/// let mut g = Xoshiro256pp::seed_from_u64(7);
/// let checkpoint = g.clone();
/// let x = g.next_u64();
/// assert_eq!(checkpoint.clone().next_u64(), x);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator by expanding a 64-bit seed through SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            Xoshiro256pp { s: [1, 2, 3, 4] }
        } else {
            Xoshiro256pp { s }
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_clonable() {
        let mut a = Xoshiro256pp::seed_from_u64(99);
        let mut b = Xoshiro256pp::seed_from_u64(99);
        let vals_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vals_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(vals_a, vals_b);

        let mut c = Xoshiro256pp::seed_from_u64(99);
        c.next_u64();
        let snap = c.clone();
        let rest: Vec<u64> = {
            let mut c2 = snap.clone();
            (0..8).map(|_| c2.next_u64()).collect()
        };
        let rest2: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(rest, rest2);
    }

    #[test]
    fn below_is_in_range() {
        let mut g = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..1000 {
            let v = g.below(37);
            assert!(v < 37);
        }
        for _ in 0..1000 {
            let v = g.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        let mut g = SplitMix64::new(1);
        let _ = g.below(0);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut g = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..1000 {
            let x = g.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut g = Xoshiro256pp::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| g.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }

    #[test]
    fn log_normal_is_positive_with_sane_median() {
        let mut g = Xoshiro256pp::seed_from_u64(17);
        let mut vals: Vec<f64> = (0..2001).map(|_| g.log_normal(2.0, 0.5)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[1000];
        // Median of lognormal(mu, sigma) is e^mu ≈ 7.39.
        assert!((5.0..10.0).contains(&median), "median={median}");
    }

    #[test]
    fn derive_is_label_sensitive() {
        let a = SplitMix64::derive(42, 1);
        let b = SplitMix64::derive(42, 2);
        let a2 = SplitMix64::derive(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }
}
