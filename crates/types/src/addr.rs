//! Byte and cache-line address newtypes.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A byte address in the simulated machine's virtual address space.
///
/// `Addr` is used for both instruction addresses (program counters) and data
/// addresses. Convert to a [`LineAddr`] with [`Addr::line`] before indexing
/// any cache structure.
///
/// # Examples
///
/// ```
/// use esp_types::Addr;
///
/// let pc = Addr::new(0x4000);
/// assert_eq!(pc + 4, Addr::new(0x4004));
/// assert_eq!((pc + 4) - pc, 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Used as a sentinel for "no target yet".
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache line this address falls into, for a given line size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        // Shift, not divide: `line_bytes` is a runtime value, so `/` would
        // compile to a hardware `div` (tens of cycles) on every executed
        // instruction. Identical result for power-of-two line sizes.
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }

    /// Returns the byte offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self, line_bytes: u64) -> u64 {
        self.0 & (line_bytes - 1)
    }

    /// Returns the signed distance `self - other` in bytes.
    #[inline]
    pub fn distance(self, other: Addr) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u64> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl From<u64> for Addr {
    #[inline]
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line address: a byte address divided by the line size.
///
/// All cache structures in `esp-mem` are indexed by `LineAddr` so that the
/// line-size division happens exactly once, at the [`Addr::line`] boundary.
///
/// # Examples
///
/// ```
/// use esp_types::{Addr, LineAddr};
///
/// let l = Addr::new(0x1040).line(64);
/// assert_eq!(l, LineAddr::new(0x41));
/// assert_eq!(l.next(), LineAddr::new(0x42));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    #[inline]
    pub const fn base(self, line_bytes: u64) -> Addr {
        Addr::new(self.0 * line_bytes)
    }

    /// Returns the immediately following line (next-line prefetch target).
    #[inline]
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0.wrapping_add(1))
    }

    /// Returns the line `n` lines after this one.
    #[inline]
    pub const fn offset(self, n: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add_signed(n))
    }
}

impl From<u64> for LineAddr {
    #[inline]
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_mapping() {
        assert_eq!(Addr::new(0).line(64), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(64), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(64), LineAddr::new(1));
        assert_eq!(Addr::new(0xfff).line(64), LineAddr::new(0x3f));
    }

    #[test]
    fn addr_line_offset() {
        assert_eq!(Addr::new(0x105).line_offset(64), 5);
        assert_eq!(Addr::new(0x140).line_offset(64), 0);
    }

    #[test]
    fn line_base_roundtrip() {
        let a = Addr::new(0x1234_5678);
        let l = a.line(64);
        assert!(l.base(64) <= a);
        assert!(a.as_u64() - l.base(64).as_u64() < 64);
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(Addr::new(128) - a, 28);
        assert_eq!(a.distance(Addr::new(128)), -28);
        let mut b = a;
        b += 4;
        assert_eq!(b, Addr::new(104));
    }

    #[test]
    fn line_next_and_offset() {
        let l = LineAddr::new(10);
        assert_eq!(l.next(), LineAddr::new(11));
        assert_eq!(l.offset(-3), LineAddr::new(7));
        assert_eq!(l.offset(5), LineAddr::new(15));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(0x40).to_string(), "L0x40");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }
}
