//! The workspace error type.

use core::fmt;

/// A convenient `Result` alias used across the ESP workspace.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors produced while configuring or running the ESP simulator.
///
/// Most simulator APIs are infallible once constructed; errors surface at
/// configuration boundaries (invalid cache geometry, empty workloads, …).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was invalid; the payload explains which.
    InvalidConfig(String),
    /// A workload was structurally invalid (e.g. contained no events).
    InvalidWorkload(String),
    /// A named entity (benchmark profile, figure id, …) was not found.
    UnknownName(String),
}

impl Error {
    /// Creates an [`Error::InvalidConfig`] from any displayable message.
    pub fn invalid_config(msg: impl fmt::Display) -> Self {
        Error::InvalidConfig(msg.to_string())
    }

    /// Creates an [`Error::InvalidWorkload`] from any displayable message.
    pub fn invalid_workload(msg: impl fmt::Display) -> Self {
        Error::InvalidWorkload(msg.to_string())
    }

    /// Creates an [`Error::UnknownName`] from any displayable message.
    pub fn unknown_name(msg: impl fmt::Display) -> Self {
        Error::UnknownName(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            Error::UnknownName(msg) => write!(f, "unknown name: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::invalid_config("ways must divide lines").to_string(),
            "invalid configuration: ways must divide lines"
        );
        assert_eq!(
            Error::invalid_workload("no events").to_string(),
            "invalid workload: no events"
        );
        assert_eq!(
            Error::unknown_name("fig99").to_string(),
            "unknown name: fig99"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
