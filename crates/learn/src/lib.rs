//! Learned fast-forwarding for the SMARTS-style sampled mode.
//!
//! PR 5 measured why sampling plateaus here at ~1.4×: functional warming
//! is only ~1.5–2.5× cheaper than detailed simulation (not the ~60× of
//! SMARTS-class simulators), so the warm walk — not the estimator —
//! dominates a sampled run. This crate removes most of that walk, in the
//! spirit of CAPSim's predictor-accelerated simulation:
//!
//! * [`FeatureExtractor`] — an allocation-free [`esp_trace::WarmSink`]
//!   that summarises a functionally-warmed *stretch* (the `period − 2`
//!   warm grains between a measured grain and the next detailed-warmup
//!   grain) as a small fixed feature vector: instruction-mix fractions,
//!   branch-taken entropy, fetch-line locality, I/D footprint signatures,
//!   events spanned, replay-list occupancy, and the previous measured
//!   grain's CPI.
//! * [`RidgeModel`] / [`GbmModel`] — online, deterministic predictors
//!   (no RNG, no allocation in the ridge path) trained prequentially
//!   during each run: stretch features in, the next measured grain's
//!   per-instruction cycle metrics out.
//! * [`FastForward`] — the controller: after a training prefix it lets
//!   the sampling loop *skip* the engine-warming walk for the interior
//!   of each stretch — skipped grains advance the cursor through a
//!   decode-free fast-forward whose memory-touch hooks feed the
//!   [`Footprint`] sink, so the interior's distinct lines can be
//!   reinstalled as stat-free warm fills when skipping ends, and the last
//!   [`LearnParams::warm_suffix_grains`] grains are always fully warmed
//!   to rebuild short-term cache and predictor state (and are the only
//!   region features are extracted from). It falls back to full warming
//!   — and ultimately disables skipping — when predicted-vs-actual
//!   residuals exceed the configured bound.
//!
//! The residual series also widens the ratio-estimator confidence
//! intervals (`esp_stats::ResidualAccum::inflate`), and the model's
//! rolling confidence is exported ([`LearnedStats::confidence`]) as a
//! reusable signal for chunk-entry prediction in the intra-run parallel
//! mode. See `docs/PERFORMANCE.md` ("Learned fast-forwarding").

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The ridge/GBM fitting code is dense fixed-dimension linear algebra
// over `[f64; N]` arrays; index loops mirror the maths (row/column
// subscripts) better than iterator chains there.
#![allow(clippy::needless_range_loop)]

mod control;
mod features;
mod model;

pub use control::{FastForward, LearnParams, LearnedStats, Phase};
pub use features::{FeatureExtractor, Footprint, FEATURE_DIM};
pub use model::{GbmModel, Model, ModelKind, RidgeModel, TARGETS};
