//! Stretch feature extraction: one cheap pass over the packed arrays.
//!
//! The extractor is an [`esp_trace::WarmSink`], so it rides the exact
//! same bounded walk (`PackedCursor::warm_walk_bounded`) the engine's
//! functional warming uses, teed next to the engine during the stretch
//! *suffix* — the always-fully-warmed grains at the end of every
//! stretch. The suffix is the only region features come from, in
//! training and skipping modes alike: skipped interiors are
//! fast-forwarded decode-free with no observer at all, so both paths
//! feed the model byte-identical callback sequences and it never sees a
//! train/predict feature skew.

use esp_trace::{Instr, InstrKind, WarmSink};

/// Dimensions of the feature vector (bias term included).
pub const FEATURE_DIM: usize = 14;

/// Slots in the direct-mapped footprint signature tables. 2 048 tags
/// cover several L1s' worth of distinct lines; collisions only blur the
/// footprint *feature*, never correctness.
const SIG_SLOTS: usize = 2048;

/// Empty-slot sentinel (no real line address is `u64::MAX`).
const EMPTY: u64 = u64::MAX;

/// Fibonacci-hash multiplier for signature slot selection.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline(always)]
fn slot(line: u64) -> usize {
    (line.wrapping_mul(HASH_MUL) >> (64 - 11)) as usize
}

#[inline(always)]
fn fp_slot(line: u64) -> usize {
    (line.wrapping_mul(HASH_MUL) >> (64 - 13)) as usize
}

/// Slots in the [`Footprint`] sink's tables — larger than the feature
/// signatures because a skipped interior spans tens of thousands of
/// instructions and a direct-mapped collision here silently drops a
/// reinstall line.
const FOOTPRINT_SLOTS: usize = 8192;

/// Collects the distinct-line footprint of a skipped stretch interior.
///
/// The learned mode fast-forwards skipped grains with the *observed*
/// skip walk (`PackedCursor::skip_walk_observed`): no instruction is
/// decoded beyond the cursor advance, but fetch lines and load/store
/// addresses — operand words the walk loads anyway — are reported to
/// this sink, so the lines the interior touches are known. When
/// skipping ends, the sampling loop reinstalls them as stat-free warm
/// fills, rebuilding most of the cache-state delta the skipped walk
/// never applied. The sink is deliberately minimal — one unconditional
/// direct-mapped table store per callback and an empty branch hook (the
/// observed skip walk never calls it).
#[derive(Clone, Debug)]
pub struct Footprint {
    line_shift: u32,
    /// The last data line recorded — consecutive same-line accesses
    /// (the common case under spatial locality) skip the hash and the
    /// random table store entirely.
    last_dline: u64,
    isig: Box<[u64; FOOTPRINT_SLOTS]>,
    dsig: Box<[u64; FOOTPRINT_SLOTS]>,
}

impl Footprint {
    /// Creates a footprint sink for `line_bytes`-byte cache lines (must
    /// be a power of two).
    pub fn new(line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line_bytes must be a power of two");
        Footprint {
            line_shift: line_bytes.trailing_zeros(),
            last_dline: EMPTY,
            isig: Box::new([EMPTY; FOOTPRINT_SLOTS]),
            dsig: Box::new([EMPTY; FOOTPRINT_SLOTS]),
        }
    }

    /// Forgets everything collected so far (run once per skipped
    /// region, after its reinstall).
    pub fn clear(&mut self) {
        self.last_dline = EMPTY;
        self.isig.fill(EMPTY);
        self.dsig.fill(EMPTY);
    }

    /// Distinct instruction lines collected, in deterministic slot
    /// order.
    pub fn i_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.isig.iter().copied().filter(|&l| l != EMPTY)
    }

    /// Distinct data lines collected (see [`Footprint::i_lines`]).
    pub fn d_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.dsig.iter().copied().filter(|&l| l != EMPTY)
    }
}

impl WarmSink for Footprint {
    #[inline(always)]
    fn warm_fetch_line(&mut self, line: u64) {
        self.isig[fp_slot(line)] = line;
    }

    #[inline(always)]
    fn warm_load(&mut self, _pc: u64, addr: u64) {
        let line = addr >> self.line_shift;
        if line != self.last_dline {
            self.last_dline = line;
            self.dsig[fp_slot(line)] = line;
        }
    }

    #[inline(always)]
    fn warm_store(&mut self, addr: u64) {
        let line = addr >> self.line_shift;
        if line != self.last_dline {
            self.last_dline = line;
            self.dsig[fp_slot(line)] = line;
        }
    }

    #[inline(always)]
    fn warm_branch(&mut self, _instr: &Instr) {}
}

/// Accumulates the feature vector of one functionally-warmed stretch.
///
/// Allocation-free after construction: two fixed signature tables and a
/// handful of counters, reset per stretch. Instruction totals are fed in
/// bulk by the caller ([`FeatureExtractor::add_instrs`]) from the walk's
/// return value — the warming walk deliberately stays silent for plain
/// ALU runs, so sinks cannot count instructions themselves.
#[derive(Clone, Debug)]
pub struct FeatureExtractor {
    line_shift: u32,
    instrs: u64,
    loads: u64,
    stores: u64,
    cond: u64,
    taken: u64,
    other_branch: u64,
    transitions: u64,
    ifresh: u64,
    dfresh: u64,
    isig: Box<[u64; SIG_SLOTS]>,
    dsig: Box<[u64; SIG_SLOTS]>,
    events: u64,
    replay_occ: u64,
    prev_cpi: f64,
    /// Fetch-line dedup for the per-instruction side entrance
    /// ([`FeatureExtractor::note_step`], the looper path).
    step_last_line: u64,
}

impl FeatureExtractor {
    /// Creates an extractor for a machine with `line_bytes`-byte cache
    /// lines (must be a power of two).
    pub fn new(line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line_bytes must be a power of two");
        FeatureExtractor {
            line_shift: line_bytes.trailing_zeros(),
            instrs: 0,
            loads: 0,
            stores: 0,
            cond: 0,
            taken: 0,
            other_branch: 0,
            transitions: 0,
            ifresh: 0,
            dfresh: 0,
            isig: Box::new([EMPTY; SIG_SLOTS]),
            dsig: Box::new([EMPTY; SIG_SLOTS]),
            events: 0,
            replay_occ: 0,
            prev_cpi: 0.0,
            step_last_line: EMPTY,
        }
    }

    /// Clears all per-stretch state and records the stretch context:
    /// replay-list entries still pending at stretch entry and the
    /// previous measured grain's busy CPI (the autoregressive anchor).
    pub fn begin_stretch(&mut self, replay_occ: u64, prev_cpi: f64) {
        self.instrs = 0;
        self.loads = 0;
        self.stores = 0;
        self.cond = 0;
        self.taken = 0;
        self.other_branch = 0;
        self.transitions = 0;
        self.ifresh = 0;
        self.dfresh = 0;
        self.isig.fill(EMPTY);
        self.dsig.fill(EMPTY);
        self.events = 0;
        self.replay_occ = replay_occ;
        self.prev_cpi = prev_cpi;
        self.step_last_line = EMPTY;
    }

    /// Credits `n` walked instructions to the stretch (the walk reports
    /// its total once, in bulk).
    #[inline]
    pub fn add_instrs(&mut self, n: u64) {
        self.instrs += n;
    }

    /// Notes an event boundary inside the stretch.
    #[inline]
    pub fn note_event(&mut self) {
        self.events += 1;
    }

    /// Instructions credited so far in this stretch.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Distinct instruction lines captured by the stretch's signature
    /// table, in deterministic slot order — the observed region's
    /// approximate i-footprint, exposed for introspection and reuse
    /// (e.g. warm-state seeding).
    pub fn i_footprint(&self) -> impl Iterator<Item = u64> + '_ {
        self.isig.iter().copied().filter(|&l| l != EMPTY)
    }

    /// Distinct data lines captured by the stretch's signature table
    /// (see [`FeatureExtractor::i_footprint`]).
    pub fn d_footprint(&self) -> impl Iterator<Item = u64> + '_ {
        self.dsig.iter().copied().filter(|&l| l != EMPTY)
    }

    /// Per-instruction side entrance for streams the bulk walk cannot
    /// cover (the looper prologue): one call performs every update the
    /// walk's callbacks would, plus the instruction credit.
    pub fn note_step(&mut self, instr: &Instr) {
        let line = instr.pc.as_u64() >> self.line_shift;
        if line != self.step_last_line {
            self.warm_fetch_line(line);
            self.step_last_line = line;
        }
        match instr.kind {
            InstrKind::Alu => {}
            InstrKind::Load { addr, .. } => self.warm_load(instr.pc.as_u64(), addr.as_u64()),
            InstrKind::Store { addr } => self.warm_store(addr.as_u64()),
            _ => self.warm_branch(instr),
        }
        self.instrs += 1;
    }

    #[inline(always)]
    fn sig_insert(sig: &mut [u64; SIG_SLOTS], fresh: &mut u64, line: u64) {
        let s = slot(line);
        if sig[s] != line {
            *fresh += u64::from(sig[s] == EMPTY);
            sig[s] = line;
        }
    }

    /// The stretch's feature vector. Fractions use the credited
    /// instruction total; footprints are distinct-line signature fills
    /// per 1 000 instructions; counts enter through `ln(1 + x)` so one
    /// long stretch cannot saturate the linear model.
    pub fn features(&self) -> [f64; FEATURE_DIM] {
        let n = self.instrs.max(1) as f64;
        let cond = self.cond.max(1) as f64;
        let p = self.taken as f64 / cond;
        let entropy = if p <= 0.0 || p >= 1.0 {
            0.0
        } else {
            -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
        };
        [
            1.0,
            (1.0 + self.instrs as f64).ln(),
            self.loads as f64 / n,
            self.stores as f64 / n,
            self.cond as f64 / n,
            self.other_branch as f64 / n,
            self.taken as f64 / cond,
            entropy,
            self.transitions as f64 / n,
            self.ifresh as f64 * 1000.0 / n,
            self.dfresh as f64 * 1000.0 / n,
            (1.0 + self.events as f64).ln(),
            (1.0 + self.replay_occ as f64).ln(),
            self.prev_cpi,
        ]
    }
}

impl WarmSink for FeatureExtractor {
    #[inline(always)]
    fn warm_fetch_line(&mut self, line: u64) {
        self.transitions += 1;
        Self::sig_insert(&mut self.isig, &mut self.ifresh, line);
    }

    #[inline(always)]
    fn warm_load(&mut self, _pc: u64, addr: u64) {
        self.loads += 1;
        Self::sig_insert(&mut self.dsig, &mut self.dfresh, addr >> self.line_shift);
    }

    #[inline(always)]
    fn warm_store(&mut self, addr: u64) {
        self.stores += 1;
        Self::sig_insert(&mut self.dsig, &mut self.dfresh, addr >> self.line_shift);
    }

    #[inline(always)]
    fn warm_branch(&mut self, instr: &Instr) {
        match instr.kind {
            InstrKind::CondBranch { taken, .. } => {
                self.cond += 1;
                self.taken += u64::from(taken);
            }
            _ => self.other_branch += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::{EventStream, PackedTrace};
    use esp_types::Addr;

    fn hand_trace() -> Vec<Instr> {
        vec![
            Instr::alu(Addr::new(0x1000)),
            Instr::alu(Addr::new(0x1004)),
            Instr::load(Addr::new(0x1008), Addr::new(0x8000), false),
            Instr::store(Addr::new(0x100c), Addr::new(0x8040)),
            Instr::cond_branch(Addr::new(0x1010), true, Addr::new(0x1040)),
            Instr::cond_branch(Addr::new(0x1040), false, Addr::new(0x1000)),
            Instr::call(Addr::new(0x1044), Addr::new(0x2000)),
            Instr::ret(Addr::new(0x2000), Addr::new(0x1048)),
        ]
    }

    /// Features must match a hand computation of the same grain.
    #[test]
    fn features_match_hand_computed_grain() {
        let instrs = hand_trace();
        let packed = PackedTrace::from_instrs(&instrs);
        let mut fx = FeatureExtractor::new(64);
        fx.begin_stretch(5, 1.25);
        let mut cursor = packed.cursor();
        let n = cursor.warm_walk_bounded(u64::MAX, 64, &mut fx);
        assert_eq!(n, 8);
        fx.add_instrs(n);
        fx.note_event();

        let x = fx.features();
        assert_eq!(x[0], 1.0);
        assert!((x[1] - (9.0f64).ln()).abs() < 1e-12);
        // 1 load, 1 store, 2 cond (1 taken), 2 other branches, 8 instrs.
        assert!((x[2] - 1.0 / 8.0).abs() < 1e-12, "load frac");
        assert!((x[3] - 1.0 / 8.0).abs() < 1e-12, "store frac");
        assert!((x[4] - 2.0 / 8.0).abs() < 1e-12, "cond frac");
        assert!((x[5] - 2.0 / 8.0).abs() < 1e-12, "other-branch frac");
        assert!((x[6] - 0.5).abs() < 1e-12, "taken ratio");
        assert!((x[7] - 1.0).abs() < 1e-12, "entropy of p=0.5 is 1 bit");
        // Fetch lines: 0x40 (pcs 0x1000..0x1010), 0x41 (0x1040, 0x1044),
        // 0x80 (0x2000). Walk transitions: 0x40 → 0x41 → 0x80 = 3 calls.
        assert!((x[8] - 3.0 / 8.0).abs() < 1e-12, "line transitions");
        assert!((x[9] - 3.0 * 1000.0 / 8.0).abs() < 1e-9, "i-footprint: 3 lines");
        // Data lines: 0x8000>>6 = 0x200, 0x8040>>6 = 0x201.
        assert!((x[10] - 2.0 * 1000.0 / 8.0).abs() < 1e-9, "d-footprint: 2 lines");
        assert!((x[11] - (2.0f64).ln()).abs() < 1e-12, "1 event");
        assert!((x[12] - (6.0f64).ln()).abs() < 1e-12, "replay occupancy 5");
        assert!((x[13] - 1.25).abs() < 1e-12, "previous CPI");
    }

    /// The bulk walk and the per-instruction side entrance must agree:
    /// skipped and warmed grains would otherwise feed the model skewed
    /// features.
    #[test]
    fn walk_and_note_step_agree() {
        let instrs = hand_trace();
        let packed = PackedTrace::from_instrs(&instrs);

        let mut via_walk = FeatureExtractor::new(64);
        via_walk.begin_stretch(0, 0.0);
        let n = packed.cursor().warm_walk_bounded(u64::MAX, 64, &mut via_walk);
        via_walk.add_instrs(n);

        let mut via_step = FeatureExtractor::new(64);
        via_step.begin_stretch(0, 0.0);
        let mut cursor = packed.cursor();
        while let Some(i) = cursor.next_instr() {
            via_step.note_step(&i);
        }

        assert_eq!(via_walk.features(), via_step.features());
    }

    /// `begin_stretch` must fully clear the signature tables.
    #[test]
    fn begin_stretch_resets_everything() {
        let mut fx = FeatureExtractor::new(64);
        fx.begin_stretch(9, 3.0);
        fx.warm_fetch_line(77);
        fx.warm_load(0x1000, 0x9000);
        fx.add_instrs(2);
        fx.note_event();
        fx.begin_stretch(0, 0.0);
        let blank = FeatureExtractor::new(64);
        assert_eq!(fx.features(), blank.features());
    }
}
