//! Online, deterministic predictors: ridge regression and a tiny GBM.
//!
//! Both models map a stretch feature vector ([`crate::FEATURE_DIM`]
//! dims) to the next measured grain's per-instruction cycle metrics
//! ([`TARGETS`] targets: busy, i-cache, d-cache, and branch CPI). They
//! are trained prequentially — predict first, observe the measurement,
//! update — and contain no randomness whatsoever: the ridge path is a
//! Gram-matrix accumulation solved by Gaussian elimination with partial
//! pivoting; the GBM grows greedy depth-1 stumps over exact split
//! points in deterministic (dimension, sample) order. Identical inputs
//! therefore produce bit-identical predictions in any thread count and
//! any OS process.

use crate::features::FEATURE_DIM;

/// Predicted metrics per grain: busy CPI, i-cache stall CPI, d-cache
/// stall CPI, branch penalty CPI (cycles per instruction each).
pub const TARGETS: usize = 4;

/// Baseline ridge regularisation weight, scaled by the centred Gram
/// trace for unit invariance.
const RIDGE_LAMBDA: f64 = 1e-3;

/// Sample-count-scaled shrinkage adder: the effective weight is
/// `RIDGE_LAMBDA + RIDGE_SHRINK / n`, so a model fit on a handful of
/// stretches is pulled hard toward the running-mean predictor (its
/// centred weights toward zero) instead of extrapolating a wildly
/// underdetermined 14-dimensional fit, and relaxes as evidence
/// accumulates.
const RIDGE_SHRINK: f64 = 2.0;

/// Which predictor the learned mode trains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ModelKind {
    /// Online ridge regression (the default: cheapest, monotone updates).
    #[default]
    Ridge,
    /// Gradient-boosted depth-1 stumps over a bounded sample buffer.
    Gbm,
}

impl ModelKind {
    /// Stable lower-case name (CLI flag value and JSON field).
    pub fn as_str(self) -> &'static str {
        match self {
            ModelKind::Ridge => "ridge",
            ModelKind::Gbm => "gbm",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s {
            "ridge" => Some(ModelKind::Ridge),
            "gbm" => Some(ModelKind::Gbm),
            _ => None,
        }
    }
}

/// Online ridge regression over all targets at once.
///
/// Accumulates the Gram matrix `XᵀX`, the moment matrix `XᵀY`, and the
/// feature/target sums, and refits on demand in *mean-centred* form:
/// `(XᵀX − n·x̄x̄ᵀ + λI)·W = XᵀY − n·x̄ȳᵀ`, predicting
/// `ȳ + Wᵀ(x − x̄)`. Centring makes the heavily-shrunk small-sample
/// regime degrade to the running-mean predictor — the statistically
/// safe fallback — rather than to zero. Fixed-size arrays throughout —
/// no allocation after construction, no iteration-order
/// nondeterminism.
#[derive(Clone, Debug)]
pub struct RidgeModel {
    xtx: [[f64; FEATURE_DIM]; FEATURE_DIM],
    xty: [[f64; TARGETS]; FEATURE_DIM],
    sum_x: [f64; FEATURE_DIM],
    sum_y: [f64; TARGETS],
    w: [[f64; TARGETS]; FEATURE_DIM],
    mean_x: [f64; FEATURE_DIM],
    mean_y: [f64; TARGETS],
    n: u64,
    fitted: bool,
}

impl Default for RidgeModel {
    fn default() -> Self {
        RidgeModel {
            xtx: [[0.0; FEATURE_DIM]; FEATURE_DIM],
            xty: [[0.0; TARGETS]; FEATURE_DIM],
            sum_x: [0.0; FEATURE_DIM],
            sum_y: [0.0; TARGETS],
            w: [[0.0; TARGETS]; FEATURE_DIM],
            mean_x: [0.0; FEATURE_DIM],
            mean_y: [0.0; TARGETS],
            n: 0,
            fitted: false,
        }
    }
}

impl RidgeModel {
    /// Adds one `(features, targets)` observation and refits.
    pub fn observe(&mut self, x: &[f64; FEATURE_DIM], y: &[f64; TARGETS]) {
        for i in 0..FEATURE_DIM {
            for j in 0..FEATURE_DIM {
                self.xtx[i][j] += x[i] * x[j];
            }
            for t in 0..TARGETS {
                self.xty[i][t] += x[i] * y[t];
            }
            self.sum_x[i] += x[i];
        }
        for t in 0..TARGETS {
            self.sum_y[t] += y[t];
        }
        self.n += 1;
        self.fit();
    }

    /// Observations accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether a weight matrix is available.
    pub fn fitted(&self) -> bool {
        self.fitted
    }

    fn fit(&mut self) {
        let nf = self.n as f64;
        for i in 0..FEATURE_DIM {
            self.mean_x[i] = self.sum_x[i] / nf;
        }
        for t in 0..TARGETS {
            self.mean_y[t] = self.sum_y[t] / nf;
        }
        // Centred Gram and moment matrices.
        let mut a = self.xtx;
        let mut b = self.xty;
        for i in 0..FEATURE_DIM {
            for j in 0..FEATURE_DIM {
                a[i][j] -= nf * self.mean_x[i] * self.mean_x[j];
            }
            for t in 0..TARGETS {
                b[i][t] -= nf * self.mean_x[i] * self.mean_y[t];
            }
        }
        let trace: f64 = (0..FEATURE_DIM).map(|i| a[i][i]).sum();
        let lambda = (RIDGE_LAMBDA + RIDGE_SHRINK / nf)
            * (trace / FEATURE_DIM as f64).max(1e-12);
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += lambda;
        }
        // Gaussian elimination with partial pivoting, all columns of B
        // eliminated together.
        for col in 0..FEATURE_DIM {
            let mut piv = col;
            for r in col + 1..FEATURE_DIM {
                if a[r][col].abs() > a[piv][col].abs() {
                    piv = r;
                }
            }
            if a[piv][col].abs() < 1e-12 {
                return; // singular despite the ridge: keep previous weights
            }
            a.swap(col, piv);
            b.swap(col, piv);
            for r in col + 1..FEATURE_DIM {
                let f = a[r][col] / a[col][col];
                if f == 0.0 {
                    continue;
                }
                for c in col..FEATURE_DIM {
                    a[r][c] -= f * a[col][c];
                }
                for t in 0..TARGETS {
                    b[r][t] -= f * b[col][t];
                }
            }
        }
        for col in (0..FEATURE_DIM).rev() {
            for t in 0..TARGETS {
                let mut v = b[col][t];
                for c in col + 1..FEATURE_DIM {
                    v -= a[col][c] * self.w[c][t];
                }
                self.w[col][t] = v / a[col][col];
            }
        }
        self.fitted = true;
    }

    /// Predicts all targets for `x`. Targets are cycle counts per
    /// instruction, so predictions are clamped at zero.
    pub fn predict(&self, x: &[f64; FEATURE_DIM]) -> [f64; TARGETS] {
        let mut y = [0.0; TARGETS];
        for (t, out) in y.iter_mut().enumerate() {
            let mut v = self.mean_y[t];
            for i in 0..FEATURE_DIM {
                v += self.w[i][t] * (x[i] - self.mean_x[i]);
            }
            *out = v.max(0.0);
        }
        y
    }
}

/// Samples the GBM keeps (a bounded ring; runs here observe at most a
/// few hundred measured grains).
const GBM_CAP: usize = 128;
/// Boosting rounds per target.
const GBM_ROUNDS: usize = 16;
/// Shrinkage per stump.
const GBM_ETA: f64 = 0.5;

/// One decision stump: `if x[dim] <= thresh { left } else { right }`.
#[derive(Clone, Copy, Debug, Default)]
struct Stump {
    dim: usize,
    thresh: f64,
    left: f64,
    right: f64,
}

impl Stump {
    #[inline]
    fn eval(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        if x[self.dim] <= self.thresh {
            self.left
        } else {
            self.right
        }
    }
}

/// A tiny fixed-depth gradient-boosted model: per target, a mean base
/// plus `GBM_ROUNDS` greedy depth-1 stumps refit over the sample
/// buffer on every observation. Strictly deterministic: candidate
/// splits are the observed feature values, scanned in (dimension,
/// sorted-sample) order with first-wins tie-breaking.
#[derive(Clone, Debug, Default)]
pub struct GbmModel {
    xs: Vec<[f64; FEATURE_DIM]>,
    ys: Vec<[f64; TARGETS]>,
    head: usize,
    base: [f64; TARGETS],
    stumps: Vec<[Stump; GBM_ROUNDS]>,
    fitted: bool,
}

impl GbmModel {
    /// Adds one observation (evicting the oldest beyond the cap) and
    /// refits every target.
    pub fn observe(&mut self, x: &[f64; FEATURE_DIM], y: &[f64; TARGETS]) {
        if self.xs.len() < GBM_CAP {
            self.xs.push(*x);
            self.ys.push(*y);
        } else {
            self.xs[self.head] = *x;
            self.ys[self.head] = *y;
            self.head = (self.head + 1) % GBM_CAP;
        }
        self.fit();
    }

    /// Observations currently buffered.
    pub fn count(&self) -> u64 {
        self.xs.len() as u64
    }

    /// Whether the model has been fit.
    pub fn fitted(&self) -> bool {
        self.fitted
    }

    fn fit(&mut self) {
        let n = self.xs.len();
        if n == 0 {
            return;
        }
        self.stumps = vec![[Stump::default(); GBM_ROUNDS]; TARGETS];
        for t in 0..TARGETS {
            let mean: f64 = self.ys.iter().map(|y| y[t]).sum::<f64>() / n as f64;
            self.base[t] = mean;
            let mut resid: Vec<f64> = self.ys.iter().map(|y| y[t] - mean).collect();
            // Small buffers get few (or zero) stumps: a handful of noisy
            // grains should predict their mean, not memorise themselves.
            let rounds = GBM_ROUNDS.min(n / 4);
            for round in 0..rounds {
                let Some(stump) = best_stump(&self.xs, &resid) else { break };
                let mut damped = stump;
                damped.left *= GBM_ETA;
                damped.right *= GBM_ETA;
                for (x, r) in self.xs.iter().zip(resid.iter_mut()) {
                    *r -= damped.eval(x);
                }
                self.stumps[t][round] = damped;
            }
        }
        self.fitted = true;
    }

    /// Predicts all targets for `x`, clamped at zero.
    pub fn predict(&self, x: &[f64; FEATURE_DIM]) -> [f64; TARGETS] {
        let mut y = [0.0; TARGETS];
        for (t, out) in y.iter_mut().enumerate() {
            let mut v = self.base[t];
            if let Some(stumps) = self.stumps.get(t) {
                for s in stumps {
                    v += s.eval(x);
                }
            }
            *out = v.max(0.0);
        }
        y
    }
}

/// The squared-error-optimal stump over `(xs, resid)`, or `None` when no
/// split improves on the zero predictor. O(D · n log n) per call.
fn best_stump(xs: &[[f64; FEATURE_DIM]], resid: &[f64]) -> Option<Stump> {
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let total: f64 = resid.iter().sum();
    let mut best: Option<(f64, Stump)> = None;
    let mut order: Vec<usize> = (0..n).collect();
    for dim in 0..FEATURE_DIM {
        order.sort_by(|&a, &b| {
            xs[a][dim].partial_cmp(&xs[b][dim]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0;
        for (k, &i) in order.iter().enumerate().take(n - 1) {
            left_sum += resid[i];
            // Can't split between equal feature values.
            if xs[order[k + 1]][dim] <= xs[i][dim] {
                continue;
            }
            let nl = (k + 1) as f64;
            let nr = (n - k - 1) as f64;
            let right_sum = total - left_sum;
            // Variance-reduction gain of predicting each side's mean.
            let gain = left_sum * left_sum / nl + right_sum * right_sum / nr;
            let better = match best {
                None => true,
                Some((g, _)) => gain > g + 1e-15,
            };
            if better {
                best = Some((
                    gain,
                    Stump {
                        dim,
                        thresh: xs[i][dim],
                        left: left_sum / nl,
                        right: right_sum / nr,
                    },
                ));
            }
        }
    }
    best.map(|(_, s)| s)
}

/// The predictor behind the learned mode, dispatching on [`ModelKind`].
// One `Model` lives per simulated run; the ~2 KiB ridge state is not
// worth an indirection on every observe/predict call.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Model {
    /// Online ridge regression.
    Ridge(RidgeModel),
    /// Bounded-buffer GBM.
    Gbm(Box<GbmModel>),
}

impl Model {
    /// Creates an empty model of the given kind.
    pub fn new(kind: ModelKind) -> Model {
        match kind {
            ModelKind::Ridge => Model::Ridge(RidgeModel::default()),
            ModelKind::Gbm => Model::Gbm(Box::default()),
        }
    }

    /// The model's kind.
    pub fn kind(&self) -> ModelKind {
        match self {
            Model::Ridge(_) => ModelKind::Ridge,
            Model::Gbm(_) => ModelKind::Gbm,
        }
    }

    /// Adds one observation and refits.
    pub fn observe(&mut self, x: &[f64; FEATURE_DIM], y: &[f64; TARGETS]) {
        match self {
            Model::Ridge(m) => m.observe(x, y),
            Model::Gbm(m) => m.observe(x, y),
        }
    }

    /// Whether predictions are available.
    pub fn fitted(&self) -> bool {
        match self {
            Model::Ridge(m) => m.fitted(),
            Model::Gbm(m) => m.fitted(),
        }
    }

    /// Predicts all targets for `x` (zero-clamped).
    pub fn predict(&self, x: &[f64; FEATURE_DIM]) -> [f64; TARGETS] {
        match self {
            Model::Ridge(m) => m.predict(x),
            Model::Gbm(m) => m.predict(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(i: u64) -> ([f64; FEATURE_DIM], [f64; TARGETS]) {
        // A deterministic synthetic stream: targets are noiseless linear
        // functions of a few features.
        let mut x = [0.0; FEATURE_DIM];
        x[0] = 1.0;
        for (d, v) in x.iter_mut().enumerate().skip(1) {
            let h = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(d as u32);
            *v = (h % 1000) as f64 / 1000.0;
        }
        let y = [
            0.5 + 2.0 * x[2] + 0.7 * x[6],
            0.1 + 0.3 * x[8],
            0.2 + 1.1 * x[10] / 1000.0 + 0.4 * x[2],
            0.05 + 0.6 * x[4],
        ];
        (x, y)
    }

    #[test]
    fn ridge_recovers_linear_targets() {
        let mut m = RidgeModel::default();
        // Enough samples for the 2/n small-sample shrinkage to decay:
        // the test is about asymptotic recovery of the linear structure.
        for i in 0..400 {
            let (x, y) = synth(i);
            m.observe(&x, &y);
        }
        assert!(m.fitted());
        for i in 400..404 {
            let (x, y) = synth(i);
            let p = m.predict(&x);
            for t in 0..TARGETS {
                assert!(
                    (p[t] - y[t]).abs() < 0.02,
                    "target {t}: predicted {} want {}",
                    p[t],
                    y[t]
                );
            }
        }
    }

    #[test]
    fn gbm_reduces_error_over_mean_baseline() {
        let mut m = GbmModel::default();
        for i in 0..60 {
            let (x, y) = synth(i);
            m.observe(&x, &y);
        }
        assert!(m.fitted());
        // Against the training-mean baseline, the boosted model must cut
        // the holdout error substantially.
        let mean_y0: f64 = (0..60).map(|i| synth(i).1[0]).sum::<f64>() / 60.0;
        let mut gbm_err = 0.0;
        let mut mean_err = 0.0;
        for i in 60..80 {
            let (x, y) = synth(i);
            gbm_err += (m.predict(&x)[0] - y[0]).abs();
            mean_err += (mean_y0 - y[0]).abs();
        }
        assert!(gbm_err < 0.6 * mean_err, "gbm {gbm_err:.4} vs mean {mean_err:.4}");
    }

    #[test]
    fn models_are_bitwise_deterministic() {
        for kind in [ModelKind::Ridge, ModelKind::Gbm] {
            let mut a = Model::new(kind);
            let mut b = Model::new(kind);
            for i in 0..30 {
                let (x, y) = synth(i);
                a.observe(&x, &y);
                b.observe(&x, &y);
            }
            let (probe, _) = synth(99);
            let pa = a.predict(&probe);
            let pb = b.predict(&probe);
            for t in 0..TARGETS {
                assert_eq!(pa[t].to_bits(), pb[t].to_bits(), "{kind:?} target {t}");
            }
        }
    }

    #[test]
    fn predictions_are_zero_clamped() {
        let mut m = RidgeModel::default();
        let mut x = [0.0; FEATURE_DIM];
        x[0] = 1.0;
        x[1] = 1.0;
        m.observe(&x, &[0.0; TARGETS]);
        let mut far = [0.0; FEATURE_DIM];
        far[0] = 1.0;
        far[1] = -100.0;
        let p = m.predict(&far);
        for t in 0..TARGETS {
            assert!(p[t] >= 0.0);
        }
    }

    #[test]
    fn model_kind_round_trips_through_parse() {
        for kind in [ModelKind::Ridge, ModelKind::Gbm] {
            assert_eq!(ModelKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ModelKind::parse("forest"), None);
    }
}
