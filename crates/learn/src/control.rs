//! The learned fast-forward controller: train → skip → fall back.
//!
//! [`FastForward`] owns the feature extractor, the predictor, and the
//! residual accounting, and exposes the small API the sampling loop in
//! `esp-core` drives:
//!
//! 1. Every warm stretch is summarised by the extractor, teed next to
//!    the engine over the stretch's always-fully-warmed suffix grains
//!    (the only region features come from — skipped interiors are
//!    fast-forwarded with no observer).
//! 2. At the stretch's end the model predicts the next measured grain's
//!    per-instruction metrics; when the grain closes, the
//!    predicted-vs-actual residual is recorded and the model trained
//!    (prequential evaluation — every prediction is made blind).
//! 3. Skipping is enabled only after [`LearnParams::train_stretches`]
//!    observed stretches, and only while the rolling residual stays
//!    within [`LearnParams::residual_bound_pct`]. A breach falls back to
//!    full functional warming for [`LearnParams::cooloff_stretches`]
//!    stretches; [`LearnParams::max_fallbacks`] breaches disable
//!    skipping for the rest of the run (the caller may then rerun with
//!    plain warming — the last rung of the ladder).

use crate::features::{FeatureExtractor, Footprint, FEATURE_DIM};
use crate::model::{Model, ModelKind, TARGETS};
use esp_stats::{ResidualAccum, RESIDUAL_WINDOW};

/// Minimum predictions in the rolling window before a residual breach
/// can be declared: the bias of fewer samples is still dominated by
/// per-grain noise.
const JUDGE_MIN: usize = 3;

/// The bias threshold at window length `wlen`: the configured bound
/// applies at a *full* window, and shorter windows get a proportionally
/// wider gate (`bound · sqrt(W / wlen)`) so the breach test keeps a
/// constant statistical significance — the standard error of a mean of
/// `wlen` noisy residuals shrinks as `1/sqrt(wlen)`.
fn bias_threshold_pct(bound_pct: f64, wlen: usize) -> f64 {
    bound_pct * (RESIDUAL_WINDOW as f64 / wlen.max(1) as f64).sqrt()
}

/// Tuning knobs of the learned fast-forward mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LearnParams {
    /// Which predictor to train.
    pub model: ModelKind,
    /// Warm stretches observed (fully warmed) before skipping may start.
    pub train_stretches: u32,
    /// Warm grains always fully warmed at the *end* of each stretch,
    /// immediately before the detailed-warmup grain, rebuilding
    /// short-term cache/predictor state that skipping left cold.
    pub warm_suffix_grains: u64,
    /// Rolling *signed* mean relative busy-CPI residual (percent, in
    /// magnitude) above which skipping is not trusted. Per-grain CPI is
    /// inherently noisy (25–40% CV in the bundled workloads); the signed
    /// rolling mean averages that noise out, so what this bound catches
    /// is persistent prediction bias — model failure or skip-induced
    /// warm-state drift.
    pub residual_bound_pct: f64,
    /// Fully-warmed stretches after a residual breach before skipping
    /// may resume.
    pub cooloff_stretches: u32,
    /// Residual breaches after which skipping is disabled for good.
    pub max_fallbacks: u32,
}

impl Default for LearnParams {
    fn default() -> Self {
        LearnParams {
            model: ModelKind::Ridge,
            train_stretches: 2,
            warm_suffix_grains: 3,
            // ~3σ of the rolling bias under the bundled workloads'
            // 25–40% per-grain CPI noise: trips on genuine phase breaks,
            // not on noise. Run-level accuracy does not ride on this —
            // predictions gate skipping, they never replace measurements.
            residual_bound_pct: 40.0,
            cooloff_stretches: 1,
            max_fallbacks: 8,
        }
    }
}

impl LearnParams {
    /// Validates the parameters, returning a human-readable error for
    /// the CLI to print (no panics on user input).
    pub fn validate(&self) -> Result<(), String> {
        if self.train_stretches == 0 {
            return Err("--learn-train must be at least 1".into());
        }
        if self.warm_suffix_grains == 0 {
            return Err(
                "--learn-suffix must be at least 1 (a measured grain needs freshly warmed state)"
                    .into(),
            );
        }
        if !self.residual_bound_pct.is_finite() || self.residual_bound_pct <= 0.0 {
            return Err("--learn-bound must be a positive number of percent".into());
        }
        if self.cooloff_stretches == 0 {
            return Err("cooloff_stretches must be at least 1".into());
        }
        if self.max_fallbacks == 0 {
            return Err("max_fallbacks must be at least 1".into());
        }
        Ok(())
    }
}

/// Where the controller currently is in its train/skip/fall-back ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Observing fully-warmed stretches; no skipping yet.
    Train,
    /// Skipping stretch interiors.
    Skip,
    /// Fully warming after a residual breach; resumes skipping once the
    /// counter drains *and* the rolling residual is back in bounds.
    Cooloff(u32),
    /// Skipping disabled for the rest of the run.
    Disabled,
}

/// Summary of a learned run, reported next to the sampling estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LearnedStats {
    /// Predictor kind.
    pub model: ModelKind,
    /// Warm stretches the run contained.
    pub stretches: u64,
    /// Stretches whose interior was (at least partly) skipped.
    pub skipped_stretches: u64,
    /// Warm grains fast-forwarded by the feature-only walk.
    pub skipped_grains: u64,
    /// Warm grains fully warmed (training, suffix, cooloff).
    pub warmed_grains: u64,
    /// Instructions fast-forwarded without engine warming.
    pub skipped_instrs: u64,
    /// Instructions fully warmed inside warm grains.
    pub warmed_instrs: u64,
    /// Blind predictions issued (one per observed stretch once fitted).
    pub predictions: u64,
    /// Residual-bound breaches (each triggers a cooloff or disables).
    pub fallbacks: u64,
    /// True once skipping was disabled by repeated breaches.
    pub disabled: bool,
    /// True when the run was re-executed with plain warming because the
    /// ladder bottomed out (the report then contains no skipped state).
    pub rerun_full: bool,
    /// Whole-run mean absolute relative busy-CPI residual, percent.
    pub mean_err_pct: f64,
    /// Rolling-window residual at end of run, percent.
    pub rolling_err_pct: f64,
    /// Whole-run RMS relative busy-CPI residual, percent.
    pub rmse_pct: f64,
    /// `1 − rolling/bound`, clamped to `[0, 1]`; 0 until the model is
    /// fitted. Exposed for reuse (e.g. intra-run chunk-entry prediction).
    pub confidence: f64,
}

impl LearnedStats {
    /// An all-zero record for runs that never got to learn (e.g. a
    /// workload too small to sample at all).
    pub fn empty(model: ModelKind) -> LearnedStats {
        LearnedStats {
            model,
            stretches: 0,
            skipped_stretches: 0,
            skipped_grains: 0,
            warmed_grains: 0,
            skipped_instrs: 0,
            warmed_instrs: 0,
            predictions: 0,
            fallbacks: 0,
            disabled: false,
            rerun_full: false,
            mean_err_pct: 0.0,
            rolling_err_pct: 0.0,
            rmse_pct: 0.0,
            confidence: 0.0,
        }
    }

    /// Residual breaches per observed stretch (the reported
    /// "fallback rate").
    pub fn fallback_rate(&self) -> f64 {
        if self.stretches == 0 {
            0.0
        } else {
            self.fallbacks as f64 / self.stretches as f64
        }
    }

    /// Fraction of warm-grain instructions that were fast-forwarded
    /// without engine warming.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.skipped_instrs + self.warmed_instrs;
        if total == 0 {
            0.0
        } else {
            self.skipped_instrs as f64 / total as f64
        }
    }
}

/// The learned fast-forward state machine (see the module docs).
#[derive(Clone, Debug)]
pub struct FastForward {
    params: LearnParams,
    extractor: FeatureExtractor,
    footprint: Footprint,
    model: Model,
    residuals: [ResidualAccum; TARGETS],
    phase: Phase,
    in_stretch: bool,
    stretch_skipped: bool,
    observed: u64,
    stretches: u64,
    skipped_stretches: u64,
    skipped_grains: u64,
    warmed_grains: u64,
    skipped_instrs: u64,
    warmed_instrs: u64,
    predictions: u64,
    fallbacks: u64,
    ever_disabled: bool,
    pending_x: Option<[f64; FEATURE_DIM]>,
    pending_pred: Option<[f64; TARGETS]>,
    prev_cpi: f64,
    /// Absolute relative busy-CPI error of the most recent blind
    /// prediction, percent; infinite until one lands. Gates entry into
    /// the skip phase.
    last_err_pct: f64,
}

impl FastForward {
    /// Builds a controller, validating `params`. `line_bytes` is the
    /// machine's L1-I line size (feature footprints use it).
    pub fn new(params: LearnParams, line_bytes: u64) -> Result<FastForward, String> {
        params.validate()?;
        Ok(FastForward {
            params,
            extractor: FeatureExtractor::new(line_bytes),
            footprint: Footprint::new(line_bytes),
            model: Model::new(params.model),
            residuals: [ResidualAccum::default(); TARGETS],
            phase: Phase::Train,
            in_stretch: false,
            stretch_skipped: false,
            observed: 0,
            stretches: 0,
            skipped_stretches: 0,
            skipped_grains: 0,
            warmed_grains: 0,
            skipped_instrs: 0,
            warmed_instrs: 0,
            predictions: 0,
            fallbacks: 0,
            ever_disabled: false,
            pending_x: None,
            pending_pred: None,
            prev_cpi: 0.0,
            last_err_pct: f64::INFINITY,
        })
    }

    /// The validated parameters.
    pub fn params(&self) -> &LearnParams {
        &self.params
    }

    /// The current ladder phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether stretch interiors may currently be skipped.
    pub fn skip_interior(&self) -> bool {
        self.phase == Phase::Skip && self.model.fitted()
    }

    /// The stretch feature sink (teed with the engine over the stretch
    /// suffix; also fed per-instruction by the looper path).
    pub fn extractor_mut(&mut self) -> &mut FeatureExtractor {
        &mut self.extractor
    }

    /// Read access to the stretch feature sink.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The skipped-interior footprint sink (fed by the observed skip
    /// walk's memory-touch hooks).
    pub fn footprint_mut(&mut self) -> &mut Footprint {
        &mut self.footprint
    }

    /// Read access to the skipped-interior footprint (reinstall).
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }

    /// Whether a stretch is currently open.
    pub fn in_stretch(&self) -> bool {
        self.in_stretch
    }

    /// Opens a stretch: resets the extractor with the replay-list
    /// occupancy at entry and the previous measured grain's busy CPI.
    pub fn begin_stretch(&mut self, replay_occ: u64) {
        self.extractor.begin_stretch(replay_occ, self.prev_cpi);
        self.in_stretch = true;
        self.stretch_skipped = false;
        self.stretches += 1;
    }

    /// Notes an event boundary (ignored outside a stretch).
    pub fn note_event(&mut self) {
        if self.in_stretch {
            self.extractor.note_event();
        }
    }

    /// Accounts one completed warm grain of `instrs` instructions,
    /// `skipped` when the feature-only walk fast-forwarded it.
    pub fn note_grain(&mut self, instrs: u64, skipped: bool) {
        if skipped {
            self.skipped_grains += 1;
            self.skipped_instrs += instrs;
            self.stretch_skipped = true;
        } else {
            self.warmed_grains += 1;
            self.warmed_instrs += instrs;
        }
    }

    /// Closes the stretch: issues the blind prediction for the upcoming
    /// measured grain (once the model is fitted) and parks the features
    /// for training when the measurement arrives.
    pub fn end_stretch(&mut self) {
        if !self.in_stretch {
            return;
        }
        self.in_stretch = false;
        if self.stretch_skipped {
            self.skipped_stretches += 1;
        }
        let x = self.extractor.features();
        self.pending_pred = if self.model.fitted() {
            self.predictions += 1;
            Some(self.model.predict(&x))
        } else {
            None
        };
        self.pending_x = Some(x);
    }

    /// Feeds the measured grain that follows a stretch: records the
    /// prequential residuals, trains the model, and advances the
    /// train/skip/cooloff ladder. `actual` is the grain's per-instruction
    /// cycle metrics in [`crate::TARGETS`] order (busy first).
    pub fn observe_measured(&mut self, actual: [f64; TARGETS]) {
        self.prev_cpi = actual[0];
        let Some(x) = self.pending_x.take() else { return };
        let pred = self.pending_pred.take();
        if let Some(p) = pred {
            for t in 0..TARGETS {
                self.residuals[t].observe(p[t], actual[t]);
            }
            self.last_err_pct = if actual[0] > 0.0 && actual[0].is_finite() {
                100.0 * (p[0] - actual[0]).abs() / actual[0]
            } else {
                f64::INFINITY
            };
        }
        self.model.observe(&x, &actual);
        self.observed += 1;
        self.phase = match self.phase {
            Phase::Train => {
                // Entry is judged, not scheduled: `train_stretches` sets
                // the minimum, but the model must also have landed its
                // latest blind prediction inside the configured bound.
                // A (workload, config) pair the model cannot predict
                // then never starts skipping — the run degrades to plain
                // sampled cost and bias instead of skipping, breaching,
                // and bottoming out in the expensive rerun.
                if self.observed >= self.params.train_stretches as u64
                    && self.model.fitted()
                    && self.last_err_pct <= self.params.residual_bound_pct
                {
                    Phase::Skip
                } else {
                    Phase::Train
                }
            }
            Phase::Skip => {
                // Judged on the rolling signed bias, and only once the
                // window holds enough predictions for grain noise to
                // average out of it.
                let r = &self.residuals[0];
                let breach = r.window_len() >= JUDGE_MIN
                    && r.rolling_bias_pct().abs()
                        > bias_threshold_pct(self.params.residual_bound_pct, r.window_len());
                if breach {
                    self.fallbacks += 1;
                    if self.fallbacks >= self.params.max_fallbacks as u64 {
                        self.ever_disabled = true;
                        Phase::Disabled
                    } else {
                        Phase::Cooloff(self.params.cooloff_stretches)
                    }
                } else {
                    Phase::Skip
                }
            }
            Phase::Cooloff(k) => {
                if k > 1 {
                    Phase::Cooloff(k - 1)
                } else if self.rolling_bias_pct().abs()
                    <= bias_threshold_pct(
                        self.params.residual_bound_pct,
                        self.residuals[0].window_len(),
                    )
                {
                    Phase::Skip
                } else {
                    // The cooloff drained without the rolling window
                    // recovering: that failed recovery is itself a
                    // fallback step, so a persistently unpredictable
                    // workload converges to Disabled instead of cycling
                    // through cooloffs forever.
                    self.fallbacks += 1;
                    if self.fallbacks >= self.params.max_fallbacks as u64 {
                        self.ever_disabled = true;
                        Phase::Disabled
                    } else {
                        Phase::Cooloff(self.params.cooloff_stretches)
                    }
                }
            }
            Phase::Disabled => Phase::Disabled,
        };
    }

    /// Rolling mean absolute relative busy-CPI residual, percent.
    pub fn rolling_err_pct(&self) -> f64 {
        self.residuals[0].rolling_mean_abs_rel_pct()
    }

    /// Rolling *signed* mean relative busy-CPI residual, percent — the
    /// quantity the fallback ladder gates on.
    pub fn rolling_bias_pct(&self) -> f64 {
        self.residuals[0].rolling_bias_pct()
    }

    /// Model confidence in `[0, 1]` (see [`LearnedStats::confidence`]).
    pub fn confidence(&self) -> f64 {
        if !self.model.fitted() || self.predictions == 0 {
            return 0.0;
        }
        (1.0 - self.rolling_bias_pct().abs() / self.params.residual_bound_pct).clamp(0.0, 1.0)
    }

    /// Per-target residual accumulators (busy, icache, dcache, branch) —
    /// the estimator widens its confidence intervals with these.
    pub fn residuals(&self) -> &[ResidualAccum; TARGETS] {
        &self.residuals
    }

    /// Snapshot of the run-level statistics.
    pub fn stats(&self) -> LearnedStats {
        LearnedStats {
            model: self.params.model,
            stretches: self.stretches,
            skipped_stretches: self.skipped_stretches,
            skipped_grains: self.skipped_grains,
            warmed_grains: self.warmed_grains,
            skipped_instrs: self.skipped_instrs,
            warmed_instrs: self.warmed_instrs,
            predictions: self.predictions,
            fallbacks: self.fallbacks,
            disabled: self.ever_disabled,
            rerun_full: false,
            mean_err_pct: self.residuals[0].mean_abs_rel_pct(),
            rolling_err_pct: self.rolling_err_pct(),
            rmse_pct: self.residuals[0].rel_rmse_pct(),
            confidence: self.confidence(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::Instr;
    use esp_types::Addr;

    /// Drives one synthetic stretch through the controller: a few
    /// instructions into the extractor, then the stretch close and the
    /// measured-grain observation.
    fn drive_stretch(ff: &mut FastForward, seed: u64, actual_cpi: f64) {
        ff.begin_stretch(seed % 7);
        for i in 0..50 {
            let pc = 0x1000 + ((seed * 131 + i * 4) % 0x4000);
            ff.extractor_mut().note_step(&Instr::alu(Addr::new(pc)));
        }
        ff.note_grain(50, false);
        ff.end_stretch();
        ff.observe_measured([actual_cpi, actual_cpi * 0.2, actual_cpi * 0.3, actual_cpi * 0.1]);
    }

    #[test]
    fn training_prefix_then_skipping() {
        let params = LearnParams { train_stretches: 3, ..LearnParams::default() };
        let mut ff = FastForward::new(params, 64).unwrap();
        assert_eq!(ff.phase(), Phase::Train);
        assert!(!ff.skip_interior());
        // A stable workload: identical stretches, identical CPI.
        for s in 0..3 {
            assert!(!ff.skip_interior(), "must not skip while training");
            drive_stretch(&mut ff, 1, 1.5);
            let _ = s;
        }
        assert_eq!(ff.phase(), Phase::Skip);
        assert!(ff.skip_interior());
        drive_stretch(&mut ff, 1, 1.5);
        assert_eq!(ff.phase(), Phase::Skip, "stable CPI keeps skipping on");
        assert!(ff.confidence() > 0.9, "confidence {}", ff.confidence());
    }

    #[test]
    fn high_error_workload_triggers_fallback() {
        let params = LearnParams { residual_bound_pct: 2.0, ..LearnParams::default() };
        let mut ff = FastForward::new(params, 64).unwrap();
        // Train on a stable phase…
        for _ in 0..3 {
            drive_stretch(&mut ff, 1, 1.0);
        }
        assert_eq!(ff.phase(), Phase::Skip);
        // …then the workload changes phase violently: the blind
        // prediction misses by far more than the 2% bound.
        drive_stretch(&mut ff, 1, 4.0);
        let stats = ff.stats();
        assert_eq!(stats.fallbacks, 1, "breach must be counted");
        assert!(matches!(ff.phase(), Phase::Cooloff(_)), "breach must cool off");
        assert!(!ff.skip_interior(), "no skipping during cooloff");
        assert!(stats.fallback_rate() > 0.0);
    }

    #[test]
    fn repeated_breaches_disable_skipping() {
        let params = LearnParams {
            residual_bound_pct: 1.0,
            max_fallbacks: 2,
            cooloff_stretches: 1,
            ..LearnParams::default()
        };
        let mut ff = FastForward::new(params, 64).unwrap();
        for _ in 0..3 {
            drive_stretch(&mut ff, 1, 1.0);
        }
        // Alternate violently so every skip-phase prediction breaches.
        let mut cpi = 10.0;
        for _ in 0..40 {
            drive_stretch(&mut ff, 1, cpi);
            cpi = if cpi > 5.0 { 1.0 } else { 10.0 };
            if ff.phase() == Phase::Disabled {
                break;
            }
        }
        assert_eq!(ff.phase(), Phase::Disabled);
        let stats = ff.stats();
        assert!(stats.disabled);
        assert_eq!(stats.fallbacks, 2);
        // Disabled is terminal.
        drive_stretch(&mut ff, 1, 1.0);
        assert_eq!(ff.phase(), Phase::Disabled);
    }

    #[test]
    fn grain_accounting_feeds_stats() {
        let mut ff = FastForward::new(LearnParams::default(), 64).unwrap();
        ff.begin_stretch(0);
        ff.note_grain(2000, true);
        ff.note_grain(2000, true);
        ff.note_grain(500, false);
        ff.end_stretch();
        let s = ff.stats();
        assert_eq!(s.skipped_grains, 2);
        assert_eq!(s.warmed_grains, 1);
        assert_eq!(s.skipped_instrs, 4000);
        assert_eq!(s.warmed_instrs, 500);
        assert_eq!(s.skipped_stretches, 1);
        assert!((s.skip_fraction() - 4000.0 / 4500.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_are_rejected_with_messages() {
        let bad = LearnParams { warm_suffix_grains: 0, ..LearnParams::default() };
        assert!(FastForward::new(bad, 64).is_err());
        let bad = LearnParams { residual_bound_pct: 0.0, ..LearnParams::default() };
        assert!(bad.validate().is_err());
        let bad = LearnParams { train_stretches: 0, ..LearnParams::default() };
        assert!(bad.validate().is_err());
    }
}
