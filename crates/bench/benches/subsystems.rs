//! Plain timing harness (no external bench framework — the build runs
//! offline) for the individual simulator substrates: how fast the cache
//! model, branch predictor, workload generator, and the end-to-end
//! simulator execute on this host. Run with
//! `cargo bench -p esp-bench --bench subsystems [-- ITERS]`.

use esp_core::{SimConfig, Simulator};
use esp_workload::BenchmarkProfile;
use std::hint::black_box;
use std::time::Instant;

const DEFAULT_ITERS: u32 = 5;

/// Times `f` and prints throughput for `elements` units of work per call.
fn time<R>(name: &str, iters: u32, elements: u64, mut f: impl FnMut() -> R) {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    let rate = if best > 0.0 { elements as f64 / best } else { 0.0 };
    println!("{name:<24} {:>10.3} ms/iter  {:>12.0} elems/s (min of {iters})", best * 1e3, rate);
}

fn bench_cache(iters: u32) {
    use esp_mem::{CacheConfig, SetAssocCache};
    use esp_types::{Cycle, LineAddr};
    let mut cache = SetAssocCache::new(CacheConfig::l1_32k("L1"));
    let mut i = 0u64;
    time("cache/l1_access_stream", iters, 10_000, || {
        for _ in 0..10_000 {
            // A mix of hits and conflict misses across 1024 lines.
            let line = LineAddr::new((i * 769) % 1024);
            if !cache.access(line, Cycle::new(i)).is_hit() {
                cache.fill(line, Cycle::new(i), Cycle::new(i), false);
            }
            i += 1;
        }
        cache.occupancy()
    });
}

fn bench_branch(iters: u32) {
    use esp_branch::{BranchConfig, BranchPredictor, ContextPolicy, PredictorContext};
    use esp_trace::Instr;
    use esp_types::Addr;
    let mut bp = BranchPredictor::new(BranchConfig::pentium_m(), ContextPolicy::SeparatePir);
    let mut i = 0u64;
    time("branch/predict_update", iters, 10_000, || {
        let mut correct = 0u32;
        for _ in 0..10_000 {
            let pc = Addr::new(0x1000 + (i % 512) * 24);
            let taken = !(i / 7).is_multiple_of(3);
            let instr = Instr::cond_branch(pc, taken, Addr::new(0x4000));
            if bp.predict_and_update(PredictorContext::Normal, &instr).is_correct() {
                correct += 1;
            }
            i += 1;
        }
        correct
    });
}

fn bench_workload(iters: u32) {
    use esp_trace::{record_stream, Workload};
    let w = BenchmarkProfile::amazon().scaled(100_000).build(3);
    let id = w.events()[0].id;
    time("workload/walk_generation", iters, 20_000, || {
        let mut s = w.actual_stream(id);
        record_stream(&mut *s, 20_000).len()
    });
}

fn bench_simulator(iters: u32) {
    let w = BenchmarkProfile::amazon().scaled(60_000).build(3);
    for (name, cfg) in [
        ("simulator/baseline_60k", SimConfig::next_line()),
        ("simulator/esp_nl_60k", SimConfig::esp_nl()),
    ] {
        time(name, iters, 60_000, || Simulator::new(cfg.clone()).run(&w).total_cycles);
    }
}

fn main() {
    let iters: u32 = std::env::args()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    bench_cache(iters);
    bench_branch(iters);
    bench_workload(iters);
    bench_simulator(iters);
}
