//! Criterion benches for the individual simulator substrates: how fast
//! the cache model, branch predictor, workload generator, and the
//! end-to-end simulator execute on this host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use esp_core::{SimConfig, Simulator};
use esp_workload::BenchmarkProfile;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    use esp_mem::{CacheConfig, SetAssocCache};
    use esp_types::{Cycle, LineAddr};
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("l1_access_stream", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::l1_32k("L1"));
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                // A mix of hits and conflict misses across 1024 lines.
                let line = LineAddr::new((i * 769) % 1024);
                if !cache.access(line, Cycle::new(i)).is_hit() {
                    cache.fill(line, Cycle::new(i), Cycle::new(i), false);
                }
                i += 1;
            }
            black_box(cache.occupancy())
        })
    });
    group.finish();
}

fn bench_branch(c: &mut Criterion) {
    use esp_branch::{BranchConfig, BranchPredictor, ContextPolicy, PredictorContext};
    use esp_trace::Instr;
    use esp_types::Addr;
    let mut group = c.benchmark_group("branch");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("predict_update_stream", |b| {
        let mut bp = BranchPredictor::new(BranchConfig::pentium_m(), ContextPolicy::SeparatePir);
        let mut i = 0u64;
        b.iter(|| {
            let mut correct = 0u32;
            for _ in 0..10_000 {
                let pc = Addr::new(0x1000 + (i % 512) * 24);
                let taken = (i / 7) % 3 != 0;
                let instr = Instr::cond_branch(pc, taken, Addr::new(0x4000));
                if bp.predict_and_update(PredictorContext::Normal, &instr).is_correct() {
                    correct += 1;
                }
                i += 1;
            }
            black_box(correct)
        })
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    use esp_trace::{record_stream, Workload};
    let mut group = c.benchmark_group("workload");
    let w = BenchmarkProfile::amazon().scaled(100_000).build(3);
    let id = w.events()[0].id;
    group.throughput(Throughput::Elements(20_000));
    group.bench_function("walk_generation", |b| {
        b.iter(|| {
            let mut s = w.actual_stream(id);
            black_box(record_stream(&mut *s, 20_000).len())
        })
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let w = BenchmarkProfile::amazon().scaled(60_000).build(3);
    for (name, cfg) in [
        ("baseline_60k", SimConfig::next_line()),
        ("esp_nl_60k", SimConfig::esp_nl()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(Simulator::new(cfg.clone()).run(&w)).total_cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_branch, bench_workload, bench_simulator);
criterion_main!(benches);
