//! Plain timing harness (no external bench framework — the build runs
//! offline) timing the regeneration of each figure at a small scale: a
//! performance regression net for the whole simulator stack. Run with
//! `cargo bench -p esp-bench --bench figures [-- ITERS]`.

use esp_bench::{figures, Runner};
use std::hint::black_box;
use std::time::Instant;

/// Instruction budget per benchmark when timing figures. Small on
/// purpose: each figure is regenerated several times.
const BENCH_SCALE: u64 = 30_000;
const DEFAULT_ITERS: u32 = 3;

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // One warm-up, then report the minimum of `iters` timed runs (the
    // least-noise estimator for deterministic workloads).
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("{name:<24} {:>10.3} ms/iter (min of {iters})", best * 1e3);
}

type FigureCase = (&'static str, fn(&mut Runner) -> esp_bench::FigureReport);

fn main() {
    let iters: u32 = std::env::args()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    let cases: Vec<FigureCase> = vec![
        ("fig3_potential", figures::fig3),
        ("fig9_esp_vs_runahead", figures::fig9),
        ("fig10_sources", figures::fig10),
        ("fig11a_icache", figures::fig11a),
        ("fig11b_dcache", figures::fig11b),
        ("fig12_branch", figures::fig12),
        ("fig13_working_sets", figures::fig13),
        ("fig14_energy", figures::fig14),
    ];
    println!("figures @ scale {BENCH_SCALE}, {} threads", esp_par::threads());
    for (name, f) in cases {
        time(name, iters, || {
            // A fresh runner per iteration: the cache would otherwise
            // make every iteration after the first free.
            let mut runner = Runner::new(BENCH_SCALE, 7);
            f(&mut runner)
        });
    }
}
