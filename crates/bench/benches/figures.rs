//! Criterion benches timing the regeneration of each figure at a small
//! scale — a performance regression net for the whole simulator stack
//! (the per-figure simulation results themselves come from the `repro`
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use esp_bench::{figures, Runner};
use std::hint::black_box;

/// Instruction budget per benchmark when timing figures. Small on
/// purpose: Criterion runs each figure many times.
const BENCH_SCALE: u64 = 30_000;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    let cases: Vec<(&str, fn(&mut Runner) -> esp_bench::FigureReport)> = vec![
        ("fig3_potential", figures::fig3),
        ("fig9_esp_vs_runahead", figures::fig9),
        ("fig10_sources", figures::fig10),
        ("fig11a_icache", figures::fig11a),
        ("fig11b_dcache", figures::fig11b),
        ("fig12_branch", figures::fig12),
        ("fig13_working_sets", figures::fig13),
        ("fig14_energy", figures::fig14),
    ];
    for (name, f) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                // A fresh runner per iteration: the cache would otherwise
                // make every iteration after the first free.
                let mut runner = Runner::new(BENCH_SCALE, 7);
                black_box(f(&mut runner))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
