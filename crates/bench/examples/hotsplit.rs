//! Per-configuration cost split for the evaluation matrix.
//!
//! A profiling companion to `repro bench` (see `docs/PERFORMANCE.md`):
//! where `bench` times the whole 7-profile × 29-config matrix, this
//! probe takes one profile (amazon, the reference benchmark) and
//! prints, per machine configuration, the wall time of a single
//! simulation next to its retired/speculative/runahead instruction
//! counts — so a regression can be attributed to a config family
//! (ESP list replay? runahead episodes? plain baseline?) before
//! reaching for a sampling profiler.
//!
//! The first line is the floor: draining every packed cursor once with
//! no simulator attached, i.e. the pure replay cost a simulation pays
//! before any timing model runs.
//!
//! Run: `cargo run --release -p esp-bench --example hotsplit`

use esp_bench::ConfigKey;
use esp_core::Simulator;
use esp_trace::{EventStream, Workload};
use esp_workload::{arena, BenchmarkProfile};
use std::time::Instant;

fn main() {
    let scale = 600_000;
    let seed = 42;
    let profile = BenchmarkProfile::amazon().scaled(scale);
    let packed = arena::packed_for(&profile, seed, 1);

    // Replay floor: drain every actual cursor once, no simulator.
    let t = Instant::now();
    let mut n = 0u64;
    for r in packed.events() {
        let mut c = packed.arena().event(r.id.index() as usize).actual_cursor();
        while let Some(i) = c.next_instr() {
            n += u64::from(i.is_branch());
        }
    }
    let decode = t.elapsed().as_secs_f64();
    println!("cursor-drain floor: {decode:.3}s ({n} branches)");

    for key in ConfigKey::all() {
        let t = Instant::now();
        let report = Simulator::new(key.config()).run(&*packed);
        let dt = t.elapsed().as_secs_f64();
        println!(
            "{:>28}: {dt:.3}s retired={} spec={} runahead={}",
            format!("{key:?}"),
            report.engine.retired,
            report.esp.spec_instrs(),
            report.engine.runahead_instrs,
        );
    }
}
