//! Per-configuration timing split of the exact-mode hot loop.
//!
//! Usage: `cargo run --release -p esp-bench --example kerntime [scale]`
//!
//! Times one simulation per (profile, config-class) pair so kernel work
//! can be aimed at the classes that dominate the matrix.

use esp_bench::ConfigKey;
use esp_core::Simulator;
use esp_trace::Workload;
use esp_workload::BenchmarkProfile;
use std::time::Instant;

fn main() {
    let scale: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600_000);
    let seed = 42;
    let keys = [
        ConfigKey::Base,
        ConfigKey::NextLineStride,
        ConfigKey::Runahead,
        ConfigKey::Esp,
        ConfigKey::EspNl,
        ConfigKey::IdealEspINlI,
        ConfigKey::PerfectAll,
        ConfigKey::EspDepthProbe,
    ];
    let profiles = [BenchmarkProfile::amazon(), BenchmarkProfile::gmaps()];
    for profile in profiles {
        let w = esp_workload::arena::packed_for(&profile.scaled(scale), seed, esp_par::threads());
        let instrs = w.approx_total_instructions();
        println!("{} ({} instrs):", profile.name(), instrs);
        for key in keys {
            let sim = Simulator::new(key.config());
            let t = Instant::now();
            let r = sim.run(&*w);
            let dt = t.elapsed().as_secs_f64();
            let all = r.engine.retired + r.esp.spec_instrs() + r.engine.runahead_instrs;
            println!(
                "  {:<22} {:>7.3}s  retired {:>9}  spec {:>9}  {:>6.1} Minstr/s",
                format!("{key:?}"),
                dt,
                r.engine.retired,
                all - r.engine.retired,
                all as f64 / dt / 1e6,
            );
        }
    }
}
