//! Offline instruction-mix and plain-ALU-run statistics for one profile's
//! packed trace — tells the kernel work where batching can possibly pay.
//!
//! Usage: `cargo run --release -p esp-bench --example runstats [scale]`

use esp_trace::kindbits::{TAG_ALU, TAG_COND, TAG_LOAD, TAG_MASK, TAG_STORE};
use esp_trace::{Workload, INSTR_BYTES};
use esp_workload::BenchmarkProfile;

fn main() {
    let scale: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600_000);
    let profile = BenchmarkProfile::amazon();
    let w = esp_workload::arena::packed_for(&profile.scaled(scale), 42, 1);
    let events = w.events();
    let mut total = 0u64;
    let mut by_tag = [0u64; 8];
    let mut batched = 0u64; // instrs inside a same-line plain run of len >= 2
    let mut runs = 0u64;
    let mut run_hist = [0u64; 17];
    let mut data_accesses = 0u64;
    let mut data_same_line = 0u64; // data accesses to the previous data line
    for rec in events.iter() {
        let mut c = w.arena().event(rec.id.index() as usize).actual_cursor();
        let mut cur_line = u64::MAX;
        let mut last_data_line = u64::MAX;
        loop {
            // Replicate the kernel's batching condition: on the current
            // fetch line (so not the first instr of a line), plain ALUs to
            // line end.
            let pc = c.raw_pc();
            let line = pc >> 6;
            if line == cur_line {
                let line_end = (line + 1) << 6;
                let max = ((line_end - pc) / INSTR_BYTES) as usize;
                let n = c.plain_run(max);
                if n > 0 {
                    c.skip_plain(n);
                    total += n as u64;
                    by_tag[TAG_ALU as usize] += n as u64;
                    batched += n as u64;
                    runs += 1;
                    run_hist[n.min(16)] += 1;
                    continue;
                }
            }
            let Some(rs) = c.next_raw() else { break };
            total += 1;
            let tag = rs.kind & TAG_MASK;
            by_tag[tag as usize] += 1;
            cur_line = rs.pc >> 6;
            if tag == TAG_LOAD || tag == TAG_STORE {
                data_accesses += 1;
                if rs.op >> 6 == last_data_line {
                    data_same_line += 1;
                }
                last_data_line = rs.op >> 6;
            }
        }
    }
    println!("total instrs: {total}");
    println!(
        "alu {:.1}%  load {:.1}%  store {:.1}%  branch {:.1}%",
        100.0 * by_tag[TAG_ALU as usize] as f64 / total as f64,
        100.0 * by_tag[TAG_LOAD as usize] as f64 / total as f64,
        100.0 * by_tag[TAG_STORE as usize] as f64 / total as f64,
        100.0 * by_tag[TAG_COND as usize..].iter().sum::<u64>() as f64 / total as f64,
    );
    println!(
        "data accesses: {data_accesses}, same-line-as-previous: {data_same_line} ({:.1}%)",
        100.0 * data_same_line as f64 / data_accesses.max(1) as f64
    );
    println!(
        "batched plain-run instrs: {batched} ({:.1}%) in {runs} runs (avg {:.2}/run)",
        100.0 * batched as f64 / total as f64,
        batched as f64 / runs.max(1) as f64
    );
    for (len, n) in run_hist.iter().enumerate() {
        if *n > 0 {
            println!("  run len {:>2}{}: {n}", len, if len == 16 { "+" } else { " " });
        }
    }
}
