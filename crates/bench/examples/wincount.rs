//! Counts pre-execution windows and their instruction yield for one
//! profile under the ESP-family configs — sizes the per-window fixed
//! overhead (slot scan, RAS checkpoint) against per-instruction work.
//!
//! Usage: `cargo run --release -p esp-bench --example wincount [scale]`

use esp_bench::ConfigKey;
use esp_core::Simulator;
use esp_obs::{Probe, WindowRecord};
use esp_workload::BenchmarkProfile;

#[derive(Default)]
struct WinCounter {
    windows: u64,
    instrs: u64,
    offered: u64,
    utilized: u64,
}

impl Probe for WinCounter {
    fn on_window(&mut self, w: &WindowRecord) {
        self.windows += 1;
        self.instrs += w.instrs;
        self.offered += w.offered_cycles;
        self.utilized += w.utilized_cycles;
    }
}

fn main() {
    let scale: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(600_000);
    let profile = BenchmarkProfile::amazon();
    let w = esp_workload::arena::packed_for(&profile.scaled(scale), 42, 1);
    for key in [ConfigKey::Runahead, ConfigKey::Esp, ConfigKey::EspNl, ConfigKey::EspDepthProbe] {
        let sim = Simulator::new(key.config());
        let mut p = WinCounter::default();
        let r = sim.run_probed(&*w, &mut p);
        println!(
            "{key:?}: {} windows, {} window instrs ({:.1}/window), offered {} utilized {} cycles, retired {}",
            p.windows,
            p.instrs,
            p.instrs as f64 / p.windows.max(1) as f64,
            p.offered,
            p.utilized,
            r.engine.retired,
        );
    }
}
