//! Cross-process determinism: the same seed and scale must produce
//! byte-identical `RunReport`s in two *separate* operating-system
//! processes. This catches nondeterminism that in-process tests cannot —
//! address-space layout leaking into results, hash-map iteration order,
//! or anything seeded from ambient state.

use std::process::Command;

fn dump(dir: &std::path::Path) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "8000", "--seed", "7", "dump"])
        .current_dir(dir)
        .output()
        .expect("repro dump must spawn");
    assert!(
        out.status.success(),
        "repro dump failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "dump produced no output");
    out.stdout
}

#[test]
fn dump_is_byte_identical_across_processes() {
    let dir = std::env::temp_dir().join(format!("esp-cross-process-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let first = dump(&dir);
    let second = dump(&dir);
    assert_eq!(first, second, "two processes produced different reports");

    // Every family — the seven paper profiles plus the server-async and
    // IoT extras — and every matrix configuration must be present.
    let text = String::from_utf8(first).expect("dump must be UTF-8");
    for profile in esp_workload::BenchmarkProfile::all_families() {
        assert!(
            text.contains(&format!("=== {} / Base ===", profile.name())),
            "missing baseline dump for {}",
            profile.name()
        );
    }
    for key in ["Base", "Runahead", "EspNl"] {
        assert!(text.contains(&format!("/ {key} ===")), "missing {key} sections");
    }

    // `dump` must not leave a BENCH_repro.json (or anything else) behind.
    assert!(
        !dir.join("BENCH_repro.json").exists(),
        "dump wrote BENCH_repro.json"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(leftovers.is_empty(), "dump left files behind: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}
