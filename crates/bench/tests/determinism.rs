//! The parallel runner is fidelity-free: reports produced through the
//! thread-pool fan-out are identical to direct sequential simulation for
//! every profile, and identical across worker-thread counts.

use esp_bench::{ConfigKey, Runner};
use esp_core::{RunReport, Simulator};
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 20_000;
const SEED: u64 = 9;
const KEYS: [ConfigKey; 3] = [ConfigKey::Base, ConfigKey::EspNl, ConfigKey::Runahead];

fn assert_reports_equal(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{what}: total_cycles");
    assert_eq!(a.engine, b.engine, "{what}: engine stats");
    assert_eq!(a.esp, b.esp, "{what}: esp stats");
    assert_eq!(a.events_run, b.events_run, "{what}: events_run");
    assert_eq!(a.cpi_stack, b.cpi_stack, "{what}: cpi_stack");
}

#[test]
fn parallel_runner_matches_sequential_across_thread_counts() {
    // Sequential reference: workloads built one by one, every simulation
    // run inline on this thread.
    let reference: Vec<Vec<RunReport>> = BenchmarkProfile::all()
        .iter()
        .map(|p| {
            let w = p.scaled(SCALE).build(SEED);
            KEYS.iter().map(|k| Simulator::new(k.config()).run(&w)).collect()
        })
        .collect();

    let max_threads = esp_par::threads();
    for threads in [1, 2, max_threads] {
        let mut runner = Runner::with_threads(SCALE, SEED, threads);
        runner.ensure(&KEYS);
        let names = runner.names();
        assert_eq!(names.len(), reference.len());
        for (i, per_profile) in reference.iter().enumerate() {
            for (k, want) in KEYS.iter().zip(per_profile) {
                let got = runner.run(i, *k);
                assert_reports_equal(
                    got,
                    want,
                    &format!("threads={threads} profile={} key={:?}", names[i], k),
                );
            }
        }
    }
}
