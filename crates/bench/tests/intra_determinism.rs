//! The intra-run determinism invariant (docs/PARALLELISM.md): chunking a
//! single run across worker threads and merging deterministically must
//! reproduce the serial run *byte for byte* — the full `RunReport` and
//! the JSONL trace stream — at every thread count, for every profile,
//! under accept-heavy (Base), runahead, and always-repair (ESP)
//! configurations alike. Covers all nine built-in families, including
//! the server-side async and IoT/MQTT FSM extras.

use esp_core::{SimConfig, Simulator};
use esp_obs::TraceProbe;
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 60_000;
const SEED: u64 = 42;
const THREADS: [usize; 3] = [1, 2, 4];

fn configs() -> [(&'static str, SimConfig); 3] {
    [
        ("base", SimConfig::base()),
        ("runahead", SimConfig::runahead()),
        ("esp_nl", SimConfig::esp_nl()),
    ]
}

#[test]
fn intra_parallel_runs_are_byte_identical_to_serial() {
    let mut chunked_runs = 0usize;
    for profile in BenchmarkProfile::all_families() {
        let w = profile.scaled(SCALE).build(SEED);
        for (label, cfg) in configs() {
            let sim = Simulator::new(cfg);
            let mut serial_probe = TraceProbe::new(profile.name(), label).with_windows();
            let serial = sim.run_probed(&w, &mut serial_probe);
            let serial_debug = format!("{serial:?}");
            let serial_trace = serial_probe.into_bytes();
            for threads in THREADS {
                let mut probe = TraceProbe::new(profile.name(), label).with_windows();
                let intra = sim.run_intra_probed(&w, threads, &mut probe);
                let what = format!("{} / {label} / threads={threads}", profile.name());
                assert_eq!(serial_debug, format!("{:?}", intra.report), "report: {what}");
                assert_eq!(serial_trace, probe.into_bytes(), "jsonl trace: {what}");
                if !intra.stats.serial_fallback {
                    chunked_runs += 1;
                    assert_eq!(intra.stats.chunks, intra.stats.accepted + intra.stats.repaired);
                }
            }
        }
    }
    // The invariant must have been exercised by genuinely chunked runs,
    // not vacuously via the serial fallback.
    assert!(
        chunked_runs >= 18,
        "expected most runs to chunk at this scale, got {chunked_runs}"
    );
}
