//! Learned fast-forwarding accuracy and determinism gates.
//!
//! 1. `learned_ff_error`: for all 9 families × {base, runahead, esp_nl}
//!    the learned-mode estimates must track exact ground truth — busy
//!    CPI within a measured tolerance and stall-class *shares* of busy
//!    cycles within a few points — and the acceleration must be
//!    non-vacuous: the model actually trained, predicted, and skipped
//!    grains, and the run was not silently rerun with plain warming.
//! 2. `learned_reports_identical_across_thread_counts`: learned mode is
//!    deterministic — a 1-thread and a 4-thread runner must produce
//!    byte-identical reports (the model is seeded, allocation-free in
//!    the hot path, and trained on a per-run stream that does not
//!    depend on dispatch order).
//!
//! Tolerances are calibrated from the measured error envelope at this
//! exact (scale, grain, period, seed, learn-params) operating point —
//! measured worst 5.74 % (gdocs runahead) — see docs/PERFORMANCE.md.
//! Everything here is deterministic: regression gates, not statistics.

use esp_bench::{ConfigKey, Runner};
use esp_core::{LearnParams, RunReport, SampleParams, Simulator};
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 2_400_000;
const SEED: u64 = 42;
const PARAMS: SampleParams = SampleParams { grain_instrs: 2_000, period: 20 };

/// Measured worst at this operating point: 5.74 % (gdocs runahead).
const CPI_TOL_PCT: f64 = 6.0;
/// Stall-class share drift, in percentage points of busy cycles.
const SHARE_TOL_PTS: f64 = 3.0;

/// Top-level stall-class shares of busy cycles, in percent.
fn shares(r: &RunReport) -> [(f64, &'static str); 4] {
    let busy = r.busy_cycles() as f64;
    let s = &r.cpi_stack;
    [
        (100.0 * s.base as f64 / busy, "base"),
        (100.0 * (s.icache_l2 + s.icache_llc) as f64 / busy, "icache"),
        (100.0 * (s.dcache_l2 + s.dcache_llc) as f64 / busy, "dcache"),
        (
            100.0 * (s.branch_mispredict + s.branch_misfetch) as f64 / busy,
            "branch",
        ),
    ]
}

fn cpi(r: &RunReport) -> f64 {
    r.busy_cycles() as f64 / r.engine.retired as f64
}

#[test]
fn learned_ff_error() {
    let configs = [
        ("base", ConfigKey::Base),
        ("runahead", ConfigKey::Runahead),
        ("esp_nl", ConfigKey::EspNl),
    ];
    for profile in BenchmarkProfile::all_families() {
        let w = esp_workload::arena::packed_for(&profile.scaled(SCALE), SEED, 1);
        for (name, key) in configs {
            let sim = Simulator::new(key.config());
            let exact = sim.run(&*w);
            let learned = sim.run_sampled_learned(&*w, PARAMS, LearnParams::default());
            assert!(
                !learned.estimate.exact_fallback,
                "{}/{name}: fell back to exact — scale too small for the operating point",
                profile.name()
            );
            let stats = learned
                .learned
                .as_ref()
                .unwrap_or_else(|| panic!("{}/{name}: no learned stats", profile.name()));
            // The gate is about *accelerated* accuracy: a run that never
            // skipped (model never trained, or fell all the way down the
            // fallback ladder) would pass the error bounds vacuously.
            assert!(
                !stats.rerun_full,
                "{}/{name}: rerun with plain warming — gate is vacuous",
                profile.name()
            );
            assert!(
                stats.predictions > 0 && stats.skipped_grains > 0,
                "{}/{name}: no predictions ({}) or skipped grains ({}) — gate is vacuous",
                profile.name(),
                stats.predictions,
                stats.skipped_grains
            );

            let (e_cpi, l_cpi) = (cpi(&exact), cpi(&learned.report));
            let err = 100.0 * (l_cpi - e_cpi).abs() / e_cpi;
            assert!(
                err < CPI_TOL_PCT,
                "{}/{name}: CPI error {err:.2}% (exact {e_cpi:.4}, learned {l_cpi:.4}, \
                 ci95 {:.2}%, skipped {} grains, {} fallbacks)",
                profile.name(),
                learned.estimate.cpi.rel_ci95_pct(),
                stats.skipped_grains,
                stats.fallbacks
            );

            for ((e_share, class), (l_share, _)) in
                shares(&exact).into_iter().zip(shares(&learned.report))
            {
                let drift = (l_share - e_share).abs();
                assert!(
                    drift < SHARE_TOL_PTS,
                    "{}/{name}: {class} share drifted {drift:.2} points \
                     (exact {e_share:.2}%, learned {l_share:.2}%)",
                    profile.name()
                );
            }
        }
    }
}

#[test]
fn learned_reports_identical_across_thread_counts() {
    let scale = 300_000;
    let keys = [ConfigKey::Base, ConfigKey::EspNl];
    let mut reports: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        let mut runner = Runner::with_threads(scale, SEED, threads);
        runner.set_sampling(Some(PARAMS));
        runner.set_learned(Some(LearnParams::default()));
        runner.ensure(&keys);
        let mut out = Vec::new();
        for i in 0..runner.names().len() {
            for key in keys {
                out.push(format!("{:?}", runner.cached(i, key).expect("ensured")));
                let stats = runner.learned_stats(i, key).expect("learned run");
                out.push(format!("{stats:?}"));
            }
        }
        reports.push(out);
    }
    assert_eq!(
        reports[0], reports[1],
        "learned reports differ between 1-thread and 4-thread runners"
    );
}
