//! Observability invariants across the full benchmark matrix.
//!
//! Three properties back everything `docs/OBSERVABILITY.md` promises:
//!
//! 1. **Conservation** — the CPI stack partitions the run: the eight
//!    [`CycleClass`]es sum to `total_cycles`, the per-event span stacks
//!    tile the run with no gap or overlap, and the coarse
//!    `CycleBreakdown` is exactly the folded stack.
//! 2. **Determinism** — CPI stacks are identical for any worker-thread
//!    count (the `--cpi-stack` section of `BENCH_repro.json` must not
//!    depend on `--threads`).
//! 3. **Trace stability** — the JSONL trace is byte-identical across
//!    thread counts, because per-worker buffers are merged in input
//!    order.

use esp_bench::{ConfigKey, Runner};
use esp_core::Simulator;
use esp_obs::{CpiObserver, CycleClass};
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 18_000;
const SEED: u64 = 11;
const KEYS: [ConfigKey; 3] = [ConfigKey::Base, ConfigKey::EspNl, ConfigKey::Runahead];

/// Every stall class is accounted for, for every profile under every
/// configuration family: stack total == engine total, span stacks tile
/// the run, and the coarse breakdown is the folded stack.
#[test]
fn cpi_stack_conserves_cycles_everywhere() {
    for profile in BenchmarkProfile::all() {
        let workload = profile.scaled(SCALE).build(SEED);
        for key in KEYS {
            let what = format!("{} / {}", profile.name(), key.label());
            let mut obs = CpiObserver::default();
            let report = Simulator::new(key.config()).run_probed(&workload, &mut obs);

            // (1) The eight classes partition the run.
            assert_eq!(report.cpi_stack.total(), report.total_cycles, "{what}: stack total");
            let by_class: u64 =
                CycleClass::ALL.iter().map(|&c| report.cpi_stack.get(c)).sum();
            assert_eq!(by_class, report.total_cycles, "{what}: class sum");

            // (2) Per-event spans tile the run: one span per event, and
            // their stacks sum field-wise to the run stack.
            assert_eq!(obs.events.len() as u64, report.events_run, "{what}: span count");
            let mut tiled = esp_obs::CpiStack::default();
            for span in &obs.events {
                assert!(span.start <= span.end, "{what}: span ordering");
                tiled.merge(&span.stack);
            }
            assert_eq!(tiled, report.cpi_stack, "{what}: span tiling");

            // (3) The coarse breakdown is exactly the folded stack.
            let s = &report.cpi_stack;
            assert_eq!(report.breakdown.base, s.base, "{what}: base fold");
            assert_eq!(report.breakdown.icache, s.icache_l2 + s.icache_llc, "{what}: icache fold");
            assert_eq!(report.breakdown.dcache, s.dcache_l2 + s.dcache_llc, "{what}: dcache fold");
            assert_eq!(
                report.breakdown.branch,
                s.branch_mispredict + s.branch_misfetch,
                "{what}: branch fold"
            );
            assert_eq!(report.breakdown.idle, s.idle, "{what}: idle fold");

            // (4) The run summary mirrors the report.
            let run = obs.run.expect("on_run fired");
            assert_eq!(run.total_cycles, report.total_cycles, "{what}: summary cycles");
            assert_eq!(run.stack, report.cpi_stack, "{what}: summary stack");
            assert_eq!(run.retired, report.engine.retired, "{what}: summary retired");
        }
    }
}

/// CPI stacks do not depend on the worker-thread count.
#[test]
fn cpi_stacks_are_thread_count_invariant() {
    let max_threads = esp_par::threads();
    let mut reference: Option<(String, Vec<Vec<esp_obs::CpiStack>>)> = None;
    for threads in [1, 2, max_threads] {
        let mut runner = Runner::with_threads(SCALE, SEED, threads);
        runner.ensure(&KEYS);
        let stacks: Vec<Vec<esp_obs::CpiStack>> = (0..runner.names().len())
            .map(|i| KEYS.iter().map(|&k| runner.run(i, k).cpi_stack).collect())
            .collect();
        let json = runner.cpi_stack_json("  ").expect("base + ESP cached");
        match &reference {
            None => reference = Some((json, stacks)),
            Some((want_json, want_stacks)) => {
                assert_eq!(&stacks, want_stacks, "threads={threads}: stacks differ");
                assert_eq!(&json, want_json, "threads={threads}: cpi_stack JSON differs");
            }
        }
    }
}

/// The JSONL trace written through the parallel runner is byte-identical
/// for any thread count, and every line is a self-contained JSON object.
#[test]
fn trace_bytes_are_thread_count_invariant() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut reference: Option<Vec<u8>> = None;
    for threads in [1, esp_par::threads().max(2)] {
        let path = dir.join(format!("esp-obs-trace-{pid}-{threads}.jsonl"));
        let mut runner = Runner::with_threads(SCALE, SEED, threads);
        runner.set_trace_output(&path).expect("temp trace file");
        assert!(runner.tracing());
        runner.ensure(&[ConfigKey::Base, ConfigKey::EspNl]);
        // Drop the runner to flush the sink before reading the file back.
        drop(runner);
        let bytes = std::fs::read(&path).expect("trace written");
        let _ = std::fs::remove_file(&path);

        assert!(!bytes.is_empty(), "threads={threads}: empty trace");
        let text = std::str::from_utf8(&bytes).expect("trace is UTF-8");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "threads={threads}: malformed trace line: {line}"
            );
        }
        match &reference {
            None => reference = Some(bytes),
            Some(want) => assert_eq!(&bytes, want, "threads={threads}: trace bytes differ"),
        }
    }
}
