//! Trace import is a perfect substitute for generation.
//!
//! Every built-in family is exported to an `.espt` file, the arena memo
//! is cleared so nothing generated survives, and the files are imported
//! back. From then on the imported runner must be byte-identical to the
//! generated one through every execution mode: exact simulation at any
//! thread count, statistical sampling, intra-run chunked execution, the
//! CPI-stack JSON, and the JSONL observability trace. A single diverging
//! byte means the container dropped information.
//!
//! Everything lives in one `#[test]` because the arena memo is
//! process-wide and this test calls `arena::reset()` — concurrent tests
//! in the same binary would race it.

use esp_bench::{ConfigKey, Runner, WorkloadSpec};
use esp_core::{SampleParams, Simulator};
use esp_trace::espt::{self, TraceMeta};
use esp_workload::{arena, BenchmarkProfile};
use std::path::PathBuf;

const SCALE: u64 = 18_000;
const SEED: u64 = 13;
const KEYS: [ConfigKey; 3] = [ConfigKey::Base, ConfigKey::Runahead, ConfigKey::EspNl];

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esp-import-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Render every (slot, key) report to its full Debug form — the
/// strictest equality the type supports, covering every counter.
fn matrix_reports(runner: &mut Runner) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..runner.names().len() {
        for key in KEYS {
            out.push(format!("{:#?}", runner.run(i, key)));
        }
    }
    out
}

#[test]
fn imported_traces_are_byte_identical_to_generated() {
    let dir = scratch_dir();
    let families = BenchmarkProfile::all_families();

    // --- Generated reference: all nine families, exact mode, with a
    // JSONL trace attached and CPI stacks cached.
    let gen_trace = dir.join("generated.jsonl");
    let mut generated = Runner::with_profiles(&families, SCALE, SEED, 2);
    generated.set_trace_output(&gen_trace).expect("trace sink");
    generated.ensure(&KEYS);
    let want_names = generated.names();
    let want_reports = matrix_reports(&mut generated);
    let want_cpi = generated.cpi_stack_json("  ").expect("cpi stacks cached");

    // Export every slot while the generated packed forms are still
    // seated, then drop the runner and clear the memo: past this point
    // the only way back is through the files.
    let mut paths = Vec::new();
    for (i, name) in want_names.iter().enumerate() {
        let meta = TraceMeta { profile: name.clone(), scale: SCALE, seed: SEED };
        let path = dir.join(format!("{name}.espt"));
        espt::write_path(&path, &meta, generated.packed(i).as_ref()).expect("export");
        paths.push(path);
    }
    drop(generated);
    arena::reset();

    // --- Imported runner: same slots, same order, nothing generated.
    let specs: Vec<WorkloadSpec> = paths.iter().cloned().map(WorkloadSpec::Import).collect();
    let imp_trace = dir.join("imported.jsonl");
    let mut imported = Runner::from_specs(&specs, SCALE, SEED, 2).expect("import");
    imported.set_trace_output(&imp_trace).expect("trace sink");
    imported.ensure(&KEYS);

    assert_eq!(imported.names(), want_names, "slot names and order");
    assert_eq!(
        imported.workloads().count(),
        0,
        "imported slots must not expose generator state"
    );
    let got_reports = matrix_reports(&mut imported);
    assert_eq!(got_reports.len(), want_reports.len());
    for (idx, (want, got)) in want_reports.iter().zip(&got_reports).enumerate() {
        let (slot, key) = (idx / KEYS.len(), KEYS[idx % KEYS.len()]);
        assert_eq!(
            want, got,
            "exact report diverged: slot {} key {:?}",
            want_names[slot], key
        );
    }
    assert_eq!(
        imported.cpi_stack_json("  ").expect("cpi stacks cached"),
        want_cpi,
        "CPI-stack JSON diverged"
    );

    // JSONL traces: flush both sinks by dropping the runners' writers
    // via a no-op set, then byte-compare. Both runners ran the same
    // matrix cold, so the span streams must match exactly.
    drop(imported);
    let want_jsonl = std::fs::read(&gen_trace).expect("generated trace");
    let got_jsonl = std::fs::read(&imp_trace).expect("imported trace");
    assert!(!want_jsonl.is_empty(), "trace sink produced no spans");
    assert_eq!(want_jsonl, got_jsonl, "JSONL observability traces diverged");

    // --- Thread-count invariance on the imported path: 1 worker and 4
    // workers must reproduce the 2-worker matrix byte-for-byte.
    for threads in [1usize, 4] {
        let mut r = Runner::from_specs(&specs, SCALE, SEED, threads).expect("import");
        r.ensure(&KEYS);
        let got = matrix_reports(&mut r);
        assert_eq!(got, want_reports, "thread count {threads} diverged");
    }

    // --- Sampled mode: the estimator sees the same packed bytes, so the
    // sampled reports must agree too.
    let sp = SampleParams::new(2_000, 5);
    let mut gen_sampled = Runner::with_profiles(&families, SCALE, SEED, 2);
    gen_sampled.set_sampling(Some(sp));
    gen_sampled.ensure(&[ConfigKey::EspNl]);
    let mut imp_sampled = Runner::from_specs(&specs, SCALE, SEED, 2).expect("import");
    imp_sampled.set_sampling(Some(sp));
    imp_sampled.ensure(&[ConfigKey::EspNl]);
    for (i, name) in want_names.iter().enumerate() {
        assert_eq!(
            format!("{:#?}", gen_sampled.run(i, ConfigKey::EspNl)),
            format!("{:#?}", imp_sampled.run(i, ConfigKey::EspNl)),
            "sampled report diverged: slot {name}"
        );
    }

    // --- Intra-run event-level parallelism: chunked execution over the
    // imported packed form matches the generated one at every width.
    let gen_again = Runner::with_profiles(&families, SCALE, SEED, 1);
    let imp_again = Runner::from_specs(&specs, SCALE, SEED, 1).expect("import");
    for (i, name) in want_names.iter().enumerate() {
        for threads in [2usize, 3] {
            let cfg = ConfigKey::EspNl.config();
            let a = Simulator::new(cfg.clone()).run_intra(gen_again.packed(i).as_ref(), threads);
            let b = Simulator::new(cfg).run_intra(imp_again.packed(i).as_ref(), threads);
            assert_eq!(
                format!("{:#?}", a.report),
                format!("{:#?}", b.report),
                "intra report diverged: slot {name} width {threads}"
            );
            assert_eq!(
                a.stats.repaired, b.stats.repaired,
                "intra repair count diverged: slot {name}"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
