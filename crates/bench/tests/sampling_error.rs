//! Sampling-mode accuracy and determinism gates.
//!
//! 1. `sampling_error`: for all 7 profiles × {base, runahead, esp_nl}
//!    the sampled estimates must track exact ground truth — busy-CPI
//!    within a measured tolerance, stall-class *shares* of busy cycles
//!    within a few points, and the figure of merit (speedup over
//!    baseline) even tighter, because the baseline and the compared
//!    configuration sample the *same* grains and their estimation noise
//!    is correlated.
//! 2. `sampled_reports_identical_across_thread_counts`: the sampled
//!    matrix is deterministic — a 1-thread and a 4-thread runner (with
//!    longest-job-first dispatch reordering the actual execution) must
//!    produce byte-identical reports.
//!
//! Tolerances are calibrated from the measured error envelope at this
//! exact (scale, grain, period, seed) operating point — see the table
//! in docs/PERFORMANCE.md — with ≥ 1.4× headroom. Everything here is
//! deterministic: these are regression gates, not statistical tests.

use esp_bench::{ConfigKey, Runner};
use esp_core::{RunReport, SampleParams, Simulator};
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 2_400_000;
const SEED: u64 = 42;
const PARAMS: SampleParams = SampleParams { grain_instrs: 2_000, period: 20 };

/// Measured worst at this operating point: 4.18 % (gdocs base).
const CPI_TOL_PCT: f64 = 6.0;
/// Stall-class share drift, in percentage points of busy cycles.
const SHARE_TOL_PTS: f64 = 3.0;
/// Speedup-vs-baseline drift; correlated sampling keeps this tight.
const SPEEDUP_TOL_PCT: f64 = 4.0;

/// Top-level stall-class shares of busy cycles, in percent.
fn shares(r: &RunReport) -> [(f64, &'static str); 4] {
    let busy = r.busy_cycles() as f64;
    let s = &r.cpi_stack;
    [
        (100.0 * s.base as f64 / busy, "base"),
        (100.0 * (s.icache_l2 + s.icache_llc) as f64 / busy, "icache"),
        (100.0 * (s.dcache_l2 + s.dcache_llc) as f64 / busy, "dcache"),
        (
            100.0 * (s.branch_mispredict + s.branch_misfetch) as f64 / busy,
            "branch",
        ),
    ]
}

fn cpi(r: &RunReport) -> f64 {
    r.busy_cycles() as f64 / r.engine.retired as f64
}

#[test]
fn sampling_error() {
    let configs = [
        ("base", ConfigKey::Base),
        ("runahead", ConfigKey::Runahead),
        ("esp_nl", ConfigKey::EspNl),
    ];
    for profile in BenchmarkProfile::all() {
        let w = esp_workload::arena::packed_for(&profile.scaled(SCALE), SEED, 1);
        let mut exact_base_cycles = 0u64;
        let mut sampled_base_cycles = 0u64;
        for (name, key) in configs {
            let sim = Simulator::new(key.config());
            let exact = sim.run(&*w);
            let sampled = sim.run_sampled(&*w, PARAMS);
            assert!(
                !sampled.estimate.exact_fallback,
                "{}/{name}: fell back to exact — scale too small for the operating point",
                profile.name()
            );

            let (e_cpi, s_cpi) = (cpi(&exact), cpi(&sampled.report));
            let err = 100.0 * (s_cpi - e_cpi).abs() / e_cpi;
            assert!(
                err < CPI_TOL_PCT,
                "{}/{name}: CPI error {err:.2}% (exact {e_cpi:.4}, sampled {s_cpi:.4}, \
                 ci95 {:.2}%)",
                profile.name(),
                sampled.estimate.cpi.rel_ci95_pct()
            );

            for ((e_share, class), (s_share, _)) in
                shares(&exact).into_iter().zip(shares(&sampled.report))
            {
                let drift = (s_share - e_share).abs();
                assert!(
                    drift < SHARE_TOL_PTS,
                    "{}/{name}: {class} share drifted {drift:.2} points \
                     (exact {e_share:.2}%, sampled {s_share:.2}%)",
                    profile.name()
                );
            }

            if key == ConfigKey::Base {
                exact_base_cycles = exact.busy_cycles();
                sampled_base_cycles = sampled.report.busy_cycles();
            } else {
                let e_speedup = exact_base_cycles as f64 / exact.busy_cycles() as f64;
                let s_speedup = sampled_base_cycles as f64 / sampled.report.busy_cycles() as f64;
                let drift = 100.0 * (s_speedup - e_speedup).abs() / e_speedup;
                assert!(
                    drift < SPEEDUP_TOL_PCT,
                    "{}/{name}: speedup-vs-baseline drifted {drift:.2}% \
                     (exact {e_speedup:.4}x, sampled {s_speedup:.4}x)",
                    profile.name()
                );
            }
        }
    }
}

#[test]
fn sampled_reports_identical_across_thread_counts() {
    let scale = 300_000;
    let keys = [ConfigKey::Base, ConfigKey::EspNl];
    let mut reports: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        let mut runner = Runner::with_threads(scale, SEED, threads);
        runner.set_sampling(Some(PARAMS));
        runner.ensure(&keys);
        let mut out = Vec::new();
        for i in 0..runner.names().len() {
            for key in keys {
                out.push(format!("{:?}", runner.cached(i, key).expect("ensured")));
            }
        }
        reports.push(out);
    }
    assert_eq!(
        reports[0], reports[1],
        "sampled reports differ between 1-thread and 4-thread runners"
    );
}
