//! Packed replay is bit-equivalent to the regenerative walk.
//!
//! The decode-once arena (`esp_trace::PackedWorkload`) is a pure
//! performance layer: for every benchmark profile and every
//! configuration of the check matrix it must produce the *same bytes* as
//! simulating the regenerative `GeneratedWorkload` — identical
//! `RunReport`s (full `Debug` rendering, covering cycles, CPI stack,
//! engine/ESP/replay/energy/working-set stats), identical CPI-stack
//! JSON, and identical JSONL trace output, regardless of the thread
//! count used to materialise the arena.

use esp_bench::ConfigKey;
use esp_core::{SampleParams, Simulator};
use esp_obs::TraceProbe;
use esp_trace::Workload;
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 18_000;
const SEED: u64 = 13;
const KEYS: [ConfigKey; 3] = [ConfigKey::Base, ConfigKey::Runahead, ConfigKey::EspNl];

#[test]
fn packed_replay_matches_regenerative_walk_bit_for_bit() {
    for profile in BenchmarkProfile::all() {
        let walk = profile.scaled(SCALE).build(SEED);
        // Materialise with >1 thread: arena contents must not depend on
        // the decode fan-out (also asserted directly in esp-workload).
        let packed = walk.materialise_par(2);
        assert_eq!(walk.events(), packed.events(), "{}: event records", profile.name());
        for key in KEYS {
            let mut probe_walk = TraceProbe::new(profile.name(), key.label());
            let mut probe_packed = TraceProbe::new(profile.name(), key.label());
            let report_walk =
                Simulator::new(key.config()).run_probed(&walk, &mut probe_walk);
            let report_packed =
                Simulator::new(key.config()).run_probed(&packed, &mut probe_packed);
            let what = format!("{} {key:?}", profile.name());
            assert_eq!(
                format!("{report_walk:#?}"),
                format!("{report_packed:#?}"),
                "{what}: RunReport"
            );
            assert_eq!(
                report_walk.cpi_stack.to_json(),
                report_packed.cpi_stack.to_json(),
                "{what}: CPI stack JSON"
            );
            assert_eq!(
                probe_walk.into_bytes(),
                probe_packed.into_bytes(),
                "{what}: JSONL trace bytes"
            );
        }
    }
}

#[test]
fn packed_sampled_replay_matches_regenerative_walk_bit_for_bit() {
    // Sampled mode takes the fused-kernel path for packed workloads
    // (raw decode + lowered dispatch table in detailed grains, batched
    // plain-ALU charging clipped to grain boundaries). The whole
    // SampledRun — extrapolated report and estimator — must still render
    // byte-identically to the regenerative walk, which runs the decoded
    // per-instruction loop.
    let params = SampleParams { grain_instrs: 500, period: 4 };
    for profile in BenchmarkProfile::all() {
        let walk = profile.scaled(SCALE).build(SEED);
        let packed = walk.materialise_par(2);
        for key in KEYS {
            let sampled_walk = Simulator::new(key.config()).run_sampled(&walk, params);
            let sampled_packed = Simulator::new(key.config()).run_sampled(&packed, params);
            assert!(
                !sampled_walk.estimate.exact_fallback,
                "{} {key:?}: workload too small, sampling fell back to exact",
                profile.name()
            );
            assert_eq!(
                format!("{sampled_walk:#?}"),
                format!("{sampled_packed:#?}"),
                "{} {key:?}: SampledRun",
                profile.name()
            );
        }
    }
}

#[test]
fn differential_oracle_accepts_packed_replay() {
    // The esp-check oracle (event recount, serial timing bound, replay of
    // the component side-effect logs) runs against the packed form.
    for profile in [BenchmarkProfile::amazon(), BenchmarkProfile::pixlr()] {
        let packed = esp_workload::arena::packed_for(&profile.scaled(SCALE), SEED, 2);
        for key in KEYS {
            esp_check::check_run(&key.config(), &*packed)
                .unwrap_or_else(|e| panic!("{} {key:?}: {e}", profile.name()));
        }
    }
}
