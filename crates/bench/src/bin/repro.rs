//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro [--scale N] [--seed S] [--threads T] all
//! repro [--scale N] [--seed S] fig9 fig11a ...
//! repro [--trace out.jsonl] [--cpi-stack] fig9
//! repro [--trace-in FILE.espt ...] fig9
//! repro explain <benchmark-or-trace ...>
//! repro [--scale N] [--seed S] [--fuzz N] [--fuzz-espt N] check
//! repro [--scale N] [--seed S] dump [NAMES-OR-TRACES...] [--trace-out DIR]
//! repro [--scale N] [--seed S] [--threads T] [--intra-threads K] [--force] [--repeat N] bench
//! ```
//!
//! `--scale` is the per-benchmark instruction budget (default 400 000);
//! larger scales sharpen the numbers at the cost of runtime. Simulations
//! fan out across worker threads (`--threads`, or the `ESP_THREADS`
//! environment variable, defaulting to the machine's parallelism); every
//! run is deterministic, so the reports are identical for any thread
//! count. Each phase prints its wall-clock time, and a `BENCH_repro.json`
//! with the run's throughput is written next to the output so the perf
//! trajectory can be tracked across revisions.
//!
//! Observability (see `docs/OBSERVABILITY.md`): `--trace <path>` writes
//! a JSONL span trace of every simulation (per-worker buffers merged in
//! input order — byte-identical for any thread count); `--cpi-stack`
//! adds a per-benchmark baseline/ESP CPI-stack section to
//! `BENCH_repro.json`; `explain <benchmark>` prints the baseline-vs-ESP
//! CPI-stack delta table in the shape of the paper's Figs. 4/5.
//!
//! An existing `BENCH_repro.json` produced at a *different* scale is
//! never overwritten (its throughput numbers would silently stop being
//! comparable); pass `--force` to replace it anyway.
//!
//! Correctness (see `docs/TESTING.md`): `check` runs the `esp-check`
//! differential oracle over every benchmark family (the paper's seven
//! plus `serverasync`/`iotfsm`) under baseline, runahead and ESP+NL,
//! then a seeded configuration fuzz sweep (`--fuzz` cases), then a
//! structural fuzz of the ESPT trace decoder (`--fuzz-espt` mutated
//! containers, default 500 — see `docs/TRACE_FORMAT.md`); `dump` prints
//! the raw `RunReport` of every profile × configuration — the
//! cross-process determinism test byte-compares two such dumps. Both
//! replay the process-wide memoised packed arena
//! (`esp_workload::arena`), so repeated subcommands on the same
//! profile/scale/seed decode the workload once.
//!
//! Traces (see `docs/TRACE_FORMAT.md`): `dump --trace-out DIR` exports
//! each selected workload as a versioned `.espt` file instead of
//! printing reports; `--trace-in FILE.espt` (repeatable) makes a figure
//! run simulate exactly the imported traces, in CLI order, with the
//! generator never invoked; `explain` and `dump` accept trace paths
//! anywhere a benchmark name is expected. Imported arenas replay
//! byte-identically to generated ones (the trace-import equivalence
//! suite pins this in all four execution modes).
//!
//! Performance (see `docs/PERFORMANCE.md`): `bench` runs the full
//! evaluation matrix three times — cold at one thread, warm at
//! `--threads` (skipped, with a JSON note, when only one core is
//! visible), and warm in statistical-sampling mode — then a fourth,
//! intra-run pass that chunks each profile's *single* baseline run
//! across `--intra-threads` workers (`docs/PARALLELISM.md`), and
//! writes a `BENCH_repro.json` with per-phase wall times
//! (generate/materialise/simulate), arena resident bytes, exact and
//! sampled throughput, the sampled run's measured CPI error against
//! exact ground truth, and the intra pass's chunk/conflict accounting
//! with serial-vs-chunked single-run throughput. `scripts/bench.sh`
//! wraps the documented scale-600000 invocation.
//!
//! Sampling (the `esp-sample` engine, `--sample-period` /
//! `--sample-grain`): any figure run can trade exactness for speed by
//! measuring one grain in every P; results are estimates with a
//! reported confidence interval and `BENCH_repro.json` is marked
//! `"mode": "sampled"`. The default exact path is byte-identical to a
//! build without the sampling engine.

use esp_bench::{explain, figures, ConfigKey, Runner, WorkloadSpec};
use esp_core::{LearnParams, ModelKind, SampleParams};
use esp_trace::Workload;
use esp_workload::BenchmarkProfile;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut scale: u64 = 400_000;
    let mut seed: u64 = 42;
    let mut threads: Option<usize> = None;
    let mut intra_threads: Option<usize> = None;
    let mut trace: Option<PathBuf> = None;
    let mut trace_ins: Vec<PathBuf> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut cpi_stack = false;
    let mut force = false;
    let mut repeat: usize = 3;
    let mut fuzz_cases: usize = 10;
    let mut espt_fuzz_cases: usize = 500;
    let mut sample_period: Option<u64> = None;
    let mut sample_grain: u64 = SampleParams::default().grain_instrs;
    let mut learn = false;
    let mut learn_params = LearnParams::default();
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale = v,
                None => return usage("--scale needs an integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => threads = Some(v),
                _ => return usage("--threads needs a positive integer"),
            },
            "--intra-threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => intra_threads = Some(v),
                _ => return usage("--intra-threads needs a positive integer"),
            },
            "--trace" => match args.next() {
                Some(p) => trace = Some(p.into()),
                None => return usage("--trace needs a file path"),
            },
            "--trace-in" => match args.next() {
                Some(p) => trace_ins.push(p.into()),
                None => return usage("--trace-in needs a .espt file path"),
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p.into()),
                None => return usage("--trace-out needs a directory path"),
            },
            "--cpi-stack" => cpi_stack = true,
            "--force" => force = true,
            "--repeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => repeat = v,
                _ => return usage("--repeat needs a positive integer"),
            },
            "--fuzz" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => fuzz_cases = v,
                None => return usage("--fuzz needs an integer"),
            },
            "--fuzz-espt" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => espt_fuzz_cases = v,
                None => return usage("--fuzz-espt needs an integer"),
            },
            "--sample-period" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 3 => sample_period = Some(v),
                _ => return usage("--sample-period needs an integer >= 3"),
            },
            "--sample-grain" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => sample_grain = v,
                _ => return usage("--sample-grain needs a positive integer"),
            },
            "--learn" => learn = true,
            "--learn-model" => match args.next().as_deref().and_then(ModelKind::parse) {
                Some(m) => {
                    learn = true;
                    learn_params.model = m;
                }
                None => return usage("--learn-model needs 'ridge' or 'gbm'"),
            },
            "--learn-train" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => {
                    learn = true;
                    learn_params.train_stretches = v;
                }
                _ => return usage("--learn-train needs an integer >= 1"),
            },
            "--learn-suffix" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => {
                    learn = true;
                    learn_params.warm_suffix_grains = v;
                }
                _ => return usage("--learn-suffix needs an integer >= 1"),
            },
            "--learn-bound" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v.is_finite() => {
                    learn = true;
                    learn_params.residual_bound_pct = v;
                }
                _ => return usage("--learn-bound needs a positive number of percent"),
            },
            "--help" | "-h" => return usage(""),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage("no figure selected");
    }
    // Learned fast-forwarding refines the sampled mode, so the flags are
    // meaningless without a sampling period; catch both bad combinations
    // and bad parameter values before any workload generation happens.
    if learn {
        if sample_period.is_none() && wanted.first().map(String::as_str) != Some("bench") {
            return usage("learned fast-forwarding requires sampling mode (--sample-period)");
        }
        if let Err(e) = learn_params.validate() {
            return usage(&e);
        }
    }
    // `explain` consumes the rest of the positional arguments as
    // benchmark names or `.espt` trace paths, resolved (like figure
    // names) before any workload generation happens.
    let explain_specs: Vec<WorkloadSpec> = if wanted[0] == "explain" {
        let benches: Vec<String> = wanted.drain(..).skip(1).collect();
        if benches.is_empty() {
            return usage("explain needs at least one benchmark name or trace path");
        }
        let mut specs = Vec::with_capacity(benches.len());
        for b in &benches {
            match WorkloadSpec::resolve(b) {
                Ok(s) => specs.push(s),
                Err(e) => return usage(&e.to_string()),
            }
        }
        specs
    } else {
        Vec::new()
    };
    // `check` and `dump` drive the simulator directly at the requested
    // scale — no Runner (and no BENCH_repro.json) involved. `bench`
    // runs the timing protocol and owns its BENCH_repro.json write.
    match wanted.first().map(String::as_str) {
        Some("dump") => return dump(scale, seed, &wanted[1..], trace_out.as_deref()),
        Some("check") => return check(scale, seed, fuzz_cases, espt_fuzz_cases),
        Some("bench") => {
            return bench(
                scale,
                seed,
                threads,
                intra_threads,
                force,
                repeat,
                sample_grain,
                sample_period,
                learn_params,
            )
        }
        _ => {}
    }
    // Validate every name up front so a typo fails before any workload
    // generation or simulation happens.
    for name in &wanted {
        if name != "all" && name != "ablate" {
            if let Err(e) = figures::by_name(name) {
                return usage(&e.to_string());
            }
        }
    }

    let threads = threads.unwrap_or_else(esp_par::threads);
    let t_start = Instant::now();
    // The slot list: explain's resolved arguments take precedence; then
    // `--trace-in` (the run simulates exactly the imported traces, in
    // CLI order, and the generator never runs); otherwise the paper's
    // seven generated profiles.
    let specs: Vec<WorkloadSpec> = if !explain_specs.is_empty() {
        explain_specs.clone()
    } else {
        trace_ins.iter().map(|p| WorkloadSpec::Import(p.clone())).collect()
    };
    let mut runner = if specs.is_empty() {
        eprintln!("# generating workloads (scale {scale}, seed {seed}, {threads} threads)...");
        Runner::with_threads(scale, seed, threads)
    } else {
        eprintln!(
            "# preparing workloads [{}] (scale {scale}, seed {seed}, {threads} threads)...",
            specs.iter().map(WorkloadSpec::describe).collect::<Vec<_>>().join(", ")
        );
        match Runner::from_specs(&specs, scale, seed, threads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    };
    eprintln!("# workloads ready in {:.2}s", t_start.elapsed().as_secs_f64());

    // Statistical-sampling mode: every simulation estimates its CPI
    // stack from periodic detailed grains instead of running exactly.
    // Sampled figures are approximations — see docs/PERFORMANCE.md for
    // the error envelope and the quoting policy.
    if let Some(period) = sample_period {
        let params = SampleParams::new(sample_grain, period);
        runner.set_sampling(Some(params));
        eprintln!(
            "# sampling mode: grain {} instrs, period {} (measuring 1/{} of each run)",
            params.grain_instrs, params.period, params.period
        );
        if learn {
            runner.set_learned(Some(learn_params));
            eprintln!(
                "# learned fast-forwarding: {:?} model, {} training stretches, \
                 {}-grain warm suffix, {}% residual bound",
                learn_params.model,
                learn_params.train_stretches,
                learn_params.warm_suffix_grains,
                learn_params.residual_bound_pct
            );
        }
    }

    // Attach the trace sink before any simulation runs; refuse paths we
    // cannot create instead of failing mid-run.
    if let Some(path) = &trace {
        if let Err(e) = runner.set_trace_output(path) {
            eprintln!("error: cannot create trace file {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("# tracing to {}", path.display());
    }

    if !explain_specs.is_empty() {
        // One slot per explain argument, in order — look each up by its
        // resolved slot name (imports report their recorded profile).
        let names = runner.names();
        for (i, b) in names.iter().enumerate().take(explain_specs.len()) {
            let t = Instant::now();
            match explain::explain(&mut runner, b) {
                Ok(rep) => {
                    eprintln!(
                        "# explain {} ({b}) in {:.2}s",
                        explain_specs[i].describe(),
                        t.elapsed().as_secs_f64()
                    );
                    println!("{}", rep.render());
                }
                Err(e) => return usage(&e.to_string()),
            }
        }
        write_bench_json(&mut runner, t_start.elapsed().as_secs_f64(), cpi_stack, force);
        return ExitCode::SUCCESS;
    }

    if wanted.iter().any(|w| w == "all") {
        let t = Instant::now();
        let reports = figures::all(&mut runner);
        eprintln!(
            "# simulated {} runs in {:.2}s",
            runner.sims_run(),
            t.elapsed().as_secs_f64()
        );
        for report in reports {
            println!("{}", report.render());
        }
        write_bench_json(&mut runner, t_start.elapsed().as_secs_f64(), cpi_stack, force);
        return ExitCode::SUCCESS;
    }
    for name in &wanted {
        let t = Instant::now();
        if name == "ablate" {
            for report in esp_bench::ablation::all(scale, seed) {
                println!("{}", report.render());
            }
            eprintln!("# ablate in {:.2}s", t.elapsed().as_secs_f64());
            continue;
        }
        match figures::by_name(name) {
            Ok(f) => {
                let rendered = f(&mut runner).render();
                eprintln!("# {name} in {:.2}s", t.elapsed().as_secs_f64());
                println!("{rendered}");
            }
            Err(e) => return usage(&e.to_string()),
        }
    }
    write_bench_json(&mut runner, t_start.elapsed().as_secs_f64(), cpi_stack, force);
    ExitCode::SUCCESS
}

/// The differential matrix shared by `check` and `dump`: every profile
/// under baseline, runahead, and the headline ESP+NL configuration.
const MATRIX: [ConfigKey; 3] = [ConfigKey::Base, ConfigKey::Runahead, ConfigKey::EspNl];

/// `repro dump [NAMES-OR-TRACES...] [--trace-out DIR]`.
///
/// Without `--trace-out`: prints the raw `RunReport` of every selected
/// workload × configuration to stdout, deterministically, and writes
/// nothing to disk. Two processes with the same `--scale`/`--seed` must
/// produce byte-identical output (asserted by `tests/cross_process.rs`).
/// The default selection is every built-in family (the paper's seven
/// plus `serverasync`/`iotfsm`); positional arguments narrow it to
/// specific families or `.espt` trace paths.
///
/// With `--trace-out DIR`: instead of printing reports, exports each
/// selected workload as `DIR/<name>.espt` (built-ins under the CLI
/// scale/seed provenance; imports re-encoded under their recorded one)
/// and reports sizes on stderr.
fn dump(scale: u64, seed: u64, names: &[String], trace_out: Option<&Path>) -> ExitCode {
    let specs: Vec<WorkloadSpec> = if names.is_empty() {
        BenchmarkProfile::all_families().into_iter().map(WorkloadSpec::Builtin).collect()
    } else {
        let mut specs = Vec::with_capacity(names.len());
        for n in names {
            match WorkloadSpec::resolve(n) {
                Ok(s) => specs.push(s),
                Err(e) => return usage(&e.to_string()),
            }
        }
        specs
    };
    if let Some(dir) = trace_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    for spec in &specs {
        // The memoised packed arena: each workload is generated (or
        // imported) and decoded once per provenance triple, process-wide.
        let (meta, w) = match spec {
            WorkloadSpec::Builtin(p) => {
                let scaled = p.scaled(scale);
                let w = esp_workload::arena::packed_for(&scaled, seed, esp_par::threads());
                let meta = esp_trace::espt::TraceMeta {
                    profile: scaled.name().to_string(),
                    scale,
                    seed,
                };
                (meta, w)
            }
            WorkloadSpec::Import(path) => match esp_workload::arena::import(path) {
                Ok((meta, w)) => (meta, w),
                Err(e) => {
                    eprintln!("error: cannot import trace {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
        };
        match trace_out {
            Some(dir) => {
                let path = dir.join(format!("{}.espt", meta.profile));
                match esp_trace::espt::write_path(&path, &meta, &w) {
                    Ok(bytes) => eprintln!(
                        "# wrote {} ({bytes} bytes, {} events)",
                        path.display(),
                        w.events().len()
                    ),
                    Err(e) => {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
            }
            None => {
                for key in MATRIX {
                    let report = esp_core::Simulator::new(key.config()).run(&*w);
                    println!("=== {} / {key:?} ===", meta.profile);
                    println!("{report:#?}");
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// `repro check`: the correctness gate. Runs the `esp-check`
/// differential oracle (event recount, serial timing bound, component
/// replay) over every benchmark family × the differential matrix, then
/// a seeded configuration fuzz sweep, then a structural fuzz of the
/// ESPT trace decoder. Any violation prints a shrunk, ready-to-paste
/// reproducer and fails the process.
fn check(scale: u64, seed: u64, fuzz_cases: usize, espt_fuzz_cases: usize) -> ExitCode {
    let mut failed = false;

    let t = Instant::now();
    for profile in BenchmarkProfile::all_families() {
        let w = esp_workload::arena::packed_for(&profile.scaled(scale), seed, esp_par::threads());
        for key in MATRIX {
            match esp_check::check_run(&key.config(), &*w) {
                Ok(r) => eprintln!(
                    "# ok {:>11} {key:?}: serial {} >= busy {} ({} mem ops, {} bp ops)",
                    profile.name(),
                    r.serial_cycles,
                    r.busy_cycles,
                    r.mem_ops,
                    r.bp_ops
                ),
                Err(e) => {
                    failed = true;
                    eprintln!("FAIL {:>11} {key:?}: {e}", profile.name());
                }
            }
        }
    }
    eprintln!("# differential oracle done in {:.2}s", t.elapsed().as_secs_f64());

    if fuzz_cases > 0 {
        let t = Instant::now();
        match esp_check::fuzz_with(seed, fuzz_cases, |c| c.check()) {
            None => eprintln!(
                "# fuzz: {fuzz_cases} cases clean in {:.2}s",
                t.elapsed().as_secs_f64()
            ),
            Some(f) => {
                failed = true;
                eprintln!(
                    "FAIL fuzz iteration {}: {}\nshrunk reproducer:\n{}",
                    f.iteration,
                    f.shrunk_message,
                    esp_check::render_reproducer(&f)
                );
            }
        }
    }

    // The trace-decoder gate: seeded structural mutations of a valid
    // `.espt` image must all come back as structured errors — never a
    // panic, never an attacker-sized allocation (docs/TRACE_FORMAT.md).
    if espt_fuzz_cases > 0 {
        let t = Instant::now();
        match esp_check::espt_fuzz_with(seed, espt_fuzz_cases) {
            None => eprintln!(
                "# espt fuzz: {espt_fuzz_cases} mutated containers rejected cleanly in {:.2}s",
                t.elapsed().as_secs_f64()
            ),
            Some(f) => {
                failed = true;
                eprintln!(
                    "FAIL espt fuzz iteration {}: {}\nshrunk reproducer:\n{}",
                    f.iteration,
                    f.shrunk_message,
                    esp_check::render_espt_reproducer(&f)
                );
            }
        }
    }

    if failed {
        eprintln!("check: FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("check: OK");
        ExitCode::SUCCESS
    }
}

/// `repro bench`: the throughput protocol behind `BENCH_repro.json`.
///
/// Pass 1 runs the full 29-configuration × 9-family matrix (the paper's
/// seven profiles plus `serverasync`/`iotfsm`) cold on a single worker
/// thread — the comparable trajectory number. Pass 2
/// reruns it at `--threads` (default: the machine's parallelism) with
/// the workload and arena caches warm, isolating simulation scaling
/// from one-time decode cost; on a machine where only one core is
/// visible the pass is skipped and recorded as such (an "Nt" number
/// measured at one thread would just duplicate pass 1). Pass 3 reruns
/// the matrix warm in statistical-sampling mode (`--sample-grain` /
/// `--sample-period`, defaulting to the documented operating point) and
/// cross-checks its CPI against the exact reports of every profile ×
/// {base, runahead, esp_nl} — the per-profile error table goes to
/// stderr and to the JSON (`sampled.per_profile`), the max/mean to the
/// JSON. Pass 3b repeats the sampled protocol with learned
/// fast-forwarding on top (`--learn-*` to override the model and its
/// operating point) and records its throughput, speedups over exact and
/// plain sampling, error envelope, mean skip fraction, and the
/// fallback-ladder counters. Each pass is repeated `--repeat`
/// times (default 3) and the fastest repetition is recorded — the
/// standard protocol for shared machines, where the minimum is the run
/// least disturbed by background load (every repetition simulates the
/// exact same deterministic work, so they are directly comparable). All
/// passes and the per-phase wall times land in `BENCH_repro.json`
/// (guarded against cross-scale overwrite, as for figure runs). A final
/// trace-I/O measurement exports every family's arena to `.espt`, drops
/// the memo, re-imports from the files, and records both wall times next
/// to the generate/materialise cost they substitute for
/// (`docs/TRACE_FORMAT.md`).
#[allow(clippy::too_many_arguments)]
fn bench(
    scale: u64,
    seed: u64,
    threads: Option<usize>,
    intra_threads: Option<usize>,
    force: bool,
    repeat: usize,
    sample_grain: u64,
    sample_period: Option<u64>,
    learn_params: LearnParams,
) -> ExitCode {
    let cores = esp_par::threads();
    let threads_nt = threads.unwrap_or(cores);
    if !bench_json_writable(scale, force) {
        return ExitCode::from(2);
    }
    let families = BenchmarkProfile::all_families();

    eprintln!(
        "# bench pass 1: cold, 1 thread (scale {scale}, seed {seed}, {} families), best of {repeat}...",
        families.len()
    );
    let mut best: Option<(f64, esp_bench::PhaseSeconds, u64, u64, u64)> = None;
    for rep in 1..=repeat {
        // A cold repetition regenerates and re-materialises everything:
        // drop the process-wide arena cache left by the previous one.
        esp_workload::arena::reset();
        let t = Instant::now();
        let mut cold = Runner::with_profiles(&families, scale, seed, 1);
        cold.ensure(ConfigKey::all());
        let total = t.elapsed().as_secs_f64();
        eprintln!("#   rep {rep}: {total:.2}s ({:.3} sims/s)", cold.sims_run() as f64 / total.max(1e-9));
        if best.as_ref().is_none_or(|(b, ..)| total < *b) {
            best = Some((
                total,
                cold.phase_seconds(),
                cold.arena_resident_bytes(),
                cold.sims_run(),
                cold.instructions_simulated(),
            ));
        }
    }
    let (total_1t, phases, arena_bytes, sims, instrs) = best.expect("repeat >= 1");
    // Instructions per wall-second across the whole matrix — retired plus
    // speculative (ESP pre-execution, runahead re-execution), which is
    // real simulation work; the per-sim count is deterministic, so MIPS
    // moves with the same best-of-N minimum as sims/s.
    let mips_1t = instrs as f64 / total_1t.max(1e-9) / 1e6;
    eprintln!(
        "# pass 1: {sims} sims in {total_1t:.2}s ({:.3} sims/s, {mips_1t:.2} MIPS; \
         generate {:.2}s, materialise {:.2}s, simulate {:.2}s, arena {:.1} MiB)",
        sims as f64 / total_1t.max(1e-9),
        phases.generate,
        phases.materialise,
        phases.simulate,
        arena_bytes as f64 / (1024.0 * 1024.0),
    );

    // Pass 2 measures multi-thread scaling, so it is only honest when
    // more than one core is actually available: a "N-thread" number
    // collected on one visible core is pass 1 with a misleading label.
    let mut best_nt: Option<(f64, esp_bench::PhaseSeconds)> = None;
    let mut nt_note = None;
    if threads_nt > 1 {
        eprintln!("# bench pass 2: warm arenas, {threads_nt} threads, best of {repeat}...");
        for rep in 1..=repeat {
            let t = Instant::now();
            let mut warm = Runner::with_profiles(&families, scale, seed, threads_nt);
            warm.ensure(ConfigKey::all());
            let total = t.elapsed().as_secs_f64();
            eprintln!("#   rep {rep}: {total:.2}s ({:.3} sims/s)", sims as f64 / total.max(1e-9));
            if best_nt.as_ref().is_none_or(|(b, _)| total < *b) {
                best_nt = Some((total, warm.phase_seconds()));
            }
        }
    } else {
        let note = format!("N-thread pass skipped: only {cores} core visible");
        eprintln!("# bench pass 2: {note}");
        nt_note = Some(note);
    }

    // Pass 3: the same matrix in statistical-sampling mode, warm, one
    // thread — directly comparable to pass 1's simulate phase. The last
    // repetition's reports feed the error cross-check below (sampling is
    // deterministic, so every repetition produces identical reports).
    let sp = SampleParams::new(sample_grain, sample_period.unwrap_or(SampleParams::default().period));
    eprintln!(
        "# bench pass 3: sampled (grain {}, period {}), warm, 1 thread, best of {repeat}...",
        sp.grain_instrs, sp.period
    );
    let mut best_s: Option<(f64, esp_bench::PhaseSeconds)> = None;
    let mut sampled_runner: Option<Runner> = None;
    for rep in 1..=repeat {
        let t = Instant::now();
        let mut r = Runner::with_profiles(&families, scale, seed, 1);
        r.set_sampling(Some(sp));
        r.ensure(ConfigKey::all());
        let total = t.elapsed().as_secs_f64();
        eprintln!("#   rep {rep}: {total:.2}s ({:.3} sims/s)", sims as f64 / total.max(1e-9));
        if best_s.as_ref().is_none_or(|(b, _)| total < *b) {
            best_s = Some((total, r.phase_seconds()));
        }
        sampled_runner = Some(r);
    }
    let (total_s, phases_s) = best_s.expect("repeat >= 1");
    let sampled = sampled_runner.expect("repeat >= 1");
    let speedup = phases.simulate / phases_s.simulate.max(1e-9);
    eprintln!(
        "# pass 3: {sims} sims in {total_s:.2}s (simulate {:.2}s vs exact {:.2}s: {speedup:.2}x)",
        phases_s.simulate, phases.simulate
    );

    // Sampled-vs-exact error report over the differential matrix
    // (base / runahead / esp_nl per profile — the configurations the
    // accuracy target is stated over).
    let mut exact = Runner::with_profiles(&families, scale, seed, 1);
    exact.ensure(&MATRIX);
    let mut errs: Vec<f64> = Vec::new();
    let mut per_profile_rows: Vec<String> = Vec::new();
    eprintln!("# sampled CPI error vs exact (per profile; base / runahead / esp_nl):");
    for (i, name) in exact.names().iter().enumerate() {
        let mut row = format!("#   {name:<11}");
        let mut cells: Vec<String> = Vec::new();
        for (key, jkey) in MATRIX.into_iter().zip(["base", "runahead", "esp_nl"]) {
            let e = exact.cached(i, key).expect("ensured");
            let s = sampled.cached(i, key).expect("ensured");
            let e_cpi = e.busy_cycles() as f64 / e.engine.retired as f64;
            let s_cpi = s.busy_cycles() as f64 / s.engine.retired as f64;
            let err = 100.0 * (s_cpi - e_cpi) / e_cpi;
            errs.push(err);
            row.push_str(&format!(" {err:+6.2}%"));
            cells.push(format!("\"{jkey}\": {err:.3}"));
        }
        eprintln!("{row}");
        per_profile_rows.push(format!("\"{name}\": {{{}}}", cells.join(", ")));
    }
    let max_err = errs.iter().fold(0f64, |m, e| m.max(e.abs()));
    let mean_err = errs.iter().map(|e| e.abs()).sum::<f64>() / errs.len() as f64;
    eprintln!("# sampled error: max |{max_err:.2}|%, mean |{mean_err:.2}|% over {} cells", errs.len());
    let per_profile_json = per_profile_rows.join(",\n      ");

    // Pass 3b: the same sampled matrix with learned fast-forwarding on
    // top — skipped stretches replace most of the functional-warming
    // walk, which pass 3 showed is where sampled time goes. Timed under
    // the identical warm/1-thread protocol so "learned vs sampled" is a
    // like-for-like simulate-phase ratio.
    eprintln!(
        "# bench pass 3b: learned ({:?} model, train {}, suffix {}, bound {}%), \
         warm, 1 thread, best of {repeat}...",
        learn_params.model,
        learn_params.train_stretches,
        learn_params.warm_suffix_grains,
        learn_params.residual_bound_pct
    );
    let mut best_l: Option<(f64, esp_bench::PhaseSeconds)> = None;
    let mut learned_runner: Option<Runner> = None;
    for rep in 1..=repeat {
        let t = Instant::now();
        let mut r = Runner::with_profiles(&families, scale, seed, 1);
        r.set_sampling(Some(sp));
        r.set_learned(Some(learn_params));
        r.ensure(ConfigKey::all());
        let total = t.elapsed().as_secs_f64();
        eprintln!("#   rep {rep}: {total:.2}s ({:.3} sims/s)", sims as f64 / total.max(1e-9));
        if best_l.as_ref().is_none_or(|(b, _)| total < *b) {
            best_l = Some((total, r.phase_seconds()));
        }
        learned_runner = Some(r);
    }
    let (total_l, phases_l) = best_l.expect("repeat >= 1");
    let learned = learned_runner.expect("repeat >= 1");
    let speedup_l = phases.simulate / phases_l.simulate.max(1e-9);
    let speedup_l_vs_s = phases_s.simulate / phases_l.simulate.max(1e-9);
    eprintln!(
        "# pass 3b: {sims} sims in {total_l:.2}s (simulate {:.2}s: {speedup_l:.2}x vs exact, \
         {speedup_l_vs_s:.2}x vs sampled)",
        phases_l.simulate
    );
    let mut errs_l: Vec<f64> = Vec::new();
    eprintln!("# learned CPI error vs exact (per profile; base / runahead / esp_nl):");
    for (i, name) in exact.names().iter().enumerate() {
        let mut row = format!("#   {name:<11}");
        for key in MATRIX {
            let e = exact.cached(i, key).expect("ensured");
            let l = learned.cached(i, key).expect("ensured");
            let e_cpi = e.busy_cycles() as f64 / e.engine.retired as f64;
            let l_cpi = l.busy_cycles() as f64 / l.engine.retired as f64;
            let err = 100.0 * (l_cpi - e_cpi) / e_cpi;
            errs_l.push(err);
            row.push_str(&format!(" {err:+6.2}%"));
        }
        eprintln!("{row}");
    }
    let max_err_l = errs_l.iter().fold(0f64, |m, e| m.max(e.abs()));
    let mean_err_l = errs_l.iter().map(|e| e.abs()).sum::<f64>() / errs_l.len() as f64;
    let (skip_frac, fb_rate, n_disabled, n_rerun) =
        learned.learned_summary().unwrap_or((0.0, 0.0, 0, 0));
    eprintln!(
        "# learned error: max |{max_err_l:.2}|%, mean |{mean_err_l:.2}|% over {} cells; \
         skip fraction {skip_frac:.3}, fallback rate {fb_rate:.4}, \
         {n_disabled} disabled, {n_rerun} rerun",
        errs_l.len()
    );

    // Pass 4: intra-run (single-run) scaling — the second parallelism
    // axis (docs/PARALLELISM.md). Each profile's single run is chunked
    // across `--intra-threads` workers and merged deterministically;
    // the pass records chunk size, conflict accounting, and serial vs
    // chunk-parallel sims/s. On a 1-core host the accounting (a pure
    // function of the thread count) is still meaningful, but the wall
    // times are not a scaling measurement — noted in the JSON.
    let threads_intra = intra_threads.unwrap_or(if cores > 1 { cores } else { 4 });
    eprintln!(
        "# bench pass 4: intra-run scaling, {threads_intra} chunk workers, best of {repeat}..."
    );
    let intra = exact.intra_scaling(threads_intra, repeat);
    let intra_rate = intra.conflict_rate();
    eprintln!(
        "# pass 4: {} runs, {} events, {} chunks ({} accepted, {} repaired, \
         conflict rate {:.2}); serial {:.2}s vs intra {:.2}s",
        intra.runs,
        intra.events,
        intra.chunks,
        intra.accepted,
        intra.repaired,
        intra_rate,
        intra.seconds_1t,
        intra.seconds_nt,
    );
    let intra_conflicts = intra
        .conflicts
        .iter()
        .map(|(r, n)| format!("\"{r}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let intra_note = if cores > 1 {
        String::new()
    } else {
        format!("\n    \"note\": \"wall times measured on {cores} visible core; not a scaling number\",")
    };
    // Per-family chunk/conflict tables: the aggregate hides which
    // workloads chunk cleanly and which repair everything.
    let intra_profiles = intra
        .per_profile
        .iter()
        .map(|p| {
            let conflicts = p
                .conflicts
                .iter()
                .map(|(r, n)| format!("\"{r}\": {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "\"{}\": {{\"events\": {}, \"chunks\": {}, \"accepted\": {}, \
                 \"repaired\": {}, \"conflict_rate\": {:.3}, \"conflicts\": {{{conflicts}}}}}",
                p.name,
                p.events,
                p.chunks,
                p.accepted,
                p.repaired,
                p.conflict_rate(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    let intra_json = format!(
        "\n  \"intra\": {{\"threads\": {threads_intra}, \"runs\": {}, \"events\": {}, \
         \"events_per_chunk\": {:.1},\n    \
         \"chunks\": {}, \"accepted\": {}, \"repaired\": {}, \"conflict_rate\": {intra_rate:.3},\n    \
         \"conflicts\": {{{intra_conflicts}}},{intra_note}\n    \
         \"per_profile\": {{\n      {intra_profiles}\n    }},\n    \
         \"seconds_1t\": {:.3}, \"seconds_nt\": {:.3}, \
         \"sims_per_sec_1t\": {:.3}, \"sims_per_sec_nt\": {:.3}}},",
        intra.runs,
        intra.events,
        intra.events as f64 / intra.chunks.max(1) as f64,
        intra.chunks,
        intra.accepted,
        intra.repaired,
        intra.seconds_1t,
        intra.seconds_nt,
        intra.runs as f64 / intra.seconds_1t.max(1e-9),
        intra.runs as f64 / intra.seconds_nt.max(1e-9),
    );

    // Trace I/O: what a consumer of exported `.espt` files pays
    // (decode-only import) versus what this process paid to build the
    // same arenas (generate + materialise, cold pass 1 numbers).
    let trace_io_json = match trace_io(&exact, scale, seed) {
        Some((files, bytes, export_s, import_s)) => format!(
            "\n  \"trace_io\": {{\"files\": {files}, \"bytes\": {bytes}, \
             \"export_seconds\": {export_s:.3}, \"import_seconds\": {import_s:.3},\n    \
             \"generate_seconds\": {:.3}, \"materialise_seconds\": {:.3}}},",
            phases.generate, phases.materialise,
        ),
        None => String::new(),
    };

    let nt_json = match (&best_nt, &nt_note) {
        (Some((total_nt, phases_nt)), _) => format!(
            "\n  \"threads_nt\": {threads_nt},\n  \"total_seconds_nt\": {total_nt:.3},\n  \
             \"sims_per_sec_nt\": {:.3},\n  \"mips_nt\": {:.3},\n  \
             \"simulate_seconds_nt\": {:.3},",
            sims as f64 / total_nt.max(1e-9),
            instrs as f64 / total_nt.max(1e-9) / 1e6,
            phases_nt.simulate,
        ),
        (None, Some(note)) => format!("\n  \"threads_nt\": 1,\n  \"nt_note\": \"{note}\","),
        (None, None) => unreachable!("one branch of pass 2 always runs"),
    };
    // The sampled block repeats the scale it was measured at: the CPI
    // error is scale-dependent (fewer sampling periods fit in a smaller
    // workload), so its numbers are only meaningful next to their scale.
    let effective_mips = sampled.instructions_simulated() as f64 / total_s.max(1e-9) / 1e6;
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \"threads\": 1,{nt_json}{intra_json}{trace_io_json}\n  \
         \"repeat\": {repeat},\n  \"sims_run\": {sims},\n  \
         \"instructions_simulated\": {instrs},\n  \
         \"total_seconds\": {total_1t:.3},\n  \
         \"sims_per_sec\": {:.3},\n  \"sims_per_sec_1t\": {:.3},\n  \
         \"mips\": {mips_1t:.3},\n  \"mips_1t\": {mips_1t:.3},\n  \
         \"arena_bytes\": {arena_bytes},\n  \
         \"phase_seconds\": {{\"generate\": {:.3}, \"materialise\": {:.3}, \
         \"simulate\": {:.3}}},\n  \
         \"sampled\": {{\"scale\": {scale}, \"grain_instrs\": {}, \"period\": {}, \
         \"sims\": {sims},\n    \
         \"total_seconds\": {total_s:.3}, \"simulate_seconds\": {:.3}, \
         \"sims_per_sec\": {:.3}, \"effective_mips\": {effective_mips:.3},\n    \
         \"simulate_speedup_vs_exact\": {speedup:.3}, \
         \"max_cpi_error_pct\": {max_err:.3}, \"mean_cpi_error_pct\": {mean_err:.3},\n    \
         \"per_profile\": {{\n      {per_profile_json}\n    }}}},\n  \
         \"learned\": {{\"scale\": {scale}, \"model\": \"{}\", \
         \"train_stretches\": {}, \"warm_suffix_grains\": {}, \
         \"residual_bound_pct\": {},\n    \
         \"sims\": {sims}, \"total_seconds\": {total_l:.3}, \
         \"simulate_seconds\": {:.3}, \"sims_per_sec\": {:.3},\n    \
         \"simulate_speedup_vs_exact\": {speedup_l:.3}, \
         \"simulate_speedup_vs_sampled\": {speedup_l_vs_s:.3},\n    \
         \"max_cpi_error_pct\": {max_err_l:.3}, \"mean_cpi_error_pct\": {mean_err_l:.3},\n    \
         \"skip_fraction\": {skip_frac:.4}, \"fallback_rate\": {fb_rate:.5}, \
         \"disabled_runs\": {n_disabled}, \"rerun_full_runs\": {n_rerun}}}\n}}\n",
        sims as f64 / total_1t.max(1e-9),
        sims as f64 / total_1t.max(1e-9),
        phases.generate,
        phases.materialise,
        phases.simulate,
        sp.grain_instrs,
        sp.period,
        phases_s.simulate,
        sims as f64 / total_s.max(1e-9),
        format!("{:?}", learn_params.model).to_lowercase(),
        learn_params.train_stretches,
        learn_params.warm_suffix_grains,
        learn_params.residual_bound_pct,
        phases_l.simulate,
        sims as f64 / total_l.max(1e-9),
    );
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => {
            eprintln!("# wrote BENCH_repro.json ({sims} sims, 1t {total_1t:.2}s, sampled {total_s:.2}s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("# error: could not write BENCH_repro.json: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The trace-I/O measurement behind the `trace_io` block: exports every
/// slot of `runner` as `.espt` into a scratch directory, drops the
/// process-wide arena memo, re-imports all files (seating fresh arenas),
/// and reports `(files, bytes, export_seconds, import_seconds)`. Returns
/// `None` — and records nothing — if any filesystem step fails; the
/// scratch directory is removed either way.
fn trace_io(runner: &Runner, scale: u64, seed: u64) -> Option<(usize, u64, f64, f64)> {
    let dir = std::env::temp_dir().join(format!("esp-bench-espt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok()?;
    let names = runner.names();
    let result = (|| {
        let t = Instant::now();
        let mut bytes = 0u64;
        for (i, name) in names.iter().enumerate() {
            let meta = esp_trace::espt::TraceMeta { profile: name.clone(), scale, seed };
            let path = dir.join(format!("{name}.espt"));
            bytes += esp_trace::espt::write_path(&path, &meta, runner.packed(i).as_ref()).ok()?;
        }
        let export_s = t.elapsed().as_secs_f64();
        // Drop the memo so the import genuinely decodes from bytes
        // (existing runners keep their Arcs and are unaffected).
        esp_workload::arena::reset();
        let t = Instant::now();
        for name in &names {
            esp_workload::arena::import(dir.join(format!("{name}.espt"))).ok()?;
        }
        let import_s = t.elapsed().as_secs_f64();
        eprintln!(
            "# trace i/o: exported {} files ({bytes} bytes) in {export_s:.2}s, \
             re-imported in {import_s:.2}s",
            names.len()
        );
        Some((names.len(), bytes, export_s, import_s))
    })();
    std::fs::remove_dir_all(&dir).ok();
    result
}

/// Whether `BENCH_repro.json` may be (over)written by a run at `scale`:
/// an existing file recorded at a different scale is preserved unless
/// `force` — mixed-scale throughput numbers are not comparable.
fn bench_json_writable(scale: u64, force: bool) -> bool {
    if force {
        return true;
    }
    if let Ok(existing) = std::fs::read_to_string("BENCH_repro.json") {
        let prev = esp_check::Json::parse(&existing)
            .ok()
            .and_then(|j| j.get("scale").and_then(esp_check::Json::as_u64));
        if let Some(prev) = prev {
            if prev != scale {
                eprintln!(
                    "# refusing to overwrite BENCH_repro.json: it was recorded at scale \
                     {prev}, this run used {scale}; pass --force to replace it"
                );
                return false;
            }
        }
    }
    true
}

/// Writes `BENCH_repro.json` so future revisions can track the perf
/// trajectory of a full regeneration at fixed scale/seed. With
/// `cpi_stack` requested, the baseline and ESP+NL runs are ensured and
/// their per-benchmark CPI stacks embedded (identical for any
/// `--threads` value; the determinism test asserts this). An existing
/// file recorded at a different scale is preserved unless `force` —
/// mixed-scale throughput numbers are not comparable.
fn write_bench_json(runner: &mut Runner, total_seconds: f64, cpi_stack: bool, force: bool) {
    if !bench_json_writable(runner.scale(), force) {
        return;
    }
    let stack_section = if cpi_stack {
        // Runs the baseline/ESP pair if the requested figures did not
        // already (a cache hit otherwise).
        runner.ensure(&[ConfigKey::Base, ConfigKey::EspNl]);
        match runner.cpi_stack_json("  ") {
            Some(json) => format!(",\n  \"cpi_stack\": {json}"),
            None => String::new(),
        }
    } else {
        String::new()
    };
    let sims = runner.sims_run();
    let phases = runner.phase_seconds();
    // A sampled figure run produces estimated numbers; mark the record
    // so its throughput is never confused with the exact trajectory.
    let mode_section = match runner.sampling() {
        Some(p) => format!(
            ",\n  \"mode\": \"{}\", \"sample_grain\": {}, \"sample_period\": {}",
            if runner.learned().is_some() { "learned" } else { "sampled" },
            p.grain_instrs,
            p.period
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"sims_run\": {},\n  \"total_seconds\": {:.3},\n  \"sims_per_sec\": {:.3},\n  \"arena_bytes\": {},\n  \"phase_seconds\": {{\"generate\": {:.3}, \"materialise\": {:.3}, \"simulate\": {:.3}}}{}{}\n}}\n",
        runner.scale(),
        runner.seed(),
        runner.threads(),
        sims,
        total_seconds,
        if total_seconds > 0.0 { sims as f64 / total_seconds } else { 0.0 },
        runner.arena_resident_bytes(),
        phases.generate,
        phases.materialise,
        phases.simulate,
        stack_section,
        mode_section,
    );
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => eprintln!("# wrote BENCH_repro.json ({sims} sims in {total_seconds:.2}s)"),
        Err(e) => eprintln!("# warning: could not write BENCH_repro.json: {e}"),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale N] [--seed S] [--threads T] [--intra-threads K] \
         [--trace FILE.jsonl] [--trace-in FILE.espt ...] [--trace-out DIR] [--cpi-stack] \
         [--force] [--fuzz N] [--fuzz-espt N] [--repeat N] [--sample-period P] [--sample-grain G] \
         [--learn] [--learn-model ridge|gbm] [--learn-train N] [--learn-suffix N] [--learn-bound F] \
         <all | fig3 fig6 fig7 fig8 fig9 fig10 fig11a fig11b fig12 fig13 fig14 | ablate \
         | explain BENCHMARK-OR-TRACE... | check | dump [NAMES-OR-TRACES...] | bench>\n\
         threads default to ESP_THREADS or the machine's parallelism;\n\
         --trace writes a JSONL span trace, --cpi-stack embeds per-benchmark CPI stacks\n\
         in BENCH_repro.json (schema: docs/OBSERVABILITY.md);\n\
         --trace-in FILE.espt (repeatable) simulates imported traces instead of\n\
         generating workloads; dump --trace-out DIR exports .espt trace files\n\
         (format: docs/TRACE_FORMAT.md);\n\
         --force overwrites a BENCH_repro.json recorded at a different scale;\n\
         --sample-period P runs figures in statistical-sampling mode (1 of every P\n\
         grains of --sample-grain instructions is measured; see docs/PERFORMANCE.md);\n\
         --learn adds learned fast-forwarding on top of sampling (skips most of the\n\
         functional-warming walk once the per-run model trains); --learn-model picks\n\
         ridge (default) or gbm, --learn-train the training stretches, --learn-suffix\n\
         the always-warmed suffix grains, --learn-bound the residual bound in percent;\n\
         check runs the differential oracle over all 9 families + a --fuzz N seeded\n\
         sweep + a --fuzz-espt N trace-decoder sweep (docs/TESTING.md);\n\
         dump prints every selected workload's RunReports for cross-process\n\
         determinism checks (default: all 9 families);\n\
         bench runs the full matrix cold at 1 thread, warm at --threads (skipped on a\n\
         1-core machine), warm in sampled then learned mode with error cross-checks,\n\
         then an\n\
         intra-run pass chunking each single run over --intra-threads workers (each\n\
         pass best of --repeat, default 3), measures .espt export/import against\n\
         generate+materialise, and records all passes in BENCH_repro.json\n\
         (docs/PERFORMANCE.md, docs/PARALLELISM.md, docs/TRACE_FORMAT.md)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
