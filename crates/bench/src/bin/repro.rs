//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro [--scale N] [--seed S] all
//! repro [--scale N] [--seed S] fig9 fig11a ...
//! ```
//!
//! `--scale` is the per-benchmark instruction budget (default 400 000);
//! larger scales sharpen the numbers at the cost of runtime.

use esp_bench::{figures, Runner};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale: u64 = 400_000;
    let mut seed: u64 = 42;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale = v,
                None => return usage("--scale needs an integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage("no figure selected");
    }

    eprintln!("# generating workloads (scale {scale}, seed {seed})...");
    let mut runner = Runner::new(scale, seed);

    if wanted.iter().any(|w| w == "all") {
        for report in figures::all(&mut runner) {
            println!("{}", report.render());
        }
        return ExitCode::SUCCESS;
    }
    for name in &wanted {
        if name == "ablate" {
            for report in esp_bench::ablation::all(scale, seed) {
                println!("{}", report.render());
            }
            continue;
        }
        match figures::by_name(name) {
            Ok(f) => println!("{}", f(&mut runner).render()),
            Err(e) => return usage(&e.to_string()),
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale N] [--seed S] <all | fig3 fig6 fig7 fig8 fig9 fig10 \
         fig11a fig11b fig12 fig13 fig14 | ablate>"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
