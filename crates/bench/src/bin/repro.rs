//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro [--scale N] [--seed S] [--threads T] all
//! repro [--scale N] [--seed S] fig9 fig11a ...
//! ```
//!
//! `--scale` is the per-benchmark instruction budget (default 400 000);
//! larger scales sharpen the numbers at the cost of runtime. Simulations
//! fan out across worker threads (`--threads`, or the `ESP_THREADS`
//! environment variable, defaulting to the machine's parallelism); every
//! run is deterministic, so the reports are identical for any thread
//! count. Each phase prints its wall-clock time, and a `BENCH_repro.json`
//! with the run's throughput is written next to the output so the perf
//! trajectory can be tracked across revisions.

use esp_bench::{figures, Runner};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut scale: u64 = 400_000;
    let mut seed: u64 = 42;
    let mut threads: Option<usize> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale = v,
                None => return usage("--scale needs an integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => threads = Some(v),
                _ => return usage("--threads needs a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage("no figure selected");
    }
    // Validate every name up front so a typo fails before any workload
    // generation or simulation happens.
    for name in &wanted {
        if name != "all" && name != "ablate" {
            if let Err(e) = figures::by_name(name) {
                return usage(&e.to_string());
            }
        }
    }

    let threads = threads.unwrap_or_else(esp_par::threads);
    let t_start = Instant::now();
    eprintln!("# generating workloads (scale {scale}, seed {seed}, {threads} threads)...");
    let mut runner = Runner::with_threads(scale, seed, threads);
    eprintln!("# workloads ready in {:.2}s", t_start.elapsed().as_secs_f64());

    if wanted.iter().any(|w| w == "all") {
        let t = Instant::now();
        let reports = figures::all(&mut runner);
        eprintln!(
            "# simulated {} runs in {:.2}s",
            runner.sims_run(),
            t.elapsed().as_secs_f64()
        );
        for report in reports {
            println!("{}", report.render());
        }
        write_bench_json(&runner, t_start.elapsed().as_secs_f64());
        return ExitCode::SUCCESS;
    }
    for name in &wanted {
        let t = Instant::now();
        if name == "ablate" {
            for report in esp_bench::ablation::all(scale, seed) {
                println!("{}", report.render());
            }
            eprintln!("# ablate in {:.2}s", t.elapsed().as_secs_f64());
            continue;
        }
        match figures::by_name(name) {
            Ok(f) => {
                let rendered = f(&mut runner).render();
                eprintln!("# {name} in {:.2}s", t.elapsed().as_secs_f64());
                println!("{rendered}");
            }
            Err(e) => return usage(&e.to_string()),
        }
    }
    write_bench_json(&runner, t_start.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

/// Writes `BENCH_repro.json` so future revisions can track the perf
/// trajectory of a full regeneration at fixed scale/seed.
fn write_bench_json(runner: &Runner, total_seconds: f64) {
    let sims = runner.sims_run();
    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"sims_run\": {},\n  \"total_seconds\": {:.3},\n  \"sims_per_sec\": {:.3}\n}}\n",
        runner.scale(),
        runner.seed(),
        runner.threads(),
        sims,
        total_seconds,
        if total_seconds > 0.0 { sims as f64 / total_seconds } else { 0.0 },
    );
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => eprintln!("# wrote BENCH_repro.json ({sims} sims in {total_seconds:.2}s)"),
        Err(e) => eprintln!("# warning: could not write BENCH_repro.json: {e}"),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale N] [--seed S] [--threads T] <all | fig3 fig6 fig7 fig8 fig9 \
         fig10 fig11a fig11b fig12 fig13 fig14 | ablate>\n\
         threads default to ESP_THREADS or the machine's parallelism"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
