//! Regenerates the paper's figures and tables.
//!
//! ```text
//! repro [--scale N] [--seed S] [--threads T] all
//! repro [--scale N] [--seed S] fig9 fig11a ...
//! repro [--trace out.jsonl] [--cpi-stack] fig9
//! repro explain <benchmark ...>
//! ```
//!
//! `--scale` is the per-benchmark instruction budget (default 400 000);
//! larger scales sharpen the numbers at the cost of runtime. Simulations
//! fan out across worker threads (`--threads`, or the `ESP_THREADS`
//! environment variable, defaulting to the machine's parallelism); every
//! run is deterministic, so the reports are identical for any thread
//! count. Each phase prints its wall-clock time, and a `BENCH_repro.json`
//! with the run's throughput is written next to the output so the perf
//! trajectory can be tracked across revisions.
//!
//! Observability (see `docs/OBSERVABILITY.md`): `--trace <path>` writes
//! a JSONL span trace of every simulation (per-worker buffers merged in
//! input order — byte-identical for any thread count); `--cpi-stack`
//! adds a per-benchmark baseline/ESP CPI-stack section to
//! `BENCH_repro.json`; `explain <benchmark>` prints the baseline-vs-ESP
//! CPI-stack delta table in the shape of the paper's Figs. 4/5.

use esp_bench::{explain, figures, ConfigKey, Runner};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut scale: u64 = 400_000;
    let mut seed: u64 = 42;
    let mut threads: Option<usize> = None;
    let mut trace: Option<std::path::PathBuf> = None;
    let mut cpi_stack = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale = v,
                None => return usage("--scale needs an integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => threads = Some(v),
                _ => return usage("--threads needs a positive integer"),
            },
            "--trace" => match args.next() {
                Some(p) => trace = Some(p.into()),
                None => return usage("--trace needs a file path"),
            },
            "--cpi-stack" => cpi_stack = true,
            "--help" | "-h" => return usage(""),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage("no figure selected");
    }
    // `explain` consumes the rest of the positional arguments as
    // benchmark names, validated (like figure names) before any workload
    // generation happens.
    let explain_benches: Vec<String> = if wanted[0] == "explain" {
        let benches: Vec<String> = wanted.drain(..).skip(1).collect();
        if benches.is_empty() {
            return usage("explain needs at least one benchmark name");
        }
        let names: Vec<&str> =
            esp_workload::BenchmarkProfile::all().iter().map(|p| p.name()).collect();
        for b in &benches {
            if !names.iter().any(|&n| n == b) {
                return usage(&format!(
                    "unknown benchmark '{b}' (expected one of: {})",
                    names.join(", ")
                ));
            }
        }
        benches
    } else {
        Vec::new()
    };
    // Validate every name up front so a typo fails before any workload
    // generation or simulation happens.
    for name in &wanted {
        if name != "all" && name != "ablate" {
            if let Err(e) = figures::by_name(name) {
                return usage(&e.to_string());
            }
        }
    }

    let threads = threads.unwrap_or_else(esp_par::threads);
    let t_start = Instant::now();
    eprintln!("# generating workloads (scale {scale}, seed {seed}, {threads} threads)...");
    let mut runner = Runner::with_threads(scale, seed, threads);
    eprintln!("# workloads ready in {:.2}s", t_start.elapsed().as_secs_f64());

    // Attach the trace sink before any simulation runs; refuse paths we
    // cannot create instead of failing mid-run.
    if let Some(path) = &trace {
        if let Err(e) = runner.set_trace_output(path) {
            eprintln!("error: cannot create trace file {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("# tracing to {}", path.display());
    }

    if !explain_benches.is_empty() {
        for b in &explain_benches {
            let t = Instant::now();
            match explain::explain(&mut runner, b) {
                Ok(rep) => {
                    eprintln!("# explain {b} in {:.2}s", t.elapsed().as_secs_f64());
                    println!("{}", rep.render());
                }
                Err(e) => return usage(&e.to_string()),
            }
        }
        write_bench_json(&mut runner, t_start.elapsed().as_secs_f64(), cpi_stack);
        return ExitCode::SUCCESS;
    }

    if wanted.iter().any(|w| w == "all") {
        let t = Instant::now();
        let reports = figures::all(&mut runner);
        eprintln!(
            "# simulated {} runs in {:.2}s",
            runner.sims_run(),
            t.elapsed().as_secs_f64()
        );
        for report in reports {
            println!("{}", report.render());
        }
        write_bench_json(&mut runner, t_start.elapsed().as_secs_f64(), cpi_stack);
        return ExitCode::SUCCESS;
    }
    for name in &wanted {
        let t = Instant::now();
        if name == "ablate" {
            for report in esp_bench::ablation::all(scale, seed) {
                println!("{}", report.render());
            }
            eprintln!("# ablate in {:.2}s", t.elapsed().as_secs_f64());
            continue;
        }
        match figures::by_name(name) {
            Ok(f) => {
                let rendered = f(&mut runner).render();
                eprintln!("# {name} in {:.2}s", t.elapsed().as_secs_f64());
                println!("{rendered}");
            }
            Err(e) => return usage(&e.to_string()),
        }
    }
    write_bench_json(&mut runner, t_start.elapsed().as_secs_f64(), cpi_stack);
    ExitCode::SUCCESS
}

/// Writes `BENCH_repro.json` so future revisions can track the perf
/// trajectory of a full regeneration at fixed scale/seed. With
/// `cpi_stack` requested, the baseline and ESP+NL runs are ensured and
/// their per-benchmark CPI stacks embedded (identical for any
/// `--threads` value; the determinism test asserts this).
fn write_bench_json(runner: &mut Runner, total_seconds: f64, cpi_stack: bool) {
    let stack_section = if cpi_stack {
        // Runs the baseline/ESP pair if the requested figures did not
        // already (a cache hit otherwise).
        runner.ensure(&[ConfigKey::Base, ConfigKey::EspNl]);
        match runner.cpi_stack_json("  ") {
            Some(json) => format!(",\n  \"cpi_stack\": {json}"),
            None => String::new(),
        }
    } else {
        String::new()
    };
    let sims = runner.sims_run();
    let json = format!(
        "{{\n  \"scale\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \"sims_run\": {},\n  \"total_seconds\": {:.3},\n  \"sims_per_sec\": {:.3}{}\n}}\n",
        runner.scale(),
        runner.seed(),
        runner.threads(),
        sims,
        total_seconds,
        if total_seconds > 0.0 { sims as f64 / total_seconds } else { 0.0 },
        stack_section,
    );
    match std::fs::write("BENCH_repro.json", &json) {
        Ok(()) => eprintln!("# wrote BENCH_repro.json ({sims} sims in {total_seconds:.2}s)"),
        Err(e) => eprintln!("# warning: could not write BENCH_repro.json: {e}"),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale N] [--seed S] [--threads T] [--trace FILE.jsonl] [--cpi-stack] \
         <all | fig3 fig6 fig7 fig8 fig9 fig10 fig11a fig11b fig12 fig13 fig14 | ablate \
         | explain BENCHMARK...>\n\
         threads default to ESP_THREADS or the machine's parallelism;\n\
         --trace writes a JSONL span trace, --cpi-stack embeds per-benchmark CPI stacks\n\
         in BENCH_repro.json (schema: docs/OBSERVABILITY.md)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
