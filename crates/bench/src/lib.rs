//! The benchmark harness: regenerates every figure and table of the ESP
//! paper's evaluation (§5–§6).
//!
//! The `repro` binary (`cargo run --release -p esp-bench --bin repro --
//! all`) prints each figure in the same rows/series layout the paper
//! uses; the plain-`std` timing benches in `benches/` time the simulator
//! itself. `repro explain <benchmark>` prints the baseline-vs-ESP
//! CPI-stack delta (see [`explain`]), and `--trace <path>` /
//! `--cpi-stack` expose the `esp-obs` observability layer (glossary and
//! trace schema in `docs/OBSERVABILITY.md`).
//!
//! Figures are regenerated at a configurable instruction scale (default
//! 400 000 per benchmark; see `DESIGN.md` on scaling) with per-(profile,
//! configuration) run caching, since many figures share the same
//! baseline runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod explain;
pub mod figures;
pub mod runner;
pub mod source;

pub use runner::{ConfigKey, FigureReport, IntraProfile, IntraScaling, PhaseSeconds, Runner};
pub use source::WorkloadSpec;
