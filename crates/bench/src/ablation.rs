//! Ablation studies for the design choices DESIGN.md calls out: replay
//! lead distances, jump-ahead depth, and the looper-prologue head start.
//!
//! These sweeps are not figures from the paper; they probe the presets
//! the paper fixes by fiat (the 190-instruction prefetch lead of §3.6,
//! the ~30-branch training lead, the depth-2 limit of §3.1, the
//! 70-instruction looper window) and show each sits on a plateau or knee.
//! Each sweep fans its simulation points out over [`esp_par`] worker
//! threads; runs share only the immutable workload, so results are
//! thread-count-independent.

use crate::runner::FigureReport;
use esp_core::{RunReport, SimConfig, SimMode, Simulator};
use esp_stats::{improvement_pct, Table};
use esp_trace::Workload;
use esp_workload::{arena, BenchmarkProfile};

fn esp_with(mutate: impl FnOnce(&mut esp_core::EspFeatures)) -> SimConfig {
    let mut cfg = SimConfig::esp_nl();
    if let SimMode::Esp(ref mut f) = cfg.mode {
        mutate(f);
    }
    cfg
}

fn run(cfg: SimConfig, w: &dyn Workload) -> RunReport {
    Simulator::new(cfg).run(w)
}

/// The sweep's memoised packed workload: decoded once per (profile,
/// scale, seed) process-wide, replayed by every sweep point.
fn packed(profile: BenchmarkProfile, scale: u64, seed: u64) -> std::sync::Arc<esp_trace::PackedWorkload> {
    arena::packed_for(&profile.scaled(scale), seed, esp_par::threads())
}

/// Sweeps the list-prefetch lead distance (§3.6 fixes 190).
pub fn prefetch_lead(scale: u64, seed: u64) -> FigureReport {
    let w = packed(BenchmarkProfile::amazon(), scale, seed);
    const LEADS: [u64; 5] = [16, 64, 190, 500, 1500];
    // One job per sweep point plus the NL baseline, all on the pool.
    let mut configs = vec![SimConfig::next_line()];
    configs.extend(LEADS.iter().map(|&lead| esp_with(|f| f.prefetch_lead_instrs = lead)));
    let reports = esp_par::parallel_map(esp_par::threads(), &configs, |_, cfg| run(cfg.clone(), &*w));
    let nl = &reports[0];
    let mut t = Table::with_headers(&["lead (instrs)", "speedup over NL %", "I-MPKI"]);
    for (lead, r) in LEADS.iter().zip(&reports[1..]) {
        t.push_row(vec![
            lead.to_string(),
            format!("{:.2}", improvement_pct(nl.busy_cycles(), r.busy_cycles())),
            format!("{:.2}", r.l1i_mpki()),
        ]);
    }
    FigureReport {
        id: "Ablation A",
        title: "List-prefetch lead distance (amazon; the paper presets 190)",
        tables: vec![(String::new(), t)],
        notes: vec![
            "too short a lead leaves fills in flight at use (partial hits); \
             very long leads risk eviction before use."
                .into(),
        ],
    }
}

/// Sweeps the B-list training lead (§3.6: "a preset number of branches
/// ahead ... neither too far in the future nor too short").
pub fn bp_train_lead(scale: u64, seed: u64) -> FigureReport {
    let w = packed(BenchmarkProfile::cnn(), scale, seed);
    const LEADS: [u64; 5] = [2, 10, 30, 100, 400];
    let reports = esp_par::parallel_map(esp_par::threads(), &LEADS, |_, &lead| {
        run(esp_with(|f| f.bp_train_lead_branches = lead), &*w)
    });
    let mut t = Table::with_headers(&["lead (branches)", "mispredict %"]);
    for (lead, r) in LEADS.iter().zip(&reports) {
        t.push_row(vec![lead.to_string(), format!("{:.3}", r.mispredict_rate_pct())]);
    }
    FigureReport {
        id: "Ablation B",
        title: "B-list training lead (cnn; the paper presets ~30 branches)",
        tables: vec![(String::new(), t)],
        notes: vec![],
    }
}

/// Sweeps the jump-ahead depth (§3.1 fixes 2).
pub fn depth(scale: u64, seed: u64) -> FigureReport {
    let w = packed(BenchmarkProfile::facebook(), scale, seed);
    let mut configs = vec![SimConfig::next_line()];
    configs.extend((1usize..=4).map(|d| esp_with(|f| f.depth = d)));
    let reports = esp_par::parallel_map(esp_par::threads(), &configs, |_, cfg| run(cfg.clone(), &*w));
    let nl = &reports[0];
    let mut t = Table::with_headers(&[
        "depth",
        "speedup over NL %",
        "pre-executed %",
        "instrs at deepest level",
    ]);
    for (d, r) in (1usize..=4).zip(&reports[1..]) {
        t.push_row(vec![
            d.to_string(),
            format!("{:.2}", improvement_pct(nl.busy_cycles(), r.busy_cycles())),
            format!("{:.1}", r.extra_instr_pct()),
            r.esp.instrs_by_depth.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    FigureReport {
        id: "Ablation C",
        title: "Jump-ahead depth (facebook; the paper supports 2)",
        tables: vec![(String::new(), t)],
        notes: vec![
            "the paper's §6.6 finding: beyond two jump-aheads there is \
             rarely an opportunity to touch anything."
                .into(),
        ],
    }
}

/// Sweeps the looper prologue length (§3.6 observes ~70 instructions).
pub fn looper_window(scale: u64, seed: u64) -> FigureReport {
    let w = packed(BenchmarkProfile::bing(), scale, seed);
    const WINDOWS: [u32; 4] = [0, 20, 70, 200];
    // Keep the baseline comparable: same looper cost on both sides —
    // one (NL, ESP) config pair per sweep point, all on the pool.
    let configs: Vec<SimConfig> = WINDOWS
        .iter()
        .flat_map(|&n| {
            let mut nl_cfg = SimConfig::next_line();
            nl_cfg.looper_instrs = n;
            let mut cfg = SimConfig::esp_nl();
            cfg.looper_instrs = n;
            [nl_cfg, cfg]
        })
        .collect();
    let reports = esp_par::parallel_map(esp_par::threads(), &configs, |_, cfg| run(cfg.clone(), &*w));
    let mut t = Table::with_headers(&["looper instrs", "speedup over NL %"]);
    for (k, n) in WINDOWS.iter().enumerate() {
        let (nl_r, r) = (&reports[2 * k], &reports[2 * k + 1]);
        t.push_row(vec![
            n.to_string(),
            format!("{:.2}", improvement_pct(nl_r.busy_cycles(), r.busy_cycles())),
        ]);
    }
    FigureReport {
        id: "Ablation D",
        title: "Looper-prologue head start (bing; the paper observes ~70 instrs)",
        tables: vec![(String::new(), t)],
        notes: vec![
            "the prologue gives the first prefetches of an event time to \
             land before its first instructions fetch."
                .into(),
        ],
    }
}

/// All ablation sweeps.
pub fn all(scale: u64, seed: u64) -> Vec<FigureReport> {
    vec![
        prefetch_lead(scale, seed),
        bp_train_lead(scale, seed),
        depth(scale, seed),
        looper_window(scale, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_run_at_tiny_scale() {
        for rep in all(15_000, 3) {
            assert!(!rep.tables.is_empty());
            assert!(!rep.render().is_empty());
        }
    }

    #[test]
    fn depth_sweep_monotone_spec_instrs() {
        let w = packed(BenchmarkProfile::amazon(), 40_000, 5);
        let shallow = run(esp_with(|f| f.depth = 1), &*w);
        let deep = run(esp_with(|f| f.depth = 3), &*w);
        assert!(deep.esp.spec_instrs() >= shallow.esp.spec_instrs());
    }
}
