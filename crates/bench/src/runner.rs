//! The plan-then-execute simulation runner shared by all figures.
//!
//! Figures declare the `(profile, ConfigKey)` pairs they need via
//! [`Runner::ensure`]; the runner executes every missing pair across N
//! worker threads (each simulation is deterministic and independent, so
//! the fan-out is fidelity-free), and [`Runner::run`] /
//! [`Runner::improvements`] / [`Runner::metric`] become cache lookups.

use crate::source::WorkloadSpec;
use esp_core::{LearnParams, LearnedStats, RunReport, SampleParams, SimConfig, SimMode, Simulator};
use esp_obs::TraceProbe;
use esp_stats::Table;
use esp_trace::{PackedWorkload, Workload};
use esp_uarch::PerfectFlags;
use esp_workload::{arena, BenchmarkProfile, GeneratedWorkload};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One planned simulation's outputs: the report, its serialised trace
/// bytes, and the learned-mode stats when learned fast-forwarding ran.
type RunOutput = (RunReport, Vec<u8>, Option<LearnedStats>);

/// Every machine configuration the evaluation compares, as a nameable
/// key (so runs can be cached and reports labelled consistently).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ConfigKey {
    Base,
    NextLine,
    NextLineStride,
    Runahead,
    RunaheadNl,
    Esp,
    EspNl,
    NaiveEsp,
    NaiveEspNl,
    EspINl,
    EspIbNl,
    NlIOnly,
    NlDOnly,
    EspI,
    EspINlI,
    IdealEspINlI,
    RunaheadD,
    RunaheadDNlD,
    EspD,
    EspDNlD,
    IdealEspDNlD,
    EspBpShared,
    EspBpSeparateContext,
    EspBpSeparateTables,
    PerfectL1i,
    PerfectL1d,
    PerfectBranch,
    PerfectAll,
    EspDepthProbe,
}

impl ConfigKey {
    /// Every configuration in the evaluation matrix, in declaration
    /// order — the full plan for a figure regeneration.
    pub fn all() -> &'static [ConfigKey] {
        &[
            ConfigKey::Base,
            ConfigKey::NextLine,
            ConfigKey::NextLineStride,
            ConfigKey::Runahead,
            ConfigKey::RunaheadNl,
            ConfigKey::Esp,
            ConfigKey::EspNl,
            ConfigKey::NaiveEsp,
            ConfigKey::NaiveEspNl,
            ConfigKey::EspINl,
            ConfigKey::EspIbNl,
            ConfigKey::NlIOnly,
            ConfigKey::NlDOnly,
            ConfigKey::EspI,
            ConfigKey::EspINlI,
            ConfigKey::IdealEspINlI,
            ConfigKey::RunaheadD,
            ConfigKey::RunaheadDNlD,
            ConfigKey::EspD,
            ConfigKey::EspDNlD,
            ConfigKey::IdealEspDNlD,
            ConfigKey::EspBpShared,
            ConfigKey::EspBpSeparateContext,
            ConfigKey::EspBpSeparateTables,
            ConfigKey::PerfectL1i,
            ConfigKey::PerfectL1d,
            ConfigKey::PerfectBranch,
            ConfigKey::PerfectAll,
            ConfigKey::EspDepthProbe,
        ]
    }

    /// The short label used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            ConfigKey::Base => "base",
            ConfigKey::NextLine => "NL",
            ConfigKey::NextLineStride => "NL + S",
            ConfigKey::Runahead => "Runahead",
            ConfigKey::RunaheadNl => "Runahead + NL",
            ConfigKey::Esp => "ESP",
            ConfigKey::EspNl => "ESP + NL",
            ConfigKey::NaiveEsp => "Naive ESP",
            ConfigKey::NaiveEspNl => "Naive ESP + NL",
            ConfigKey::EspINl => "ESP-I + NL",
            ConfigKey::EspIbNl => "ESP-I,B + NL",
            ConfigKey::NlIOnly => "NL-I",
            ConfigKey::NlDOnly => "NL-D",
            ConfigKey::EspI => "ESP-I",
            ConfigKey::EspINlI => "ESP-I + NL-I",
            ConfigKey::IdealEspINlI => "ideal ESP-I + NL-I",
            ConfigKey::RunaheadD => "Runahead-D",
            ConfigKey::RunaheadDNlD => "Runahead-D + NL-D",
            ConfigKey::EspD => "ESP-D",
            ConfigKey::EspDNlD => "ESP-D + NL-D",
            ConfigKey::IdealEspDNlD => "ideal ESP-D + NL-D",
            ConfigKey::EspBpShared => "no extra H/W",
            ConfigKey::EspBpSeparateContext => "separate context",
            ConfigKey::EspBpSeparateTables => "separate context and tables",
            ConfigKey::PerfectL1i => "perfect L1I-cache",
            ConfigKey::PerfectL1d => "perfect L1D-cache",
            ConfigKey::PerfectBranch => "perfect Branch Predictor",
            ConfigKey::PerfectAll => "perfect All",
            ConfigKey::EspDepthProbe => "ESP depth probe",
        }
    }

    /// The simulator configuration this key denotes.
    pub fn config(self) -> SimConfig {
        match self {
            ConfigKey::Base => SimConfig::base(),
            ConfigKey::NextLine => SimConfig::next_line(),
            ConfigKey::NextLineStride => SimConfig::next_line_stride(),
            ConfigKey::Runahead => SimConfig::runahead(),
            ConfigKey::RunaheadNl => SimConfig::runahead_nl(),
            ConfigKey::Esp => SimConfig::esp(),
            ConfigKey::EspNl => SimConfig::esp_nl(),
            ConfigKey::NaiveEsp => SimConfig::naive_esp(),
            ConfigKey::NaiveEspNl => SimConfig::naive_esp_nl(),
            ConfigKey::EspINl => SimConfig::esp_i_nl(),
            ConfigKey::EspIbNl => SimConfig::esp_ib_nl(),
            ConfigKey::NlIOnly => SimConfig::nl_i_only(),
            ConfigKey::NlDOnly => SimConfig::nl_d_only(),
            ConfigKey::EspI => SimConfig::esp_i(),
            ConfigKey::EspINlI => SimConfig::esp_i_nl_i(),
            ConfigKey::IdealEspINlI => SimConfig::ideal_esp_i_nl_i(),
            ConfigKey::RunaheadD => SimConfig::runahead_d(),
            ConfigKey::RunaheadDNlD => SimConfig::runahead_d_nl_d(),
            ConfigKey::EspD => SimConfig::esp_d(),
            ConfigKey::EspDNlD => SimConfig::esp_d_nl_d(),
            ConfigKey::IdealEspDNlD => SimConfig::ideal_esp_d_nl_d(),
            ConfigKey::EspBpShared => SimConfig::esp_bp_shared(),
            ConfigKey::EspBpSeparateContext => SimConfig::esp_bp_separate_context(),
            ConfigKey::EspBpSeparateTables => SimConfig::esp_bp_separate_tables(),
            ConfigKey::PerfectL1i => SimConfig::perfect(PerfectFlags::perfect_l1i()),
            ConfigKey::PerfectL1d => SimConfig::perfect(PerfectFlags::perfect_l1d()),
            ConfigKey::PerfectBranch => SimConfig::perfect(PerfectFlags::perfect_branch()),
            ConfigKey::PerfectAll => SimConfig::perfect(PerfectFlags::all()),
            ConfigKey::EspDepthProbe => SimConfig::esp_depth_probe(),
        }
    }
}

/// One regenerated figure or table: a title, one or more tables, and
/// explanatory notes (what the paper reported, for EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// "Fig. 9", "Fig. 6 (table)", …
    pub id: &'static str,
    /// The figure's caption.
    pub title: &'static str,
    /// Captioned tables.
    pub tables: Vec<(String, Table)>,
    /// Comparison notes against the paper.
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} — {} ===\n", self.id, self.title);
        for (caption, table) in &self.tables {
            if !caption.is_empty() {
                out.push_str(caption);
                out.push('\n');
            }
            out.push_str(&table.to_string());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

/// Wall-clock seconds a [`Runner`] spent in each phase of its lifetime:
/// generating workloads, materialising packed trace arenas, and running
/// simulations. Warm (memoised) phases report the near-zero cache-lookup
/// time actually spent, not the cost of the original cold build.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSeconds {
    /// Seed → [`GeneratedWorkload`] generation.
    pub generate: f64,
    /// Walk → packed arena materialisation (decode-once).
    pub materialise: f64,
    /// Accumulated simulation time across every [`Runner::ensure`] batch.
    pub simulate: f64,
}

/// One benchmark's slice of an intra-run scaling pass: chunk and
/// conflict accounting for that profile's single chunked baseline run.
/// The per-profile view is what distinguishes a workload whose chunks
/// all merge cleanly from one that repairs everything — the aggregate
/// in [`IntraScaling`] cannot.
#[derive(Clone, Debug, Default)]
pub struct IntraProfile {
    /// Benchmark name (presentation order of the runner's slots).
    pub name: String,
    /// Events in this profile's run.
    pub events: u64,
    /// Chunks the run was split into (1 when the serial fallback ran).
    pub chunks: u64,
    /// Chunks accepted at merge.
    pub accepted: u64,
    /// Chunks re-simulated serially from the authoritative state.
    pub repaired: u64,
    /// Why chunks conflicted: `(reason, count)` for this run.
    pub conflicts: Vec<(&'static str, u64)>,
}

impl IntraProfile {
    /// Fraction of this run's speculative chunks that took the repair
    /// path (see [`IntraScaling::conflict_rate`]).
    pub fn conflict_rate(&self) -> f64 {
        let speculative = self.chunks.saturating_sub(1);
        if speculative == 0 {
            0.0
        } else {
            self.repaired as f64 / speculative as f64
        }
    }
}

/// Accounting from one intra-run scaling pass ([`Runner::intra_scaling`]):
/// chunk/conflict totals at the parallel thread count plus the best wall
/// times of the serial and chunk-parallel sweeps over the same runs.
#[derive(Clone, Debug, Default)]
pub struct IntraScaling {
    /// Worker threads the chunk-parallel sweep used per run.
    pub threads: usize,
    /// Single runs measured (one per benchmark profile).
    pub runs: u64,
    /// Events across all measured runs.
    pub events: u64,
    /// Chunks across all runs (serial fallbacks count 1).
    pub chunks: u64,
    /// Chunks accepted at merge (chunk 0 of every run always is).
    pub accepted: u64,
    /// Chunks re-simulated serially from the authoritative state.
    pub repaired: u64,
    /// Why chunks conflicted: `(reason, count)`, aggregated over runs.
    pub conflicts: Vec<(&'static str, u64)>,
    /// Per-benchmark accounting, in the runner's slot order.
    pub per_profile: Vec<IntraProfile>,
    /// Best wall-clock seconds for the serial sweep.
    pub seconds_1t: f64,
    /// Best wall-clock seconds for the chunk-parallel sweep.
    pub seconds_nt: f64,
}

impl IntraScaling {
    /// Fraction of speculative chunks (all but each run's chunk 0) that
    /// conflicted and took the repair path.
    pub fn conflict_rate(&self) -> f64 {
        let speculative = self.chunks.saturating_sub(self.runs);
        if speculative == 0 {
            0.0
        } else {
            self.repaired as f64 / speculative as f64
        }
    }
}

/// A caching simulation runner: one workload per benchmark profile, one
/// memoised [`RunReport`] per (profile, configuration), with parallel
/// batch execution of whatever the figures plan ahead via
/// [`Runner::ensure`].
///
/// Instruction streams are decoded once: construction materialises each
/// profile's workload into a packed [`TraceArena`](esp_trace::TraceArena)
/// (memoised process-wide in [`esp_workload::arena`], so a second runner
/// at the same scale/seed is warm), and every simulation replays the
/// shared arena through allocation-free cursors instead of regenerating
/// its streams — see `docs/PERFORMANCE.md`.
pub struct Runner {
    scale: u64,
    seed: u64,
    threads: usize,
    slots: Vec<Slot>,
    phases: PhaseSeconds,
    cache: HashMap<(usize, ConfigKey), RunReport>,
    sims_run: u64,
    /// When set, every simulation runs in statistical-sampling mode
    /// (`Simulator::run_sampled`) with these parameters instead of the
    /// exact interval loop; trace lines are tagged `"mode":"sampled"`.
    sampling: Option<SampleParams>,
    /// When set (with `sampling` also set), sampled simulations use
    /// learned fast-forwarding (`Simulator::run_sampled_learned`); the
    /// per-run model statistics land in `learned_stats`.
    learned: Option<LearnParams>,
    /// Learned-mode statistics per (slot, configuration), captured by
    /// [`Runner::ensure`] whenever `learned` is active.
    learned_stats: HashMap<(usize, ConfigKey), LearnedStats>,
    /// JSONL trace sink; when set, every simulation runs with a
    /// [`TraceProbe`] and per-worker buffers are appended here in input
    /// order (so the file is byte-identical for any thread count).
    trace: Option<std::io::BufWriter<std::fs::File>>,
}

/// One benchmark seat in the runner: the display name, the built-in
/// profile and generated walk behind it (both `None` for a workload
/// imported from an `.espt` trace, which has no regenerative form), and
/// the packed arena every simulation replays.
struct Slot {
    name: String,
    profile: Option<BenchmarkProfile>,
    generated: Option<Arc<GeneratedWorkload>>,
    packed: Arc<PackedWorkload>,
}

impl Runner {
    /// Builds workloads for the paper's seven profiles at `scale`
    /// instructions each (in parallel, one generation job per profile),
    /// using [`esp_par::threads`] worker threads — the machine's
    /// parallelism, overridable through the `ESP_THREADS` environment
    /// variable.
    pub fn new(scale: u64, seed: u64) -> Self {
        Self::with_threads(scale, seed, esp_par::threads())
    }

    /// Like [`Runner::new`] with an explicit worker-thread count.
    pub fn with_threads(scale: u64, seed: u64, threads: usize) -> Self {
        Self::with_profiles(&BenchmarkProfile::all(), scale, seed, threads)
    }

    /// Builds a runner over an explicit profile list (e.g.
    /// [`BenchmarkProfile::all_families`] for the extended matrix). Each
    /// profile is scaled to `scale` instructions and generated in
    /// parallel, then materialised through the process-wide arena memo.
    pub fn with_profiles(
        profiles: &[BenchmarkProfile],
        scale: u64,
        seed: u64,
        threads: usize,
    ) -> Self {
        let specs: Vec<WorkloadSpec> =
            profiles.iter().map(|p| WorkloadSpec::Builtin(p.clone())).collect();
        Self::from_specs(&specs, scale, seed, threads)
            .expect("built-in profiles cannot fail to resolve")
    }

    /// Builds a runner over a mixed list of workload sources: built-in
    /// profiles are generated (at `scale`/`seed`) exactly as in
    /// [`Runner::with_profiles`]; `.espt` imports are read from disk and
    /// seated in the arena memo under their recorded provenance, taking
    /// the place of generation. Slots keep the spec order, so a
    /// `--trace-in` run simulates exactly the imported traces, in CLI
    /// order, with generation never invoked for them.
    ///
    /// # Errors
    ///
    /// [`esp_types::Error::InvalidWorkload`] when an import path cannot
    /// be read or fails ESPT validation (the underlying
    /// [`esp_trace::espt::EsptError`] is quoted in the message).
    pub fn from_specs(
        specs: &[WorkloadSpec],
        scale: u64,
        seed: u64,
        threads: usize,
    ) -> esp_types::Result<Self> {
        let threads = threads.max(1);
        let scaled: Vec<Option<BenchmarkProfile>> = specs
            .iter()
            .map(|s| match s {
                WorkloadSpec::Builtin(p) => Some(p.scaled(scale)),
                WorkloadSpec::Import(_) => None,
            })
            .collect();
        let t = Instant::now();
        let generated: Vec<Option<Arc<GeneratedWorkload>>> =
            esp_par::parallel_map(threads, &scaled, |_, p| {
                p.as_ref().map(|p| arena::generated(p, seed))
            });
        let generate = t.elapsed().as_secs_f64();
        // Materialise profiles one after another, fanning the per-event
        // decode of each over the pool: events outnumber profiles, so
        // this balances better than one thread per profile. Imports are
        // read here too — their decode cost is this phase's analogue.
        let t = Instant::now();
        let mut slots = Vec::with_capacity(specs.len());
        for (spec, (p, g)) in specs.iter().zip(scaled.into_iter().zip(generated)) {
            match spec {
                WorkloadSpec::Builtin(_) => {
                    let p = p.expect("builtin spec was scaled");
                    let g = g.expect("builtin spec was generated");
                    let packed = arena::packed(&p, &g, seed, threads);
                    slots.push(Slot {
                        name: p.name().to_string(),
                        profile: Some(p),
                        generated: Some(g),
                        packed,
                    });
                }
                WorkloadSpec::Import(path) => {
                    let (meta, packed) = arena::import(path).map_err(|e| {
                        esp_types::Error::invalid_workload(format!(
                            "cannot import trace {}: {e}",
                            path.display()
                        ))
                    })?;
                    slots.push(Slot {
                        name: meta.profile,
                        profile: None,
                        generated: None,
                        packed,
                    });
                }
            }
        }
        let materialise = t.elapsed().as_secs_f64();
        Ok(Runner {
            scale,
            seed,
            threads,
            slots,
            phases: PhaseSeconds { generate, materialise, simulate: 0.0 },
            cache: HashMap::new(),
            sims_run: 0,
            sampling: None,
            learned: None,
            learned_stats: HashMap::new(),
            trace: None,
        })
    }

    /// Switches every *subsequent* simulation to statistical-sampling
    /// mode (or back to exact with `None`). Cached exact reports are
    /// discarded so a matrix never mixes modes silently.
    pub fn set_sampling(&mut self, params: Option<SampleParams>) {
        if self.sampling != params {
            self.cache.clear();
        }
        self.sampling = params;
    }

    /// The active sampling parameters, if sampling mode is on.
    pub fn sampling(&self) -> Option<SampleParams> {
        self.sampling
    }

    /// Switches every subsequent *sampled* simulation to learned
    /// fast-forwarding (or back to plain functional warming with
    /// `None`). Has no effect until sampling mode is on. Cached reports
    /// and learned statistics are discarded so a matrix never mixes
    /// modes silently.
    pub fn set_learned(&mut self, params: Option<LearnParams>) {
        if self.learned != params {
            self.cache.clear();
            self.learned_stats.clear();
        }
        self.learned = params;
    }

    /// The active learned fast-forward parameters, if any.
    pub fn learned(&self) -> Option<LearnParams> {
        self.learned
    }

    /// The learned-mode statistics for `(i, key)`, if that cell was
    /// simulated with learned fast-forwarding.
    pub fn learned_stats(&self, i: usize, key: ConfigKey) -> Option<&LearnedStats> {
        self.learned_stats.get(&(i, key))
    }

    /// Aggregates learned-mode statistics over every cached cell:
    /// `(mean skip fraction, mean fallbacks per stretch, cells where the
    /// ladder disabled skipping, cells escalated to a full rerun)`.
    /// `None` when no learned cell has run.
    pub fn learned_summary(&self) -> Option<(f64, f64, usize, usize)> {
        if self.learned_stats.is_empty() {
            return None;
        }
        let n = self.learned_stats.len() as f64;
        let skip = self.learned_stats.values().map(LearnedStats::skip_fraction).sum::<f64>() / n;
        let fb = self.learned_stats.values().map(LearnedStats::fallback_rate).sum::<f64>() / n;
        let disabled = self.learned_stats.values().filter(|s| s.disabled).count();
        let rerun = self.learned_stats.values().filter(|s| s.rerun_full).count();
        Some((skip, fb, disabled, rerun))
    }

    /// Routes a JSONL trace of every subsequent simulation to `path`
    /// (created or truncated eagerly, so an unwritable path fails here —
    /// before any simulation — rather than mid-run).
    pub fn set_trace_output(&mut self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.trace = Some(std::io::BufWriter::new(file));
        Ok(())
    }

    /// Whether a trace sink is currently attached.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The instruction scale per benchmark.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread count used for simulation fan-out.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Simulations executed so far (cache misses only).
    pub fn sims_run(&self) -> u64 {
        self.sims_run
    }

    /// Total instructions simulated across every cached report: retired
    /// plus ESP speculative pre-execution plus runahead re-execution —
    /// the numerator of the MIPS throughput metric. In sampling mode the
    /// reports carry whole-workload estimates, so the quotient is an
    /// *effective* MIPS (work represented per second, not instructions
    /// stepped in detail).
    pub fn instructions_simulated(&self) -> u64 {
        self.cache
            .values()
            .map(|r| r.engine.retired + r.esp.spec_instrs() + r.engine.runahead_instrs)
            .sum()
    }

    /// Benchmark names in presentation order (slot order). Imported
    /// slots report the profile name recorded in their trace metadata.
    pub fn names(&self) -> Vec<String> {
        self.slots.iter().map(|s| s.name.clone()).collect()
    }

    /// The built-in profiles and their generated workloads. Imported
    /// slots have no generator behind them and are skipped — consumers
    /// of this view (the Fig. 6 characteristics table) describe the
    /// generative parameters, which a raw trace does not carry.
    pub fn workloads(&self) -> impl Iterator<Item = (&BenchmarkProfile, &GeneratedWorkload)> {
        self.slots.iter().filter_map(|s| match (&s.profile, &s.generated) {
            (Some(p), Some(g)) => Some((p, g.as_ref())),
            _ => None,
        })
    }

    /// The packed workload simulated in slot `i` (what every
    /// configuration replays — generated or imported alike).
    pub fn packed(&self, i: usize) -> &Arc<PackedWorkload> {
        &self.slots[i].packed
    }

    /// Wall-clock seconds spent per phase so far.
    pub fn phase_seconds(&self) -> PhaseSeconds {
        self.phases
    }

    /// Heap bytes resident in the packed trace arenas of all profiles.
    pub fn arena_resident_bytes(&self) -> u64 {
        self.slots.iter().map(|s| s.packed.resident_bytes()).sum()
    }

    /// Measures intra-run (single-run) scaling: every profile's packed
    /// workload is simulated under the baseline configuration twice —
    /// serially, then chunk-parallel across `threads` workers
    /// (`Simulator::run_intra`, which is byte-identical to the serial
    /// run) — each sweep repeated `repeat` times with the best wall time
    /// kept. Chunk/conflict accounting is aggregated from the parallel
    /// sweep; the baseline configuration is used because it is the
    /// accept-eligible mode (ESP configurations always repair — see
    /// `docs/PARALLELISM.md`).
    pub fn intra_scaling(&self, threads: usize, repeat: usize) -> IntraScaling {
        let mut out = IntraScaling {
            threads,
            seconds_1t: f64::INFINITY,
            seconds_nt: f64::INFINITY,
            ..IntraScaling::default()
        };
        let cfg = ConfigKey::Base.config();
        for _ in 0..repeat.max(1) {
            let t = Instant::now();
            for s in &self.slots {
                let _ = Simulator::new(cfg.clone()).run(s.packed.as_ref());
            }
            out.seconds_1t = out.seconds_1t.min(t.elapsed().as_secs_f64());
        }
        for rep in 0..repeat.max(1) {
            let t = Instant::now();
            for s in &self.slots {
                let run = Simulator::new(cfg.clone()).run_intra(s.packed.as_ref(), threads);
                if rep == 0 {
                    let per = IntraProfile {
                        name: s.name.clone(),
                        events: run.stats.events as u64,
                        chunks: run.stats.chunks as u64,
                        accepted: run.stats.accepted as u64,
                        repaired: run.stats.repaired as u64,
                        conflicts: run.stats.conflicts.clone(),
                    };
                    out.runs += 1;
                    out.events += per.events;
                    out.chunks += per.chunks;
                    out.accepted += per.accepted;
                    out.repaired += per.repaired;
                    for (reason, n) in &per.conflicts {
                        match out.conflicts.iter_mut().find(|(r, _)| r == reason) {
                            Some((_, total)) => *total += n,
                            None => out.conflicts.push((reason, *n)),
                        }
                    }
                    out.per_profile.push(per);
                }
            }
            out.seconds_nt = out.seconds_nt.min(t.elapsed().as_secs_f64());
        }
        out
    }

    /// Executes every not-yet-cached `(profile, key)` pair of the plan
    /// `keys × all profiles` on the worker pool and stores the reports in
    /// the cache. After `ensure`, [`Runner::run`] for any planned pair is
    /// a pure lookup.
    ///
    /// Results are identical to sequential execution for any thread
    /// count: each simulation owns its configuration and shares only the
    /// immutable workload.
    pub fn ensure(&mut self, keys: &[ConfigKey]) {
        let mut pairs: Vec<(usize, ConfigKey)> = Vec::new();
        for &key in keys {
            for i in 0..self.slots.len() {
                let pair = (i, key);
                if !self.cache.contains_key(&pair) && !pairs.contains(&pair) {
                    pairs.push(pair);
                }
            }
        }
        if pairs.is_empty() {
            return;
        }
        let slots = &self.slots;
        let tracing = self.trace.is_some();
        let sampling = self.sampling;
        let learned = self.learned;
        // Longest-job-first dispatch: the worker pool pops jobs from a
        // shared queue, so the matrix tail is set by whichever job starts
        // last — dispatch the expensive ones first and the cheap ones
        // fill the tail. Cost is estimated from the profile's packed
        // instruction count weighted by the configuration's mode (ESP
        // pre-executes lookahead events, runahead re-executes stall
        // windows). Results are scattered back to input order, so the
        // cache and the trace file are byte-identical to the unsorted
        // (and to the sequential) execution.
        let cost = |&(i, key): &(usize, ConfigKey)| -> u64 {
            let weight = match key.config().mode {
                SimMode::Esp(_) => 4,
                SimMode::Runahead { .. } => 3,
                SimMode::Baseline => 2,
            };
            slots[i].packed.approx_total_instructions() * weight
        };
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by(|&a, &b| cost(&pairs[b]).cmp(&cost(&pairs[a])).then(a.cmp(&b)));
        let ordered: Vec<(usize, ConfigKey)> = order.iter().map(|&j| pairs[j]).collect();
        let t = Instant::now();
        let ljf_results = esp_par::parallel_map(self.threads, &ordered, |_, &(i, key)| {
            // Replay the shared packed arena — never the regenerative
            // walk (the equivalence suite pins the two bit-identical).
            let workload: &PackedWorkload = &slots[i].packed;
            let sim = Simulator::new(key.config());
            match (sampling, tracing) {
                (None, false) => (sim.run(workload), Vec::new(), None),
                (None, true) => {
                    let mut probe = TraceProbe::new(&slots[i].name, key.label());
                    let report = sim.run_probed(workload, &mut probe);
                    (report, probe.into_bytes(), None)
                }
                (Some(p), false) => match learned {
                    Some(lp) => {
                        let run = sim.run_sampled_learned(workload, p, lp);
                        (run.report, Vec::new(), run.learned)
                    }
                    None => (sim.run_sampled(workload, p).report, Vec::new(), None),
                },
                (Some(p), true) => {
                    let mode = if learned.is_some() { "learned" } else { "sampled" };
                    let mut probe =
                        TraceProbe::new(&slots[i].name, key.label()).with_mode(mode);
                    match learned {
                        Some(lp) => {
                            let run =
                                sim.run_sampled_learned_probed(workload, p, lp, &mut probe);
                            (run.report, probe.into_bytes(), run.learned)
                        }
                        None => {
                            let run = sim.run_sampled_probed(workload, p, &mut probe);
                            (run.report, probe.into_bytes(), None)
                        }
                    }
                }
            }
        });
        let mut slots: Vec<Option<RunOutput>> = Vec::new();
        slots.resize_with(pairs.len(), || None);
        for (j, r) in order.into_iter().zip(ljf_results) {
            slots[j] = Some(r);
        }
        let results: Vec<RunOutput> =
            slots.into_iter().map(|s| s.expect("every planned pair ran")).collect();
        self.phases.simulate += t.elapsed().as_secs_f64();
        self.sims_run += results.len() as u64;
        let mut write_err = None;
        if let Some(out) = self.trace.as_mut() {
            for (_, buf, _) in &results {
                if let Err(e) = out.write_all(buf).and_then(|()| out.flush()) {
                    write_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = write_err {
            // A sick trace sink must not corrupt the simulation results:
            // drop it, keep the reports.
            eprintln!("warning: trace output failed ({e}); tracing disabled");
            self.trace = None;
        }
        for (pair, (report, _, stats)) in pairs.into_iter().zip(results) {
            if let Some(stats) = stats {
                self.learned_stats.insert(pair, stats);
            }
            self.cache.insert(pair, report);
        }
    }

    /// The cached report for `(i, key)`, if one exists (no simulation is
    /// triggered — used to build the `cpi_stack` section from whatever a
    /// figure run already produced).
    pub fn cached(&self, i: usize, key: ConfigKey) -> Option<&RunReport> {
        self.cache.get(&(i, key))
    }

    /// The `cpi_stack` section of `BENCH_repro.json`: per benchmark, the
    /// baseline and ESP+NL CPI stacks (the Fig. 4/5 pair), rendered as a
    /// JSON object. Requires both configurations to be cached for every
    /// profile — call `ensure(&[ConfigKey::Base, ConfigKey::EspNl])`
    /// first. Deterministic: identical text for any thread count.
    pub fn cpi_stack_json(&self, indent: &str) -> Option<String> {
        let inner = format!("{indent}  ");
        let mut out = String::from("{\n");
        for (i, slot) in self.slots.iter().enumerate() {
            let base = self.cached(i, ConfigKey::Base)?;
            let esp = self.cached(i, ConfigKey::EspNl)?;
            out.push_str(&format!(
                "{inner}\"{}\": {{\"base\": {}, \"esp_nl\": {}}}{}\n",
                slot.name,
                base.cpi_stack.to_json(),
                esp.cpi_stack.to_json(),
                if i + 1 < self.slots.len() { "," } else { "" },
            ));
        }
        out.push_str(indent);
        out.push('}');
        Some(out)
    }

    /// Recalls configuration `key` on profile index `i`, executing the
    /// key's whole profile row (in parallel) on a cache miss.
    pub fn run(&mut self, i: usize, key: ConfigKey) -> &RunReport {
        if !self.cache.contains_key(&(i, key)) {
            self.ensure(&[key]);
        }
        &self.cache[&(i, key)]
    }

    /// Per-benchmark performance improvement (%) of `key` over `base`,
    /// plus the harmonic mean in the last position.
    pub fn improvements(&mut self, key: ConfigKey, base: ConfigKey) -> Vec<f64> {
        self.ensure(&[key, base]);
        let mut vals = Vec::new();
        for i in 0..self.slots.len() {
            let b = self.run(i, base).busy_cycles();
            let t = self.run(i, key).busy_cycles();
            vals.push(esp_stats::improvement_pct(b, t));
        }
        vals.push(esp_stats::harmonic_mean_improvement(&vals));
        vals
    }

    /// Per-benchmark values of `metric`, plus the harmonic mean of the
    /// values (arithmetic fallback for non-positive entries, see
    /// [`esp_stats::harmonic_mean`]) in the last position.
    pub fn metric(&mut self, key: ConfigKey, metric: impl Fn(&RunReport) -> f64) -> Vec<f64> {
        self.ensure(&[key]);
        let mut vals = Vec::new();
        for i in 0..self.slots.len() {
            vals.push(metric(self.run(i, key)));
        }
        vals.push(esp_stats::harmonic_mean(&vals));
        vals
    }

    /// Column headers: benchmark names plus "HMean".
    pub fn headers(&self, first: &str) -> Vec<String> {
        let mut h = vec![first.to_string()];
        h.extend(self.names().iter().map(|s| s.to_string()));
        h.push("HMean".to_string());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let keys = [
            ConfigKey::Base,
            ConfigKey::NextLine,
            ConfigKey::NextLineStride,
            ConfigKey::Runahead,
            ConfigKey::EspNl,
            ConfigKey::EspBpShared,
            ConfigKey::PerfectAll,
        ];
        let labels: std::collections::HashSet<_> = keys.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), keys.len());
    }

    #[test]
    fn runner_caches_runs() {
        let mut r = Runner::new(20_000, 1);
        let c1 = r.run(0, ConfigKey::Base).total_cycles;
        let c2 = r.run(0, ConfigKey::Base).total_cycles;
        assert_eq!(c1, c2);
        // A miss fills the key's whole profile row, and only once.
        assert_eq!(r.cache.len(), 7);
        assert_eq!(r.sims_run(), 7);
        assert_eq!(r.names().len(), 7);
    }

    #[test]
    fn ensure_is_idempotent_and_deduplicates() {
        let mut r = Runner::new(20_000, 1);
        r.ensure(&[ConfigKey::Base, ConfigKey::Base, ConfigKey::NextLine]);
        assert_eq!(r.sims_run(), 14);
        r.ensure(&[ConfigKey::Base, ConfigKey::NextLine]);
        assert_eq!(r.sims_run(), 14, "already-cached pairs must not rerun");
    }

    #[test]
    fn all_keys_cover_the_matrix() {
        let keys = ConfigKey::all();
        assert_eq!(keys.len(), 29);
        let labels: std::collections::HashSet<_> = keys.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), keys.len(), "labels must stay unique");
    }

    #[test]
    fn improvements_include_hmean() {
        let mut r = Runner::new(20_000, 1);
        let v = r.improvements(ConfigKey::NextLine, ConfigKey::Base);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn with_profiles_covers_the_extended_families() {
        let r = Runner::with_profiles(&BenchmarkProfile::all_families(), 20_000, 1, 2);
        let names = r.names();
        assert_eq!(names.len(), 9);
        assert!(names.iter().any(|n| n == "serverasync"));
        assert!(names.iter().any(|n| n == "iotfsm"));
    }

    #[test]
    fn from_specs_import_matches_builtin_reports() {
        // Export one profile, then build two runners — one generating,
        // one importing — and pin their reports identical.
        let profile = BenchmarkProfile::by_name("gdocs").unwrap();
        let dir = std::env::temp_dir().join(format!("esp-runner-import-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gdocs.espt");
        let scaled = profile.scaled(20_000);
        let packed = arena::packed_for(&scaled, 1, 2);
        let meta = esp_trace::espt::TraceMeta {
            profile: scaled.name().to_string(),
            scale: 20_000,
            seed: 1,
        };
        esp_trace::espt::write_path(&path, &meta, &packed).unwrap();

        let mut generated = Runner::with_profiles(&[profile], 20_000, 1, 2);
        let want = generated.run(0, ConfigKey::EspNl).clone();

        arena::reset();
        let specs = [WorkloadSpec::Import(path.clone())];
        let mut imported = Runner::from_specs(&specs, 20_000, 1, 2).unwrap();
        assert_eq!(imported.names(), vec!["gdocs".to_string()]);
        assert!(
            imported.workloads().next().is_none(),
            "imports expose no generative view"
        );
        let got = imported.run(0, ConfigKey::EspNl).clone();
        assert_eq!(format!("{want:#?}"), format!("{got:#?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_specs_surfaces_import_errors() {
        let specs = [WorkloadSpec::Import("no/such/file.espt".into())];
        let err = match Runner::from_specs(&specs, 20_000, 1, 1) {
            Err(e) => e,
            Ok(_) => panic!("importing a missing file must fail"),
        };
        assert!(err.to_string().contains("no/such/file.espt"));
    }

    #[test]
    fn intra_scaling_reports_per_profile_tables() {
        let r = Runner::with_threads(20_000, 1, 1);
        let intra = r.intra_scaling(2, 1);
        assert_eq!(intra.per_profile.len(), 7);
        assert_eq!(
            intra.per_profile.iter().map(|p| p.chunks).sum::<u64>(),
            intra.chunks
        );
        assert_eq!(
            intra.per_profile.iter().map(|p| p.repaired).sum::<u64>(),
            intra.repaired
        );
        for p in &intra.per_profile {
            assert!(!p.name.is_empty());
            assert!(p.accepted + p.repaired == p.chunks);
        }
    }
}
