//! `repro explain <benchmark>`: the baseline-vs-ESP CPI-stack delta.
//!
//! Reproduces the *shape* of the paper's Figs. 4/5 — execution time
//! decomposed into stall classes — as a delta table: for one benchmark,
//! each [`CycleClass`]'s cycles and CPI contribution under the
//! no-prefetch baseline and under ESP + next-line, with the absolute and
//! relative change. Reading it answers the question the figures exist
//! to answer: *which stall class did ESP remove?*

use crate::runner::{ConfigKey, FigureReport, Runner};
use esp_obs::CycleClass;
use esp_stats::Table;

/// Builds the CPI-stack delta report for the named benchmark.
///
/// # Errors
///
/// Returns [`esp_types::Error::InvalidConfig`] if `bench` names none of
/// the runner's slots (built-in families and imported traces alike).
pub fn explain(runner: &mut Runner, bench: &str) -> esp_types::Result<FigureReport> {
    let names = runner.names();
    let Some(i) = names.iter().position(|n| n == bench) else {
        return Err(esp_types::Error::invalid_config(format!(
            "unknown benchmark '{bench}' (expected one of: {})",
            names.join(", ")
        )));
    };
    runner.ensure(&[ConfigKey::Base, ConfigKey::EspNl]);
    let base = runner.run(i, ConfigKey::Base).clone();
    let esp = runner.run(i, ConfigKey::EspNl).clone();

    let mut table = Table::with_headers(&[
        "class",
        "paper",
        "base cycles",
        "base CPI",
        "ESP+NL cycles",
        "ESP+NL CPI",
        "Δ cycles",
        "Δ %",
    ]);
    let cpi = |cycles: u64, retired: u64| {
        if retired == 0 { 0.0 } else { cycles as f64 / retired as f64 }
    };
    for &class in &CycleClass::ALL {
        let b = base.cpi_stack.get(class);
        let e = esp.cpi_stack.get(class);
        let delta = e as i64 - b as i64;
        let pct = if b > 0 { 100.0 * delta as f64 / b as f64 } else { 0.0 };
        table.push_row(vec![
            class.label().to_string(),
            class.paper_figure().to_string(),
            b.to_string(),
            format!("{:.4}", cpi(b, base.engine.retired)),
            e.to_string(),
            format!("{:.4}", cpi(e, esp.engine.retired)),
            format!("{delta:+}"),
            format!("{pct:+.1}"),
        ]);
    }
    let (bt, et) = (base.cpi_stack.total(), esp.cpi_stack.total());
    table.push_row(vec![
        "total".to_string(),
        "".to_string(),
        bt.to_string(),
        format!("{:.4}", cpi(bt, base.engine.retired)),
        et.to_string(),
        format!("{:.4}", cpi(et, esp.engine.retired)),
        format!("{:+}", et as i64 - bt as i64),
        format!("{:+.1}", if bt > 0 { 100.0 * (et as f64 - bt as f64) / bt as f64 } else { 0.0 }),
    ]);

    let notes = vec![
        format!(
            "stall classes sum to total cycles on both sides ({bt} and {et}); \
             the conservation test asserts this for every profile and config"
        ),
        format!(
            "busy-cycle speedup: {:.1}% (the figure-of-merit excludes idle)",
            esp_stats::improvement_pct(base.busy_cycles(), esp.busy_cycles())
        ),
        format!(
            "memo: ESP covered {} of its remaining stall cycles with useful \
             pre-execution (pre_exec_overlap; not a stack class)",
            esp.cpi_stack.pre_exec_overlap
        ),
    ];
    Ok(FigureReport {
        id: "explain",
        title: "baseline vs ESP + NL CPI stack (Figs. 4/5 shape)",
        tables: vec![(format!("benchmark: {bench}"), table)],
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_table_conserves_and_renders() {
        let mut r = Runner::with_threads(20_000, 5, 2);
        let rep = explain(&mut r, "amazon").expect("amazon exists");
        let rendered = rep.render();
        assert!(rendered.contains("icache (LLC miss)"));
        assert!(rendered.contains("total"));
        // The per-class rows sum to the total row, per side.
        let table = &rep.tables[0].1;
        let col_sum = |c: usize| -> u64 {
            table.rows()[..CycleClass::ALL.len()]
                .iter()
                .map(|row| row[c].parse::<u64>().unwrap())
                .sum()
        };
        let total_row = &table.rows()[CycleClass::ALL.len()];
        assert_eq!(col_sum(2), total_row[2].parse::<u64>().unwrap());
        assert_eq!(col_sum(4), total_row[4].parse::<u64>().unwrap());
        // And the totals are the reports' total cycles.
        let i = r.names().iter().position(|n| n == "amazon").unwrap();
        assert_eq!(
            total_row[2].parse::<u64>().unwrap(),
            r.run(i, ConfigKey::Base).total_cycles
        );
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let mut r = Runner::with_threads(20_000, 5, 2);
        let err = explain(&mut r, "nosuch").unwrap_err();
        assert!(err.to_string().contains("nosuch"));
    }
}
