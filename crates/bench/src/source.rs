//! Uniform workload resolution for the CLI surfaces.
//!
//! `repro explain`, `repro dump`, and `--trace-in` all accept workload
//! arguments that are either a built-in benchmark family name
//! ([`esp_workload::BenchmarkProfile::all_families`]) or a path to an
//! `.espt` trace file (`docs/TRACE_FORMAT.md`). This module is the one
//! place that decides which is which, so every subcommand resolves
//! arguments identically.

use esp_workload::BenchmarkProfile;
use std::path::{Path, PathBuf};

/// One workload a CLI surface asked for: a built-in generator profile,
/// or an on-disk `.espt` trace to import in its place.
#[derive(Clone, Debug)]
// A handful of `WorkloadSpec`s exist per CLI invocation; boxing the
// profile would buy nothing for the indirection it costs every use.
#[allow(clippy::large_enum_variant)]
pub enum WorkloadSpec {
    /// A built-in benchmark family, to be scaled and generated.
    Builtin(BenchmarkProfile),
    /// A path to an ESPT trace file, to be imported as-is.
    Import(PathBuf),
}

impl WorkloadSpec {
    /// Resolves one CLI argument. Anything that *looks like a file* — a
    /// `.espt` suffix, a path separator, or an existing file of that
    /// name — is an import; everything else must be a known family name.
    ///
    /// # Errors
    ///
    /// [`esp_types::Error::UnknownName`] (from
    /// [`BenchmarkProfile::by_name`], which lists the known families)
    /// when the argument is neither a file-looking path nor a family.
    pub fn resolve(arg: &str) -> esp_types::Result<WorkloadSpec> {
        if arg.ends_with(".espt")
            || arg.contains(std::path::MAIN_SEPARATOR)
            || Path::new(arg).is_file()
        {
            Ok(WorkloadSpec::Import(PathBuf::from(arg)))
        } else {
            BenchmarkProfile::by_name(arg).map(WorkloadSpec::Builtin)
        }
    }

    /// The label shown while this spec is being prepared: the family
    /// name, or the import path as typed.
    pub fn describe(&self) -> String {
        match self {
            WorkloadSpec::Builtin(p) => p.name().to_string(),
            WorkloadSpec::Import(path) => path.display().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_resolve_to_builtins() {
        for p in BenchmarkProfile::all_families() {
            match WorkloadSpec::resolve(p.name()).expect("known family") {
                WorkloadSpec::Builtin(b) => assert_eq!(b.name(), p.name()),
                WorkloadSpec::Import(_) => panic!("{} resolved as import", p.name()),
            }
        }
    }

    #[test]
    fn espt_suffix_and_paths_resolve_to_imports() {
        for arg in ["foo.espt", "fixtures/bing.espt", "./amazon"] {
            match WorkloadSpec::resolve(arg).expect("path-looking args always resolve") {
                WorkloadSpec::Import(p) => assert_eq!(p, PathBuf::from(arg)),
                WorkloadSpec::Builtin(_) => panic!("{arg} resolved as builtin"),
            }
        }
    }

    #[test]
    fn unknown_names_error_with_the_family_list() {
        let err = WorkloadSpec::resolve("netscape").unwrap_err().to_string();
        assert!(err.contains("netscape"), "names the bad argument: {err}");
        assert!(err.contains("iotfsm"), "lists the known families: {err}");
    }
}
