//! One function per figure/table of the paper's evaluation.

use crate::runner::{ConfigKey, FigureReport, Runner};
use esp_core::{percentile, RunReport};
use esp_energy::EnergyModel;
use esp_stats::Table;
use esp_trace::Workload;
use esp_uarch::MachineConfig;

fn improvement_table(runner: &mut Runner, keys: &[ConfigKey], base: ConfigKey) -> Table {
    // Declare the whole figure's plan up front so the pool executes every
    // (profile, config) pair of the figure in one parallel batch.
    let mut plan = keys.to_vec();
    plan.push(base);
    runner.ensure(&plan);
    let mut t = Table::new(runner.headers("config"));
    for &k in keys {
        let vals = runner.improvements(k, base);
        t.push_metric_row(k.label(), &vals, 1);
    }
    t
}

/// Fig. 3 — performance potential with perfect components.
pub fn fig3(runner: &mut Runner) -> FigureReport {
    let keys = [
        ConfigKey::PerfectL1d,
        ConfigKey::PerfectBranch,
        ConfigKey::PerfectL1i,
        ConfigKey::PerfectAll,
    ];
    let table = improvement_table(runner, &keys, ConfigKey::Base);
    FigureReport {
        id: "Fig. 3",
        title: "Performance potential in web applications (% improvement over baseline)",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper: perfect L1-I dominates, then the branch predictor, then L1-D; \
             perfect-everything nearly doubles performance."
                .into(),
        ],
    }
}

/// Fig. 6 — benchmark characteristics table.
pub fn fig6(runner: &mut Runner) -> FigureReport {
    let mut t = Table::with_headers(&[
        "web site",
        "category",
        "paper #events",
        "paper Minst",
        "sim #events",
        "sim inst",
        "mean event len",
    ]);
    for (p, w) in runner.workloads() {
        t.push_row(vec![
            p.name().into(),
            p.description().into(),
            p.paper_events().to_string(),
            p.paper_minstr().to_string(),
            w.events().len().to_string(),
            w.schedule().total_instructions().to_string(),
            (w.schedule().total_instructions() / w.events().len() as u64).to_string(),
        ]);
    }
    FigureReport {
        id: "Fig. 6 (table)",
        title: "Benchmark web applications (paper session vs scaled simulation)",
        tables: vec![(String::new(), t)],
        notes: vec![format!(
            "simulated sessions are scaled to ~{} instructions; mean event length \
             preserves the paper's instructions/events ratio up to the 24-event floor.",
            runner.scale()
        )],
    }
}

/// Fig. 7 — simulator configuration table.
pub fn fig7(_runner: &mut Runner) -> FigureReport {
    let m = MachineConfig::exynos5250();
    let mut t = Table::with_headers(&["component", "configuration"]);
    t.push_row(vec![
        "Core".into(),
        format!(
            "{}-wide, {:.2} GHz OoO, {}-entry ROB, {}-entry LSQ",
            m.width,
            m.freq_mhz as f64 / 1000.0,
            m.rob_entries,
            m.lsq_entries
        ),
    ]);
    t.push_row(vec![
        "L1-(I,D)-Cache".into(),
        format!(
            "{} KB, {}-way, {} B lines, {} cycle hit latency, LRU",
            m.hierarchy.l1i.size_bytes / 1024,
            m.hierarchy.l1i.ways,
            m.hierarchy.l1i.line_bytes,
            m.hierarchy.l1i.hit_latency
        ),
    ]);
    t.push_row(vec![
        "L2 Cache".into(),
        format!(
            "{} MB, {}-way, {} B lines, {} cycle hit latency, LRU",
            m.hierarchy.l2.size_bytes / (1024 * 1024),
            m.hierarchy.l2.ways,
            m.hierarchy.l2.line_bytes,
            m.hierarchy.l2.hit_latency
        ),
    ]);
    t.push_row(vec![
        "Main Memory".into(),
        format!("{} cycle access latency", m.hierarchy.mem_latency),
    ]);
    t.push_row(vec![
        "Branch Predictor".into(),
        format!(
            "Pentium M: {}-entry global, {}-entry iBTB, {}-entry BTB, {}-entry loop, \
             {}-entry local; {} cycle mispredict penalty",
            m.branch.global_entries,
            m.branch.ibtb_entries,
            m.branch.btb_entries,
            m.branch.loop_entries,
            m.branch.local_entries,
            m.branch.mispredict_penalty
        ),
    ]);
    t.push_row(vec![
        "Prefetchers".into(),
        "Instruction: next-line (NL); Data: NL (DCU), stride (256 entries)".into(),
    ]);
    FigureReport {
        id: "Fig. 7 (table)",
        title: "Simulator configuration",
        tables: vec![(String::new(), t)],
        notes: vec![],
    }
}

/// Fig. 8 — ESP hardware configuration and area.
pub fn fig8(_runner: &mut Runner) -> FigureReport {
    let mut t = Table::with_headers(&["HW structure", "description", "ESP-1", "ESP-2"]);
    let rows = esp_core::area_table();
    let (mut e1, mut e2) = (0u64, 0u64);
    for r in &rows {
        t.push_row(vec![
            r.name.into(),
            r.description.into(),
            format!("{} B", r.esp1_bytes),
            format!("{} B", r.esp2_bytes),
        ]);
        e1 += r.esp1_bytes;
        e2 += r.esp2_bytes;
    }
    t.push_row(vec![
        "All HW additions".into(),
        String::new(),
        format!("{:.1} KB", e1 as f64 / 1024.0),
        format!("{:.1} KB", e2 as f64 / 1024.0),
    ]);
    FigureReport {
        id: "Fig. 8 (table)",
        title: "ESP hardware configuration",
        tables: vec![(String::new(), t)],
        notes: vec![format!(
            "total added state: {:.1} KB (paper: 13.8 KB).",
            esp_core::total_added_bytes() as f64 / 1024.0
        )],
    }
}

/// Fig. 9 — ESP vs next-line vs runahead.
pub fn fig9(runner: &mut Runner) -> FigureReport {
    let keys = [
        ConfigKey::NextLine,
        ConfigKey::NextLineStride,
        ConfigKey::Runahead,
        ConfigKey::RunaheadNl,
        ConfigKey::Esp,
        ConfigKey::EspNl,
    ];
    let table = improvement_table(runner, &keys, ConfigKey::Base);
    FigureReport {
        id: "Fig. 9",
        title: "Performance of ESP, next-line and runahead (% improvement over baseline)",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper HMeans: NL 13.8, NL+S 13.9, Runahead 12, Runahead+NL 21, ESP+NL 32 \
             (16 over NL+S)."
                .into(),
        ],
    }
}

/// Fig. 10 — sources of performance in ESP.
pub fn fig10(runner: &mut Runner) -> FigureReport {
    let keys = [
        ConfigKey::NaiveEsp,
        ConfigKey::NaiveEspNl,
        ConfigKey::EspINl,
        ConfigKey::EspIbNl,
        ConfigKey::EspNl,
    ];
    runner.ensure(&[keys.as_slice(), &[ConfigKey::Base]].concat());
    let mut table = Table::new(runner.headers("config"));
    for &k in &keys {
        let vals = runner.improvements(k, ConfigKey::Base);
        let label = if k == ConfigKey::EspNl { "ESP-I,B,D + NL" } else { k.label() };
        table.push_metric_row(label, &vals, 1);
    }
    FigureReport {
        id: "Fig. 10",
        title: "Sources of performance in ESP (% improvement over baseline)",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper: naive ESP is flat (negative for pixlr); the I-list contributes most \
             (+9.1 over NL), then the B-list (+6), then the D-list (+3.3)."
                .into(),
        ],
    }
}

/// Fig. 11a — instruction cache performance.
pub fn fig11a(runner: &mut Runner) -> FigureReport {
    let keys = [
        ConfigKey::Base,
        ConfigKey::NlIOnly,
        ConfigKey::EspI,
        ConfigKey::EspINlI,
        ConfigKey::IdealEspINlI,
    ];
    runner.ensure(&keys);
    let mut table = Table::new(runner.headers("config"));
    for &k in &keys {
        let vals = runner.metric(k, RunReport::l1i_mpki);
        table.push_metric_row(k.label(), &vals, 1);
    }
    FigureReport {
        id: "Fig. 11a",
        title: "L1-I cache misses per kilo-instruction",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper HMeans: base 23.5, NL-I 17.5, ESP-I + NL-I 11.6; the real design \
             comes close to the ideal (infinite list/cachelet, timely prefetch) one."
                .into(),
        ],
    }
}

/// Fig. 11b — data cache performance.
pub fn fig11b(runner: &mut Runner) -> FigureReport {
    let keys = [
        ConfigKey::Base,
        ConfigKey::NlDOnly,
        ConfigKey::RunaheadD,
        ConfigKey::RunaheadDNlD,
        ConfigKey::EspD,
        ConfigKey::EspDNlD,
        ConfigKey::IdealEspDNlD,
    ];
    runner.ensure(&keys);
    let mut table = Table::new(runner.headers("config"));
    for &k in &keys {
        let vals = runner.metric(k, RunReport::l1d_miss_rate_pct);
        table.push_metric_row(k.label(), &vals, 2);
    }
    FigureReport {
        id: "Fig. 11b",
        title: "L1-D miss rate (%)",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper HMeans: base 4.4, NL-D 3.2, Runahead-D + NL-D 0.8, ESP-D + NL-D 1.8; \
             runahead beats ESP on the data side, ideal ESP-D is comparable to runahead."
                .into(),
        ],
    }
}

/// Fig. 12 — branch misprediction rate across BP-sharing policies.
pub fn fig12(runner: &mut Runner) -> FigureReport {
    let keys = [
        ConfigKey::Base,
        ConfigKey::EspBpShared,
        ConfigKey::EspBpSeparateContext,
        ConfigKey::EspBpSeparateTables,
        ConfigKey::EspNl,
    ];
    runner.ensure(&keys);
    let mut table = Table::new(runner.headers("config"));
    for &k in &keys {
        let vals = runner.metric(k, RunReport::mispredict_rate_pct);
        let label = if k == ConfigKey::EspNl { "separate context + B-list (ESP)" } else { k.label() };
        table.push_metric_row(label, &vals, 2);
    }
    FigureReport {
        id: "Fig. 12",
        title: "Branch misprediction rate (%)",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper HMeans: base 9.9, full table replication 7.4, separate PIR + B-list \
             (the shipping ESP) 6.1 — beating full replication at a fraction of the area."
                .into(),
        ],
    }
}

/// Fig. 13 — I-cachelet working-set sizes per ESP depth.
pub fn fig13(runner: &mut Runner) -> FigureReport {
    runner.ensure(&[ConfigKey::EspDepthProbe]);
    let mut table = Table::with_headers(&["mode", "Max", "95%", "85%", "75%"]);
    // Aggregate working-set samples over all benchmarks.
    let mut normal: Vec<usize> = Vec::new();
    let mut by_depth: Vec<Vec<usize>> = vec![Vec::new(); 8];
    for i in 0..runner.names().len() {
        let r = runner.run(i, ConfigKey::EspDepthProbe);
        if let Some(ws) = &r.working_sets {
            normal.extend(&ws.normal_i);
            for (d, samples) in ws.by_depth_i.iter().enumerate() {
                by_depth[d].extend(samples);
            }
        }
    }
    let row = |label: &str, samples: &[usize]| {
        vec![
            label.to_string(),
            percentile(samples, 100.0).to_string(),
            percentile(samples, 95.0).to_string(),
            percentile(samples, 85.0).to_string(),
            percentile(samples, 75.0).to_string(),
        ]
    };
    table.push_row(row("Normal", &normal));
    for (d, samples) in by_depth.iter().enumerate() {
        table.push_row(row(&format!("ESP{}", d + 1), samples));
    }
    FigureReport {
        id: "Fig. 13",
        title: "I-cachelet working set (# cache lines touched per event and mode)",
        tables: vec![(String::new(), table)],
        notes: vec![
            "paper: ESP-1 working sets are an order of magnitude below normal ones; \
             capturing 95% of reuse takes ~5.5 KB (88 lines) for ESP-1 and ~0.5 KB \
             (8 lines) for ESP-2; depths beyond 2 rarely touch anything — the basis \
             for supporting only two jump-aheads."
                .into(),
        ],
    }
}

/// Fig. 14 — energy overhead of ESP relative to NL.
pub fn fig14(runner: &mut Runner) -> FigureReport {
    runner.ensure(&[ConfigKey::NextLine, ConfigKey::EspNl]);
    let _ = EnergyModel::mcpat_32nm();
    let mut table = Table::with_headers(&[
        "bench",
        "branch misp",
        "static",
        "rest dynamic",
        "total",
        "extra instr %",
    ]);
    let n = runner.names().len();
    let mut totals = Vec::new();
    let mut extras = Vec::new();
    for i in 0..n {
        let nl = runner.run(i, ConfigKey::NextLine).energy;
        let esp_report = runner.run(i, ConfigKey::EspNl).clone();
        let rel = esp_report.energy.relative_to(&nl);
        totals.push(rel.total());
        extras.push(esp_report.extra_instr_pct());
        table.push_row(vec![
            runner.names()[i].to_string(),
            format!("{:.3}", rel.branch_mispredict),
            format!("{:.3}", rel.static_energy),
            format!("{:.3}", rel.rest_dynamic),
            format!("{:.3}", rel.total()),
            format!("{:.1}", esp_report.extra_instr_pct()),
        ]);
    }
    let avg_total = totals.iter().sum::<f64>() / totals.len() as f64;
    let avg_extra = extras.iter().sum::<f64>() / extras.len() as f64;
    FigureReport {
        id: "Fig. 14",
        title: "ESP energy relative to the NL baseline (per-component decomposition)",
        tables: vec![(String::new(), table)],
        notes: vec![format!(
            "measured: ESP energy {:+.1}% with {:.1}% extra instructions \
             (paper: about +8% with 21.2% extra instructions, §6.7).",
            (avg_total - 1.0) * 100.0,
            avg_extra
        )],
    }
}

/// All figures in presentation order.
///
/// Prefills the full evaluation matrix — every [`ConfigKey`] on every
/// profile — in one parallel batch before rendering, so the whole
/// regeneration saturates the worker pool instead of fanning out
/// figure-by-figure.
pub fn all(runner: &mut Runner) -> Vec<FigureReport> {
    runner.ensure(ConfigKey::all());
    vec![
        fig3(runner),
        fig6(runner),
        fig7(runner),
        fig8(runner),
        fig9(runner),
        fig10(runner),
        fig11a(runner),
        fig11b(runner),
        fig12(runner),
        fig13(runner),
        fig14(runner),
    ]
}

/// Looks up a figure generator by id ("fig3" … "fig14").
///
/// # Errors
///
/// Returns [`esp_types::Error::UnknownName`] for unknown ids.
pub fn by_name(name: &str) -> esp_types::Result<fn(&mut Runner) -> FigureReport> {
    Ok(match name {
        "fig3" => fig3,
        "fig6" => fig6,
        "fig7" => fig7,
        "fig8" => fig8,
        "fig9" => fig9,
        "fig10" => fig10,
        "fig11a" => fig11a,
        "fig11b" => fig11b,
        "fig12" => fig12,
        "fig13" => fig13,
        "fig14" => fig14,
        _ => return Err(esp_types::Error::unknown_name(name)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_figures_render() {
        let mut r = Runner::new(20_000, 1);
        for f in [fig6, fig7, fig8] {
            let rep = f(&mut r);
            let text = rep.render();
            assert!(text.contains(rep.id));
            assert!(!rep.tables.is_empty());
        }
    }

    #[test]
    fn by_name_resolves_all() {
        for n in ["fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14"] {
            assert!(by_name(n).is_ok(), "{n}");
        }
        assert!(by_name("fig99").is_err());
    }

    #[test]
    fn fig9_small_scale_runs() {
        let mut r = Runner::new(15_000, 2);
        let rep = fig9(&mut r);
        // 6 configs × (7 benchmarks + HMean).
        assert_eq!(rep.tables[0].1.len(), 6);
        assert_eq!(rep.tables[0].1.headers().len(), 9);
    }
}
