//! Observability for the ESP reproduction: CPI-stack stall attribution,
//! a zero-cost probe facade, and structured JSONL run tracing.
//!
//! The paper's whole argument is made in terms of *stall accounting*:
//! Figs. 4/5 decompose execution time into I-cache, LLC-data, and
//! branch-misprediction stall cycles, and every later figure explains a
//! speedup as the removal of one of those components. This crate gives
//! the simulator the same vocabulary:
//!
//! * [`CpiStack`] — every simulated cycle attributed to exactly one
//!   [`CycleClass`] (the fine-grained version of the engine's coarse
//!   `CycleBreakdown`), with a conservation guarantee: the classes sum
//!   to the engine's total cycle count.
//! * [`Probe`] — a statically dispatched observer trait with empty
//!   default methods. The engine and simulator are generic over it, and
//!   the default [`NullProbe`] monomorphizes to nothing, so the
//!   instrumented hot loop costs zero when tracing is off.
//! * [`CpiObserver`] — an in-memory probe collecting per-event spans
//!   (used by the conservation tests and ad-hoc analysis).
//! * [`TraceProbe`] — a probe that renders spans to JSON-Lines in an
//!   in-memory buffer, so the parallel runner can merge per-worker
//!   buffers deterministically in input order.
//!
//! The glossary of every class and counter, the trace schema, and a
//! worked example live in `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpi;
mod probe;
mod trace;

pub use cpi::{CpiStack, CycleClass};
pub use probe::{
    CpiObserver, EventSpan, NullProbe, Probe, RunSummary, StepRecord, WindowRecord, WindowSpender,
};
pub use trace::{push_json_str, TraceProbe};
