//! The CPI stack: every simulated cycle attributed to one cause.

/// The cause one simulated cycle is attributed to.
///
/// These are the fine-grained stall classes behind the paper's Figs. 4/5
/// execution-time breakdown; the engine's coarse `CycleBreakdown` is the
/// same data with the L2/LLC and mispredict/misfetch pairs folded
/// together. Every cycle the engine charges belongs to exactly one
/// class, so per-class cycles sum to total cycles (the conservation
/// invariant the observability tests assert).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleClass {
    /// Issue-width and dispatch-inefficiency cycles: the cycles the
    /// interval model charges for retiring instructions with no stall.
    Base,
    /// Exposed instruction-fetch stall cycles served below the L1-I but
    /// at or above the LLC (L2 hits and in-flight partial hits).
    IcacheL2,
    /// Exposed instruction-fetch stall cycles for fetches that missed
    /// the LLC (the window-opening front-end stalls of Fig. 4).
    IcacheLlc,
    /// Exposed data stall cycles served below the L1-D but at or above
    /// the LLC (the `data_exposed_pct` fraction of an L2 hit).
    DcacheL2,
    /// Exposed data stall cycles for loads that missed the LLC and did
    /// not overlap a prior miss inside the ROB (Fig. 5's LLC-data
    /// component; these open the pre-execution windows).
    DcacheLlc,
    /// Full pipeline-flush penalties: branch direction/target
    /// mispredictions plus the identical restart paid when leaving a
    /// speculative pre-execution mode (§4.1).
    BranchMispredict,
    /// Decode-stage re-steer penalties for direct-target BTB misses
    /// (cheaper than a mispredict; counted separately).
    BranchMisfetch,
    /// Cycles with an empty event queue (the core waits for the next
    /// event's arrival time).
    Idle,
}

impl CycleClass {
    /// Every class, in the canonical (table/JSON) order.
    pub const ALL: [CycleClass; 8] = [
        CycleClass::Base,
        CycleClass::IcacheL2,
        CycleClass::IcacheLlc,
        CycleClass::DcacheL2,
        CycleClass::DcacheLlc,
        CycleClass::BranchMispredict,
        CycleClass::BranchMisfetch,
        CycleClass::Idle,
    ];

    /// Stable snake_case key used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            CycleClass::Base => "base",
            CycleClass::IcacheL2 => "icache_l2",
            CycleClass::IcacheLlc => "icache_llc",
            CycleClass::DcacheL2 => "dcache_l2",
            CycleClass::DcacheLlc => "dcache_llc",
            CycleClass::BranchMispredict => "branch_mispredict",
            CycleClass::BranchMisfetch => "branch_misfetch",
            CycleClass::Idle => "idle",
        }
    }

    /// Human label used in rendered tables.
    pub fn label(self) -> &'static str {
        match self {
            CycleClass::Base => "base (issue)",
            CycleClass::IcacheL2 => "icache (L2)",
            CycleClass::IcacheLlc => "icache (LLC miss)",
            CycleClass::DcacheL2 => "dcache (L2)",
            CycleClass::DcacheLlc => "dcache (LLC miss)",
            CycleClass::BranchMispredict => "branch mispredict",
            CycleClass::BranchMisfetch => "branch misfetch",
            CycleClass::Idle => "idle (queue empty)",
        }
    }

    /// The paper figure this class reproduces the vocabulary of.
    pub fn paper_figure(self) -> &'static str {
        match self {
            CycleClass::Base => "Figs. 4/5 (busy)",
            CycleClass::IcacheL2 | CycleClass::IcacheLlc => "Fig. 4 / Fig. 11a",
            CycleClass::DcacheL2 | CycleClass::DcacheLlc => "Fig. 5 / Fig. 11b",
            CycleClass::BranchMispredict | CycleClass::BranchMisfetch => "Fig. 12",
            CycleClass::Idle => "§2 (event queue)",
        }
    }
}

/// Cycles attributed per [`CycleClass`], plus one memo counter.
///
/// The eight class fields partition simulated time: their sum equals the
/// engine's `now()` for a full run (and the span's duration for a
/// per-event delta). `pre_exec_overlap` is a *memo*, not a ninth class —
/// it records how many of the already-counted `dcache_llc`/`icache_llc`
/// stall cycles were covered by useful ESP or runahead pre-execution,
/// and is excluded from [`CpiStack::total`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Cycles attributed to [`CycleClass::Base`].
    pub base: u64,
    /// Cycles attributed to [`CycleClass::IcacheL2`].
    pub icache_l2: u64,
    /// Cycles attributed to [`CycleClass::IcacheLlc`].
    pub icache_llc: u64,
    /// Cycles attributed to [`CycleClass::DcacheL2`].
    pub dcache_l2: u64,
    /// Cycles attributed to [`CycleClass::DcacheLlc`].
    pub dcache_llc: u64,
    /// Cycles attributed to [`CycleClass::BranchMispredict`].
    pub branch_mispredict: u64,
    /// Cycles attributed to [`CycleClass::BranchMisfetch`].
    pub branch_misfetch: u64,
    /// Cycles attributed to [`CycleClass::Idle`].
    pub idle: u64,
    /// Memo: stall cycles (already counted above) during which a
    /// pre-execution scheme made forward progress. Not part of
    /// [`CpiStack::total`].
    pub pre_exec_overlap: u64,
}

impl CpiStack {
    /// Adds `cycles` to the given class.
    #[inline]
    pub fn charge(&mut self, class: CycleClass, cycles: u64) {
        *self.slot_mut(class) += cycles;
    }

    /// Cycles currently attributed to `class`.
    pub fn get(&self, class: CycleClass) -> u64 {
        match class {
            CycleClass::Base => self.base,
            CycleClass::IcacheL2 => self.icache_l2,
            CycleClass::IcacheLlc => self.icache_llc,
            CycleClass::DcacheL2 => self.dcache_l2,
            CycleClass::DcacheLlc => self.dcache_llc,
            CycleClass::BranchMispredict => self.branch_mispredict,
            CycleClass::BranchMisfetch => self.branch_misfetch,
            CycleClass::Idle => self.idle,
        }
    }

    #[inline]
    fn slot_mut(&mut self, class: CycleClass) -> &mut u64 {
        match class {
            CycleClass::Base => &mut self.base,
            CycleClass::IcacheL2 => &mut self.icache_l2,
            CycleClass::IcacheLlc => &mut self.icache_llc,
            CycleClass::DcacheL2 => &mut self.dcache_l2,
            CycleClass::DcacheLlc => &mut self.dcache_llc,
            CycleClass::BranchMispredict => &mut self.branch_mispredict,
            CycleClass::BranchMisfetch => &mut self.branch_misfetch,
            CycleClass::Idle => &mut self.idle,
        }
    }

    /// Sum of all eight classes (the memo is excluded); equals total
    /// simulated cycles for a full run.
    pub fn total(&self) -> u64 {
        CycleClass::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Total minus idle — cycles the core actually worked or stalled.
    pub fn busy(&self) -> u64 {
        self.total() - self.idle
    }

    /// Stall cycles only: total minus base and idle.
    pub fn stall(&self) -> u64 {
        self.busy() - self.base
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// monotonically growing stack (used to carve out per-event spans).
    pub fn since(&self, earlier: &CpiStack) -> CpiStack {
        CpiStack {
            base: self.base - earlier.base,
            icache_l2: self.icache_l2 - earlier.icache_l2,
            icache_llc: self.icache_llc - earlier.icache_llc,
            dcache_l2: self.dcache_l2 - earlier.dcache_l2,
            dcache_llc: self.dcache_llc - earlier.dcache_llc,
            branch_mispredict: self.branch_mispredict - earlier.branch_mispredict,
            branch_misfetch: self.branch_misfetch - earlier.branch_misfetch,
            idle: self.idle - earlier.idle,
            pre_exec_overlap: self.pre_exec_overlap - earlier.pre_exec_overlap,
        }
    }

    /// Folds another stack into this one.
    pub fn merge(&mut self, other: &CpiStack) {
        for &c in &CycleClass::ALL {
            self.charge(c, other.get(c));
        }
        self.pre_exec_overlap += other.pre_exec_overlap;
    }

    /// Renders the stack as a flat JSON object (stable key order; the
    /// memo is last).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push('{');
        for &c in &CycleClass::ALL {
            s.push('"');
            s.push_str(c.name());
            s.push_str("\":");
            s.push_str(&self.get(c).to_string());
            s.push(',');
        }
        s.push_str("\"pre_exec_overlap\":");
        s.push_str(&self.pre_exec_overlap.to_string());
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_total_and_since() {
        let mut s = CpiStack::default();
        for (i, &c) in CycleClass::ALL.iter().enumerate() {
            s.charge(c, (i + 1) as u64);
        }
        assert_eq!(s.total(), (1..=8).sum::<u64>());
        assert_eq!(s.busy(), s.total() - s.idle);
        assert_eq!(s.stall(), s.total() - s.idle - s.base);
        let snap = s;
        s.charge(CycleClass::DcacheLlc, 10);
        s.pre_exec_overlap += 4;
        let d = s.since(&snap);
        assert_eq!(d.dcache_llc, 10);
        assert_eq!(d.pre_exec_overlap, 4);
        assert_eq!(d.total(), 10);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CpiStack { base: 1, idle: 2, ..CpiStack::default() };
        let b = CpiStack { base: 3, pre_exec_overlap: 5, ..CpiStack::default() };
        a.merge(&b);
        assert_eq!(a.base, 4);
        assert_eq!(a.idle, 2);
        assert_eq!(a.pre_exec_overlap, 5);
    }

    #[test]
    fn json_has_every_class_key() {
        let s = CpiStack::default();
        let j = s.to_json();
        for &c in &CycleClass::ALL {
            assert!(j.contains(&format!("\"{}\":0", c.name())), "{j}");
        }
        assert!(j.ends_with("\"pre_exec_overlap\":0}"));
    }
}
