//! JSON-Lines trace rendering.

use crate::cpi::CpiStack;
use crate::probe::{EventSpan, Probe, RunSummary, WindowRecord};
use esp_stats::CacheStats;

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping the characters JSON requires.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_cache_stats(out: &mut String, key: &str, s: &CacheStats) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":{\"accesses\":");
    out.push_str(&s.accesses().to_string());
    out.push_str(",\"misses\":");
    out.push_str(&s.misses.to_string());
    out.push_str(",\"partial_hits\":");
    out.push_str(&s.partial_hits.to_string());
    out.push_str(",\"prefetch_fills\":");
    out.push_str(&s.prefetch_fills.to_string());
    out.push_str(",\"prefetch_useful\":");
    out.push_str(&s.prefetch_useful.to_string());
    out.push('}');
}

/// A probe that renders every span to JSON-Lines in an in-memory buffer.
///
/// One simulation gets one `TraceProbe`; each line is self-describing
/// (it repeats the benchmark and config labels), so per-worker buffers
/// from a parallel run can be concatenated in input order into a single
/// valid trace file. Window records are *not* emitted by default — a
/// production-scale run spends hundreds of thousands of windows — but
/// [`TraceProbe::with_windows`] turns them on for small-scale debugging.
/// The schema is documented in `docs/OBSERVABILITY.md`.
#[derive(Clone, Debug)]
pub struct TraceProbe {
    benchmark: String,
    config: String,
    mode: Option<String>,
    emit_windows: bool,
    buf: String,
}

impl TraceProbe {
    /// Creates a probe labelling every line with `benchmark`/`config`.
    pub fn new(benchmark: &str, config: &str) -> Self {
        TraceProbe {
            benchmark: benchmark.to_string(),
            config: config.to_string(),
            mode: None,
            emit_windows: false,
            buf: String::new(),
        }
    }

    /// Also emits one `window` line per spent stall window.
    pub fn with_windows(mut self) -> Self {
        self.emit_windows = true;
        self
    }

    /// Tags every line with an execution mode (e.g. `"sampled"`).
    ///
    /// Exact runs carry no mode field at all, so enabling sampling
    /// elsewhere in a matrix leaves exact trace bytes unchanged.
    pub fn with_mode(mut self, mode: &str) -> Self {
        self.mode = Some(mode.to_string());
        self
    }

    /// The rendered JSONL buffer (newline-terminated lines).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.into_bytes()
    }

    fn open_line(&mut self, kind: &str) {
        self.buf.push_str("{\"type\":\"");
        self.buf.push_str(kind);
        self.buf.push_str("\",\"benchmark\":");
        let (b, c) = (self.benchmark.clone(), self.config.clone());
        push_json_str(&mut self.buf, &b);
        self.buf.push_str(",\"config\":");
        push_json_str(&mut self.buf, &c);
        if let Some(m) = self.mode.clone() {
            self.buf.push_str(",\"mode\":");
            push_json_str(&mut self.buf, &m);
        }
    }

    fn push_field_u64(&mut self, key: &str, v: u64) {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(&v.to_string());
    }

    fn push_cpi(&mut self, stack: &CpiStack) {
        self.buf.push_str(",\"cpi\":");
        self.buf.push_str(&stack.to_json());
    }
}

impl Probe for TraceProbe {
    fn on_window(&mut self, w: &WindowRecord) {
        if !self.emit_windows {
            return;
        }
        self.open_line("window");
        self.push_field_u64("at", w.at.as_u64());
        self.buf.push_str(",\"stall_class\":\"");
        self.buf.push_str(w.stall_class.name());
        self.buf.push_str("\",\"spender\":\"");
        self.buf.push_str(w.spender.name());
        self.buf.push('"');
        self.push_field_u64("offered_cycles", w.offered_cycles);
        self.push_field_u64("utilized_cycles", w.utilized_cycles);
        self.push_field_u64("instrs", w.instrs);
        self.buf.push_str("}\n");
    }

    fn on_event(&mut self, span: &EventSpan) {
        self.open_line("event");
        self.push_field_u64("idx", span.idx);
        self.push_field_u64("start", span.start.as_u64());
        self.push_field_u64("end", span.end.as_u64());
        self.push_field_u64("retired", span.retired);
        self.push_field_u64("windows", span.windows);
        self.push_cpi(&span.stack);
        self.buf.push_str("}\n");
    }

    fn on_run(&mut self, run: &RunSummary) {
        self.open_line("run");
        self.push_field_u64("total_cycles", run.total_cycles);
        self.push_field_u64("events", run.events);
        self.push_field_u64("retired", run.retired);
        self.push_field_u64("branches", run.branches);
        self.push_field_u64("mispredicts", run.mispredicts);
        self.push_field_u64("esp_branches", run.esp_branches);
        self.push_field_u64("esp_mispredicts", run.esp_mispredicts);
        self.push_cpi(&run.stack);
        self.buf.push(',');
        push_cache_stats(&mut self.buf, "l1i", &run.l1i);
        self.buf.push(',');
        push_cache_stats(&mut self.buf, "l1d", &run.l1d);
        self.buf.push(',');
        push_cache_stats(&mut self.buf, "l2", &run.l2);
        self.buf.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpi::CycleClass;
    use crate::probe::WindowSpender;
    use esp_types::Cycle;

    #[test]
    fn escapes_json_strings() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn event_and_run_lines_are_rendered() {
        let mut p = TraceProbe::new("amazon", "base");
        p.on_event(&EventSpan {
            idx: 3,
            start: Cycle::new(10),
            end: Cycle::new(25),
            retired: 7,
            windows: 0,
            stack: CpiStack { base: 15, ..CpiStack::default() },
        });
        p.on_run(&RunSummary { total_cycles: 25, events: 4, ..RunSummary::default() });
        let text = String::from_utf8(p.into_bytes()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"event\",\"benchmark\":\"amazon\",\"config\":\"base\""));
        assert!(lines[0].contains("\"idx\":3"));
        assert!(lines[0].contains("\"cpi\":{\"base\":15,"));
        assert!(lines[1].starts_with("{\"type\":\"run\""));
        assert!(lines[1].contains("\"total_cycles\":25"));
        assert!(lines[1].contains("\"l1i\":{\"accesses\":0,"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn mode_tag_only_when_set() {
        let mut exact = TraceProbe::new("amazon", "base");
        exact.on_run(&RunSummary::default());
        let text = String::from_utf8(exact.into_bytes()).unwrap();
        assert!(!text.contains("\"mode\""));
        let mut sampled = TraceProbe::new("amazon", "base").with_mode("sampled");
        sampled.on_run(&RunSummary::default());
        let text = String::from_utf8(sampled.into_bytes()).unwrap();
        assert!(text.contains("\"config\":\"base\",\"mode\":\"sampled\","));
    }

    #[test]
    fn window_lines_only_when_enabled() {
        let w = WindowRecord {
            at: Cycle::new(5),
            stall_class: CycleClass::DcacheLlc,
            offered_cycles: 90,
            utilized_cycles: 70,
            instrs: 33,
            spender: WindowSpender::Esp,
        };
        let mut off = TraceProbe::new("b", "c");
        off.on_window(&w);
        assert!(off.into_bytes().is_empty());
        let mut on = TraceProbe::new("b", "c").with_windows();
        on.on_window(&w);
        let text = String::from_utf8(on.into_bytes()).unwrap();
        assert!(text.contains("\"stall_class\":\"dcache_llc\""));
        assert!(text.contains("\"spender\":\"esp\""));
    }
}
