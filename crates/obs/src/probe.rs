//! The probe facade and the in-memory collecting probe.

use crate::cpi::{CpiStack, CycleClass};
use esp_stats::CacheStats;
use esp_types::Cycle;

/// Which pre-execution scheme spent a stall window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpender {
    /// ESP event pre-execution (§3–§4).
    Esp,
    /// Classic runahead execution (the paper's comparison point, §7).
    Runahead,
}

impl WindowSpender {
    /// Stable snake_case key used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            WindowSpender::Esp => "esp",
            WindowSpender::Runahead => "runahead",
        }
    }
}

/// One spent stall window: an exposed LLC-miss stall handed to a
/// pre-execution scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowRecord {
    /// The cycle the stall began.
    pub at: Cycle,
    /// The stall class that opened the window ([`CycleClass::IcacheLlc`]
    /// or [`CycleClass::DcacheLlc`]).
    pub stall_class: CycleClass,
    /// Exposed stall cycles offered to the scheme.
    pub offered_cycles: u64,
    /// Cycles the scheme spent doing useful pre-execution work
    /// (excludes context-switch overhead and tail waste).
    pub utilized_cycles: u64,
    /// Instructions pre-executed inside the window.
    pub instrs: u64,
    /// Who spent it.
    pub spender: WindowSpender,
}

/// One event's slice of the run: the half-open cycle span from the end
/// of the previous event (or time zero) to this event's completion,
/// including any idle wait for its arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventSpan {
    /// Index of the event in queue order.
    pub idx: u64,
    /// Cycle the span began (== the previous span's `end`).
    pub start: Cycle,
    /// Cycle the event finished retiring.
    pub end: Cycle,
    /// Instructions retired by this event (looper prologue included).
    pub retired: u64,
    /// Stall windows handed to a pre-execution scheme during the event.
    pub windows: u64,
    /// Per-class cycles charged inside the span; `stack.total()` equals
    /// `end - start` (span conservation).
    pub stack: CpiStack,
}

/// End-of-run roll-up emitted once per simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Total simulated cycles (== `stack.total()`).
    pub total_cycles: u64,
    /// Events run.
    pub events: u64,
    /// Instructions retired in normal mode.
    pub retired: u64,
    /// The whole-run CPI stack.
    pub stack: CpiStack,
    /// Demand counters of the L1 instruction cache.
    pub l1i: CacheStats,
    /// Demand counters of the L1 data cache.
    pub l1d: CacheStats,
    /// Demand counters of the unified L2/LLC.
    pub l2: CacheStats,
    /// Branches retired in normal mode.
    pub branches: u64,
    /// Branches mispredicted in normal mode.
    pub mispredicts: u64,
    /// Branches predicted in the speculative ESP-1/ESP-2 predictor
    /// contexts (zero for non-ESP runs).
    pub esp_branches: u64,
    /// ESP-context branches mispredicted.
    pub esp_mispredicts: u64,
}

/// Per-retired-instruction timing facts, emitted by the interval
/// engine's normal-mode step just before the instruction is counted as
/// retired.
///
/// This is the raw material of the `esp-check` reference oracle: each
/// field is the engine's *full* (unoverlapped) cost for that component,
/// so summing them across a run yields the cycle count of a strictly
/// in-order machine that hides nothing — a provable upper bound on the
/// interval model's overlapped time. All latencies are in whole cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepRecord {
    /// Whether the instruction is a branch.
    pub is_branch: bool,
    /// L1-I demand accesses this step issued (0 when the fetch line was
    /// already in flight or instruction fetch is modelled perfect).
    pub fetched: u64,
    /// Full latency of the instruction fetch, hit latency included
    /// (0 when `fetched == 0`).
    pub fetch_latency: u64,
    /// Whether the fetch missed in the L1-I.
    pub l1i_miss: bool,
    /// Branch re-steer penalty charged (0 for correct predictions and
    /// non-branches).
    pub branch_penalty: u64,
    /// Whether the branch was a full misprediction.
    pub mispredict: bool,
    /// Whether the branch was a decode-stage misfetch.
    pub misfetch: bool,
    /// Whether the instruction accessed the data cache (load or store).
    pub data_access: bool,
    /// Full latency of the data access, hit latency included (0 for
    /// stores, non-memory instructions, and perfect-L1-D runs).
    pub data_latency: u64,
    /// Whether the data access missed in the L1-D.
    pub l1d_miss: bool,
}

/// A statically dispatched observer of the simulation.
///
/// Every method has an empty default body and every call site is
/// generic, so the no-op [`NullProbe`] compiles away entirely — the
/// instrumented hot loop is exactly as fast as the uninstrumented one
/// when tracing is disabled.
pub trait Probe {
    /// A nonzero stall charge was attributed to `class` at time `now`.
    /// Base and idle cycles are *not* reported here (they are visible in
    /// the per-event [`EventSpan::stack`]); only stall classes are.
    #[inline]
    fn on_stall(&mut self, class: CycleClass, cycles: u64, now: Cycle) {
        let _ = (class, cycles, now);
    }

    /// A normal-mode instruction is about to retire; `r` carries its
    /// unoverlapped component costs. Fires once per retired instruction,
    /// so implementations must be cheap; the default compiles away.
    #[inline]
    fn on_step(&mut self, r: &StepRecord) {
        let _ = r;
    }

    /// A stall window was handed to a pre-execution scheme and spent.
    #[inline]
    fn on_window(&mut self, window: &WindowRecord) {
        let _ = window;
    }

    /// An event finished; `span` covers every cycle since the previous
    /// event finished.
    #[inline]
    fn on_event(&mut self, span: &EventSpan) {
        let _ = span;
    }

    /// The run finished.
    #[inline]
    fn on_run(&mut self, run: &RunSummary) {
        let _ = run;
    }
}

/// The do-nothing probe: zero-sized, every hook inlines to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// An in-memory probe that keeps every event span and the run summary —
/// the workhorse of the conservation tests and ad-hoc notebooks.
#[derive(Clone, Debug, Default)]
pub struct CpiObserver {
    /// Every event span, in queue order.
    pub events: Vec<EventSpan>,
    /// Number of windows spent across the run.
    pub windows: u64,
    /// Sum of cycles offered to pre-execution schemes.
    pub offered_cycles: u64,
    /// Sum of cycles pre-execution schemes actually utilized.
    pub utilized_cycles: u64,
    /// The end-of-run summary (set once the run completes).
    pub run: Option<RunSummary>,
}

impl Probe for CpiObserver {
    fn on_window(&mut self, window: &WindowRecord) {
        self.windows += 1;
        self.offered_cycles += window.offered_cycles;
        self.utilized_cycles += window.utilized_cycles;
    }

    fn on_event(&mut self, span: &EventSpan) {
        self.events.push(*span);
    }

    fn on_run(&mut self, run: &RunSummary) {
        self.run = Some(*run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
    }

    #[test]
    fn observer_collects() {
        let mut o = CpiObserver::default();
        o.on_window(&WindowRecord {
            at: Cycle::ZERO,
            stall_class: CycleClass::DcacheLlc,
            offered_cycles: 100,
            utilized_cycles: 60,
            instrs: 40,
            spender: WindowSpender::Esp,
        });
        o.on_event(&EventSpan {
            idx: 0,
            start: Cycle::ZERO,
            end: Cycle::new(10),
            retired: 5,
            windows: 1,
            stack: CpiStack { base: 10, ..CpiStack::default() },
        });
        o.on_run(&RunSummary { total_cycles: 10, ..RunSummary::default() });
        assert_eq!(o.windows, 1);
        assert_eq!(o.offered_cycles, 100);
        assert_eq!(o.utilized_cycles, 60);
        assert_eq!(o.events.len(), 1);
        assert_eq!(o.run.unwrap().total_cycles, 10);
    }
}
