//! Differential oracle over the full benchmark matrix: every profile,
//! under baseline, runahead, and the headline ESP+NL configuration,
//! must pass all three oracle checks (event recount, serial bound,
//! component replay).

use esp_check::check_run;
use esp_core::SimConfig;
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 30_000;
const SEED: u64 = 42;

fn check_matrix(config_of: fn() -> SimConfig, label: &str) {
    for profile in BenchmarkProfile::all() {
        let w = profile.scaled(SCALE).build(SEED);
        let r = check_run(&config_of(), &w)
            .unwrap_or_else(|e| panic!("{label} / {}: {e}", profile.name()));
        assert!(
            r.serial_cycles >= r.busy_cycles,
            "{label} / {}: serial {} < busy {}",
            profile.name(),
            r.serial_cycles,
            r.busy_cycles
        );
        assert!(r.mem_ops > 0, "{label} / {}: empty mem op log", profile.name());
        assert!(r.bp_ops > 0, "{label} / {}: empty bp op log", profile.name());
    }
}

#[test]
fn oracle_holds_for_baseline_on_all_profiles() {
    check_matrix(SimConfig::base, "base");
}

#[test]
fn oracle_holds_for_runahead_on_all_profiles() {
    check_matrix(SimConfig::runahead, "runahead");
}

#[test]
fn oracle_holds_for_esp_nl_on_all_profiles() {
    check_matrix(SimConfig::esp_nl, "esp_nl");
}

#[test]
fn oracle_report_carries_the_run_report() {
    let w = BenchmarkProfile::amazon().scaled(SCALE).build(SEED);
    let direct = esp_core::Simulator::new(SimConfig::esp_nl()).run(&w);
    let checked = check_run(&SimConfig::esp_nl(), &w).unwrap();
    // The checked run is the same deterministic simulation: its embedded
    // report must agree with an unchecked run of the same point.
    assert_eq!(checked.report.total_cycles, direct.total_cycles);
    assert_eq!(checked.report.engine, direct.engine);
    assert_eq!(checked.busy_cycles, direct.busy_cycles());
}
