//! Fixed-seed metamorphic invariant suite. These runs may assert the
//! *empirical* relations too (see the module docs of
//! `esp_check::metamorphic`) because the workloads are pinned.

use esp_check::metamorphic::{
    cache_doubling, no_peek_esp_equals_baseline, perfect_ordering, runahead_arch_invariance,
    scale_rate_stability,
};
use esp_workload::BenchmarkProfile;

const SCALE: u64 = 20_000;
const SEED: u64 = 42;

#[test]
fn perfect_ordering_holds_on_all_profiles() {
    for profile in BenchmarkProfile::all() {
        let w = profile.scaled(SCALE).build(SEED);
        perfect_ordering(&w, true).unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
    }
}

#[test]
fn cache_doubling_never_adds_misses_on_all_profiles() {
    for profile in BenchmarkProfile::all() {
        let w = profile.scaled(SCALE).build(SEED);
        cache_doubling(&w).unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
    }
}

#[test]
fn esp_with_nothing_to_peek_is_the_baseline() {
    for profile in BenchmarkProfile::all() {
        let w = profile.scaled(SCALE).build(SEED);
        no_peek_esp_equals_baseline(&w).unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
    }
}

#[test]
fn runahead_preserves_architectural_counts() {
    for profile in BenchmarkProfile::all() {
        let w = profile.scaled(SCALE).build(SEED);
        runahead_arch_invariance(&w).unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
    }
}

#[test]
fn rates_are_stable_under_scale_doubling() {
    for profile in BenchmarkProfile::all() {
        scale_rate_stability(&profile, 40_000, SEED)
            .unwrap_or_else(|e| panic!("{}: {e}", profile.name()));
    }
}
