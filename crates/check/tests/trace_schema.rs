//! Schema validation of the `esp-obs` JSONL run traces: every emitted
//! line must parse as standalone JSON and carry exactly the fields
//! documented in `docs/OBSERVABILITY.md`, with the right types.

use esp_check::Json;
use esp_core::{SimConfig, Simulator};
use esp_obs::TraceProbe;
use esp_workload::BenchmarkProfile;

const CPI_KEYS: [&str; 9] = [
    "base",
    "icache_l2",
    "icache_llc",
    "dcache_l2",
    "dcache_llc",
    "branch_mispredict",
    "branch_misfetch",
    "idle",
    "pre_exec_overlap",
];

const CACHE_KEYS: [&str; 5] = ["accesses", "misses", "partial_hits", "prefetch_fills", "prefetch_useful"];

fn require_u64(line: &Json, key: &str, ctx: &str) -> u64 {
    line.get(key)
        .unwrap_or_else(|| panic!("{ctx}: missing field {key:?}"))
        .as_u64()
        .unwrap_or_else(|| panic!("{ctx}: field {key:?} is not a non-negative integer"))
}

fn require_str<'a>(line: &'a Json, key: &str, ctx: &str) -> &'a str {
    line.get(key)
        .unwrap_or_else(|| panic!("{ctx}: missing field {key:?}"))
        .as_str()
        .unwrap_or_else(|| panic!("{ctx}: field {key:?} is not a string"))
}

fn check_cpi(line: &Json, ctx: &str) {
    let cpi = line.get("cpi").unwrap_or_else(|| panic!("{ctx}: missing cpi object"));
    let obj = cpi.as_obj().unwrap_or_else(|| panic!("{ctx}: cpi is not an object"));
    assert_eq!(obj.len(), CPI_KEYS.len(), "{ctx}: unexpected cpi key count");
    for key in CPI_KEYS {
        require_u64(cpi, key, &format!("{ctx} cpi"));
    }
}

fn check_cache(line: &Json, key: &str, ctx: &str) {
    let c = line.get(key).unwrap_or_else(|| panic!("{ctx}: missing {key} object"));
    let obj = c.as_obj().unwrap_or_else(|| panic!("{ctx}: {key} is not an object"));
    assert_eq!(obj.len(), CACHE_KEYS.len(), "{ctx}: unexpected {key} key count");
    for k in CACHE_KEYS {
        require_u64(c, k, &format!("{ctx} {key}"));
    }
}

/// Runs one simulation with a trace probe and validates every line.
/// Returns (event_lines, run_lines, window_lines).
fn validate_trace(config: SimConfig, with_windows: bool) -> (u64, u64, u64) {
    let w = BenchmarkProfile::amazon().scaled(20_000).build(42);
    let mut probe = TraceProbe::new("amazon", "test-config");
    if with_windows {
        probe = probe.with_windows();
    }
    let report = Simulator::new(config).run_probed(&w, &mut probe);
    let text = String::from_utf8(probe.into_bytes()).expect("trace must be UTF-8");

    let (mut events, mut runs, mut windows) = (0u64, 0u64, 0u64);
    let mut run_total_cycles = None;
    for (i, raw) in text.lines().enumerate() {
        let ctx = format!("line {}", i + 1);
        let line = Json::parse(raw).unwrap_or_else(|e| panic!("{ctx}: invalid JSON ({e}): {raw}"));
        assert_eq!(require_str(&line, "benchmark", &ctx), "amazon");
        assert_eq!(require_str(&line, "config", &ctx), "test-config");
        match require_str(&line, "type", &ctx) {
            "event" => {
                events += 1;
                for key in ["idx", "start", "end", "retired", "windows"] {
                    require_u64(&line, key, &ctx);
                }
                assert!(
                    require_u64(&line, "end", &ctx) >= require_u64(&line, "start", &ctx),
                    "{ctx}: event ends before it starts"
                );
                check_cpi(&line, &ctx);
            }
            "run" => {
                runs += 1;
                for key in [
                    "total_cycles",
                    "events",
                    "retired",
                    "branches",
                    "mispredicts",
                    "esp_branches",
                    "esp_mispredicts",
                ] {
                    require_u64(&line, key, &ctx);
                }
                check_cpi(&line, &ctx);
                for cache in ["l1i", "l1d", "l2"] {
                    check_cache(&line, cache, &ctx);
                }
                run_total_cycles = Some(require_u64(&line, "total_cycles", &ctx));
            }
            "window" => {
                windows += 1;
                for key in ["at", "offered_cycles", "utilized_cycles", "instrs"] {
                    require_u64(&line, key, &ctx);
                }
                require_str(&line, "stall_class", &ctx);
                require_str(&line, "spender", &ctx);
            }
            other => panic!("{ctx}: unknown line type {other:?}"),
        }
    }

    assert_eq!(runs, 1, "exactly one run line per simulation");
    assert_eq!(events, report.events_run, "one event line per event run");
    assert_eq!(
        run_total_cycles,
        Some(report.total_cycles),
        "run line must agree with the RunReport"
    );
    (events, runs, windows)
}

#[test]
fn baseline_trace_matches_schema() {
    let (events, _, windows) = validate_trace(SimConfig::base(), false);
    assert!(events > 0);
    assert_eq!(windows, 0, "window lines are opt-in");
}

#[test]
fn esp_trace_with_windows_matches_schema() {
    let (events, _, windows) = validate_trace(SimConfig::esp_nl(), true);
    assert!(events > 0);
    assert!(windows > 0, "ESP at this scale must spend at least one window");
}

#[test]
fn runahead_trace_with_windows_matches_schema() {
    let (_, runs, _) = validate_trace(SimConfig::runahead_nl(), true);
    assert_eq!(runs, 1);
}
