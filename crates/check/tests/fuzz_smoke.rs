//! Fuzzer smoke tests: a fixed-seed clean sweep, plus deliberately
//! injected invariant violations that must be caught and shrunk to a
//! ready-to-paste reproducer.

use esp_check::{fuzz_with, render_reproducer, FuzzCase, FuzzMode};
use esp_core::{SimConfig, Simulator};
use esp_uarch::PerfectFlags;

/// The default checker over a fixed seed must find nothing. This is the
/// same sweep `scripts/verify.sh` runs via `repro check`.
#[test]
fn fixed_seed_sweep_is_clean() {
    if let Some(f) = fuzz_with(0xE5F, 10, |c| c.check()) {
        panic!(
            "fuzzer found a violation at iteration {}:\n{}\n\n{}",
            f.iteration,
            f.shrunk_message,
            render_reproducer(&f)
        );
    }
}

/// A deliberately inverted invariant — "idealising every component must
/// *slow the machine down*" — is a model mutation that can never hold,
/// so the fuzzer must catch it on real simulations, shrink the case to
/// the floor, and render a pasteable regression test.
#[test]
fn injected_violation_is_caught_and_shrunk() {
    let broken_invariant = |c: &FuzzCase| -> Result<(), String> {
        let w = c.workload();
        let base = Simulator::new(SimConfig::base()).run(&w);
        let ideal = Simulator::new(SimConfig::perfect(PerfectFlags {
            l1i: true,
            l1d: true,
            branch: true,
        }))
        .run(&w);
        if ideal.busy_cycles() < base.busy_cycles() {
            return Err(format!(
                "expected perfect components to be slower, got {} < {}",
                ideal.busy_cycles(),
                base.busy_cycles()
            ));
        }
        Ok(())
    };

    let f = fuzz_with(7, 50, broken_invariant).expect("the broken invariant must be caught");
    assert!(!f.message.is_empty());
    assert!(!f.shrunk_message.is_empty());

    // The checker only looks at the workload, so shrinking must strip
    // every config knob to its floor and minimise the workload.
    assert_eq!(f.shrunk.mode, FuzzMode::Baseline);
    assert!(!f.shrunk.nl);
    assert!(!f.shrunk.stride);
    assert_eq!(f.shrunk.scale, 2_000);
    assert_eq!(f.shrunk.depth, 1);

    let repro = render_reproducer(&f);
    assert!(repro.contains("#[test]"), "reproducer must be a pasteable test:\n{repro}");
    assert!(repro.contains("esp_check::FuzzCase"), "reproducer must spell the full path:\n{repro}");
    assert!(repro.contains("scale: 2000"), "reproducer must carry the shrunk case:\n{repro}");
}

/// The shrunk case from a caught violation must itself still fail the
/// same checker — shrinking preserves the failure, it never wanders to
/// a passing point.
#[test]
fn shrunk_case_still_fails() {
    let checker = |c: &FuzzCase| -> Result<(), String> {
        // Fails whenever the workload's amazon profile is in use at any
        // scale — checker cares about exactly one dimension.
        if c.profile.is_multiple_of(7) {
            Err("profile 0 rejected".into())
        } else {
            Ok(())
        }
    };
    let f = fuzz_with(3, 200, checker).expect("profile 0 must be sampled within 200 cases");
    assert!(checker(&f.shrunk).is_err(), "shrunk case no longer fails");
    assert_eq!(f.shrunk.profile % 7, 0);
}
