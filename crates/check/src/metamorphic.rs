//! Metamorphic invariants: whole-run relations that must hold without
//! knowing the "right" answer for any single run.
//!
//! Each check runs the simulator two or more times under related
//! configurations and asserts a relation between the results. All checks
//! return `Err(String)` instead of panicking so the fuzzer can catch,
//! shrink, and report violations.
//!
//! Two tiers of strictness:
//!
//! * **Provable** relations follow from the interval model's structure
//!   (e.g. a machine with every component idealised charges only base
//!   cycles, so it can never be slower; an LRU cache with doubled
//!   associativity and constant set count satisfies stack inclusion, so
//!   it can never miss more). These are safe to fuzz.
//! * **Empirical** relations hold on every realistic workload but are
//!   not theorems (e.g. perfect L1-I alone beating the baseline —
//!   partial-hit timing feedback could in principle flip it). These are
//!   asserted only from fixed-seed tests, never from the fuzzer.

use esp_core::{RunReport, SimConfig, Simulator};
use esp_obs::CpiObserver;
use esp_trace::{EventRecord, EventStream, Workload};
use esp_types::{Cycle, EventId};
use esp_uarch::PerfectFlags;

fn run(config: SimConfig, workload: &dyn Workload) -> RunReport {
    Simulator::new(config).run(workload)
}

fn run_summary(config: SimConfig, workload: &dyn Workload) -> esp_obs::RunSummary {
    let mut obs = CpiObserver::default();
    let _ = Simulator::new(config).run_probed(workload, &mut obs);
    obs.run.expect("run summary must be emitted")
}

// ---------------------------------------------------------------------
// Perfect-component ordering
// ---------------------------------------------------------------------

/// Idealising *every* component leaves only base issue cycles, so the
/// perfect-all machine can never be slower than any other baseline
/// variant, and must retire exactly the same instruction count.
///
/// With `include_empirical`, additionally asserts the intuitive middle
/// link `perfect-L1I <= base` — true on every realistic workload but not
/// a theorem, so the fuzzer passes `false` here.
///
/// # Errors
///
/// Describes the first violated ordering link.
pub fn perfect_ordering(workload: &dyn Workload, include_empirical: bool) -> Result<(), String> {
    let base = run(SimConfig::base(), workload);
    let p_l1i = run(
        SimConfig::perfect(PerfectFlags { l1i: true, l1d: false, branch: false }),
        workload,
    );
    let p_all = run(
        SimConfig::perfect(PerfectFlags { l1i: true, l1d: true, branch: true }),
        workload,
    );

    if p_all.engine.retired != base.engine.retired || p_l1i.engine.retired != base.engine.retired {
        return Err(format!(
            "perfect variants changed retired count: base {} / perfect-l1i {} / perfect-all {}",
            base.engine.retired, p_l1i.engine.retired, p_all.engine.retired
        ));
    }
    if p_all.busy_cycles() > base.busy_cycles() {
        return Err(format!(
            "perfect-all is slower than base: {} > {} busy cycles",
            p_all.busy_cycles(),
            base.busy_cycles()
        ));
    }
    if p_all.busy_cycles() > p_l1i.busy_cycles() {
        return Err(format!(
            "perfect-all is slower than perfect-l1i: {} > {} busy cycles",
            p_all.busy_cycles(),
            p_l1i.busy_cycles()
        ));
    }
    if include_empirical && p_l1i.busy_cycles() > base.busy_cycles() {
        return Err(format!(
            "perfect-l1i is slower than base: {} > {} busy cycles",
            p_l1i.busy_cycles(),
            base.busy_cycles()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Cache-doubling (LRU stack inclusion)
// ---------------------------------------------------------------------

/// Doubling a cache's associativity (and size, keeping the set count
/// constant) can never increase its demand-miss count.
///
/// This is the classic LRU inclusion property, and it is *exact* here
/// because the caches stamp recency with a pure access-sequence counter:
/// in `Baseline` mode with both prefetchers off, the demand access
/// sequence is determined by the instruction stream alone, so the two
/// runs present identical reference strings and the wider cache's
/// resident set includes the narrower one's at every step. Only demand
/// misses (absence) are compared — partial hits are timing, not content.
///
/// # Errors
///
/// Describes which cache (L1-I or L1-D) violated inclusion.
pub fn cache_doubling(workload: &dyn Workload) -> Result<(), String> {
    let base_cfg = SimConfig::base();
    let base = run_summary(base_cfg.clone(), workload);

    let mut wide_i = base_cfg.clone();
    wide_i.engine.machine.hierarchy.l1i.ways *= 2;
    wide_i.engine.machine.hierarchy.l1i.size_bytes *= 2;
    let with_wide_i = run_summary(wide_i, workload);
    if with_wide_i.l1i.misses > base.l1i.misses {
        return Err(format!(
            "doubling L1-I associativity increased misses: {} > {}",
            with_wide_i.l1i.misses, base.l1i.misses
        ));
    }

    let mut wide_d = base_cfg;
    wide_d.engine.machine.hierarchy.l1d.ways *= 2;
    wide_d.engine.machine.hierarchy.l1d.size_bytes *= 2;
    let with_wide_d = run_summary(wide_d, workload);
    if with_wide_d.l1d.misses > base.l1d.misses {
        return Err(format!(
            "doubling L1-D associativity increased misses: {} > {}",
            with_wide_d.l1d.misses, base.l1d.misses
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// ESP with nothing to peek == baseline
// ---------------------------------------------------------------------

/// A workload wrapper that re-times event posts so far apart that no
/// later event is ever in the queue while an earlier one runs — ESP's
/// sneak peek never finds a candidate, so every window degenerates to a
/// plain stall.
pub struct NoPeekWorkload<'a> {
    inner: &'a dyn Workload,
    events: Vec<EventRecord>,
}

/// Spacing between re-timed posts; far larger than any event's runtime
/// at fuzzable scales, so event `i+1` is always posted after event `i`
/// (and its trailing idle gap) completes.
const NO_PEEK_GAP: u64 = 1_000_000_000;

impl<'a> NoPeekWorkload<'a> {
    /// Wraps `inner`, spacing each event's post time `NO_PEEK_GAP`
    /// cycles apart.
    pub fn new(inner: &'a dyn Workload) -> Self {
        let events = inner
            .events()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut e = *e;
                e.post_time = Cycle::new(NO_PEEK_GAP * (i as u64 + 1));
                e
            })
            .collect();
        NoPeekWorkload { inner, events }
    }
}

impl Workload for NoPeekWorkload<'_> {
    fn events(&self) -> &[EventRecord] {
        &self.events
    }

    fn actual_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
        self.inner.actual_stream(id)
    }

    fn speculative_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
        self.inner.speculative_stream(id)
    }

    fn approx_total_instructions(&self) -> u64 {
        self.inner.approx_total_instructions()
    }
}

/// ESP that never finds a peekable event must behave exactly like the
/// baseline with the same engine configuration: identical busy cycles
/// and identical architectural event counts. Both runs use the
/// [`NoPeekWorkload`] re-timing so absolute timestamps match too.
///
/// # Errors
///
/// Describes the first diverging statistic.
pub fn no_peek_esp_equals_baseline(workload: &dyn Workload) -> Result<(), String> {
    let quiet = NoPeekWorkload::new(workload);
    let esp = run(SimConfig::esp_nl(), &quiet);
    let base = run(SimConfig::next_line(), &quiet);

    if esp.busy_cycles() != base.busy_cycles() {
        return Err(format!(
            "no-peek ESP busy cycles diverged from baseline: {} != {}",
            esp.busy_cycles(),
            base.busy_cycles()
        ));
    }
    if esp.engine != base.engine {
        return Err(format!(
            "no-peek ESP engine stats diverged from baseline:\n  esp:  {:?}\n  base: {:?}",
            esp.engine, base.engine
        ));
    }
    if esp.events_run != base.events_run {
        return Err(format!(
            "no-peek ESP events_run diverged: {} != {}",
            esp.events_run, base.events_run
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Runahead architectural invariance
// ---------------------------------------------------------------------

/// Runahead is pure speculation on already-stalled cycles: it may warm
/// caches and change *timing*, but the architectural execution — events
/// run, instructions retired, branches retired — must be identical to
/// the baseline.
///
/// # Errors
///
/// Describes the first diverging architectural count.
pub fn runahead_arch_invariance(workload: &dyn Workload) -> Result<(), String> {
    let base = run(SimConfig::base(), workload);
    let ra = run(SimConfig::runahead(), workload);

    if ra.engine.retired != base.engine.retired {
        return Err(format!(
            "runahead changed retired count: {} != {}",
            ra.engine.retired, base.engine.retired
        ));
    }
    if ra.engine.branches != base.engine.branches {
        return Err(format!(
            "runahead changed branch count: {} != {}",
            ra.engine.branches, base.engine.branches
        ));
    }
    if ra.events_run != base.events_run {
        return Err(format!(
            "runahead changed events_run: {} != {}",
            ra.events_run, base.events_run
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Scale stability
// ---------------------------------------------------------------------

/// Doubling a profile's instruction budget must never *worsen*
/// per-instruction rates. The generator scales a profile by lengthening
/// its events (the code image and footprints stay fixed), so locality
/// only improves with scale: per-event warm-up misses amortise over
/// more instructions. CPI and L1-I MPKI therefore decline monotonically
/// as the budget grows — the doubled run may be at most 5% worse than
/// the original on either rate.
///
/// # Errors
///
/// Describes which rate worsened under scale doubling.
pub fn scale_rate_stability(
    profile: &esp_workload::BenchmarkProfile,
    scale: u64,
    seed: u64,
) -> Result<(), String> {
    let small = run(SimConfig::base(), &profile.scaled(scale).build(seed));
    let large = run(SimConfig::base(), &profile.scaled(scale * 2).build(seed));

    let cpi = |r: &RunReport| r.busy_cycles() as f64 / r.engine.retired.max(1) as f64;
    let (cpi_s, cpi_l) = (cpi(&small), cpi(&large));
    if cpi_l > cpi_s * 1.05 {
        return Err(format!(
            "CPI worsened under scale doubling: {cpi_s:.4} -> {cpi_l:.4}"
        ));
    }

    let mpki = |r: &RunReport| r.engine.l1i_misses as f64 * 1000.0 / r.engine.retired.max(1) as f64;
    let (m_s, m_l) = (mpki(&small), mpki(&large));
    if m_l > m_s * 1.05 {
        return Err(format!(
            "L1-I MPKI worsened under scale doubling: {m_s:.3} -> {m_l:.3}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_workload::BenchmarkProfile;

    #[test]
    fn no_peek_wrapper_retimes_posts() {
        let w = BenchmarkProfile::amazon().scaled(5_000).build(3);
        let quiet = NoPeekWorkload::new(&w);
        assert_eq!(quiet.events().len(), w.events().len());
        for (i, e) in quiet.events().iter().enumerate() {
            assert_eq!(e.post_time, Cycle::new(NO_PEEK_GAP * (i as u64 + 1)));
        }
        assert_eq!(quiet.approx_total_instructions(), w.approx_total_instructions());
    }
}
