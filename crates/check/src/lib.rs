//! Correctness harness for the ESP timing model.
//!
//! The paper's claims rest entirely on relative timing numbers, and the
//! CPI-stack conservation checks of `esp-obs` only prove that cycles are
//! *attributed* consistently — not that they are *right*. This crate is
//! the missing backstop, in three layers:
//!
//! * [`oracle`] — a deliberately simple **in-order reference oracle**. It
//!   shadows a real run through a [`esp_obs::Probe`], summing the *full*
//!   (unoverlapped) component latency of every retired instruction; the
//!   resulting strictly sequential cycle count is a provable upper bound
//!   on the interval engine's overlapped time, and the per-step recount
//!   of every memory/branch event must equal the engine's counters
//!   exactly. On top of that it **differentially replays** the run's
//!   component side-effect log ([`esp_core::SideEffectLog`]) against
//!   fresh `esp-mem` / `esp-branch` instances, asserting every recorded
//!   access result, prediction outcome, and final statistic reproduces.
//! * [`metamorphic`] — **whole-run invariants** that need no ground
//!   truth: idealising more components never slows the machine down,
//!   doubling a cache's associativity never increases its miss count
//!   (LRU inclusion), ESP that never finds a peekable event behaves
//!   byte-for-byte like the baseline, runahead never changes
//!   architectural event counts, and doubling the workload scale keeps
//!   per-instruction rates stable.
//! * [`sampled`] — the **sampled-vs-exact cross-validation oracle**: a
//!   simulation point is run exactly and under statistical sampling
//!   (`esp_core::Simulator::run_sampled`), and the sampled CPI estimate
//!   must land within a measured tolerance of ground truth while the
//!   exactly-tracked quantities (retired, events) match bit-for-bit.
//! * [`fuzz`] — a **seeded configuration/workload fuzzer** (std-only,
//!   built on `esp_types::rng`) that samples random simulation points,
//!   runs the oracle and invariants over them, and greedily shrinks any
//!   failure to a minimal case rendered as a ready-to-paste test.
//! * [`espt_fuzz`] — the same discipline aimed at the **ESPT trace
//!   decoder** (`esp_trace::espt`): seeded structural mutations of a
//!   valid `.espt` image (truncation, bit flips, wrong magic, forged
//!   section lengths, trailing bytes, re-sealed checksums) that must all
//!   come back as structured errors — never a panic, never an
//!   allocation sized by attacker-controlled lengths.
//!
//! The [`json`] module is a dependency-free JSON reader used to validate
//! the `esp-obs` JSONL trace schema and `BENCH_repro.json` metadata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod espt_fuzz;
pub mod fuzz;
pub mod json;
pub mod metamorphic;
pub mod oracle;
pub mod sampled;

pub use espt_fuzz::{espt_fuzz_with, render_espt_reproducer, EsptFuzzFailure};
pub use fuzz::{fuzz_with, render_reproducer, shrink, FuzzCase, FuzzFailure, FuzzMode};
pub use json::Json;
pub use oracle::{check_run, OracleProbe, OracleReport};
pub use sampled::{check_learned, check_sampled, check_sampled_matrix, LearnedCheck, SampledCheck};
