//! Seeded configuration/workload fuzzing with greedy shrinking.
//!
//! A [`FuzzCase`] is one point in the simulation space: a benchmark
//! profile, a workload seed and scale, an execution mode, and the
//! timing/prefetcher knobs. [`fuzz_with`] samples cases from a seeded
//! [`SplitMix64`] stream (fully reproducible — no wall clock, no global
//! state), runs a checker over each, and on the first failure greedily
//! [`shrink`]s the case toward the simplest configuration that still
//! fails, rendering it as a ready-to-paste regression test.

use crate::metamorphic;
use crate::oracle;
use esp_core::{EspFeatures, SimConfig, SimMode};
use esp_types::{Rng, SplitMix64};
use esp_uarch::EngineConfig;
use esp_workload::{BenchmarkProfile, GeneratedWorkload};

/// Execution mode of a fuzz case (mirrors [`SimMode`] minus its payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzMode {
    /// Plain baseline.
    Baseline,
    /// Runahead on data LLC-miss stalls.
    Runahead,
    /// Full ESP.
    Esp,
}

/// One sampled point of the simulation space. All fields are public so
/// a shrunk failure can be pasted verbatim into a regression test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// Index into [`BenchmarkProfile::all`] (taken modulo its length).
    pub profile: usize,
    /// Target dynamic instruction count for the generated workload.
    pub scale: u64,
    /// Workload generator seed.
    pub wl_seed: u64,
    /// Execution mode.
    pub mode: FuzzMode,
    /// Next-line prefetchers on.
    pub nl: bool,
    /// Stride prefetcher on (implies next-line).
    pub stride: bool,
    /// [`esp_uarch::TimingParams::issue_extra_millis`].
    pub issue_extra_millis: u64,
    /// [`esp_uarch::TimingParams::data_exposed_pct`].
    pub data_exposed_pct: u64,
    /// ESP jump-ahead depth (used only in [`FuzzMode::Esp`]).
    pub depth: usize,
}

impl FuzzCase {
    /// Samples one case from `rng`. Scales stay small (2k–24k
    /// instructions) so a full default check remains sub-second.
    pub fn sample(rng: &mut impl Rng) -> FuzzCase {
        FuzzCase {
            profile: rng.below(BenchmarkProfile::all().len() as u64) as usize,
            scale: 2_000 + rng.below(12) * 2_000,
            wl_seed: rng.below(1 << 16),
            mode: match rng.below(3) {
                0 => FuzzMode::Baseline,
                1 => FuzzMode::Runahead,
                _ => FuzzMode::Esp,
            },
            nl: rng.chance(0.5),
            stride: rng.chance(0.25),
            issue_extra_millis: rng.below(1_500),
            data_exposed_pct: rng.below(101),
            depth: 1 + rng.below(8) as usize,
        }
    }

    /// The benchmark profile this case draws from.
    pub fn profile(&self) -> BenchmarkProfile {
        let all = BenchmarkProfile::all();
        all[self.profile % all.len()].clone()
    }

    /// Builds the deterministic workload for this case.
    pub fn workload(&self) -> GeneratedWorkload {
        self.profile().scaled(self.scale).build(self.wl_seed)
    }

    /// Builds the simulator configuration for this case.
    pub fn config(&self) -> SimConfig {
        let mut engine = if self.stride {
            EngineConfig::next_line_stride()
        } else if self.nl {
            EngineConfig::next_line()
        } else {
            EngineConfig::baseline()
        };
        engine.timing.issue_extra_millis = self.issue_extra_millis;
        engine.timing.data_exposed_pct = self.data_exposed_pct;
        let mode = match self.mode {
            FuzzMode::Baseline => SimMode::Baseline,
            FuzzMode::Runahead => SimMode::Runahead { data_only: false },
            FuzzMode::Esp => {
                let mut f = EspFeatures::full();
                f.depth = self.depth;
                SimMode::Esp(f)
            }
        };
        let mut cfg = SimConfig::base();
        cfg.engine = engine;
        cfg.mode = mode;
        cfg
    }

    /// The default checker: the full oracle (recount, serial bound,
    /// component replay) on this case's own configuration, plus every
    /// *provable* metamorphic invariant on this case's workload.
    ///
    /// # Errors
    ///
    /// Propagates the first failed check's description.
    pub fn check(&self) -> Result<(), String> {
        let cfg = self.config();
        cfg.validate().map_err(|e| format!("invalid config: {e}"))?;
        let w = self.workload();
        oracle::check_run(&cfg, &w).map_err(|e| format!("[oracle] {e}"))?;
        metamorphic::perfect_ordering(&w, false).map_err(|e| format!("[perfect-ordering] {e}"))?;
        metamorphic::cache_doubling(&w).map_err(|e| format!("[cache-doubling] {e}"))?;
        metamorphic::no_peek_esp_equals_baseline(&w).map_err(|e| format!("[no-peek] {e}"))?;
        metamorphic::runahead_arch_invariance(&w).map_err(|e| format!("[runahead] {e}"))?;
        Ok(())
    }
}

/// A failure found by [`fuzz_with`], both as sampled and as shrunk.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Zero-based index of the failing iteration.
    pub iteration: usize,
    /// The case exactly as sampled.
    pub case: FuzzCase,
    /// The checker's message on the sampled case.
    pub message: String,
    /// The minimal case that still fails.
    pub shrunk: FuzzCase,
    /// The checker's message on the shrunk case.
    pub shrunk_message: String,
}

/// Runs `n` sampled cases through `checker`; returns the first failure
/// (shrunk) or `None` if all pass. Fully deterministic in `seed`.
pub fn fuzz_with<F>(seed: u64, n: usize, checker: F) -> Option<FuzzFailure>
where
    F: Fn(&FuzzCase) -> Result<(), String>,
{
    let mut rng = SplitMix64::new(seed);
    for i in 0..n {
        let case = FuzzCase::sample(&mut rng);
        if let Err(message) = checker(&case) {
            let (shrunk, shrunk_message) = shrink(case, &checker, message.clone());
            return Some(FuzzFailure { iteration: i, case, message, shrunk, shrunk_message });
        }
    }
    None
}

/// Greedily shrinks a failing case: repeatedly tries a fixed set of
/// simplifying mutations (halve the scale, drop to baseline mode, turn
/// prefetchers off, reset timing knobs, zero the seed, first profile)
/// and keeps any mutation under which `checker` still fails, until no
/// mutation preserves the failure. Returns the minimal case and its
/// failure message.
pub fn shrink<F>(mut case: FuzzCase, checker: &F, mut message: String) -> (FuzzCase, String)
where
    F: Fn(&FuzzCase) -> Result<(), String>,
{
    loop {
        let mut candidates: Vec<FuzzCase> = Vec::new();
        if case.scale / 2 >= 2_000 {
            candidates.push(FuzzCase { scale: case.scale / 2, ..case });
        }
        if case.mode != FuzzMode::Baseline {
            candidates.push(FuzzCase { mode: FuzzMode::Baseline, ..case });
        }
        if case.stride {
            candidates.push(FuzzCase { stride: false, ..case });
        }
        if case.nl {
            candidates.push(FuzzCase { nl: false, ..case });
        }
        if case.depth != 1 {
            candidates.push(FuzzCase { depth: 1, ..case });
        }
        if case.issue_extra_millis != 500 {
            candidates.push(FuzzCase { issue_extra_millis: 500, ..case });
        }
        if case.data_exposed_pct != 60 {
            candidates.push(FuzzCase { data_exposed_pct: 60, ..case });
        }
        if case.wl_seed != 0 {
            candidates.push(FuzzCase { wl_seed: 0, ..case });
        }
        if case.profile != 0 {
            candidates.push(FuzzCase { profile: 0, ..case });
        }

        let mut progressed = false;
        for cand in candidates {
            if let Err(m) = checker(&cand) {
                case = cand;
                message = m;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (case, message);
        }
    }
}

/// Renders a shrunk failure as a ready-to-paste regression test.
pub fn render_reproducer(failure: &FuzzFailure) -> String {
    let c = &failure.shrunk;
    format!(
        "// Shrunk from iteration {iter}: {msg}\n\
         #[test]\n\
         fn fuzz_regression() {{\n\
         \x20   let case = esp_check::FuzzCase {{\n\
         \x20       profile: {profile},\n\
         \x20       scale: {scale},\n\
         \x20       wl_seed: {wl_seed},\n\
         \x20       mode: esp_check::FuzzMode::{mode:?},\n\
         \x20       nl: {nl},\n\
         \x20       stride: {stride},\n\
         \x20       issue_extra_millis: {iem},\n\
         \x20       data_exposed_pct: {dep},\n\
         \x20       depth: {depth},\n\
         \x20   }};\n\
         \x20   case.check().expect(\"previously failing fuzz case\");\n\
         }}\n",
        iter = failure.iteration,
        msg = failure.shrunk_message.lines().next().unwrap_or(""),
        profile = c.profile,
        scale = c.scale,
        wl_seed = c.wl_seed,
        mode = c.mode,
        nl = c.nl,
        stride = c.stride,
        iem = c.issue_extra_millis,
        dep = c.data_exposed_pct,
        depth = c.depth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..32 {
            assert_eq!(FuzzCase::sample(&mut a), FuzzCase::sample(&mut b));
        }
    }

    #[test]
    fn sampled_configs_validate() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..64 {
            let case = FuzzCase::sample(&mut rng);
            case.config().validate().expect("sampled config must be valid");
        }
    }

    #[test]
    fn shrink_reaches_the_simplest_failing_point() {
        // A checker that fails whenever next-line is on: the shrinker
        // must strip everything else while keeping nl=true.
        let case = FuzzCase {
            profile: 5,
            scale: 16_000,
            wl_seed: 999,
            mode: FuzzMode::Esp,
            nl: true,
            stride: true,
            issue_extra_millis: 1_234,
            data_exposed_pct: 7,
            depth: 6,
        };
        let checker = |c: &FuzzCase| {
            if c.nl {
                Err("nl is on".to_string())
            } else {
                Ok(())
            }
        };
        let (shrunk, msg) = shrink(case, &checker, "nl is on".into());
        assert_eq!(msg, "nl is on");
        assert!(shrunk.nl);
        assert!(!shrunk.stride);
        assert_eq!(shrunk.mode, FuzzMode::Baseline);
        assert_eq!(shrunk.scale, 2_000);
        assert_eq!(shrunk.wl_seed, 0);
        assert_eq!(shrunk.profile, 0);
        assert_eq!(shrunk.depth, 1);
        assert_eq!(shrunk.issue_extra_millis, 500);
        assert_eq!(shrunk.data_exposed_pct, 60);
    }
}
