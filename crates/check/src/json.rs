//! A minimal, dependency-free JSON reader.
//!
//! Just enough of RFC 8259 to validate the JSONL trace lines emitted by
//! `esp-obs` and the `BENCH_repro.json` metadata: objects, arrays,
//! strings with escapes, numbers, booleans, and null. Numbers are held
//! as `f64`, which is exact for every integer the simulator emits
//! (cycle counts stay far below 2^53 at any realistic scale).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an exact one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object's key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by a \uXXXX low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err("lone low surrogate".into());
                            } else {
                                char::from_u32(cp).ok_or("invalid \\u escape")?
                            };
                            out.push(ch);
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = core::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad hex at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = core::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(
            r#"{"type":"run","cpi":{"base":0.75,"idle":12},"tags":["a\n\"b\"",true,null],"neg":-3e2}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("cpi").and_then(|c| c.get("idle")).and_then(Json::as_u64), Some(12));
        let tags = v.get("tags").and_then(Json::as_arr).unwrap();
        assert_eq!(tags[0].as_str(), Some("a\n\"b\""));
        assert_eq!(tags[1].as_bool(), Some(true));
        assert_eq!(tags[2], Json::Null);
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-300.0));
    }

    #[test]
    fn decodes_unicode_escapes() {
        let v = Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }
}
