//! Sampled-vs-exact cross-validation oracle.
//!
//! The sampling engine (`esp_core::Simulator::run_sampled`) trades
//! exactness for speed; this module is the harness that keeps that trade
//! honest. [`check_sampled`] runs one simulation point twice — once
//! exact, once sampled — and verifies three things:
//!
//! 1. **Estimate accuracy.** The sampled busy-CPI must land within a
//!    caller-chosen relative tolerance of the exact run's.
//! 2. **Exact bookkeeping.** Quantities the sampled run tracks exactly
//!    rather than estimating — retired instructions and events run —
//!    must *equal* the exact run's, not merely approximate them.
//! 3. **Plausible uncertainty.** The reported 95 % confidence interval
//!    must be finite and the estimator must not have silently fallen
//!    back to exact mode (which would make the comparison vacuous).
//!
//! [`check_sampled_matrix`] sweeps the check over a profile × config
//! matrix and reports every violation, mirroring how the differential
//! oracle is applied across the benchmark suite.

use esp_core::{SampleParams, SimConfig, Simulator};
use esp_trace::Workload;

/// What [`check_sampled`] measured, for reporting.
#[derive(Clone, Debug)]
pub struct SampledCheck {
    /// Exact busy-CPI (busy cycles / retired).
    pub exact_cpi: f64,
    /// Sampled busy-CPI estimate.
    pub sampled_cpi: f64,
    /// Signed relative error of the sampled CPI, in percent.
    pub cpi_error_pct: f64,
    /// The estimator's own relative 95 % confidence half-width, percent.
    pub ci95_pct: f64,
    /// Measured grains the estimate is built from.
    pub grains_measured: u64,
}

/// Runs `workload` under `config` exactly and sampled, and checks the
/// sampled estimate against the exact ground truth.
///
/// `tolerance_pct` bounds the absolute relative CPI error. Choose it
/// from the operating point's measured error envelope (see
/// `docs/PERFORMANCE.md`), not from hope: the check is deterministic for
/// a fixed workload/seed/params, so a passing tolerance stays passing.
///
/// # Errors
///
/// Returns a human-readable description of the first violated check.
pub fn check_sampled(
    config: &SimConfig,
    workload: &dyn Workload,
    params: SampleParams,
    tolerance_pct: f64,
) -> Result<SampledCheck, String> {
    let sim = Simulator::new(config.clone());
    let exact = sim.run(workload);
    let sampled = sim.run_sampled(workload, params);

    if sampled.estimate.exact_fallback {
        return Err(format!(
            "sampled run fell back to exact mode (workload too small for grain {} × period {}); \
             the comparison is vacuous",
            params.grain_instrs, params.period
        ));
    }
    if sampled.report.engine.retired != exact.engine.retired {
        return Err(format!(
            "sampled retired count {} != exact {} — warming lost instructions",
            sampled.report.engine.retired, exact.engine.retired
        ));
    }
    if sampled.report.events_run != exact.events_run {
        return Err(format!(
            "sampled events_run {} != exact {}",
            sampled.report.events_run, exact.events_run
        ));
    }

    let exact_cpi = exact.busy_cycles() as f64 / exact.engine.retired as f64;
    let sampled_cpi = sampled.report.busy_cycles() as f64 / sampled.report.engine.retired as f64;
    let cpi_error_pct = 100.0 * (sampled_cpi - exact_cpi) / exact_cpi;
    let ci95_pct = sampled.estimate.cpi.rel_ci95_pct();

    if !ci95_pct.is_finite() {
        return Err(format!(
            "confidence interval is not finite ({ci95_pct}) with {} measured grains",
            sampled.estimate.grains_measured
        ));
    }
    if cpi_error_pct.abs() > tolerance_pct {
        return Err(format!(
            "sampled CPI {sampled_cpi:.4} vs exact {exact_cpi:.4}: error {cpi_error_pct:+.2}% \
             exceeds tolerance {tolerance_pct}% (ci95 {ci95_pct:.2}%, n={})",
            sampled.estimate.grains_measured
        ));
    }

    Ok(SampledCheck {
        exact_cpi,
        sampled_cpi,
        cpi_error_pct,
        ci95_pct,
        grains_measured: sampled.estimate.grains_measured,
    })
}

/// Applies [`check_sampled`] to every (workload, label) × config cell
/// and collects all violations instead of stopping at the first.
///
/// Returns per-cell results on success.
///
/// # Errors
///
/// Returns the concatenated descriptions of every failing cell.
pub fn check_sampled_matrix(
    cells: &[(&dyn Workload, &str, SimConfig)],
    params: SampleParams,
    tolerance_pct: f64,
) -> Result<Vec<(String, SampledCheck)>, String> {
    let mut ok = Vec::new();
    let mut failures = Vec::new();
    for (workload, label, config) in cells {
        match check_sampled(config, *workload, params, tolerance_pct) {
            Ok(c) => ok.push(((*label).to_string(), c)),
            Err(e) => failures.push(format!("{label}: {e}")),
        }
    }
    if failures.is_empty() {
        Ok(ok)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_workload::BenchmarkProfile;

    #[test]
    fn sampled_check_passes_at_the_default_operating_point() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        let c = check_sampled(&SimConfig::esp_nl(), &w, SampleParams::default(), 8.0)
            .expect("sampled check must pass");
        assert!(c.grains_measured >= 10);
        assert!(c.ci95_pct > 0.0);
    }

    #[test]
    fn tiny_workload_is_rejected_as_vacuous() {
        let w = BenchmarkProfile::amazon().scaled(2_000).build(42);
        let err = check_sampled(&SimConfig::base(), &w, SampleParams::default(), 50.0)
            .expect_err("fallback must be reported");
        assert!(err.contains("vacuous"));
    }
}
