//! Sampled-vs-exact cross-validation oracle.
//!
//! The sampling engine (`esp_core::Simulator::run_sampled`) trades
//! exactness for speed; this module is the harness that keeps that trade
//! honest. [`check_sampled`] runs one simulation point twice — once
//! exact, once sampled — and verifies three things:
//!
//! 1. **Estimate accuracy.** The sampled busy-CPI must land within a
//!    caller-chosen relative tolerance of the exact run's.
//! 2. **Exact bookkeeping.** Quantities the sampled run tracks exactly
//!    rather than estimating — retired instructions and events run —
//!    must *equal* the exact run's, not merely approximate them.
//! 3. **Plausible uncertainty.** The reported 95 % confidence interval
//!    must be finite and the estimator must not have silently fallen
//!    back to exact mode (which would make the comparison vacuous).
//!
//! [`check_sampled_matrix`] sweeps the check over a profile × config
//! matrix and reports every violation, mirroring how the differential
//! oracle is applied across the benchmark suite.
//!
//! [`check_learned`] extends the same contract to the *learned
//! fast-forward* mode (`run_sampled_learned`): everything
//! [`check_sampled`] verifies, plus that skipping actually engaged — a
//! learned run that never skipped a grain (model never trained, or the
//! fallback ladder disabled it immediately) would pass the accuracy
//! checks vacuously while measuring nothing about the learned path.

use esp_core::{LearnParams, SampleParams, SimConfig, Simulator};
use esp_trace::Workload;

/// What [`check_sampled`] measured, for reporting.
#[derive(Clone, Debug)]
pub struct SampledCheck {
    /// Exact busy-CPI (busy cycles / retired).
    pub exact_cpi: f64,
    /// Sampled busy-CPI estimate.
    pub sampled_cpi: f64,
    /// Signed relative error of the sampled CPI, in percent.
    pub cpi_error_pct: f64,
    /// The estimator's own relative 95 % confidence half-width, percent.
    pub ci95_pct: f64,
    /// Measured grains the estimate is built from.
    pub grains_measured: u64,
}

/// Runs `workload` under `config` exactly and sampled, and checks the
/// sampled estimate against the exact ground truth.
///
/// `tolerance_pct` bounds the absolute relative CPI error. Choose it
/// from the operating point's measured error envelope (see
/// `docs/PERFORMANCE.md`), not from hope: the check is deterministic for
/// a fixed workload/seed/params, so a passing tolerance stays passing.
///
/// # Errors
///
/// Returns a human-readable description of the first violated check.
pub fn check_sampled(
    config: &SimConfig,
    workload: &dyn Workload,
    params: SampleParams,
    tolerance_pct: f64,
) -> Result<SampledCheck, String> {
    let sim = Simulator::new(config.clone());
    let exact = sim.run(workload);
    let sampled = sim.run_sampled(workload, params);

    if sampled.estimate.exact_fallback {
        return Err(format!(
            "sampled run fell back to exact mode (workload too small for grain {} × period {}); \
             the comparison is vacuous",
            params.grain_instrs, params.period
        ));
    }
    if sampled.report.engine.retired != exact.engine.retired {
        return Err(format!(
            "sampled retired count {} != exact {} — warming lost instructions",
            sampled.report.engine.retired, exact.engine.retired
        ));
    }
    if sampled.report.events_run != exact.events_run {
        return Err(format!(
            "sampled events_run {} != exact {}",
            sampled.report.events_run, exact.events_run
        ));
    }

    let exact_cpi = exact.busy_cycles() as f64 / exact.engine.retired as f64;
    let sampled_cpi = sampled.report.busy_cycles() as f64 / sampled.report.engine.retired as f64;
    let cpi_error_pct = 100.0 * (sampled_cpi - exact_cpi) / exact_cpi;
    let ci95_pct = sampled.estimate.cpi.rel_ci95_pct();

    if !ci95_pct.is_finite() {
        return Err(format!(
            "confidence interval is not finite ({ci95_pct}) with {} measured grains",
            sampled.estimate.grains_measured
        ));
    }
    if cpi_error_pct.abs() > tolerance_pct {
        return Err(format!(
            "sampled CPI {sampled_cpi:.4} vs exact {exact_cpi:.4}: error {cpi_error_pct:+.2}% \
             exceeds tolerance {tolerance_pct}% (ci95 {ci95_pct:.2}%, n={})",
            sampled.estimate.grains_measured
        ));
    }

    Ok(SampledCheck {
        exact_cpi,
        sampled_cpi,
        cpi_error_pct,
        ci95_pct,
        grains_measured: sampled.estimate.grains_measured,
    })
}

/// What [`check_learned`] measured, for reporting.
#[derive(Clone, Debug)]
pub struct LearnedCheck {
    /// The base sampled checks (accuracy, bookkeeping, uncertainty),
    /// computed against the learned run.
    pub sampled: SampledCheck,
    /// Fraction of warm-grain instructions fast-forwarded without
    /// engine warming.
    pub skip_fraction: f64,
    /// Residual-gate fallbacks per completed stretch.
    pub fallback_rate: f64,
    /// Whether the fallback ladder disabled skipping before the run
    /// ended.
    pub disabled: bool,
}

/// Runs `workload` exactly and with learned fast-forwarding, and checks
/// the learned estimate against the exact ground truth.
///
/// Beyond the [`check_sampled`] contract (applied to the learned run),
/// this requires the run to be *non-vacuous*: the model must have
/// issued predictions and actually skipped grains. A run the fallback
/// ladder escalated to a full rerun (`rerun_full`) fails the check —
/// the ladder behaved correctly, but the operating point is not one
/// where learned mode works, which is what the caller asked to verify.
///
/// # Errors
///
/// Returns a human-readable description of the first violated check.
pub fn check_learned(
    config: &SimConfig,
    workload: &dyn Workload,
    params: SampleParams,
    learn: LearnParams,
    tolerance_pct: f64,
) -> Result<LearnedCheck, String> {
    let sim = Simulator::new(config.clone());
    let exact = sim.run(workload);
    let run = sim.run_sampled_learned(workload, params, learn);

    if run.estimate.exact_fallback {
        return Err(format!(
            "learned run fell back to exact mode (workload too small for grain {} × period {});              the comparison is vacuous",
            params.grain_instrs, params.period
        ));
    }
    let stats = run
        .learned
        .as_ref()
        .ok_or("run_sampled_learned reported no learned stats")?;
    if stats.rerun_full {
        return Err(format!(
            "fallback ladder escalated to a full plain-warming rerun              ({} fallbacks, rolling error {:.1}%) — learned mode does not hold at this point",
            stats.fallbacks, stats.rolling_err_pct
        ));
    }
    if stats.predictions == 0 || stats.skipped_grains == 0 {
        return Err(format!(
            "learned run never skipped (predictions {}, skipped grains {}) —              the accuracy comparison is vacuous",
            stats.predictions, stats.skipped_grains
        ));
    }
    if run.report.engine.retired != exact.engine.retired {
        return Err(format!(
            "learned retired count {} != exact {} — fast-forward lost instructions",
            run.report.engine.retired, exact.engine.retired
        ));
    }
    if run.report.events_run != exact.events_run {
        return Err(format!(
            "learned events_run {} != exact {}",
            run.report.events_run, exact.events_run
        ));
    }

    let exact_cpi = exact.busy_cycles() as f64 / exact.engine.retired as f64;
    let learned_cpi = run.report.busy_cycles() as f64 / run.report.engine.retired as f64;
    let cpi_error_pct = 100.0 * (learned_cpi - exact_cpi) / exact_cpi;
    let ci95_pct = run.estimate.cpi.rel_ci95_pct();

    if !ci95_pct.is_finite() {
        return Err(format!(
            "confidence interval is not finite ({ci95_pct}) with {} measured grains",
            run.estimate.grains_measured
        ));
    }
    if cpi_error_pct.abs() > tolerance_pct {
        return Err(format!(
            "learned CPI {learned_cpi:.4} vs exact {exact_cpi:.4}: error {cpi_error_pct:+.2}%              exceeds tolerance {tolerance_pct}% (ci95 {ci95_pct:.2}%, n={}, skip {:.2}, fb {})",
            run.estimate.grains_measured,
            stats.skip_fraction(),
            stats.fallbacks
        ));
    }

    Ok(LearnedCheck {
        sampled: SampledCheck {
            exact_cpi,
            sampled_cpi: learned_cpi,
            cpi_error_pct,
            ci95_pct,
            grains_measured: run.estimate.grains_measured,
        },
        skip_fraction: stats.skip_fraction(),
        fallback_rate: stats.fallback_rate(),
        disabled: stats.disabled,
    })
}

/// Applies [`check_sampled`] to every (workload, label) × config cell
/// and collects all violations instead of stopping at the first.
///
/// Returns per-cell results on success.
///
/// # Errors
///
/// Returns the concatenated descriptions of every failing cell.
pub fn check_sampled_matrix(
    cells: &[(&dyn Workload, &str, SimConfig)],
    params: SampleParams,
    tolerance_pct: f64,
) -> Result<Vec<(String, SampledCheck)>, String> {
    let mut ok = Vec::new();
    let mut failures = Vec::new();
    for (workload, label, config) in cells {
        match check_sampled(config, *workload, params, tolerance_pct) {
            Ok(c) => ok.push(((*label).to_string(), c)),
            Err(e) => failures.push(format!("{label}: {e}")),
        }
    }
    if failures.is_empty() {
        Ok(ok)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_workload::BenchmarkProfile;

    #[test]
    fn sampled_check_passes_at_the_default_operating_point() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        let c = check_sampled(&SimConfig::esp_nl(), &w, SampleParams::default(), 8.0)
            .expect("sampled check must pass");
        assert!(c.grains_measured >= 10);
        assert!(c.ci95_pct > 0.0);
    }

    #[test]
    fn learned_check_passes_at_the_default_operating_point() {
        let w = BenchmarkProfile::amazon().scaled(600_000).build(42);
        let c = check_learned(
            &SimConfig::esp_nl(),
            &w,
            SampleParams::default(),
            esp_core::LearnParams::default(),
            8.0,
        )
        .expect("learned check must pass");
        assert!(c.skip_fraction > 0.3, "skip fraction {} is vacuous", c.skip_fraction);
        assert!(!c.disabled);
    }

    #[test]
    fn learned_check_rejects_a_never_skipping_run() {
        // An absurd training requirement means the model never finishes
        // training inside the run, so no grain is ever skipped.
        let w = BenchmarkProfile::amazon().scaled(400_000).build(42);
        let err = check_learned(
            &SimConfig::base(),
            &w,
            SampleParams::default(),
            esp_core::LearnParams { train_stretches: 10_000, ..Default::default() },
            50.0,
        )
        .expect_err("a run that never skips must be rejected");
        assert!(err.contains("vacuous"), "unexpected error: {err}");
    }

    #[test]
    fn tiny_workload_is_rejected_as_vacuous() {
        let w = BenchmarkProfile::amazon().scaled(2_000).build(42);
        let err = check_sampled(&SimConfig::base(), &w, SampleParams::default(), 50.0)
            .expect_err("fallback must be reported");
        assert!(err.contains("vacuous"));
    }
}
