//! Structural fuzzing of the ESPT container decoder with shrinking.
//!
//! [`espt_fuzz_with`] builds one small, valid `.espt` byte image
//! ([`base_image`]), then samples seeded [`Mutation`] lists — truncation,
//! bit flips, byte overwrites, wrong magic, forged section lengths,
//! trailing garbage — applies each to a fresh copy, and feeds the result
//! to [`esp_trace::espt::read`]. The oracle: the decoder must **never
//! panic** (and, since every section length is validated before its
//! bytes are buffered, never balloon memory), and any image whose bytes
//! differ from the valid original must be **rejected with a structured
//! [`esp_trace::espt::EsptError`]** — unless the case ends with
//! [`Mutation::FixChecksum`], which re-seals the footer so corruption
//! reaches the payload validators past the checksum gate (there the
//! decoder may legitimately accept a different-but-well-formed trace,
//! and only the no-panic half of the oracle applies).
//!
//! Failures shrink greedily ([`shrink_mutations`]): drop whole
//! mutations, then halve offsets/lengths, keeping every step that still
//! fails, and render as a ready-to-paste test
//! ([`render_espt_reproducer`]) — same discipline as the configuration
//! fuzzer in [`crate::fuzz`].

use esp_trace::espt;
use esp_types::{Rng, SplitMix64};
use esp_workload::BenchmarkProfile;

/// One structural mutation of a valid `.espt` byte image. Every variant
/// is guaranteed to change the image (or leave it untouched only when
/// the image is too short to carry the targeted field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Truncate the image to `len % image_len` bytes (strictly shorter).
    Truncate(u64),
    /// Flip bit `bit % 8` of byte `offset % image_len`.
    FlipBit {
        /// Byte offset (taken modulo the image length).
        offset: u64,
        /// Bit index within the byte.
        bit: u8,
    },
    /// Overwrite byte `offset % image_len` with `value` (complemented if
    /// the byte already holds `value`, so the image always changes).
    SetByte {
        /// Byte offset (taken modulo the image length).
        offset: u64,
        /// Replacement value.
        value: u8,
    },
    /// Replace the 4-byte magic with the little-endian bytes of `0`
    /// (complemented in the first byte if they happen to spell `ESPT`).
    WrongMagic(u32),
    /// Overwrite the length field of section-table entry `entry % 4`
    /// with `len` — the forged-giant-section OOM probe.
    OversizeSection {
        /// Section-table entry index.
        entry: u8,
        /// Forged length in bytes.
        len: u64,
    },
    /// Append one garbage byte after the checksum footer.
    Trailing(u8),
    /// Recompute the FNV-1a footer over the (already mutated) image so
    /// corruption survives the checksum gate and reaches the payload
    /// validators. Sampling appends this last, ~1 case in 3.
    FixChecksum,
}

/// Builds the valid base image every fuzz case mutates: the smallest
/// `serverasync` session (the 24-event floor), materialised and encoded
/// in memory. Deterministic in `seed`.
pub fn base_image(seed: u64) -> Vec<u8> {
    let profile = BenchmarkProfile::by_name("serverasync")
        .expect("serverasync is built in")
        .scaled(6_000);
    let workload = profile.build(seed).materialise();
    let meta = espt::TraceMeta {
        profile: profile.name().to_string(),
        scale: 6_000,
        seed,
    };
    let mut out = Vec::new();
    espt::write(&mut out, &meta, &workload).expect("in-memory encode cannot fail");
    out
}

/// Applies `muts` to a copy of `base`, in order.
pub fn apply(base: &[u8], muts: &[Mutation]) -> Vec<u8> {
    let mut img = base.to_vec();
    for m in muts {
        match *m {
            Mutation::Truncate(len) => {
                if !img.is_empty() {
                    let l = (len % img.len() as u64) as usize;
                    img.truncate(l);
                }
            }
            Mutation::FlipBit { offset, bit } => {
                if !img.is_empty() {
                    let o = (offset % img.len() as u64) as usize;
                    img[o] ^= 1 << (bit % 8);
                }
            }
            Mutation::SetByte { offset, value } => {
                if !img.is_empty() {
                    let o = (offset % img.len() as u64) as usize;
                    img[o] = if img[o] == value { !value } else { value };
                }
            }
            Mutation::WrongMagic(v) => {
                if img.len() >= 4 {
                    let mut b = v.to_le_bytes();
                    if b == espt::MAGIC {
                        b[0] = !b[0];
                    }
                    img[..4].copy_from_slice(&b);
                }
            }
            Mutation::OversizeSection { entry, len } => {
                // Header: 16 fixed bytes, then 4 × (id u32, len u64)
                // entries; the length field sits 4 bytes into an entry.
                let off = 16 + (entry as usize % 4) * 12 + 4;
                if img.len() >= off + 8 {
                    let forged = if img[off..off + 8] == len.to_le_bytes() {
                        len ^ (1 << 40)
                    } else {
                        len
                    };
                    img[off..off + 8].copy_from_slice(&forged.to_le_bytes());
                }
            }
            Mutation::Trailing(b) => img.push(b),
            Mutation::FixChecksum => {
                if img.len() >= 8 {
                    let body = img.len() - 8;
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for &byte in &img[..body] {
                        h ^= byte as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    img[body..].copy_from_slice(&h.to_le_bytes());
                }
            }
        }
    }
    img
}

/// The fuzz oracle for one mutation list over `base`.
///
/// # Errors
///
/// A description of the violation: the decoder panicked, or accepted an
/// image whose bytes differ from the valid original without a
/// [`Mutation::FixChecksum`] excusing it.
pub fn check_mutations(base: &[u8], muts: &[Mutation]) -> Result<(), String> {
    let img = apply(base, muts);
    if img == base {
        return Ok(());
    }
    let sealed = muts.contains(&Mutation::FixChecksum);
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| espt::read(img.as_slice())));
    match outcome {
        Err(_) => Err("decoder panicked on a corrupted image".to_string()),
        Ok(Ok(_)) if !sealed => {
            Err("decoder accepted a corrupted image (checksum not re-sealed)".to_string())
        }
        Ok(_) => Ok(()),
    }
}

/// A failure found by [`espt_fuzz_with`], as sampled and as shrunk.
#[derive(Clone, Debug)]
pub struct EsptFuzzFailure {
    /// Zero-based index of the failing iteration.
    pub iteration: usize,
    /// Seed the base image was built from.
    pub base_seed: u64,
    /// The mutation list exactly as sampled.
    pub mutations: Vec<Mutation>,
    /// The oracle's message on the sampled list.
    pub message: String,
    /// The minimal mutation list that still fails.
    pub shrunk: Vec<Mutation>,
    /// The oracle's message on the shrunk list.
    pub shrunk_message: String,
}

fn sample_case(rng: &mut impl Rng, image_len: u64) -> Vec<Mutation> {
    let n = 1 + rng.below(3) as usize;
    let mut muts = Vec::with_capacity(n + 1);
    for _ in 0..n {
        muts.push(match rng.below(6) {
            0 => Mutation::Truncate(rng.below(image_len)),
            1 => Mutation::FlipBit { offset: rng.below(image_len), bit: rng.below(8) as u8 },
            2 => Mutation::SetByte {
                offset: rng.below(image_len),
                value: rng.below(256) as u8,
            },
            3 => Mutation::WrongMagic(rng.below(u32::MAX as u64) as u32),
            4 => Mutation::OversizeSection {
                entry: rng.below(4) as u8,
                // Forged lengths from a few KiB up to the TiB range: the
                // decoder must reject by arithmetic, not by allocating.
                len: 1u64 << (12 + rng.below(31)),
            },
            _ => Mutation::Trailing(rng.below(256) as u8),
        });
    }
    if rng.chance(0.3) {
        muts.push(Mutation::FixChecksum);
    }
    muts
}

/// Runs `n` sampled mutation lists against one base image; returns the
/// first failure (shrunk) or `None` if all pass. Deterministic in
/// `seed` (which also seeds the base image's workload).
pub fn espt_fuzz_with(seed: u64, n: usize) -> Option<EsptFuzzFailure> {
    let base_seed = seed % 16;
    let base = base_image(base_seed);
    let mut rng = SplitMix64::new(seed);
    for i in 0..n {
        let muts = sample_case(&mut rng, base.len() as u64);
        if let Err(message) = check_mutations(&base, &muts) {
            let (shrunk, shrunk_message) = shrink_mutations(&base, muts.clone(), message.clone());
            return Some(EsptFuzzFailure {
                iteration: i,
                base_seed,
                mutations: muts,
                message,
                shrunk,
                shrunk_message,
            });
        }
    }
    None
}

/// Greedily shrinks a failing mutation list: first tries dropping each
/// mutation, then halving every offset/length, keeping any candidate
/// under which [`check_mutations`] still fails.
pub fn shrink_mutations(
    base: &[u8],
    mut muts: Vec<Mutation>,
    mut message: String,
) -> (Vec<Mutation>, String) {
    loop {
        let mut candidates: Vec<Vec<Mutation>> = Vec::new();
        for i in 0..muts.len() {
            if muts.len() > 1 {
                let mut fewer = muts.clone();
                fewer.remove(i);
                candidates.push(fewer);
            }
            let simpler = match muts[i] {
                Mutation::Truncate(len) if len > 0 => Some(Mutation::Truncate(len / 2)),
                Mutation::FlipBit { offset, bit } if offset > 0 => {
                    Some(Mutation::FlipBit { offset: offset / 2, bit })
                }
                Mutation::SetByte { offset, value } if offset > 0 => {
                    Some(Mutation::SetByte { offset: offset / 2, value })
                }
                Mutation::WrongMagic(v) if v > 0 => Some(Mutation::WrongMagic(0)),
                Mutation::OversizeSection { entry, len } if len > 4096 => {
                    Some(Mutation::OversizeSection { entry, len: len / 2 })
                }
                _ => None,
            };
            if let Some(s) = simpler {
                let mut halved = muts.clone();
                halved[i] = s;
                candidates.push(halved);
            }
        }

        let mut progressed = false;
        for cand in candidates {
            if let Err(m) = check_mutations(base, &cand) {
                muts = cand;
                message = m;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (muts, message);
        }
    }
}

/// Renders a shrunk failure as a ready-to-paste regression test.
pub fn render_espt_reproducer(failure: &EsptFuzzFailure) -> String {
    let muts = failure
        .shrunk
        .iter()
        .map(|m| format!("        esp_check::espt_fuzz::Mutation::{m:?},\n"))
        .collect::<String>();
    format!(
        "// Shrunk from iteration {iter}: {msg}\n\
         #[test]\n\
         fn espt_fuzz_regression() {{\n\
         \x20   let base = esp_check::espt_fuzz::base_image({seed});\n\
         \x20   let muts = [\n{muts}\x20   ];\n\
         \x20   esp_check::espt_fuzz::check_mutations(&base, &muts)\n\
         \x20       .expect(\"previously failing espt fuzz case\");\n\
         }}\n",
        iter = failure.iteration,
        msg = failure.shrunk_message.lines().next().unwrap_or(""),
        seed = failure.base_seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::espt::EsptError;

    #[test]
    fn base_image_is_valid_and_deterministic() {
        let a = base_image(3);
        let b = base_image(3);
        assert_eq!(a, b);
        let (meta, _) = espt::read(a.as_slice()).expect("base image decodes");
        assert_eq!(meta.profile, "serverasync");
    }

    #[test]
    fn every_mutation_kind_is_rejected_with_a_structured_error() {
        let base = base_image(0);
        type Case = (Mutation, fn(&EsptError) -> bool);
        let cases: &[Case] = &[
            (Mutation::WrongMagic(0), |e| matches!(e, EsptError::BadMagic { .. })),
            (Mutation::Truncate(40), |e| matches!(e, EsptError::Truncated { .. })),
            (Mutation::Trailing(0xAA), |e| matches!(e, EsptError::TrailingBytes { .. })),
            (
                // Forged multi-TiB section length: rejected by length
                // arithmetic, never buffered.
                Mutation::OversizeSection { entry: 3, len: 1 << 42 },
                |e| matches!(e, EsptError::Truncated { .. }),
            ),
            (
                // A payload bit flip is caught by the checksum gate.
                Mutation::FlipBit { offset: 70, bit: 2 },
                |e| matches!(e, EsptError::ChecksumMismatch { .. }),
            ),
        ];
        for (m, expect) in cases {
            let img = apply(&base, std::slice::from_ref(m));
            let err = espt::read(img.as_slice()).expect_err("mutated image must be rejected");
            assert!(expect(&err), "{m:?} produced unexpected error {err:?}");
        }
    }

    #[test]
    fn fuzz_sweep_is_clean_and_deterministic() {
        assert!(espt_fuzz_with(42, 128).is_none(), "decoder rejected every mutation");
        // Same seed, same verdict — the sweep is replayable.
        assert!(espt_fuzz_with(42, 128).is_none());
    }

    #[test]
    fn shrink_drops_irrelevant_mutations() {
        let base = base_image(0);
        // Synthetic failure: "fails" whenever a Trailing mutation is
        // present; the shrinker must strip everything else.
        let muts = vec![
            Mutation::FlipBit { offset: 999, bit: 3 },
            Mutation::Trailing(7),
            Mutation::SetByte { offset: 123, value: 9 },
        ];
        let checker_fails = |muts: &[Mutation]| muts.iter().any(|m| matches!(m, Mutation::Trailing(_)));
        // Reuse the greedy loop by inlining its policy against the
        // synthetic predicate.
        let mut current = muts;
        loop {
            let mut progressed = false;
            for i in 0..current.len() {
                if current.len() > 1 {
                    let mut fewer = current.clone();
                    fewer.remove(i);
                    if checker_fails(&fewer) {
                        current = fewer;
                        progressed = true;
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(current, vec![Mutation::Trailing(7)]);
        // And the real shrinker reduces a real failure-free mutation to
        // itself (nothing to do on a passing case — exercised via the
        // reproducer renderer instead).
        let f = EsptFuzzFailure {
            iteration: 3,
            base_seed: 0,
            mutations: current.clone(),
            message: "m".into(),
            shrunk: current,
            shrunk_message: "decoder accepted a corrupted image".into(),
        };
        let rendered = render_espt_reproducer(&f);
        assert!(rendered.contains("espt_fuzz_regression"));
        assert!(rendered.contains("Trailing(7)"));
        assert!(rendered.contains("base_image(0)"));
        let _ = base;
    }
}
