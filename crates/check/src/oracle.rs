//! The in-order reference timing oracle and differential replay checks.
//!
//! Three independent cross-checks of one real simulation run:
//!
//! 1. **Serial upper bound.** The oracle observes every retiring
//!    normal-mode instruction through [`esp_obs::Probe::on_step`] and
//!    charges it the *full* latency of each component it touched —
//!    fetch, branch re-steer, data — with zero overlap, exactly what a
//!    strictly in-order, blocking machine would pay. The interval engine
//!    hides latency (ROB overlap, exposed-fraction charging, store
//!    buffering) but never invents extra stall time, so on every run
//!    `serial_cycles >= busy_cycles` must hold. The base (issue)
//!    component is reproduced exactly, so the bound is tight on
//!    stall-free code.
//! 2. **Event-count recount.** The oracle independently recounts
//!    accesses, misses, branches, mispredictions, and misfetches from
//!    the per-step records; the totals must equal the engine's own
//!    [`EngineStats`] field for field.
//! 3. **Differential component replay.** The run is executed with
//!    side-effect recording on ([`Simulator::run_logged`]); the recorded
//!    [`MemOp`]/[`BpOp`] logs are then replayed against *fresh* memory
//!    and predictor instances of the same configuration. Every recorded
//!    per-op result (latency, serving level, prediction outcome) and the
//!    final counters must reproduce exactly — any hidden mutation path,
//!    ordering sensitivity, or nondeterminism in the components shows up
//!    as a divergence.

use esp_branch::{BpOp, BranchPredictor, SpeculativeCheckpoint};
use esp_core::{SideEffectLog, SimConfig, Simulator};
use esp_mem::{MemOp, MemoryHierarchy};
use esp_obs::{Probe, StepRecord};
use esp_trace::Workload;
use esp_uarch::EngineStats;

/// A [`Probe`] that accumulates the serial no-overlap cycle count and an
/// independent recount of every architectural event.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleProbe {
    /// Normal-mode instructions observed (one `on_step` each).
    pub retired: u64,
    /// Sum of full instruction-fetch latencies.
    pub fetch_cycles: u64,
    /// Sum of branch re-steer penalties.
    pub branch_cycles: u64,
    /// Sum of full data-access latencies (stores contribute zero).
    pub data_cycles: u64,
    /// Recounted L1-I demand lookups.
    pub l1i_accesses: u64,
    /// Recounted L1-I demand misses.
    pub l1i_misses: u64,
    /// Recounted L1-D demand lookups.
    pub l1d_accesses: u64,
    /// Recounted L1-D demand misses.
    pub l1d_misses: u64,
    /// Recounted branches.
    pub branches: u64,
    /// Recounted full mispredictions.
    pub mispredicts: u64,
    /// Recounted decode-stage misfetches.
    pub misfetches: u64,
}

impl Probe for OracleProbe {
    fn on_step(&mut self, r: &StepRecord) {
        self.retired += 1;
        self.fetch_cycles += r.fetch_latency;
        self.branch_cycles += r.branch_penalty;
        self.data_cycles += r.data_latency;
        self.l1i_accesses += r.fetched;
        self.l1i_misses += u64::from(r.l1i_miss);
        if r.data_access {
            self.l1d_accesses += 1;
            self.l1d_misses += u64::from(r.l1d_miss);
        }
        if r.is_branch {
            self.branches += 1;
            self.mispredicts += u64::from(r.mispredict);
            self.misfetches += u64::from(r.misfetch);
        }
    }
}

impl OracleProbe {
    /// The strictly sequential cycle count: exact base cycles (the
    /// engine's incremental milli-cycle carry makes the cumulative base
    /// charge equal `retired * base_millis / 1000` exactly) plus every
    /// component latency in full, with no overlap.
    pub fn serial_cycles(&self, base_millis_per_instr: u64) -> u64 {
        self.retired * base_millis_per_instr / 1000
            + self.fetch_cycles
            + self.branch_cycles
            + self.data_cycles
    }
}

/// What [`check_run`] verified, for reporting.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// The oracle's serial no-overlap cycle count.
    pub serial_cycles: u64,
    /// The engine's busy (non-idle) cycle count.
    pub busy_cycles: u64,
    /// Memory-hierarchy ops replayed.
    pub mem_ops: usize,
    /// Branch-predictor ops replayed.
    pub bp_ops: usize,
    /// The run report of the checked simulation.
    pub report: esp_core::RunReport,
}

/// Runs `workload` under `config` and applies all three oracle checks.
///
/// # Errors
///
/// Returns a human-readable description of the first violated check:
/// recount mismatch, serial bound violation, or replay divergence.
pub fn check_run(config: &SimConfig, workload: &dyn Workload) -> Result<OracleReport, String> {
    let sim = Simulator::new(config.clone());
    let mut probe = OracleProbe::default();
    let (report, log) = sim.run_logged(workload, &mut probe);

    let expected = EngineStats {
        retired: probe.retired,
        l1i_accesses: probe.l1i_accesses,
        l1i_misses: probe.l1i_misses,
        l1d_accesses: probe.l1d_accesses,
        l1d_misses: probe.l1d_misses,
        branches: probe.branches,
        mispredicts: probe.mispredicts,
        misfetches: probe.misfetches,
        runahead_instrs: report.engine.runahead_instrs,
    };
    if expected != report.engine {
        return Err(format!(
            "event-count recount diverged from engine counters:\n  oracle: {expected:?}\n  engine: {:?}",
            report.engine
        ));
    }

    let base_millis = 1000 / u64::from(config.engine.machine.width)
        + config.engine.timing.issue_extra_millis;
    let serial = probe.serial_cycles(base_millis);
    let busy = report.busy_cycles();
    if serial < busy {
        return Err(format!(
            "serial oracle bound violated: in-order reference {serial} cycles < engine busy {busy} cycles"
        ));
    }

    replay_mem(config, &log)?;
    replay_bp(config, &log)?;

    Ok(OracleReport {
        serial_cycles: serial,
        busy_cycles: busy,
        mem_ops: log.mem_ops.len(),
        bp_ops: log.bp_ops.len(),
        report,
    })
}

/// Replays the memory op log on a fresh hierarchy, checking every
/// recorded access result and the final per-level counters.
fn replay_mem(config: &SimConfig, log: &SideEffectLog) -> Result<(), String> {
    let mut shadow = MemoryHierarchy::new(config.engine.machine.hierarchy.clone());
    for (i, op) in log.mem_ops.iter().enumerate() {
        match *op {
            MemOp::AccessInstr { line, now, served } => {
                let got = shadow.access_instr(line, now);
                if got != served {
                    return Err(format!(
                        "mem replay diverged at op {i}: access_instr({line:?}, {now:?}) returned {got:?}, run observed {served:?}"
                    ));
                }
            }
            MemOp::AccessData { line, now, store, served } => {
                let got = shadow.access_data(line, now, store);
                if got != served {
                    return Err(format!(
                        "mem replay diverged at op {i}: access_data({line:?}, {now:?}, store={store}) returned {got:?}, run observed {served:?}"
                    ));
                }
            }
            MemOp::PrefetchInstr { line, now, into_l1, issued } => {
                let got = shadow.prefetch_instr(line, now, into_l1);
                if got != issued {
                    return Err(format!(
                        "mem replay diverged at op {i}: prefetch_instr({line:?}) issued={got}, run observed {issued}"
                    ));
                }
            }
            MemOp::PrefetchData { line, now, into_l1, issued } => {
                let got = shadow.prefetch_data(line, now, into_l1);
                if got != issued {
                    return Err(format!(
                        "mem replay diverged at op {i}: prefetch_data({line:?}) issued={got}, run observed {issued}"
                    ));
                }
            }
            MemOp::PrefetchInstrInstant { line, now } => shadow.prefetch_instr_instant(line, now),
            MemOp::PrefetchDataInstant { line, now } => shadow.prefetch_data_instant(line, now),
            MemOp::ResetStats => shadow.reset_stats(),
        }
    }
    let got = shadow.snapshot();
    if got != log.mem_snapshot {
        return Err(format!(
            "mem replay final snapshot diverged:\n  replay: {got:?}\n  run:    {:?}",
            log.mem_snapshot
        ));
    }
    Ok(())
}

/// Replays the branch-predictor op log on a fresh predictor, checking
/// every recorded prediction outcome and the final per-context stats.
/// Checkpoints are positional: a LIFO stack mirrors the strictly nested
/// checkpoint/restore discipline of the runahead and ESP window paths.
fn replay_bp(config: &SimConfig, log: &SideEffectLog) -> Result<(), String> {
    let mut shadow = BranchPredictor::new(
        config.engine.machine.branch.clone(),
        config.engine.bp_policy,
    );
    let mut checkpoints: Vec<SpeculativeCheckpoint> = Vec::new();
    for (i, op) in log.bp_ops.iter().enumerate() {
        match *op {
            BpOp::Predict { ctx, instr, outcome } => {
                let got = shadow.predict_and_update(ctx, &instr);
                if got != outcome {
                    return Err(format!(
                        "bp replay diverged at op {i}: predict({ctx:?}, {instr:?}) returned {got:?}, run observed {outcome:?}"
                    ));
                }
            }
            BpOp::TrainAhead { instr } => shadow.train_ahead(&instr),
            BpOp::BeginReplay => shadow.begin_replay(),
            BpOp::ClearRas => shadow.clear_ras(),
            BpOp::Checkpoint => checkpoints.push(shadow.checkpoint_speculative()),
            BpOp::Restore => match checkpoints.pop() {
                Some(cp) => shadow.restore_speculative(cp),
                None => return Err(format!("bp replay diverged at op {i}: restore without checkpoint")),
            },
            BpOp::Promote => shadow.promote_event(),
            BpOp::ResetStats => shadow.reset_stats(),
        }
    }
    let got = shadow.stats_all();
    if got != log.bp_stats {
        return Err(format!(
            "bp replay final stats diverged:\n  replay: {got:?}\n  run:    {:?}",
            log.bp_stats
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_workload::BenchmarkProfile;

    #[test]
    fn oracle_passes_on_a_small_esp_run() {
        let w = BenchmarkProfile::amazon().scaled(20_000).build(11);
        let r = check_run(&SimConfig::esp_nl(), &w).expect("oracle must pass");
        assert!(r.serial_cycles >= r.busy_cycles);
        assert!(r.mem_ops > 0);
        assert!(r.bp_ops > 0);
    }

    #[test]
    fn serial_bound_is_meaningfully_above_busy() {
        // The interval engine hides latency; on a real workload the
        // serial machine must be strictly slower, not merely equal.
        let w = BenchmarkProfile::gmaps().scaled(20_000).build(5);
        let r = check_run(&SimConfig::base(), &w).unwrap();
        assert!(r.serial_cycles > r.busy_cycles, "{} !> {}", r.serial_cycles, r.busy_cycles);
    }
}
