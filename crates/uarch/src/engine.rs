//! The interval-model execution engine.

use crate::EngineConfig;
use esp_branch::{BranchPredictor, Prediction, PredictorContext};
use esp_mem::prefetch::{DcuNextLine, NextLineInstr, StridePrefetcher};
use esp_mem::MemoryHierarchy;
use esp_obs::{CpiStack, CycleClass, NullProbe, Probe, StepRecord};
use esp_trace::{Instr, InstrKind};
use esp_types::{Cycle, LineAddr};

/// Which kind of last-level-cache miss opened a stall window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// An instruction fetch missed the LLC.
    InstrLlcMiss,
    /// A demand load missed the LLC (and did not overlap a prior miss).
    DataLlcMiss,
}

/// An exposed LLC-miss stall: idle cycles a pre-execution scheme may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stall {
    /// What missed.
    pub kind: StallKind,
    /// The cycle the stall began.
    pub start: Cycle,
    /// Exposed (idle) cycles.
    pub cycles: u64,
}

/// What happened while retiring one instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// An LLC-miss stall window, if one was exposed.
    pub stall: Option<Stall>,
    /// The fetch missed (or partially hit) the L1-I.
    pub l1i_miss: bool,
    /// The data access missed (or partially hit) the L1-D.
    pub l1d_miss: bool,
    /// The branch mispredicted.
    pub mispredict: bool,
}

impl Default for Stall {
    fn default() -> Self {
        Stall { kind: StallKind::DataLlcMiss, start: Cycle::ZERO, cycles: 0 }
    }
}

/// Where the cycles went — the coarse breakdown behind every figure.
///
/// Derived from the engine's fine-grained [`CpiStack`] by folding the
/// L2/LLC and mispredict/misfetch pairs together; see
/// [`Engine::cpi_stack`] for the unfolded version.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Issue-width and dispatch-inefficiency cycles.
    pub base: u64,
    /// Exposed instruction-fetch stall cycles.
    pub icache: u64,
    /// Exposed data-access stall cycles.
    pub dcache: u64,
    /// Branch misprediction penalties.
    pub branch: u64,
    /// Cycles with an empty event queue.
    pub idle: u64,
}

impl CycleBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> u64 {
        self.base + self.icache + self.dcache + self.branch + self.idle
    }

    /// Folds a fine-grained stack into the coarse categories.
    pub fn from_stack(s: &CpiStack) -> CycleBreakdown {
        CycleBreakdown {
            base: s.base,
            icache: s.icache_l2 + s.icache_llc,
            dcache: s.dcache_l2 + s.dcache_llc,
            branch: s.branch_mispredict + s.branch_misfetch,
            idle: s.idle,
        }
    }
}

/// Normal-mode demand counters (kept separate from the raw cache
/// statistics so runahead/ESP activity never distorts the reported
/// rates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions retired in normal mode.
    pub retired: u64,
    /// L1-I demand lookups (one per fetched line transition).
    pub l1i_accesses: u64,
    /// L1-I demand misses (including in-flight partial hits).
    pub l1i_misses: u64,
    /// L1-D demand lookups (loads and stores).
    pub l1d_accesses: u64,
    /// L1-D demand misses (including in-flight partial hits).
    pub l1d_misses: u64,
    /// Branches retired in normal mode.
    pub branches: u64,
    /// Branches mispredicted in normal mode.
    pub mispredicts: u64,
    /// Direct-target BTB misfetches (cheap decode re-steers; not counted
    /// in the misprediction rate).
    pub misfetches: u64,
    /// Instructions pre-executed in runahead mode.
    pub runahead_instrs: u64,
}

/// The interval-model core: memory hierarchy, branch predictor,
/// prefetchers, and the cycle-accounting state machine.
///
/// Drive it by calling [`Engine::step`] once per retiring instruction of
/// the normal-mode stream. The engine charges all cycles itself; the
/// returned [`StepOutcome::stall`] tells the caller how large the
/// just-charged idle window was, so a pre-execution scheme can spend it.
#[derive(Clone, Debug)]
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) bp: BranchPredictor,
    pub(crate) nl_i: NextLineInstr,
    pub(crate) dcu: DcuNextLine,
    pub(crate) stride: StridePrefetcher,
    pub(crate) now: Cycle,
    pub(crate) millis: u64,
    pub(crate) base_millis_per_instr: u64,
    pub(crate) last_fetch_line: Option<LineAddr>,
    pub(crate) last_data_llc_miss_at: Option<u64>,
    pub(crate) stack: CpiStack,
    pub(crate) stats: EngineStats,
    warm: WarmStats,
}

/// Auxiliary event counts accumulated by the functional-warming paths,
/// mirroring [`EngineStats`]'s counting rules (fetch-line dedup,
/// perfect-flag gating) but kept separate so detailed-grain measurements
/// stay unpolluted. The sampling extrapolator uses these as per-class
/// denominators and adds them to the detailed counters when reporting
/// whole-run miss totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// L1-I lookups (one per fetched line transition).
    pub l1i_accesses: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// L1-D lookups (loads and stores).
    pub l1d_accesses: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// Branches warmed.
    pub branches: u64,
    /// Branches whose warm prediction was a full mispredict.
    pub mispredicts: u64,
    /// Branches whose warm prediction was a decode re-steer.
    pub misfetches: u64,
}

impl Engine {
    /// Builds an engine with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`EngineConfig::validate`].
    pub fn new(cfg: EngineConfig) -> Self {
        cfg.validate().expect("invalid engine configuration");
        let mem = MemoryHierarchy::new(cfg.machine.hierarchy.clone());
        let bp = BranchPredictor::new(cfg.machine.branch.clone(), cfg.bp_policy);
        let base_millis_per_instr = 1000 / cfg.machine.width as u64 + cfg.timing.issue_extra_millis;
        Engine {
            mem,
            bp,
            nl_i: NextLineInstr::new(),
            dcu: DcuNextLine::new(),
            stride: StridePrefetcher::new(256),
            now: Cycle::ZERO,
            millis: 0,
            base_millis_per_instr,
            last_fetch_line: None,
            last_data_llc_miss_at: None,
            stack: CpiStack::default(),
            stats: EngineStats::default(),
            warm: WarmStats::default(),
            cfg,
        }
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The coarse cycle breakdown so far (derived from the CPI stack).
    pub fn breakdown(&self) -> CycleBreakdown {
        CycleBreakdown::from_stack(&self.stack)
    }

    /// The fine-grained CPI stack so far. Its classes partition the
    /// engine's charged cycles: `cpi_stack().total() == now()`.
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.stack
    }

    /// Records `cycles` of already-charged stall time as covered by
    /// useful pre-execution (the `pre_exec_overlap` memo; called by the
    /// ESP window spender and the runahead driver).
    pub fn note_pre_exec_overlap(&mut self, cycles: u64) {
        self.stack.pre_exec_overlap += cycles;
    }

    /// Normal-mode demand counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The memory hierarchy (for list-driven prefetches and probes).
    pub fn mem(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Mutable access to the memory hierarchy.
    pub fn mem_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.mem
    }

    /// The branch predictor.
    pub fn bp(&self) -> &BranchPredictor {
        &self.bp
    }

    /// Mutable access to the branch predictor (ESP-mode predictions and
    /// B-list replay training).
    pub fn bp_mut(&mut self) -> &mut BranchPredictor {
        &mut self.bp
    }

    /// Charges the pipeline-restart penalty paid when leaving a
    /// speculative pre-execution mode (runahead exit, or ESP-mode exit on
    /// miss return): "all instructions in the pipeline are flushed at
    /// this point" (§4.1), so the front end refills like after a branch
    /// misprediction.
    pub fn charge_pipeline_restart(&mut self) {
        let p = self.bp.mispredict_penalty();
        self.now += p;
        self.stack.charge(CycleClass::BranchMispredict, p);
    }

    /// Idles the core until `t` (empty event queue).
    pub fn idle_until(&mut self, t: Cycle) {
        if t.is_after(self.now) {
            self.stack.charge(CycleClass::Idle, t - self.now);
            self.now = t;
        }
    }

    /// Records `instrs` runahead pre-executed instructions (called by the
    /// runahead driver; exposed for the energy model).
    pub(crate) fn note_runahead_instrs(&mut self, instrs: u64) {
        self.stats.runahead_instrs += instrs;
    }

    pub(crate) fn charge_base(&mut self) {
        self.millis += self.base_millis_per_instr;
        let whole = self.millis / 1000;
        self.millis %= 1000;
        self.now += whole;
        self.stack.charge(CycleClass::Base, whole);
    }

    /// Retires one normal-mode instruction, charging all cycles.
    pub fn step(&mut self, instr: &Instr) -> StepOutcome {
        self.step_probed(instr, &mut NullProbe)
    }

    /// [`Engine::step`] with an observability probe. The probe is
    /// statically dispatched; with [`NullProbe`] this compiles to the
    /// exact same code as the unprobed path.
    pub fn step_probed<P: Probe>(&mut self, instr: &Instr, probe: &mut P) -> StepOutcome {
        let mut out = StepOutcome::default();
        // Unoverlapped per-component costs for the reference oracle; with
        // `NullProbe` the accumulation is dead code and compiles away.
        let mut rec = StepRecord { is_branch: instr.is_branch(), ..StepRecord::default() };
        self.charge_base();

        // ---- instruction fetch ------------------------------------------
        let line_bytes = self.cfg.machine.hierarchy.l1i.line_bytes;
        let fetch_line = instr.pc.line(line_bytes);
        if self.last_fetch_line != Some(fetch_line) {
            self.last_fetch_line = Some(fetch_line);
            if !self.cfg.perfect.l1i {
                self.stats.l1i_accesses += 1;
                let hit_lat = self.cfg.machine.hierarchy.l1i.hit_latency;
                let t_access = self.now;
                let r = self.mem.access_instr(fetch_line, t_access);
                // Miss-triggered one-block-lookahead: the next-line
                // request goes out alongside the demand fill, overlapping
                // the stall. (Hit-triggered NL would double-count the
                // paper's modest 13.8% NL gain.)
                if self.cfg.nl_instr && r.l1_miss {
                    if let Some(p) = self.nl_i.on_fetch(fetch_line) {
                        self.mem.prefetch_instr(p, t_access, true);
                    }
                }
                rec.fetched = 1;
                rec.fetch_latency = r.latency;
                rec.l1i_miss = r.l1_miss;
                if r.l1_miss {
                    self.stats.l1i_misses += 1;
                    out.l1i_miss = true;
                }
                let exposed = r.latency.saturating_sub(hit_lat);
                self.now += exposed;
                if exposed > 0 {
                    let class = if r.llc_miss {
                        CycleClass::IcacheLlc
                    } else {
                        CycleClass::IcacheL2
                    };
                    self.stack.charge(class, exposed);
                    probe.on_stall(class, exposed, self.now);
                }
                if r.llc_miss && exposed > 0 {
                    out.stall = Some(Stall {
                        kind: StallKind::InstrLlcMiss,
                        start: t_access,
                        cycles: exposed,
                    });
                }
            }
        }

        // ---- branch ------------------------------------------------------
        if instr.is_branch() {
            self.stats.branches += 1;
            let outcome = if self.cfg.perfect.branch {
                Prediction::Correct
            } else {
                self.bp.predict_and_update(PredictorContext::Normal, instr)
            };
            let penalty = self.bp.penalty_of(outcome);
            self.now += penalty;
            rec.branch_penalty = penalty;
            match outcome {
                Prediction::Mispredict => {
                    self.stack.charge(CycleClass::BranchMispredict, penalty);
                    probe.on_stall(CycleClass::BranchMispredict, penalty, self.now);
                    self.stats.mispredicts += 1;
                    out.mispredict = true;
                    rec.mispredict = true;
                }
                Prediction::Misfetch => {
                    self.stack.charge(CycleClass::BranchMisfetch, penalty);
                    probe.on_stall(CycleClass::BranchMisfetch, penalty, self.now);
                    self.stats.misfetches += 1;
                    rec.misfetch = true;
                }
                Prediction::Correct => {}
            }
        }

        // ---- data --------------------------------------------------------
        match instr.kind {
            InstrKind::Load { addr, .. } if !self.cfg.perfect.l1d => {
                self.stats.l1d_accesses += 1;
                let line = addr.line(line_bytes);
                let hit_lat = self.cfg.machine.hierarchy.l1d.hit_latency;
                let t_access = self.now;
                let r = self.mem.access_data(line, t_access, false);
                if self.cfg.nl_data {
                    if let Some(p) = self.dcu.on_access(line) {
                        self.mem.prefetch_data(p, t_access, true);
                    }
                }
                if self.cfg.stride {
                    if let Some(p) = self.stride.on_load(instr.pc, addr, line_bytes) {
                        self.mem.prefetch_data(p, t_access, true);
                    }
                }
                rec.data_access = true;
                rec.data_latency = r.latency;
                rec.l1d_miss = r.l1_miss;
                if r.l1_miss {
                    self.stats.l1d_misses += 1;
                    out.l1d_miss = true;
                }
                let exposed = if r.llc_miss {
                    let overlapped = self
                        .last_data_llc_miss_at
                        .is_some_and(|at| self.stats.retired - at < self.cfg.machine.rob_entries as u64);
                    self.last_data_llc_miss_at = Some(self.stats.retired);
                    if overlapped {
                        0
                    } else {
                        r.latency
                    }
                } else {
                    r.latency.saturating_sub(hit_lat) * self.cfg.timing.data_exposed_pct / 100
                };
                self.now += exposed;
                if exposed > 0 {
                    let class = if r.llc_miss {
                        CycleClass::DcacheLlc
                    } else {
                        CycleClass::DcacheL2
                    };
                    self.stack.charge(class, exposed);
                    probe.on_stall(class, exposed, self.now);
                }
                if r.llc_miss && exposed > 0 {
                    out.stall = Some(Stall {
                        kind: StallKind::DataLlcMiss,
                        start: t_access,
                        cycles: exposed,
                    });
                }
            }
            InstrKind::Store { addr } if !self.cfg.perfect.l1d => {
                // Stores retire through the store buffer: they update
                // cache state (write-allocate) but expose no latency.
                self.stats.l1d_accesses += 1;
                let line = addr.line(line_bytes);
                let r = self.mem.access_data(line, self.now, true);
                rec.data_access = true;
                rec.l1d_miss = r.l1_miss;
                if r.l1_miss {
                    self.stats.l1d_misses += 1;
                    out.l1d_miss = true;
                }
                if self.cfg.nl_data {
                    if let Some(p) = self.dcu.on_access(line) {
                        self.mem.prefetch_data(p, self.now, true);
                    }
                }
            }
            _ => {}
        }

        probe.on_step(&rec);
        self.stats.retired += 1;
        out
    }

    // ---- functional warming ---------------------------------------------
    //
    // The sampling mode's fast-forward (see `esp-core`): between detailed
    // grains the engine keeps every architectural structure trained —
    // cache tags/LRU, prefetcher state, branch-predictor tables — while
    // charging no stall cycles and recording no statistics other than the
    // retired-instruction count. The warm paths mirror `step_probed`'s
    // update decisions exactly (fetch-line dedup, perfect flags,
    // miss-triggered NL-I, every-access DCU, load-only stride) with
    // instant fills in place of timed ones.

    /// Warms the fetch path for instruction line `line`.
    #[inline]
    fn warm_fetch(&mut self, line: LineAddr) {
        if self.last_fetch_line == Some(line) {
            return;
        }
        self.last_fetch_line = Some(line);
        if self.cfg.perfect.l1i {
            return;
        }
        self.warm.l1i_accesses += 1;
        let missed = self.mem.warm_instr(line, self.now);
        if missed {
            self.warm.l1i_misses += 1;
        }
        if self.cfg.nl_instr && missed {
            if let Some(p) = self.nl_i.on_fetch(line) {
                self.mem.warm_prefetch_instr(p, self.now);
            }
        }
    }

    /// Warms the data path for a load at `pc` of `addr`.
    #[inline]
    fn warm_load(&mut self, pc: esp_types::Addr, addr: esp_types::Addr) {
        let line_bytes = self.cfg.machine.hierarchy.l1i.line_bytes;
        let line = addr.line(line_bytes);
        self.warm.l1d_accesses += 1;
        if self.mem.warm_data(line, self.now) {
            self.warm.l1d_misses += 1;
        }
        if self.cfg.nl_data {
            if let Some(p) = self.dcu.on_access(line) {
                self.mem.warm_prefetch_data(p, self.now);
            }
        }
        if self.cfg.stride {
            if let Some(p) = self.stride.on_load(pc, addr, line_bytes) {
                self.mem.warm_prefetch_data(p, self.now);
            }
        }
    }

    /// Warms the data path for a store of `addr`.
    #[inline]
    fn warm_store(&mut self, addr: esp_types::Addr) {
        let line_bytes = self.cfg.machine.hierarchy.l1i.line_bytes;
        let line = addr.line(line_bytes);
        self.warm.l1d_accesses += 1;
        if self.mem.warm_data(line, self.now) {
            self.warm.l1d_misses += 1;
        }
        if self.cfg.nl_data {
            if let Some(p) = self.dcu.on_access(line) {
                self.mem.warm_prefetch_data(p, self.now);
            }
        }
    }

    /// Functionally warms one instruction: all the state updates of
    /// [`Engine::step`], no cycle charges, no statistics beyond
    /// `retired`. Used for streams the packed warm walk cannot cover
    /// (the looper prologue, unpacked workloads).
    pub fn warm_step(&mut self, instr: &Instr) {
        let line_bytes = self.cfg.machine.hierarchy.l1i.line_bytes;
        self.warm_fetch(instr.pc.line(line_bytes));
        if instr.is_branch() {
            self.warm_branch_instr(instr);
        }
        match instr.kind {
            InstrKind::Load { addr, .. } if !self.cfg.perfect.l1d => {
                self.warm_load(instr.pc, addr)
            }
            InstrKind::Store { addr } if !self.cfg.perfect.l1d => self.warm_store(addr),
            _ => {}
        }
        self.stats.retired += 1;
    }

    /// Warms the branch predictor for one branch, counting the outcome.
    #[inline]
    fn warm_branch_instr(&mut self, instr: &Instr) {
        self.warm.branches += 1;
        if self.cfg.perfect.branch {
            return;
        }
        match self.bp.warm_update(instr) {
            Prediction::Mispredict => self.warm.mispredicts += 1,
            Prediction::Misfetch => self.warm.misfetches += 1,
            Prediction::Correct => {}
        }
    }

    /// Auxiliary event counts of the warming paths so far.
    pub fn warm_stats(&self) -> &WarmStats {
        &self.warm
    }

    /// Credits `instrs` warm-walked instructions to the retired count
    /// (the packed warm walk feeds state through the [`esp_trace::WarmSink`]
    /// impl and reports its instruction total once, in bulk).
    pub fn warm_retire(&mut self, instrs: u64) {
        self.stats.retired += instrs;
    }

    /// Advances the clock over a warmed (unmeasured) region, charging the
    /// cycles as [`CycleClass::Idle`] so the stack's conservation
    /// invariant (`cpi_stack().total() == now()`) holds and the
    /// busy-cycle figure of merit stays a function of detailed grains
    /// only.
    pub fn warm_advance(&mut self, cycles: u64) {
        self.now += cycles;
        self.stack.charge(CycleClass::Idle, cycles);
    }
}

/// A captured behavioural snapshot of an [`Engine`] at a chunk
/// boundary, used by the intra-run parallel mode's deterministic merge.
///
/// The view holds clones of every structure whose *future behaviour*
/// depends on its present contents — memory hierarchy, branch
/// predictor, prefetchers — plus the scalar pipeline state, all in the
/// canonical form compared by [`Engine::boundary_matches`]. Statistics
/// and the CPI stack are deliberately absent: the merge accounts for
/// those as per-chunk deltas, so they never participate in conflict
/// detection.
#[derive(Clone, Debug)]
pub struct BoundaryView {
    retired: u64,
    millis: u64,
    last_fetch_line: Option<LineAddr>,
    /// Retired-instruction distance to the last data LLC miss, already
    /// canonicalised: `Some` only when still within the ROB window (the
    /// only case where the overlap rule can consult it again).
    llc_miss_dist: Option<u64>,
    mem: MemoryHierarchy,
    bp: BranchPredictor,
    nl_i: NextLineInstr,
    dcu: DcuNextLine,
    stride: StridePrefetcher,
}

impl Engine {
    /// Retired-distance to the last data LLC miss in canonical form:
    /// `Some(d)` only while `d` is inside the ROB window. Beyond that
    /// the overlap rule can never fire again, so the raw value is
    /// behaviourally dead and must not cause spurious conflicts.
    fn canonical_llc_miss_dist(&self) -> Option<u64> {
        self.last_data_llc_miss_at
            .map(|at| self.stats.retired - at)
            .filter(|&d| d < u64::from(self.cfg.machine.rob_entries))
    }

    /// Captures the engine's behavioural state for a later
    /// [`Engine::boundary_matches`] comparison. Called by an intra-run
    /// chunk worker right after [`Engine::resync_chunk_entry`], so the
    /// view records what the worker *assumed* the authoritative state
    /// would be at its chunk's first event.
    pub fn boundary_view(&self) -> BoundaryView {
        BoundaryView {
            retired: self.stats.retired,
            millis: self.millis,
            last_fetch_line: self.last_fetch_line,
            llc_miss_dist: self.canonical_llc_miss_dist(),
            mem: self.mem.clone(),
            bp: self.bp.clone(),
            nl_i: self.nl_i.clone(),
            dcu: self.dcu.clone(),
            stride: self.stride.clone(),
        }
    }

    /// Whether this (authoritative) engine's behavioural state at cycle
    /// `at` matches a worker's recorded entry `view` — i.e. whether the
    /// worker's optimistic chunk simulation started from a state that
    /// produces bit-identical results to continuing serially. Returns
    /// the first mismatching component's name as the conflict reason.
    ///
    /// Statistics and charged cycles are not compared (the merge
    /// handles them as deltas); caches compare by behavioural
    /// equivalence at `at` (recency rank order, in-flight fills — see
    /// [`esp_mem::SetAssocCache::boundary_eq`]), the predictor by
    /// [`esp_branch::BranchPredictor::same_state`].
    pub fn boundary_matches(&self, view: &BoundaryView, at: Cycle) -> Result<(), &'static str> {
        if self.stats.retired != view.retired {
            return Err("retired-instruction count");
        }
        if self.millis != view.millis {
            return Err("sub-cycle residue");
        }
        if self.last_fetch_line != view.last_fetch_line {
            return Err("fetch-line dedup state");
        }
        if self.canonical_llc_miss_dist() != view.llc_miss_dist {
            return Err("LLC-miss overlap window");
        }
        if !self.nl_i.same_state(&view.nl_i) {
            return Err("next-line instruction prefetcher");
        }
        if !self.dcu.same_state(&view.dcu) {
            return Err("DCU data prefetcher");
        }
        if !self.stride.same_state(&view.stride) {
            return Err("stride prefetcher");
        }
        if !self.bp.same_state(&view.bp) {
            return Err("branch predictor");
        }
        if !self.mem.boundary_eq(&view.mem, at) {
            return Err("cache hierarchy");
        }
        Ok(())
    }

    /// Re-synchronises a functionally-warmed engine to the serial
    /// timeline at a chunk's first event: idles the clock up to `at`,
    /// synthesises the sub-cycle residue the serial path would carry
    /// (warming never charges base cycles, but every retired
    /// instruction adds exactly `base_millis_per_instr` to the residue
    /// modulo 1000), and clears the LLC-miss overlap window (warming
    /// cannot have observed a timed miss; a live one at the boundary is
    /// caught as a conflict by [`Engine::boundary_matches`]). Returns
    /// `false` — the chunk must be repaired serially — when the warm
    /// clock has already overshot `at`.
    pub fn resync_chunk_entry(&mut self, at: Cycle) -> bool {
        if self.now.is_after(at) {
            return false;
        }
        self.idle_until(at);
        self.millis = (self.stats.retired * self.base_millis_per_instr) % 1000;
        self.last_data_llc_miss_at = None;
        true
    }

    /// Shifts a chunk-exit engine `delta` cycles into the future — the
    /// intra-run merge's accept step when the authoritative predecessor
    /// finished `delta` cycles *after* the worker's assumed entry clock.
    ///
    /// Sound because every timing rule the engine applies is
    /// shift-invariant as long as the clock never waits on an absolute
    /// post time (the merge rejects chunks that idled mid-chunk before
    /// shifting): fill and stall latencies are relative to `now`, the
    /// LLC-overlap window counts retired instructions, and the sub-cycle
    /// residue advances in whole cycles. The only absolute-time state —
    /// in-flight fill completion times — is shifted along with the clock.
    /// The shift is charged to the idle class purely to preserve the
    /// `cpi_stack().total() == now()` invariant; the merge reports time
    /// from per-chunk stack *deltas*, so the charge never reaches a
    /// report.
    pub fn shift_chunk_exit(&mut self, delta: u64) {
        if delta == 0 {
            return;
        }
        self.mem.shift_in_flight(self.now, delta);
        self.now += delta;
        self.stack.idle += delta;
    }
}

impl esp_trace::WarmSink for Engine {
    #[inline]
    fn warm_fetch_line(&mut self, line: u64) {
        self.warm_fetch(LineAddr::new(line));
    }

    #[inline]
    fn warm_load(&mut self, pc: u64, addr: u64) {
        if !self.cfg.perfect.l1d {
            Engine::warm_load(self, esp_types::Addr::new(pc), esp_types::Addr::new(addr));
        }
    }

    #[inline]
    fn warm_store(&mut self, addr: u64) {
        if !self.cfg.perfect.l1d {
            Engine::warm_store(self, esp_types::Addr::new(addr));
        }
    }

    #[inline]
    fn warm_branch(&mut self, instr: &Instr) {
        self.warm_branch_instr(instr);
    }
}

/// A functional-warming tee: forwards every [`esp_trace::WarmSink`]
/// callback to the engine *and* to a second sink. The learned sampling
/// mode tees its feature extractor next to the engine during fully
/// warmed grains, so the extractor observes exactly the callback
/// sequence it would see alone during skipped grains — no train/predict
/// feature skew.
pub struct WarmTee<'a, S: esp_trace::WarmSink> {
    engine: &'a mut Engine,
    extra: &'a mut S,
}

impl<'a, S: esp_trace::WarmSink> WarmTee<'a, S> {
    /// Tees `extra` next to `engine`.
    pub fn new(engine: &'a mut Engine, extra: &'a mut S) -> Self {
        WarmTee { engine, extra }
    }
}

impl<S: esp_trace::WarmSink> esp_trace::WarmSink for WarmTee<'_, S> {
    #[inline]
    fn warm_fetch_line(&mut self, line: u64) {
        esp_trace::WarmSink::warm_fetch_line(self.engine, line);
        self.extra.warm_fetch_line(line);
    }

    #[inline]
    fn warm_load(&mut self, pc: u64, addr: u64) {
        esp_trace::WarmSink::warm_load(self.engine, pc, addr);
        self.extra.warm_load(pc, addr);
    }

    #[inline]
    fn warm_store(&mut self, addr: u64) {
        esp_trace::WarmSink::warm_store(self.engine, addr);
        self.extra.warm_store(addr);
    }

    #[inline]
    fn warm_branch(&mut self, instr: &Instr) {
        esp_trace::WarmSink::warm_branch(self.engine, instr);
        self.extra.warm_branch(instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerfectFlags;
    use esp_types::Addr;

    fn alu_at(pc: u64) -> Instr {
        Instr::alu(Addr::new(pc))
    }

    #[test]
    fn base_cost_accounting() {
        let mut e = Engine::new(EngineConfig {
            perfect: PerfectFlags::all(),
            ..EngineConfig::baseline()
        });
        // 4-wide + 500 extra milli-cycles = 750 millicycles per instr.
        for i in 0..1000u64 {
            e.step(&alu_at(0x1000 + i * 4));
        }
        assert_eq!(e.now().as_u64(), 750);
        assert_eq!(e.breakdown().base, 750);
        assert_eq!(e.stats().retired, 1000);
    }

    #[test]
    fn cold_fetch_charges_and_reports_stall() {
        let mut e = Engine::new(EngineConfig::baseline());
        let out = e.step(&alu_at(0x40_0000));
        assert!(out.l1i_miss);
        let stall = out.stall.expect("cold fetch is an LLC miss");
        assert_eq!(stall.kind, StallKind::InstrLlcMiss);
        assert_eq!(stall.cycles, 99); // 101 total minus 2-cycle hit
        assert_eq!(e.breakdown().icache, 99);
        // Same line again: no new fetch charge.
        let out2 = e.step(&alu_at(0x40_0004));
        assert!(!out2.l1i_miss);
        assert_eq!(e.breakdown().icache, 99);
    }

    #[test]
    fn data_llc_misses_overlap_within_rob() {
        let mut e = Engine::new(EngineConfig::baseline());
        // Two cold loads close together: the second overlaps the first.
        let l1 = Instr::load(Addr::new(0x1000), Addr::new(0x10_0000), false);
        let l2 = Instr::load(Addr::new(0x1004), Addr::new(0x20_0000), false);
        let o1 = e.step(&l1);
        assert!(o1.stall.is_some());
        let d_before = e.breakdown().dcache;
        let o2 = e.step(&l2);
        assert!(o2.stall.is_none(), "overlapped miss exposes no stall");
        assert_eq!(e.breakdown().dcache, d_before);
    }

    #[test]
    fn distant_data_misses_both_stall() {
        let mut e = Engine::new(EngineConfig::baseline());
        e.step(&Instr::load(Addr::new(0x1000), Addr::new(0x10_0000), false));
        // Retire a ROB's worth of ALU work in between.
        for i in 0..100u64 {
            e.step(&alu_at(0x1000 + i * 4));
        }
        let out = e.step(&Instr::load(Addr::new(0x2000), Addr::new(0x20_0000), false));
        assert!(out.stall.is_some());
    }

    #[test]
    fn l2_hit_data_charge_is_partial() {
        let mut e = Engine::new(EngineConfig::baseline());
        let addr = Addr::new(0x30_0000);
        e.step(&Instr::load(Addr::new(0x1000), addr, false));
        // Evict from L1-D with two conflicting lines (2-way, 256 sets).
        let conflict1 = Addr::new(0x30_0000 + 256 * 64);
        let conflict2 = Addr::new(0x30_0000 + 512 * 64);
        for _ in 0..2 {
            e.step(&Instr::load(Addr::new(0x1010), conflict1, false));
            e.step(&Instr::load(Addr::new(0x1014), conflict2, false));
        }
        e.idle_until(Cycle::new(10_000));
        let d_before = e.breakdown().dcache;
        let out = e.step(&Instr::load(Addr::new(0x1004), addr, false));
        assert!(out.l1d_miss);
        assert!(out.stall.is_none());
        // Exposed charge: (2 + 21 - 2) * 60% = 12 cycles.
        assert_eq!(e.breakdown().dcache - d_before, 12);
    }

    #[test]
    fn mispredict_penalty_charged() {
        let mut e = Engine::new(EngineConfig::baseline());
        // Warm the fetch path first to isolate the branch charge.
        e.step(&alu_at(0x1000));
        let b_before = e.breakdown().branch;
        // A cold *forward taken* branch defeats BTFN static prediction:
        // full misprediction penalty.
        e.step(&Instr::cond_branch(Addr::new(0x1004), true, Addr::new(0x2000)));
        assert_eq!(e.breakdown().branch - b_before, 15);
        assert_eq!(e.stats().mispredicts, 1);
        assert_eq!(e.stats().branches, 1);
        // A cold *backward taken* branch is BTFN-correct in direction but
        // misses the BTB: only the decode re-steer penalty.
        let b_before = e.breakdown().branch;
        e.step(&Instr::cond_branch(Addr::new(0x1008), true, Addr::new(0x1000)));
        assert_eq!(e.breakdown().branch - b_before, 6);
        assert_eq!(e.stats().misfetches, 1);
        assert_eq!(e.stats().mispredicts, 1);
    }

    #[test]
    fn perfect_flags_remove_charges() {
        let mut e = Engine::new(EngineConfig {
            perfect: PerfectFlags::all(),
            ..EngineConfig::baseline()
        });
        e.step(&Instr::load(Addr::new(0x40_0000), Addr::new(0x9_0000), false));
        e.step(&Instr::cond_branch(Addr::new(0x40_0004), true, Addr::new(0x10)));
        assert_eq!(e.breakdown().icache, 0);
        assert_eq!(e.breakdown().dcache, 0);
        assert_eq!(e.breakdown().branch, 0);
        assert_eq!(e.stats().mispredicts, 0);
        assert_eq!(e.stats().l1i_accesses, 0, "perfect L1-I skips demand counting");
    }

    #[test]
    fn next_line_instr_prefetch_helps_sequential_fetch() {
        let run = |nl: bool| {
            let mut cfg = EngineConfig::baseline();
            cfg.nl_instr = nl;
            let mut e = Engine::new(cfg);
            // March straight through 64 lines of code.
            for i in 0..(64 * 16) {
                e.step(&alu_at(0x40_0000 + i * 4));
            }
            e.breakdown().icache
        };
        let without = run(false);
        let with = run(true);
        // Miss-triggered one-block-lookahead roughly halves sequential
        // miss cost (prefetched lines don't themselves trigger).
        assert!(
            with < without * 3 / 4,
            "next-line should cut sequential fetch stalls: {with} vs {without}"
        );
    }

    #[test]
    fn stride_prefetch_helps_strided_loads() {
        let run = |stride: bool| {
            let mut cfg = EngineConfig::baseline();
            cfg.stride = stride;
            let mut e = Engine::new(cfg);
            for i in 0..256u64 {
                e.step(&Instr::load(Addr::new(0x1000), Addr::new(0x10_0000 + i * 256), false));
                // Space the loads beyond the ROB window so misses do not
                // just overlap away.
                for j in 0..100 {
                    e.step(&alu_at(0x2000 + j * 4));
                }
            }
            e.breakdown().dcache
        };
        let without = run(false);
        let with = run(true);
        assert!(with < without, "stride prefetching should help: {with} vs {without}");
    }

    #[test]
    fn idle_accounting() {
        let mut e = Engine::new(EngineConfig::baseline());
        e.idle_until(Cycle::new(500));
        assert_eq!(e.breakdown().idle, 500);
        // Idling backwards is a no-op.
        e.idle_until(Cycle::new(100));
        assert_eq!(e.now().as_u64(), 500);
    }

    #[test]
    fn warm_step_trains_state_without_cycles_or_stats() {
        let mut e = Engine::new(EngineConfig::baseline());
        e.warm_step(&Instr::load(Addr::new(0x40_0000), Addr::new(0x9_0000), false));
        assert_eq!(e.now().as_u64(), 0);
        assert_eq!(e.cpi_stack().total(), 0);
        assert_eq!(e.stats().l1i_accesses, 0);
        assert_eq!(e.stats().l1d_accesses, 0);
        assert_eq!(e.stats().retired, 1);
        // The warmed data line hits in a detailed step (fetch stays on
        // the warmed line, so only the data path is exercised).
        let out = e.step(&Instr::load(Addr::new(0x40_0004), Addr::new(0x9_0000), false));
        assert!(out.stall.is_none());
        assert!(!out.l1d_miss);
        // Leave the warmed code line and come back: it hits too.
        e.step(&alu_at(0x50_0000));
        let out = e.step(&alu_at(0x40_0008));
        assert!(!out.l1i_miss);
    }

    #[test]
    fn warm_sink_walk_matches_warm_step() {
        use esp_trace::PackedTrace;
        // Warming via the packed walk and via per-instruction warm_step
        // must leave identical cache/predictor state.
        let instrs = vec![
            Instr::alu(Addr::new(0x40_0000)),
            Instr::load(Addr::new(0x40_0004), Addr::new(0x9_0000), false),
            Instr::store(Addr::new(0x40_0008), Addr::new(0xa_0040)),
            Instr::cond_branch(Addr::new(0x40_000c), true, Addr::new(0x40_0000)),
        ];
        let packed = PackedTrace::from_instrs(&instrs);
        let mut walked = Engine::new(EngineConfig::next_line());
        let line_bytes = walked.config().machine.hierarchy.l1i.line_bytes;
        let n = packed.warm_walk(line_bytes, &mut walked);
        walked.warm_retire(n);
        let mut stepped = Engine::new(EngineConfig::next_line());
        for i in &instrs {
            stepped.warm_step(i);
        }
        assert_eq!(walked.stats().retired, stepped.stats().retired);
        assert_eq!(walked.mem().snapshot(), stepped.mem().snapshot());
        assert!(walked.mem().l1d().probe(Addr::new(0x9_0000).line(line_bytes)));
        assert!(walked.mem().l1i().probe(Addr::new(0x40_0000).line(line_bytes)));
    }

    #[test]
    fn warm_advance_charges_idle() {
        let mut e = Engine::new(EngineConfig::baseline());
        e.warm_advance(123);
        assert_eq!(e.now().as_u64(), 123);
        assert_eq!(e.breakdown().idle, 123);
        assert_eq!(e.cpi_stack().total(), 123);
    }

    #[test]
    fn breakdown_total_matches_now() {
        let mut e = Engine::new(EngineConfig::next_line());
        let mut pc = 0x40_0000u64;
        for i in 0..5000u64 {
            let instr = match i % 7 {
                0 => Instr::load(Addr::new(pc), Addr::new(0x10_0000 + i * 64), false),
                3 => Instr::store(Addr::new(pc), Addr::new(0x20_0000 + i * 8)),
                5 => Instr::cond_branch(Addr::new(pc), i % 2 == 0, Addr::new(0x40_0000)),
                _ => alu_at(pc),
            };
            if let Some(t) = instr.branch_taken().filter(|&t| t).and(instr.branch_target()) {
                pc = t.as_u64();
            } else {
                pc += 4;
            }
            e.step(&instr);
        }
        // now == total breakdown minus the sub-cycle residue.
        let total = e.breakdown().total();
        assert_eq!(e.now().as_u64(), total);
    }
}
