//! Runahead execution (Dundas & Mudge '97, Mutlu et al. '03) — the
//! paper's main comparison point.
//!
//! When a load misses the LLC and blocks retirement, the core checkpoints
//! and keeps executing the *same* instruction stream speculatively until
//! the miss returns. Pre-executed loads warm the data caches; branches
//! train the predictor; results are thrown away. The two structural
//! limitations the paper exploits (§1, §6.1) fall out of the model:
//!
//! * runahead **stalls on instruction-cache misses inside the window**
//!   (the front end must still fetch), so it cannot run far into cold
//!   code and barely helps the L1-I;
//! * loads whose addresses **chase in-flight data** (`chained` in the
//!   trace model) cannot execute and prefetch nothing;
//! * the window ends when the blocking miss returns — roughly one memory
//!   latency of progress per episode, versus ESP's whole-event jumps.

use crate::Engine;
use esp_branch::PredictorContext;
use esp_trace::{EventStream, InstrKind};
use esp_types::Cycle;

/// Outstanding-miss budget of one runahead episode. Runahead's parallel
/// miss discovery is bounded by the machine's MSHRs and LSQ (16 entries
/// in Fig. 7): once the episode has that many fills in flight, further
/// loads cannot issue — one of the structural limits ESP's whole-event
/// jumps do not share.
const RUNAHEAD_MSHRS: u32 = 10;

/// Why a runahead episode ended, plus what it did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunaheadOutcome {
    /// Instructions pre-executed in the window.
    pub instrs: u64,
    /// Window cycles the episode actually consumed (entry/exit pipeline
    /// drains excluded) — the runahead-overlap component of the CPI
    /// stack's `pre_exec_overlap` memo.
    pub utilized_cycles: u64,
    /// Window cycles spent stalled on instruction fetch.
    pub ifetch_stall_cycles: u64,
    /// Loads skipped because their address chased the in-flight miss.
    pub skipped_chained_loads: u64,
    /// Accesses dropped because the episode's MSHRs were exhausted.
    pub mshr_drops: u64,
    /// The episode ended early on an unresolvable mispredicted branch.
    pub wrong_path: bool,
    /// The event stream ended inside the window.
    pub stream_ended: bool,
}

impl Engine {
    /// Spends an LLC-miss stall window on runahead execution.
    ///
    /// `stream` is the *current* event's cursor positioned just past the
    /// blocking load; it is forked, so the caller's cursor is untouched.
    /// `window` is the stall length in cycles and `start` its first cycle
    /// (both from [`crate::Stall`]). Cache fills and predictor updates are
    /// real; cycle time is not advanced (the stall was already charged).
    pub fn run_runahead(
        &mut self,
        stream: &dyn EventStream,
        start: Cycle,
        window: u64,
    ) -> RunaheadOutcome {
        self.run_runahead_flavored(stream, start, window, false)
    }

    /// [`Engine::run_runahead`] with the Fig. 11b "Runahead-D" flavour:
    /// when `data_only` is set, only the data cache is warmed — the
    /// branch predictor is untouched and instruction fetches neither fill
    /// nor train anything (their latency is still paid out of the
    /// window via non-updating probes).
    pub fn run_runahead_flavored(
        &mut self,
        stream: &dyn EventStream,
        start: Cycle,
        window: u64,
        data_only: bool,
    ) -> RunaheadOutcome {
        self.run_runahead_cursor(stream.fork(), start, window, data_only)
    }

    /// The runahead episode loop over an already-forked cursor. Generic
    /// so the packed-arena fast path (see `Workload::as_packed`) runs it
    /// over a concrete [`EventStream`] — no heap-allocated fork, no
    /// virtual dispatch per pre-executed instruction. Timing is
    /// identical on both paths.
    pub fn run_runahead_cursor<C: EventStream>(
        &mut self,
        mut cursor: C,
        start: Cycle,
        window: u64,
        data_only: bool,
    ) -> RunaheadOutcome {
        let checkpoint = self.bp_mut().checkpoint_speculative();
        let mut out = RunaheadOutcome::default();
        // Entering and leaving runahead each cost a pipeline drain/refill
        // that the episode pays out of its own window, like the ESP-mode
        // context switches.
        let initial_budget_millis = (window * 1000).saturating_sub(20 * 1000);
        let mut budget_millis = initial_budget_millis;
        let base = 1000 / self.config().machine.width as u64
            + self.config().timing.issue_extra_millis;
        let line_bytes = self.config().machine.hierarchy.l1i.line_bytes;
        let mut last_line = None;
        let mut mshrs_used = 0u32;
        let consumed = |budget_millis: u64| start + (window * 1000 - budget_millis) / 1000;

        while budget_millis > base {
            let Some(instr) = cursor.next_instr() else {
                out.stream_ended = true;
                break;
            };
            budget_millis -= base;
            let t = consumed(budget_millis);
            out.instrs += 1;

            // Fetch: runahead still goes through the L1-I and stalls (in
            // the window) on misses — fills are real, so it warms lines
            // it reaches, but cannot reach far past a miss.
            let line = instr.pc.line(line_bytes);
            if last_line != Some(line) {
                last_line = Some(line);
                let hit = self.config().machine.hierarchy.l1i.hit_latency;
                let nl = self.config().nl_instr;
                let exposed = if data_only {
                    // Non-updating probes: pay the latency, fill nothing.
                    if self.mem().l1i().probe(line) {
                        0
                    } else {
                        self.mem().bypass_latency(line).0.saturating_sub(hit)
                    }
                } else {
                    let r = self.mem_mut().access_instr(line, t);
                    if nl && r.l1_miss {
                        if let Some(p) = self.nl_line_hint(line) {
                            self.mem_mut().prefetch_instr(p, t, true);
                        }
                    }
                    r.latency.saturating_sub(hit)
                };
                let charged = (exposed * 1000).min(budget_millis);
                budget_millis -= charged;
                out.ifetch_stall_cycles += charged / 1000;
            }

            // Branches with ready inputs resolve in runahead and train
            // the shared predictor tables. A branch the predictor got
            // wrong *and* whose inputs depend on the blocking miss cannot
            // be corrected, so the episode wanders onto the wrong path
            // and is useless from there on — the structural reason
            // runahead cannot run far in branchy code (§1). Without
            // register dependence tracking, a deterministic hash decides
            // which mispredicted branches were unresolvable.
            if instr.is_branch() && !data_only {
                let outcome = self.bp_mut().predict_and_update(PredictorContext::Normal, &instr);
                let penalty = self.bp().penalty_of(outcome) * 1000;
                budget_millis = budget_millis.saturating_sub(penalty);
                if outcome == esp_branch::Prediction::Mispredict {
                    let unresolvable =
                        esp_types::SplitMix64::derive(instr.pc.as_u64(), out.instrs)
                            .is_multiple_of(2);
                    if unresolvable {
                        out.wrong_path = true;
                        break;
                    }
                }
            }

            match instr.kind {
                InstrKind::Load { addr, chained } => {
                    if chained {
                        // Address depends on in-flight data: invalid in
                        // runahead, nothing to prefetch.
                        out.skipped_chained_loads += 1;
                    } else if mshrs_used < RUNAHEAD_MSHRS {
                        // Parallel miss discovery is runahead's whole
                        // point — up to the MSHR budget.
                        let line = addr.line(line_bytes);
                        if !self.mem().l1d().probe(line) {
                            mshrs_used += 1;
                        }
                        self.mem_mut().access_data(line, t, false);
                    } else {
                        out.mshr_drops += 1;
                    }
                }
                InstrKind::Store { addr } => {
                    // Runahead stores do not update memory, but they do
                    // prefetch their lines (write-allocate warming).
                    let line = addr.line(line_bytes);
                    if mshrs_used < RUNAHEAD_MSHRS {
                        if !self.mem().l1d().probe(line) {
                            mshrs_used += 1;
                        }
                        self.mem_mut().access_data(line, t, true);
                    } else {
                        out.mshr_drops += 1;
                    }
                }
                _ => {}
            }
        }
        self.bp_mut().restore_speculative(checkpoint);
        self.note_runahead_instrs(out.instrs);
        out.utilized_cycles = (initial_budget_millis - budget_millis) / 1000;
        self.note_pre_exec_overlap(out.utilized_cycles);
        out
    }

    /// Next-line hint used inside runahead without borrowing the real
    /// NL prefetcher state (runahead episodes are short; a stateless
    /// next-line hint is equivalent for the line-transition stream).
    fn nl_line_hint(&self, line: esp_types::LineAddr) -> Option<esp_types::LineAddr> {
        Some(line.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use esp_trace::{Instr, VecEventStream};
    use esp_types::Addr;

    /// A stream of loads touching distinct lines with ALU padding.
    fn load_stream(n: usize, base: u64, chained: bool) -> VecEventStream {
        let mut v = Vec::new();
        for i in 0..n as u64 {
            v.push(Instr::load(Addr::new(0x1000 + i * 16), Addr::new(base + i * 64), chained));
            v.push(Instr::alu(Addr::new(0x1004 + i * 16)));
            v.push(Instr::alu(Addr::new(0x1008 + i * 16)));
        }
        VecEventStream::new(v)
    }

    /// Pre-warm the code lines the synthetic streams fetch from, so the
    /// tests isolate data-side behaviour.
    fn warm_code(e: &mut Engine) {
        for i in 0..32u64 {
            e.mem_mut().prefetch_instr(Addr::new(0x1000 + i * 64).line(64), Cycle::ZERO, true);
        }
    }

    #[test]
    fn runahead_warms_future_loads() {
        let mut e = Engine::new(EngineConfig::baseline());
        warm_code(&mut e);
        let stream = load_stream(30, 0x50_0000, false);
        let out = e.run_runahead(&stream, Cycle::new(10_000), 101);
        assert!(out.instrs > 20, "instrs={}", out.instrs);
        // The first future lines are now resident (in flight or filled).
        assert!(e.mem().l1d().probe(Addr::new(0x50_0000).line(64)));
    }

    #[test]
    fn chained_loads_prefetch_nothing() {
        let mut e = Engine::new(EngineConfig::baseline());
        warm_code(&mut e);
        let stream = load_stream(30, 0x60_0000, true);
        let out = e.run_runahead(&stream, Cycle::new(10_000), 101);
        assert!(out.skipped_chained_loads > 0);
        assert!(!e.mem().l1d().probe(Addr::new(0x60_0000).line(64)));
    }

    #[test]
    fn icache_misses_burn_the_window() {
        let mut e = Engine::new(EngineConfig::baseline());
        // Code marching through cold lines: every 16th instruction is a
        // new line, each a 99-cycle window stall.
        let v: Vec<Instr> = (0..2000u64).map(|i| Instr::alu(Addr::new(0x40_0000 + i * 4))).collect();
        let stream = VecEventStream::new(v);
        let out = e.run_runahead(&stream, Cycle::ZERO, 101);
        assert!(out.instrs < 40, "cold code should throttle runahead: {}", out.instrs);
        assert!(out.ifetch_stall_cycles > 50);
    }

    #[test]
    fn window_bounds_progress() {
        let mut e = Engine::new(EngineConfig::baseline());
        // Warm the code line first so fetch is free.
        e.mem_mut().prefetch_instr(Addr::new(0x1000).line(64), Cycle::ZERO, true);
        let v: Vec<Instr> = (0..10_000).map(|i| Instr::alu(Addr::new(0x1000 + (i % 8) * 4))).collect();
        let stream = VecEventStream::new(v);
        let out = e.run_runahead(&stream, Cycle::new(1000), 101);
        // 101 cycles at 0.75 CPI ≈ 134 instructions.
        assert!((100..160).contains(&(out.instrs as i64)), "instrs={}", out.instrs);
        assert!(!out.stream_ended);
    }

    #[test]
    fn short_stream_ends_cleanly() {
        let mut e = Engine::new(EngineConfig::baseline());
        let stream = VecEventStream::new(vec![Instr::alu(Addr::new(0x1000)); 5]);
        let out = e.run_runahead(&stream, Cycle::ZERO, 500);
        assert!(out.stream_ended);
        assert_eq!(out.instrs, 5);
    }

    #[test]
    fn caller_cursor_is_untouched() {
        let mut e = Engine::new(EngineConfig::baseline());
        let stream = load_stream(10, 0x70_0000, false);
        let before = stream.executed();
        e.run_runahead(&stream, Cycle::ZERO, 101);
        assert_eq!(stream.executed(), before);
    }

    #[test]
    fn runahead_counts_into_stats() {
        let mut e = Engine::new(EngineConfig::baseline());
        let stream = load_stream(10, 0x80_0000, false);
        let out = e.run_runahead(&stream, Cycle::ZERO, 101);
        assert_eq!(e.stats().runahead_instrs, out.instrs);
    }
}
