//! Idealised components for the Fig. 3 potential study.

/// Which components to idealise. A perfect L1 never misses; a perfect
/// branch predictor never mispredicts. Fig. 3 shows that web applications
/// nearly double in performance with all three perfect, with the L1-I
/// dominating — the motivation for ESP's I-list-first design.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfectFlags {
    /// Instruction fetches always hit.
    pub l1i: bool,
    /// Data accesses always hit.
    pub l1d: bool,
    /// Branches always predict correctly.
    pub branch: bool,
}

impl PerfectFlags {
    /// Nothing idealised (the real machine).
    pub const fn none() -> Self {
        PerfectFlags { l1i: false, l1d: false, branch: false }
    }

    /// Only the instruction cache is perfect.
    pub const fn perfect_l1i() -> Self {
        PerfectFlags { l1i: true, l1d: false, branch: false }
    }

    /// Only the data cache is perfect.
    pub const fn perfect_l1d() -> Self {
        PerfectFlags { l1i: false, l1d: true, branch: false }
    }

    /// Only the branch predictor is perfect.
    pub const fn perfect_branch() -> Self {
        PerfectFlags { l1i: false, l1d: false, branch: true }
    }

    /// Everything perfect.
    pub const fn all() -> Self {
        PerfectFlags { l1i: true, l1d: true, branch: true }
    }

    /// Whether any component is idealised.
    pub const fn any(self) -> bool {
        self.l1i || self.l1d || self.branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(!PerfectFlags::none().any());
        assert!(PerfectFlags::perfect_l1i().l1i);
        assert!(!PerfectFlags::perfect_l1i().l1d);
        assert!(PerfectFlags::perfect_l1d().l1d);
        assert!(PerfectFlags::perfect_branch().branch);
        let all = PerfectFlags::all();
        assert!(all.l1i && all.l1d && all.branch && all.any());
        assert_eq!(PerfectFlags::default(), PerfectFlags::none());
    }
}
