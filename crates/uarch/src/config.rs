//! Machine and engine configuration.

use crate::PerfectFlags;
use esp_branch::{BranchConfig, ContextPolicy};
use esp_mem::HierarchyConfig;
use esp_types::{Error, Result};

/// The core parameters of Fig. 7.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Issue/retire width.
    pub width: u32,
    /// Reorder-buffer entries — also the window of the MLP overlap rule.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// Core frequency in MHz (used only for reporting; the model is in
    /// cycles).
    pub freq_mhz: u32,
    /// Memory hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor sizing.
    pub branch: BranchConfig,
}

impl MachineConfig {
    /// The paper's baseline, modelled on Samsung's Exynos 5250: 4-wide
    /// out-of-order at 1.66 GHz, 96-entry ROB, 16-entry LSQ.
    pub fn exynos5250() -> Self {
        MachineConfig {
            width: 4,
            rob_entries: 96,
            lsq_entries: 16,
            freq_mhz: 1660,
            hierarchy: HierarchyConfig::exynos5250(),
            branch: BranchConfig::pentium_m(),
        }
    }

    /// Validates all nested configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero width/ROB/LSQ or any
    /// nested configuration error.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.rob_entries == 0 || self.lsq_entries == 0 {
            return Err(Error::invalid_config("width/rob/lsq must be positive"));
        }
        self.hierarchy.validate()?;
        self.branch.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::exynos5250()
    }
}

/// Interval-model calibration knobs (documented in `DESIGN.md` §3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingParams {
    /// Extra issue cost per instruction in milli-cycles, on top of
    /// `1000 / width`. Stands in for dependence chains, LSQ pressure and
    /// other dispatch inefficiency; calibrated so "perfect everything"
    /// roughly doubles baseline performance (Fig. 3).
    pub issue_extra_millis: u64,
    /// Percentage of a data L2-hit (or in-flight) latency that the
    /// out-of-order window fails to hide.
    pub data_exposed_pct: u64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams { issue_extra_millis: 500, data_exposed_pct: 60 }
    }
}

/// Everything an [`crate::Engine`] needs: machine, timing, prefetcher
/// switches, perfect-component flags, and the branch-context policy.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Core and memory configuration.
    pub machine: MachineConfig,
    /// Interval-model calibration.
    pub timing: TimingParams,
    /// Next-line instruction prefetcher enabled.
    pub nl_instr: bool,
    /// DCU-style next-line data prefetcher enabled.
    pub nl_data: bool,
    /// Stride data prefetcher enabled.
    pub stride: bool,
    /// Idealised components (Fig. 3).
    pub perfect: PerfectFlags,
    /// Branch-predictor context replication policy.
    pub bp_policy: ContextPolicy,
}

impl EngineConfig {
    /// The no-prefetch baseline all of Fig. 9 normalises to.
    pub fn baseline() -> Self {
        EngineConfig {
            machine: MachineConfig::exynos5250(),
            timing: TimingParams::default(),
            nl_instr: false,
            nl_data: false,
            stride: false,
            perfect: PerfectFlags::none(),
            bp_policy: ContextPolicy::SeparatePir,
        }
    }

    /// Baseline plus next-line prefetching on both sides ("NL").
    pub fn next_line() -> Self {
        EngineConfig { nl_instr: true, nl_data: true, ..Self::baseline() }
    }

    /// Next-line plus the stride prefetcher ("NL + S") — the strongest
    /// non-speculative baseline in Fig. 9.
    pub fn next_line_stride() -> Self {
        EngineConfig { stride: true, ..Self::next_line() }
    }

    /// Validates nested configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineConfig::validate`], and rejects a zero
    /// `data_exposed_pct` above 100.
    pub fn validate(&self) -> Result<()> {
        self.machine.validate()?;
        if self.timing.data_exposed_pct > 100 {
            return Err(Error::invalid_config("data_exposed_pct must be <= 100"));
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        MachineConfig::exynos5250().validate().unwrap();
        EngineConfig::baseline().validate().unwrap();
        EngineConfig::next_line().validate().unwrap();
        EngineConfig::next_line_stride().validate().unwrap();
    }

    #[test]
    fn preset_flags() {
        let b = EngineConfig::baseline();
        assert!(!b.nl_instr && !b.nl_data && !b.stride);
        let nl = EngineConfig::next_line();
        assert!(nl.nl_instr && nl.nl_data && !nl.stride);
        let nls = EngineConfig::next_line_stride();
        assert!(nls.stride);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = EngineConfig::baseline();
        c.machine.width = 0;
        assert!(c.validate().is_err());
        let mut c = EngineConfig::baseline();
        c.timing.data_exposed_pct = 150;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fig7_values() {
        let m = MachineConfig::exynos5250();
        assert_eq!(m.width, 4);
        assert_eq!(m.rob_entries, 96);
        assert_eq!(m.lsq_entries, 16);
        assert_eq!(m.hierarchy.mem_latency, 101);
        assert_eq!(m.branch.mispredict_penalty, 15);
    }
}
