//! Interval-style out-of-order timing model with runahead execution.
//!
//! This crate is the CPU-core substrate of the ESP reproduction: an
//! interval simulation (the same abstraction level as the SniperSim
//! infrastructure the paper modified, §5) of the paper's 4-wide,
//! 96-entry-ROB baseline core (Fig. 7).
//!
//! Instructions are processed in retire order. Each charges a base issue
//! cost (pipeline width plus a dispatch-inefficiency adder that stands in
//! for dependence chains and LSQ pressure), and the model adds *exposed*
//! stall cycles for the three penalty sources the paper's evaluation is
//! about:
//!
//! * instruction-fetch misses (fully exposed: the front end starves),
//! * data misses (L2 hits partially hidden by out-of-order execution;
//!   last-level-cache misses fully exposed unless they overlap a prior
//!   outstanding miss within a ROB's worth of instructions — the MLP
//!   rule),
//! * branch mispredictions (15-cycle pipeline restart).
//!
//! A stalled LLC miss is returned to the caller as a [`Stall`] *window*:
//! the cycles the core would otherwise idle. The driver (the `esp-core`
//! crate) spends those windows on ESP pre-execution; this crate's own
//! [`Engine::run_runahead`] spends them on classic runahead execution —
//! pre-executing the *same* event past the blocking load, warming the
//! data (and incidentally instruction) caches and the branch predictor,
//! skipping loads whose addresses chase in-flight data, and stalling (in
//! the window) on instruction-cache misses, which is why runahead cannot
//! fix the front end (§1, §6.1).
//!
//! [`PerfectFlags`] short-circuits any subset of {L1-I, L1-D, branch
//! predictor} to ideal, which is how Fig. 3's potential study is run.
//!
//! # Examples
//!
//! ```
//! use esp_uarch::{Engine, EngineConfig};
//! use esp_trace::Instr;
//! use esp_types::Addr;
//!
//! let mut e = Engine::new(EngineConfig::baseline());
//! let out = e.step(&Instr::load(Addr::new(0x100), Addr::new(0x8_0000), false));
//! assert!(out.stall.is_some()); // cold LLC miss: a pre-execution window
//! assert!(e.now().as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod kernel;
mod perfect;
mod runahead;

pub use config::{EngineConfig, MachineConfig, TimingParams};
pub use engine::{
    BoundaryView, CycleBreakdown, Engine, EngineStats, Stall, StallKind, StepOutcome, WarmStats,
    WarmTee,
};
pub use kernel::{KernelParams, KindTable};
pub use perfect::PerfectFlags;
pub use runahead::RunaheadOutcome;
