//! Per-configuration specialised simulation kernels.
//!
//! The generic [`Engine::step_probed`] path decodes a 32-byte
//! [`Instr`], matches on its kind enum, and re-reads configuration
//! fields (line size, hit latencies, perfect/prefetcher flags) on every
//! retired instruction. For a matrix run that is pure overhead: the
//! configuration is fixed for the whole simulation, and packed workloads
//! already hold the stream as raw kind bytes and operand words.
//!
//! This module *lowers* the active configuration once per run into
//!
//! * [`KernelParams`] — the config-dependent constants of the hot loop,
//!   flattened (line shift instead of line bytes, hit latencies, ROB
//!   size, exposure percentage, perfect/NL flags), and
//! * [`KindTable`] — a flat 8-entry function table indexed by the packed
//!   kind tag. Each entry is the kind-specific half of a step
//!   (branch-predict or data-access), monomorphised over the
//!   configuration axes that matter for it (perfect-L1D, DCU next-line,
//!   stride), so e.g. a Base-config load never tests the stride flag and
//!   a perfect-branch config never touches the predictor.
//!
//! [`Engine::step_raw`] then fuses decode → fetch → predict → access →
//! charge into one pass over the raw step: the shared prefix (base
//! charge + fetch-line dedup + L1-I access) runs inline, the kind
//! dispatch is one indexed call through the table, and no `Instr` is
//! materialised except for branches (the predictor trains on full
//! instructions). The call sequence into the memory hierarchy, branch
//! predictor, CPI stack, and probe is *identical* to `step_probed` —
//! byte-identical reports are asserted by the `packed_equivalence` suite
//! in `esp-bench` and the exhaustive dispatch test in this crate.
//!
//! [`Engine::charge_plain_alus`] is the grain-batch half: runs of plain
//! ALU instructions on an already-fetched line charge base cycles in one
//! accumulation instead of one division per instruction (callers verify
//! eligibility with `PackedCursor::plain_alu_run`).

// Every kind handler shares one flat fn-pointer signature (the table's
// whole point); the raw step's fields arrive unpacked, so the arity is
// fixed by the dispatch ABI, not by any one handler's needs.
#![allow(clippy::too_many_arguments)]

use crate::engine::{Stall, StallKind, StepOutcome};
use crate::Engine;
use esp_branch::{Prediction, PredictorContext};
use esp_obs::{CycleClass, Probe, StepRecord};
use esp_trace::kindbits::{FLAG_BIT, TAG_COND, TAG_MASK};
use esp_trace::Instr;
use esp_types::{Addr, LineAddr};

/// Config-dependent constants of the fused hot loop, resolved once at
/// run start by [`Engine::lower_kernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParams {
    /// Cache line size in bytes (the L1-I's; `step_probed` uses it for
    /// both instruction and data lines).
    pub line_bytes: u64,
    /// `line_bytes.trailing_zeros()`: lines are computed by shift.
    pub line_shift: u32,
    /// L1-I hit latency (subtracted from fetch latency for exposure).
    pub l1i_hit: u64,
    /// L1-D hit latency.
    pub l1d_hit: u64,
    /// Percentage of the L2-hit data latency the core exposes.
    pub data_exposed_pct: u64,
    /// ROB entries — the LLC-miss overlap window, in instructions.
    pub rob_entries: u64,
    /// Perfect instruction cache: the fetch path is skipped.
    pub perfect_l1i: bool,
    /// Perfect data cache: load/store handlers are no-ops.
    pub perfect_l1d: bool,
    /// Perfect branch prediction: branch handlers only count.
    pub perfect_branch: bool,
    /// Miss-triggered next-line instruction prefetching.
    pub nl_instr: bool,
    /// DCU next-line data prefetching.
    pub nl_data: bool,
    /// Stride data prefetching.
    pub stride: bool,
}

/// The kind-specific half of one fused step. Receives the raw kind
/// byte, pc, and operand word plus the shared per-step record/outcome
/// accumulators.
pub type KindFn<P> = fn(
    &mut Engine,
    &KernelParams,
    u8,  // kind byte (tag + flags)
    u64, // pc
    u64, // operand
    &mut StepRecord,
    &mut StepOutcome,
    &mut P,
);

/// The flat per-kind dispatch table of one lowered configuration,
/// indexed by the packed tag bits (`kind & TAG_MASK`). Entries are
/// selected at lowering time from monomorphised handler variants, so
/// disabled features cost no per-instruction test.
pub struct KindTable<P: Probe> {
    table: [KindFn<P>; 8],
}

impl<P: Probe> KindTable<P> {
    /// Builds the dispatch table for `kp`.
    pub fn new(kp: &KernelParams) -> Self {
        let load: KindFn<P> = if kp.perfect_l1d {
            k_nop
        } else {
            match (kp.nl_data, kp.stride) {
                (false, false) => k_load::<P, false, false>,
                (true, false) => k_load::<P, true, false>,
                (false, true) => k_load::<P, false, true>,
                (true, true) => k_load::<P, true, true>,
            }
        };
        let store: KindFn<P> = if kp.perfect_l1d {
            k_nop
        } else if kp.nl_data {
            k_store::<P, true>
        } else {
            k_store::<P, false>
        };
        let branches: [KindFn<P>; 5] = if kp.perfect_branch {
            [k_branch_perfect; 5]
        } else {
            [k_cond, k_ind_branch, k_ind_call, k_call, k_ret]
        };
        KindTable {
            table: [
                k_nop, load, store, branches[0], branches[1], branches[2], branches[3],
                branches[4],
            ],
        }
    }

    /// The handler for `tag` (masked, so the lookup is bounds-check
    /// free).
    #[inline(always)]
    pub fn get(&self, tag: u8) -> KindFn<P> {
        self.table[(tag & TAG_MASK) as usize]
    }
}

/// ALU instructions (and perfect-L1D memory instructions) have no
/// kind-specific work.
fn k_nop<P: Probe>(
    _e: &mut Engine,
    _kp: &KernelParams,
    _kind: u8,
    _pc: u64,
    _op: u64,
    _rec: &mut StepRecord,
    _out: &mut StepOutcome,
    _probe: &mut P,
) {
}

fn k_load<P: Probe, const NL: bool, const STRIDE: bool>(
    e: &mut Engine,
    kp: &KernelParams,
    _kind: u8,
    pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    e.stats.l1d_accesses += 1;
    let line = LineAddr::new(op >> kp.line_shift);
    let t_access = e.now;
    let r = e.mem.access_data(line, t_access, false);
    if NL {
        if let Some(p) = e.dcu.on_access(line) {
            e.mem.prefetch_data(p, t_access, true);
        }
    }
    if STRIDE {
        if let Some(p) = e.stride.on_load(Addr::new(pc), Addr::new(op), kp.line_bytes) {
            e.mem.prefetch_data(p, t_access, true);
        }
    }
    rec.data_access = true;
    rec.data_latency = r.latency;
    rec.l1d_miss = r.l1_miss;
    if r.l1_miss {
        e.stats.l1d_misses += 1;
        out.l1d_miss = true;
    }
    let exposed = if r.llc_miss {
        let overlapped =
            e.last_data_llc_miss_at.is_some_and(|at| e.stats.retired - at < kp.rob_entries);
        e.last_data_llc_miss_at = Some(e.stats.retired);
        if overlapped {
            0
        } else {
            r.latency
        }
    } else {
        r.latency.saturating_sub(kp.l1d_hit) * kp.data_exposed_pct / 100
    };
    e.now += exposed;
    if exposed > 0 {
        let class = if r.llc_miss { CycleClass::DcacheLlc } else { CycleClass::DcacheL2 };
        e.stack.charge(class, exposed);
        probe.on_stall(class, exposed, e.now);
    }
    if r.llc_miss && exposed > 0 {
        out.stall = Some(Stall { kind: StallKind::DataLlcMiss, start: t_access, cycles: exposed });
    }
}

fn k_store<P: Probe, const NL: bool>(
    e: &mut Engine,
    kp: &KernelParams,
    _kind: u8,
    _pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    _probe: &mut P,
) {
    // Stores retire through the store buffer: they update cache state
    // (write-allocate) but expose no latency.
    e.stats.l1d_accesses += 1;
    let line = LineAddr::new(op >> kp.line_shift);
    let r = e.mem.access_data(line, e.now, true);
    rec.data_access = true;
    rec.l1d_miss = r.l1_miss;
    if r.l1_miss {
        e.stats.l1d_misses += 1;
        out.l1d_miss = true;
    }
    if NL {
        if let Some(p) = e.dcu.on_access(line) {
            e.mem.prefetch_data(p, e.now, true);
        }
    }
}

/// Shared branch half: predict, charge the penalty, classify.
#[inline(always)]
fn branch_body<P: Probe>(
    e: &mut Engine,
    instr: &Instr,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    e.stats.branches += 1;
    let outcome = e.bp.predict_and_update(PredictorContext::Normal, instr);
    let penalty = e.bp.penalty_of(outcome);
    e.now += penalty;
    rec.branch_penalty = penalty;
    match outcome {
        Prediction::Mispredict => {
            e.stack.charge(CycleClass::BranchMispredict, penalty);
            probe.on_stall(CycleClass::BranchMispredict, penalty, e.now);
            e.stats.mispredicts += 1;
            out.mispredict = true;
            rec.mispredict = true;
        }
        Prediction::Misfetch => {
            e.stack.charge(CycleClass::BranchMisfetch, penalty);
            probe.on_stall(CycleClass::BranchMisfetch, penalty, e.now);
            e.stats.misfetches += 1;
            rec.misfetch = true;
        }
        Prediction::Correct => {}
    }
}

/// Perfect branch prediction: the outcome is `Correct` with zero
/// penalty, so only the branch count advances.
fn k_branch_perfect<P: Probe>(
    e: &mut Engine,
    _kp: &KernelParams,
    _kind: u8,
    _pc: u64,
    _op: u64,
    _rec: &mut StepRecord,
    _out: &mut StepOutcome,
    _probe: &mut P,
) {
    e.stats.branches += 1;
}

fn k_cond<P: Probe>(
    e: &mut Engine,
    _kp: &KernelParams,
    kind: u8,
    pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    let i = Instr::cond_branch(Addr::new(pc), kind & FLAG_BIT != 0, Addr::new(op));
    branch_body(e, &i, rec, out, probe);
}

fn k_ind_branch<P: Probe>(
    e: &mut Engine,
    _kp: &KernelParams,
    _kind: u8,
    pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    let i = Instr::indirect(Addr::new(pc), Addr::new(op));
    branch_body(e, &i, rec, out, probe);
}

fn k_ind_call<P: Probe>(
    e: &mut Engine,
    _kp: &KernelParams,
    _kind: u8,
    pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    let i = Instr::indirect_call(Addr::new(pc), Addr::new(op));
    branch_body(e, &i, rec, out, probe);
}

fn k_call<P: Probe>(
    e: &mut Engine,
    _kp: &KernelParams,
    _kind: u8,
    pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    let i = Instr::call(Addr::new(pc), Addr::new(op));
    branch_body(e, &i, rec, out, probe);
}

fn k_ret<P: Probe>(
    e: &mut Engine,
    _kp: &KernelParams,
    _kind: u8,
    pc: u64,
    op: u64,
    rec: &mut StepRecord,
    out: &mut StepOutcome,
    probe: &mut P,
) {
    let i = Instr::ret(Addr::new(pc), Addr::new(op));
    branch_body(e, &i, rec, out, probe);
}

impl Engine {
    /// Lowers the active configuration into flat kernel parameters.
    pub fn lower_kernel(&self) -> KernelParams {
        let h = &self.cfg.machine.hierarchy;
        KernelParams {
            line_bytes: h.l1i.line_bytes,
            line_shift: h.l1i.line_bytes.trailing_zeros(),
            l1i_hit: h.l1i.hit_latency,
            l1d_hit: h.l1d.hit_latency,
            data_exposed_pct: self.cfg.timing.data_exposed_pct,
            rob_entries: self.cfg.machine.rob_entries as u64,
            perfect_l1i: self.cfg.perfect.l1i,
            perfect_l1d: self.cfg.perfect.l1d,
            perfect_branch: self.cfg.perfect.branch,
            nl_instr: self.cfg.nl_instr,
            nl_data: self.cfg.nl_data,
            stride: self.cfg.stride,
        }
    }

    /// The fused raw-step kernel: [`Engine::step_probed`] over a packed
    /// `(kind, pc, op)` triple, with the kind-specific half dispatched
    /// through `tbl`. Performs the exact same sequence of memory,
    /// predictor, stack, and probe calls as the generic path, so runs
    /// through either produce byte-identical reports.
    #[inline(always)]
    pub fn step_raw<P: Probe>(
        &mut self,
        kp: &KernelParams,
        tbl: &KindTable<P>,
        kind: u8,
        pc: u64,
        op: u64,
        probe: &mut P,
    ) -> StepOutcome {
        let tag = kind & TAG_MASK;
        let mut out = StepOutcome::default();
        let mut rec = StepRecord { is_branch: tag >= TAG_COND, ..StepRecord::default() };
        self.charge_base();

        // ---- instruction fetch (shared prefix) --------------------------
        let fetch_line = LineAddr::new(pc >> kp.line_shift);
        if self.last_fetch_line != Some(fetch_line) {
            self.last_fetch_line = Some(fetch_line);
            if !kp.perfect_l1i {
                self.stats.l1i_accesses += 1;
                let t_access = self.now;
                let r = self.mem.access_instr(fetch_line, t_access);
                if kp.nl_instr && r.l1_miss {
                    if let Some(p) = self.nl_i.on_fetch(fetch_line) {
                        self.mem.prefetch_instr(p, t_access, true);
                    }
                }
                rec.fetched = 1;
                rec.fetch_latency = r.latency;
                rec.l1i_miss = r.l1_miss;
                if r.l1_miss {
                    self.stats.l1i_misses += 1;
                    out.l1i_miss = true;
                }
                let exposed = r.latency.saturating_sub(kp.l1i_hit);
                self.now += exposed;
                if exposed > 0 {
                    let class =
                        if r.llc_miss { CycleClass::IcacheLlc } else { CycleClass::IcacheL2 };
                    self.stack.charge(class, exposed);
                    probe.on_stall(class, exposed, self.now);
                }
                if r.llc_miss && exposed > 0 {
                    out.stall = Some(Stall {
                        kind: StallKind::InstrLlcMiss,
                        start: t_access,
                        cycles: exposed,
                    });
                }
            }
        }

        // ---- kind-specific half (branch / data) -------------------------
        tbl.get(tag)(self, kp, kind, pc, op, &mut rec, &mut out, probe);

        probe.on_step(&rec);
        self.stats.retired += 1;
        out
    }

    /// Whether the fetch path is currently on `line` — the batching
    /// eligibility check of the plain-ALU fast path.
    #[inline(always)]
    pub fn on_fetch_line(&self, line: u64) -> bool {
        self.last_fetch_line == Some(LineAddr::new(line))
    }

    /// Retires `n` plain ALU instructions on an already-fetched line in
    /// one accumulation. Equivalent to `n` [`Engine::step_probed`] calls
    /// on same-line ALU instructions: the base-cycle residue arithmetic
    /// distributes over the batch ((m + n·b) divmod 1000 equals n single
    /// carries), no fetch/branch/data work exists, and the probe still
    /// observes one (empty) step record per instruction — a loop the
    /// compiler removes for no-op probes.
    #[inline(always)]
    pub fn charge_plain_alus<P: Probe>(&mut self, n: u64, probe: &mut P) {
        self.millis += self.base_millis_per_instr * n;
        let whole = self.millis / 1000;
        self.millis %= 1000;
        self.now += whole;
        self.stack.charge(CycleClass::Base, whole);
        self.stats.retired += n;
        let rec = StepRecord::default();
        for _ in 0..n {
            probe.on_step(&rec);
        }
    }
}
