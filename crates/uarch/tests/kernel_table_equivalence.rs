//! The flat kind-table kernel is outcome-equivalent to the decoded path.
//!
//! For every machine configuration the kernel specialises over
//! (prefetcher and perfect-component combinations) and every
//! `InstrKind` × flag-bit combination — covered exhaustively by a fixed
//! prefix and then exercised over long randomized streams —
//! `Engine::step_raw` through the lowered `KindTable` must return the
//! same `StepOutcome` per instruction and leave the engine in the same
//! state as `Engine::step_probed` over the decoded `Instr`.

use esp_obs::NullProbe;
use esp_trace::kindbits::{
    FLAG_BIT, TAG_ALU, TAG_CALL, TAG_COND, TAG_IND_BRANCH, TAG_IND_CALL, TAG_LOAD, TAG_MASK,
    TAG_RET, TAG_STORE,
};
use esp_trace::RawStep;
use esp_types::{Rng, SplitMix64};
use esp_uarch::{Engine, EngineConfig, KindTable};

const CODE_BASE: u64 = 0x40_0000;
const HEAP_BASE: u64 = 0x80_0000;

/// Every (prefetcher, perfect-flag) combination that selects a distinct
/// set of monomorphised kind handlers during lowering.
fn configs() -> Vec<(&'static str, EngineConfig)> {
    let base = EngineConfig::baseline;
    let mut v = vec![("baseline", base())];
    let mut c = base();
    c.nl_instr = true;
    v.push(("nl_instr", c));
    let mut c = base();
    c.nl_data = true;
    v.push(("nl_data", c));
    let mut c = base();
    c.stride = true;
    v.push(("stride", c));
    let mut c = base();
    c.nl_instr = true;
    c.nl_data = true;
    c.stride = true;
    v.push(("all_prefetchers", c));
    let mut c = base();
    c.perfect.l1i = true;
    v.push(("perfect_l1i", c));
    let mut c = base();
    c.perfect.l1d = true;
    v.push(("perfect_l1d", c));
    let mut c = base();
    c.perfect.branch = true;
    v.push(("perfect_branch", c));
    let mut c = base();
    c.perfect.l1i = true;
    c.perfect.l1d = true;
    c.perfect.branch = true;
    v.push(("perfect_all", c));
    v
}

fn is_branch_tag(tag: u8) -> bool {
    tag >= TAG_COND
}

/// A plausible instruction stream as raw steps: sequential pc runs
/// broken by taken branches, loads/stores mixing a strided walk with
/// random heap lines. Starts with an exhaustive prefix of all 8 tags ×
/// both flag values so every table entry fires under every config even
/// if the random tail were unlucky.
fn stream(seed: u64, len: usize) -> Vec<RawStep> {
    let mut rng = SplitMix64::new(seed);
    let mut steps = Vec::with_capacity(len + 16);
    let mut pc = CODE_BASE;
    let mut seq = HEAP_BASE;
    let mut emit = |tag: u8, flag: bool, op: u64, pc: &mut u64| {
        let kind = tag | if flag { FLAG_BIT } else { 0 };
        steps.push(RawStep { kind, pc: *pc, op });
        let taken = match tag {
            TAG_COND => flag,
            t => is_branch_tag(t),
        };
        *pc = if taken { op } else { *pc + 4 };
    };
    for tag in 0..8u8 {
        for flag in [false, true] {
            let op = match tag {
                TAG_LOAD | TAG_STORE => HEAP_BASE + u64::from(tag) * 64,
                t if is_branch_tag(t) => CODE_BASE + 0x100 + u64::from(tag) * 16,
                _ => 0,
            };
            emit(tag, flag, op, &mut pc);
        }
    }
    for _ in 0..len {
        let r = rng.next_u64();
        let tag = match r % 100 {
            0..=49 => TAG_ALU,
            50..=69 => TAG_LOAD,
            70..=79 => TAG_STORE,
            80..=89 => TAG_COND,
            90..=92 => TAG_CALL,
            93..=94 => TAG_RET,
            95..=97 => TAG_IND_BRANCH,
            _ => TAG_IND_CALL,
        };
        let flag = (r >> 8) & 1 != 0;
        let op = match tag {
            TAG_LOAD | TAG_STORE => {
                if (r >> 9).is_multiple_of(3) {
                    // A strided walk, food for the stride prefetcher.
                    seq += 64;
                    seq
                } else {
                    (HEAP_BASE + ((r >> 16) % (1 << 20))) & !7
                }
            }
            t if is_branch_tag(t) => CODE_BASE + (((r >> 16) % 0x4000) & !3),
            _ => 0,
        };
        emit(tag, flag, op, &mut pc);
    }
    steps
}

#[test]
fn kind_table_matches_decoded_path_for_every_kind() {
    for (name, cfg) in configs() {
        let steps = stream(0xE5BE + cfg.nl_instr as u64, 20_000);
        let mut raw = Engine::new(cfg.clone());
        let mut dec = Engine::new(cfg);
        let kp = raw.lower_kernel();
        let tbl = KindTable::<NullProbe>::new(&kp);
        for (i, rs) in steps.iter().enumerate() {
            let a = raw.step_raw(&kp, &tbl, rs.kind, rs.pc, rs.op, &mut NullProbe);
            let b = dec.step_probed(&rs.to_instr(), &mut NullProbe);
            assert_eq!(
                a,
                b,
                "{name}: step {i} (tag {} flag {}) diverged",
                rs.kind & TAG_MASK,
                rs.kind & FLAG_BIT != 0
            );
        }
        assert_eq!(raw.now(), dec.now(), "{name}: clock");
        assert_eq!(raw.stats(), dec.stats(), "{name}: engine stats");
        assert_eq!(
            format!("{:?}", raw.cpi_stack()),
            format!("{:?}", dec.cpi_stack()),
            "{name}: CPI stack"
        );
        assert_eq!(
            raw.mem().snapshot(),
            dec.mem().snapshot(),
            "{name}: hierarchy counters"
        );
        assert_eq!(raw.bp().stats_all(), dec.bp().stats_all(), "{name}: predictor stats");
    }
}
