//! Std-only scoped parallelism: the matrix fan-out and the intra-run
//! chunk planner.
//!
//! The repository exploits two orthogonal axes of parallelism (see
//! `docs/PARALLELISM.md` for the full concurrency model):
//!
//! 1. **Across runs** — the paper's evaluation is an embarrassingly
//!    parallel grid, benchmark profiles × machine configurations, and
//!    every simulation is deterministic and independent, so runs fan out
//!    across threads with no fidelity loss (the same argument
//!    "Parallelizing a modern GPU simulator" makes for trace-driven
//!    simulators). [`parallel_map`] / [`parallel_gen`] provide that
//!    fan-out.
//! 2. **Within one run** — a single run's event sequence is partitioned
//!    into contiguous, weight-balanced chunks by [`partition_weighted`];
//!    `esp-core`'s intra-run mode simulates the chunks optimistically in
//!    parallel and merges them deterministically, repairing chunks whose
//!    predicted entry state turns out wrong.
//!
//! Everything is built purely on [`std::thread::scope`]: no external
//! dependencies, because the build environment has no network access to a
//! crate registry.
//!
//! Results are returned in input order regardless of thread count or
//! scheduling, so callers observe bit-identical output whether they run on
//! one thread or sixty-four.
//!
//! # Examples
//!
//! ```
//! let squares = esp_par::parallel_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let parts = esp_par::partition_weighted(&[3, 1, 1, 1, 3], 2);
//! assert_eq!(parts, vec![0..2, 2..5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "ESP_THREADS";

/// The worker-thread count to use: the `ESP_THREADS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
///
/// # Examples
///
/// ```
/// assert!(esp_par::threads() >= 1);
/// ```
pub fn threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads and
/// returns the results in input order.
///
/// Workers pull the next unclaimed index from a shared atomic counter
/// (work stealing at item granularity), so uneven per-item cost — an ESP
/// run costs several times a baseline run — still load-balances. With
/// `threads <= 1` or fewer than two items the map degenerates to a plain
/// sequential loop with no thread spawned at all, which keeps the
/// single-threaded path allocation- and synchronisation-free.
///
/// `f` receives `(index, &item)`; results are ordered by `index`, so the
/// output is independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                gathered.lock().expect("worker poisoned result lock").extend(local);
            });
        }
    });

    let mut out = gathered.into_inner().expect("worker poisoned result lock");
    debug_assert_eq!(out.len(), n);
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Splits `weights` into at most `parts` contiguous, non-empty ranges of
/// roughly equal total weight, covering `0..weights.len()` in order.
///
/// This is the chunk planner of the intra-run parallel mode: item `i` is
/// event `i`'s approximate instruction count, and each returned range
/// becomes one optimistically simulated chunk. Cuts are placed where the
/// cumulative weight first reaches `total * k / parts`, so the plan is a
/// pure function of the weights — independent of thread scheduling, and
/// therefore safe to recompute on any thread.
///
/// Returns fewer than `parts` ranges only when there are fewer items than
/// parts; returns an empty vector for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(esp_par::partition_weighted(&[1, 1, 1, 1], 2), vec![0..2, 2..4]);
/// assert_eq!(esp_par::partition_weighted(&[10, 1, 1], 3), vec![0..1, 1..2, 2..3]);
/// ```
pub fn partition_weighted(weights: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    for p in 1..=parts {
        let end = if p == parts {
            // The final part always runs to the end (zero-weight tails
            // included).
            n
        } else {
            let target = total * p as u128 / parts as u128;
            // Leave at least one item for each of the remaining parts.
            let max_end = n - (parts - p);
            let mut end = start;
            while end < max_end && (end == start || cum < target) {
                cum += weights[end] as u128;
                end += 1;
            }
            end
        };
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, n);
    out
}

/// Runs `n` independent jobs — `f(0) .. f(n-1)` — on up to `threads`
/// worker threads, returning results in index order.
///
/// A convenience wrapper over [`parallel_map`] for index-driven fan-out
/// (e.g. one job per sweep point).
pub fn parallel_gen<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    parallel_map(threads, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for t in [1, 2, 3, 8, 200] {
            let got = parallel_map(t, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "bb", "ccc"];
        let got = parallel_map(2, &items, |i, s| (i, s.len()));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn gen_runs_each_index_once() {
        let got = parallel_gen(4, 10, |i| i * i);
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Early items cost far more than late ones; order must hold.
        let items: Vec<u64> = (0..32).collect();
        let got = parallel_map(4, &items, |_, &x| {
            let spins = if x < 4 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            // Return something derived from x alone so the result is
            // scheduling-independent.
            let _ = acc;
            x + 1
        });
        assert_eq!(got, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn partition_covers_in_order() {
        let weights: Vec<u64> = (0..37).map(|i| (i % 7) + 1).collect();
        for parts in [1, 2, 3, 5, 8, 37, 100] {
            let plan = partition_weighted(&weights, parts);
            assert_eq!(plan.len(), parts.min(weights.len()), "parts={parts}");
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, weights.len());
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[0].is_empty() && !w[1].is_empty());
            }
        }
    }

    #[test]
    fn partition_balances_weight() {
        // 64 equal-weight items over 4 parts: a perfect split.
        let weights = vec![5u64; 64];
        let plan = partition_weighted(&weights, 4);
        assert_eq!(plan, vec![0..16, 16..32, 32..48, 48..64]);
    }

    #[test]
    fn partition_edge_cases() {
        assert!(partition_weighted(&[], 4).is_empty());
        assert_eq!(partition_weighted(&[9], 4), vec![0..1]);
        // Zero-weight tail still lands in the final part.
        assert_eq!(partition_weighted(&[1, 1, 0, 0], 2), vec![0..1, 1..4]);
        // Zero parts is treated as one.
        assert_eq!(partition_weighted(&[1, 2], 0), vec![0..2]);
    }
}
