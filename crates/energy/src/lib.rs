//! McPAT/CACTI-style energy accounting for the ESP study (§6.7, Fig. 14).
//!
//! The paper evaluates energy with McPAT 1.2 plus CACTI 5.3 for the added
//! cache-like structures, at 1.2 V and 32 nm. Neither tool is available
//! here, so this crate implements the same *accounting structure* as a
//! calibrated component model: total energy is decomposed exactly the way
//! Fig. 14 presents it —
//!
//! * **branch misprediction energy**: dynamic energy wasted executing
//!   wrong-path instructions, proportional to the misprediction count;
//! * **static energy**: leakage, proportional to total cycles — the term
//!   ESP *reduces* by finishing sooner;
//! * **rest dynamic**: per-instruction pipeline and cache energy for
//!   committed *and* pre-executed (runahead/ESP) instructions, plus a
//!   small per-instruction surcharge while in ESP mode for the cachelet
//!   and list structures (sized from CACTI-style per-access scaling of
//!   their capacities).
//!
//! The default coefficients are calibrated so the paper's headline
//! balance holds: ~21 % extra instructions and ~25 % fewer cycles net out
//! to roughly +8 % energy (§6.7).
//!
//! # Examples
//!
//! ```
//! use esp_energy::{ActivityCounts, EnergyModel};
//!
//! let model = EnergyModel::mcpat_32nm();
//! let base = model.report(&ActivityCounts {
//!     cycles: 1_200_000,
//!     normal_instrs: 1_000_000,
//!     spec_instrs: 0,
//!     mispredicts: 20_000,
//! });
//! assert!(base.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Raw activity counts from one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Total core cycles (including idle).
    pub cycles: u64,
    /// Instructions retired in normal mode.
    pub normal_instrs: u64,
    /// Instructions pre-executed speculatively (runahead or ESP modes).
    pub spec_instrs: u64,
    /// Branch mispredictions in normal mode.
    pub mispredicts: u64,
}

impl ActivityCounts {
    /// Extra instructions executed relative to normal-mode commits, in
    /// percent — the numbers printed on top of Fig. 14's bars.
    pub fn extra_instr_pct(&self) -> f64 {
        if self.normal_instrs == 0 {
            0.0
        } else {
            self.spec_instrs as f64 * 100.0 / self.normal_instrs as f64
        }
    }
}

/// Energy coefficients (picojoules; absolute scale is arbitrary, ratios
/// are what Fig. 14 reports).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyParams {
    /// Dynamic energy per executed instruction (pipeline + L1 + fraction
    /// of L2/DRAM traffic).
    pub pj_per_instr: f64,
    /// Surcharge per ESP/runahead pre-executed instruction (cachelet and
    /// list accesses, extra-context bookkeeping).
    pub pj_per_spec_instr_extra: f64,
    /// Wrong-path energy per misprediction (≈ penalty × width × average
    /// occupancy × per-instruction energy).
    pub pj_per_mispredict: f64,
    /// Leakage per cycle.
    pub pj_static_per_cycle: f64,
}

impl EnergyParams {
    /// Coefficients calibrated against the paper's 32 nm / 1.2 V McPAT
    /// setup (see crate docs).
    pub fn mcpat_32nm() -> Self {
        EnergyParams {
            pj_per_instr: 150.0,
            pj_per_spec_instr_extra: 25.0,
            pj_per_mispredict: 1500.0,
            pj_static_per_cycle: 45.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::mcpat_32nm()
    }
}

/// The Fig. 14 decomposition of one run's energy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Wrong-path (branch misprediction) energy.
    pub branch_mispredict: f64,
    /// Leakage energy.
    pub static_energy: f64,
    /// Everything else: committed + pre-executed instruction energy.
    pub rest_dynamic: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.branch_mispredict + self.static_energy + self.rest_dynamic
    }

    /// This breakdown's components normalised to another run's total
    /// (Fig. 14 normalises every bar to the NL baseline).
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> EnergyBreakdown {
        let t = baseline.total();
        if t == 0.0 {
            return *self;
        }
        EnergyBreakdown {
            branch_mispredict: self.branch_mispredict / t,
            static_energy: self.static_energy / t,
            rest_dynamic: self.rest_dynamic / t,
        }
    }
}

/// The calibrated component energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// A model with explicit coefficients.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The default calibrated model.
    pub fn mcpat_32nm() -> Self {
        EnergyModel::new(EnergyParams::mcpat_32nm())
    }

    /// The coefficients in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the Fig. 14 decomposition for one run.
    pub fn report(&self, a: &ActivityCounts) -> EnergyBreakdown {
        let p = &self.params;
        EnergyBreakdown {
            branch_mispredict: a.mispredicts as f64 * p.pj_per_mispredict,
            static_energy: a.cycles as f64 * p.pj_static_per_cycle,
            rest_dynamic: (a.normal_instrs + a.spec_instrs) as f64 * p.pj_per_instr
                + a.spec_instrs as f64 * p.pj_per_spec_instr_extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_counts() -> ActivityCounts {
        ActivityCounts {
            cycles: 1_400_000,
            normal_instrs: 1_000_000,
            spec_instrs: 0,
            mispredicts: 19_800, // 9.9% of 200k branches
        }
    }

    /// An ESP run shaped like the paper's headline numbers: ~24% faster,
    /// 21% extra instructions, mispredicts down to 6.1%.
    fn esp_counts() -> ActivityCounts {
        ActivityCounts {
            cycles: 1_060_000,
            normal_instrs: 1_000_000,
            spec_instrs: 212_000,
            mispredicts: 12_200,
        }
    }

    #[test]
    fn decomposition_adds_up() {
        let m = EnergyModel::mcpat_32nm();
        let r = m.report(&baseline_counts());
        let sum = r.branch_mispredict + r.static_energy + r.rest_dynamic;
        assert!((r.total() - sum).abs() < 1e-6);
        assert!(r.branch_mispredict > 0.0 && r.static_energy > 0.0 && r.rest_dynamic > 0.0);
    }

    #[test]
    fn paper_shaped_esp_run_costs_about_8_percent_more() {
        let m = EnergyModel::mcpat_32nm();
        let base = m.report(&baseline_counts());
        let esp = m.report(&esp_counts());
        let overhead = esp.total() / base.total() - 1.0;
        assert!(
            (0.02..0.14).contains(&overhead),
            "energy overhead {overhead:.3} out of the paper's band"
        );
    }

    #[test]
    fn static_energy_tracks_cycles() {
        let m = EnergyModel::mcpat_32nm();
        let mut a = baseline_counts();
        let r1 = m.report(&a);
        a.cycles /= 2;
        let r2 = m.report(&a);
        assert!((r2.static_energy - r1.static_energy / 2.0).abs() < 1e-6);
        assert_eq!(r2.rest_dynamic, r1.rest_dynamic);
    }

    #[test]
    fn relative_normalisation() {
        let m = EnergyModel::mcpat_32nm();
        let base = m.report(&baseline_counts());
        let rel = base.relative_to(&base);
        assert!((rel.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extra_instr_pct() {
        assert_eq!(esp_counts().extra_instr_pct(), 21.2);
        assert_eq!(ActivityCounts::default().extra_instr_pct(), 0.0);
    }

    #[test]
    fn mispredict_component_shrinks_with_better_prediction() {
        let m = EnergyModel::mcpat_32nm();
        let base = m.report(&baseline_counts());
        let esp = m.report(&esp_counts());
        assert!(esp.branch_mispredict < base.branch_mispredict);
    }
}
