//! The generated workload: schedule + code image + stream factory.

use crate::code::CodeImage;
use crate::schedule::Schedule;
use crate::walk::EventWalk;
use crate::WorkloadParams;
use esp_trace::{EventRecord, EventStream, Workload};
use esp_types::{Addr, EventId};

/// A fully generated asynchronous program, ready to simulate.
///
/// Implements [`Workload`]: the simulator iterates
/// [`GeneratedWorkload::events`] in order and opens actual or speculative
/// streams per event. Streams regenerate deterministically from per-event
/// seeds, so opening the same stream twice yields identical instructions
/// without storing any trace.
///
/// # Examples
///
/// ```
/// use esp_workload::{GeneratedWorkload, WorkloadParams};
/// use esp_trace::Workload;
///
/// let mut p = WorkloadParams::web_default();
/// p.target_instructions = 50_000;
/// let w = GeneratedWorkload::generate(p, 9);
/// let first = w.events()[0];
/// let mut s = w.actual_stream(first.id);
/// assert!(s.next_instr().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    params: WorkloadParams,
    image: CodeImage,
    schedule: Schedule,
    records: Vec<EventRecord>,
}

impl GeneratedWorkload {
    /// Generates a workload from parameters and a seed.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`WorkloadParams::validate`].
    pub fn generate(params: WorkloadParams, seed: u64) -> Self {
        params.validate().expect("invalid workload parameters");
        let image = CodeImage::build(&params, seed);
        let schedule = Schedule::build(&params, seed);
        let records = schedule
            .details()
            .iter()
            .enumerate()
            .map(|(i, d)| EventRecord {
                id: EventId::new(d.index),
                kind: d.kind,
                handler_pc: image.function(image.handler_of_kind(d.kind)).entry,
                arg_addr: Addr::new(0x4000_0000 + d.index * params.heap_per_event),
                approx_len: d.len,
                post_time: schedule.post_time(i),
                order_mispredicted: d.order_mispredicted,
            })
            .collect();
        GeneratedWorkload { params, image, schedule, records }
    }

    /// The generator parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The generated code image.
    pub fn image(&self) -> &CodeImage {
        &self.image
    }

    /// The event schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    fn open(&self, id: EventId, speculative: bool) -> EventWalk<'_> {
        let detail = &self.schedule.details()[id.index() as usize];
        EventWalk::new(&self.image, &self.params, detail, speculative)
    }

    /// Opens the actual stream as a concrete type (avoids boxing in hot
    /// paths; the [`Workload`] impl boxes for object safety).
    pub fn walk_actual(&self, id: EventId) -> EventWalk<'_> {
        self.open(id, false)
    }

    /// Opens the speculative stream as a concrete type.
    pub fn walk_speculative(&self, id: EventId) -> EventWalk<'_> {
        self.open(id, true)
    }
}

impl Workload for GeneratedWorkload {
    fn events(&self) -> &[EventRecord] {
        &self.records
    }

    fn actual_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
        Box::new(self.open(id, false))
    }

    fn speculative_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
        Box::new(self.open(id, true))
    }

    fn approx_total_instructions(&self) -> u64 {
        self.schedule.total_instructions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::record_stream;

    fn small() -> GeneratedWorkload {
        let mut p = WorkloadParams::web_default();
        p.target_instructions = 60_000;
        p.mean_event_len = 5_000;
        GeneratedWorkload::generate(p, 77)
    }

    #[test]
    fn records_match_schedule() {
        let w = small();
        assert_eq!(w.events().len(), w.schedule().len());
        for (i, r) in w.events().iter().enumerate() {
            let d = &w.schedule().details()[i];
            assert_eq!(r.id.index(), d.index);
            assert_eq!(r.kind, d.kind);
            assert_eq!(r.approx_len, d.len);
        }
        assert_eq!(w.approx_total_instructions(), w.schedule().total_instructions());
    }

    #[test]
    fn streams_regenerate_identically() {
        let w = small();
        let id = w.events()[1].id;
        let a = record_stream(&mut *w.actual_stream(id), 3000);
        let b = record_stream(&mut *w.actual_stream(id), 3000);
        assert_eq!(a, b);
    }

    #[test]
    fn handler_pcs_are_function_entries() {
        let w = small();
        for r in w.events() {
            let h = w.image().handler_of_kind(r.kind);
            assert_eq!(w.image().function(h).entry, r.handler_pc);
        }
    }

    #[test]
    fn speculative_matches_for_non_diverging_events() {
        let w = small();
        for r in w.events().iter().take(6) {
            let d = &w.schedule().details()[r.id.index() as usize];
            let a = record_stream(&mut *w.actual_stream(r.id), 2000);
            let s = record_stream(&mut *w.speculative_stream(r.id), 2000);
            match d.diverge_at {
                None => assert_eq!(a, s),
                Some(at) => {
                    let at = at as usize;
                    if at < a.len() {
                        assert_eq!(a[..at], s[..at]);
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.events(), b.events());
    }
}
