//! Event schedules: lengths, kinds, seeds, arrivals, divergence.

use crate::WorkloadParams;
use esp_types::{Cycle, EventKindId, Rng, SplitMix64, Xoshiro256pp};

/// Everything the generator needs to know about one dynamic event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventDetail {
    /// Position in posting order (== `EventId` index).
    pub index: u64,
    /// Handler kind.
    pub kind: EventKindId,
    /// Seed of the event's dynamic decisions.
    pub seed: u64,
    /// Dynamic instruction count.
    pub len: u64,
    /// If `Some(i)`, a speculative pre-execution diverges from the real
    /// stream after `i` instructions.
    pub diverge_at: Option<u64>,
    /// Whether the runtime's order prediction fails for this event
    /// (§4.5): pre-gathered lists must be discarded.
    pub order_mispredicted: bool,
}

/// A complete schedule: per-event details plus posting times.
///
/// Arrivals come in bursts (user input and network responses cluster), so
/// the software event queue usually holds events for ESP to peek at, with
/// occasional idle gaps — matching the §2.2 observation that events wait
/// tens of microseconds before being dequeued.
#[derive(Clone, Debug)]
pub struct Schedule {
    details: Vec<EventDetail>,
    post_times: Vec<Cycle>,
    total_len: u64,
}

/// Approximate CPI used only to convert instruction counts into arrival
/// gaps when building the schedule.
const PLANNING_CPI: f64 = 1.5;

impl Schedule {
    /// Builds the schedule for `params` from `seed`.
    ///
    /// Event lengths are log-normal with mean `params.mean_event_len`
    /// (clamped to `[200, 50 * mean]`); events are appended until the
    /// instruction budget is met, with at least four events.
    pub fn build(params: &WorkloadParams, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(SplitMix64::derive(seed, 0x5CED));
        let sigma = params.event_len_sigma;
        let mean = params.mean_event_len as f64;
        // Mean of lognormal(mu, sigma) is exp(mu + sigma^2/2).
        let mu = mean.ln() - sigma * sigma / 2.0;

        let mut details = Vec::new();
        let mut total_len = 0u64;
        while total_len < params.target_instructions || details.len() < 4 {
            let index = details.len() as u64;
            let len = rng
                .log_normal(mu, sigma)
                .clamp(200.0, 50.0 * mean) as u64;
            // Event kinds are zipf-ish within the current page phase:
            // low kind ids are frequent; each phase uses a fresh kind
            // set, modelling navigation to a new page.
            let phase = index as u32 / params.events_per_phase;
            let z = rng.unit_f64();
            let kind = ((z * z) * params.event_kinds as f64) as u32;
            let kind =
                EventKindId::new(phase * params.event_kinds + kind.min(params.event_kinds - 1));
            let seed_e = SplitMix64::derive(seed ^ 0xE7E7, index);
            let diverge_at = if rng.chance(params.p_divergence) {
                Some(rng.below(len.max(2)))
            } else {
                None
            };
            let order_mispredicted = rng.chance(params.p_order_mispredict);
            details.push(EventDetail { index, kind, seed: seed_e, len, diverge_at, order_mispredicted });
            total_len += len;
        }

        // Bursty arrivals: a burst of events posts at one instant; the
        // next burst arrives when ~(burst work)/utilization has elapsed.
        let mut post_times = Vec::with_capacity(details.len());
        let mut t = 0.0f64;
        let mut i = 0usize;
        while i < details.len() {
            let burst = 1 + rng.below((2.0 * params.mean_burst) as u64) as usize;
            let burst_end = (i + burst).min(details.len());
            let mut burst_work = 0u64;
            for d in &details[i..burst_end] {
                post_times.push(Cycle::new(t as u64));
                burst_work += d.len;
            }
            t += burst_work as f64 * PLANNING_CPI / params.utilization;
            i = burst_end;
        }
        Schedule { details, post_times, total_len }
    }

    /// Per-event generation details, in posting order.
    pub fn details(&self) -> &[EventDetail] {
        &self.details
    }

    /// Posting time of event `index`.
    pub fn post_time(&self, index: usize) -> Cycle {
        self.post_times[index]
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.details.len()
    }

    /// Whether the schedule is empty (never true for built schedules).
    pub fn is_empty(&self) -> bool {
        self.details.is_empty()
    }

    /// Total dynamic instructions across all events.
    pub fn total_instructions(&self) -> u64 {
        self.total_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::web_default()
    }

    #[test]
    fn meets_instruction_budget() {
        let s = Schedule::build(&params(), 1);
        assert!(s.total_instructions() >= params().target_instructions);
        assert!(s.len() >= 4);
        assert_eq!(s.details().len(), s.len());
    }

    #[test]
    fn deterministic() {
        let a = Schedule::build(&params(), 5);
        let b = Schedule::build(&params(), 5);
        assert_eq!(a.details(), b.details());
        let c = Schedule::build(&params(), 6);
        assert_ne!(a.details(), c.details());
    }

    #[test]
    fn mean_length_is_close() {
        let mut p = params();
        p.target_instructions = 3_000_000;
        p.mean_event_len = 20_000;
        let s = Schedule::build(&p, 2);
        let mean = s.total_instructions() as f64 / s.len() as f64;
        assert!(
            (10_000.0..40_000.0).contains(&mean),
            "mean event length {mean}"
        );
    }

    #[test]
    fn lengths_are_heavy_tailed() {
        let mut p = params();
        p.target_instructions = 3_000_000;
        let s = Schedule::build(&p, 3);
        let mut lens: Vec<u64> = s.details().iter().map(|d| d.len).collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        let mean = s.total_instructions() / s.len() as u64;
        assert!(median < mean, "median {median} !< mean {mean}");
    }

    #[test]
    fn post_times_are_monotonic_and_bursty() {
        let s = Schedule::build(&params(), 4);
        let mut bursts = 0;
        for i in 1..s.len() {
            assert!(s.post_time(i) >= s.post_time(i - 1));
            if s.post_time(i) == s.post_time(i - 1) {
                bursts += 1;
            }
        }
        assert!(bursts > 0, "expected at least one same-instant burst");
    }

    #[test]
    fn divergence_rate_is_close_to_p() {
        let mut p = params();
        p.target_instructions = 100_000;
        p.mean_event_len = 500;
        p.p_divergence = 0.10;
        let s = Schedule::build(&p, 7);
        let diverging = s.details().iter().filter(|d| d.diverge_at.is_some()).count();
        let rate = diverging as f64 / s.len() as f64;
        assert!((0.05..0.18).contains(&rate), "rate={rate}");
        // Divergence points are within the event.
        for d in s.details() {
            if let Some(at) = d.diverge_at {
                assert!(at < d.len);
            }
        }
    }

    #[test]
    fn kinds_are_skewed_within_phases() {
        let mut p = params();
        p.target_instructions = 200_000;
        p.mean_event_len = 1000;
        let s = Schedule::build(&p, 8);
        // Within a phase, kind ids are phase-local and zipf-skewed.
        let mut counts = vec![0u32; p.event_kinds as usize];
        for d in s.details().iter().take(p.events_per_phase as usize) {
            counts[(d.kind.index() % p.event_kinds) as usize] += 1;
        }
        assert!(counts.iter().max().unwrap() > counts.iter().min().unwrap());
    }

    #[test]
    fn phases_rotate_kind_sets() {
        let mut p = params();
        p.target_instructions = 100_000;
        p.mean_event_len = 1000;
        p.events_per_phase = 10;
        let s = Schedule::build(&p, 9);
        let phase_of = |d: &EventDetail| d.kind.index() / p.event_kinds;
        assert_eq!(phase_of(&s.details()[0]), 0);
        let last = s.details().last().unwrap();
        assert!(phase_of(last) > 0, "long schedules must span phases");
        // Phase boundaries follow event indices.
        for d in s.details() {
            assert_eq!(phase_of(d), d.index as u32 / p.events_per_phase);
        }
    }
}
