//! The event walk: one event's deterministic instruction stream.

use crate::code::{CodeImage, Terminator, INSTR_BYTES};
use crate::schedule::EventDetail;
use crate::WorkloadParams;
use esp_trace::{EventStream, Instr};
use esp_types::{Addr, EventKindId, Rng, SplitMix64, Xoshiro256pp};

/// Base of the (hot, small) stack region.
const STACK_BASE: u64 = 0x7fff_0000;
/// Stack working-set bytes.
const STACK_SPAN: u64 = 4096;
/// Base of the shared global region.
const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base of the per-kind data regions.
const KIND_BASE: u64 = 0x2000_0000;
/// Base of the per-event heap regions.
const HEAP_BASE: u64 = 0x4000_0000;
/// The event's work-item dispatcher: a three-instruction loop that pops
/// the next work item and indirect-calls its root function. Roots return
/// to `DISPATCH_RET`, which the call pushed on the RAS, so returns
/// predict; the indirect call itself is the megamorphic dispatch site
/// the B-List-Target exists for.
const DISPATCH_PC: u64 = 0x0040_0000;
const DISPATCH_CALL: u64 = DISPATCH_PC + 4;
const DISPATCH_RET: u64 = DISPATCH_PC + 8;
/// Call-stack depth cap; deeper calls degrade to ALU slots.
const MAX_DEPTH: usize = 14;

#[derive(Clone, Debug)]
struct Frame {
    func: u32,
    block: u16,
    instr: u16,
    ret_to: Addr,
    /// Active counted loops in this frame: (back-edge block, remaining
    /// back-jumps). Keyed per block so sibling/nested loops cannot reset
    /// each other's trip counters.
    loops: Vec<(u16, u16)>,
}

/// A resumable, deterministic walk over the code image for one event.
///
/// Two walks constructed with the same [`EventDetail`] produce identical
/// instruction streams — this is the property ESP's speculative
/// pre-execution relies on. The *speculative view* passes the detail's
/// divergence point; once reached, the walk re-seeds its dynamic
/// decisions and veers off, modelling the < 2 % of events whose
/// pre-execution did not match reality (§5).
///
/// # Examples
///
/// ```
/// use esp_workload::{BenchmarkProfile, EventWalk};
/// use esp_trace::{EventStream, Workload};
///
/// let w = BenchmarkProfile::pixlr().scaled(50_000).build(3);
/// let id = w.events()[0].id;
/// let mut a = w.actual_stream(id);
/// let mut b = w.actual_stream(id);
/// for _ in 0..1000 {
///     assert_eq!(a.next_instr(), b.next_instr());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct EventWalk<'a> {
    image: &'a CodeImage,
    params: &'a WorkloadParams,
    kind: EventKindId,
    event_index: u64,
    rng: Xoshiro256pp,
    seed: u64,
    global_window: u64,
    kind_window: u64,
    stream_base: u64,
    stream_count: u32,
    hot_base: u64,
    frames: Vec<Frame>,
    pool: Vec<u32>,
    emitted: u64,
    budget: u64,
    diverge_at: Option<u64>,
    diverged: bool,
    /// Dispatcher micro-state: which of the three dispatcher slots to
    /// emit next when no frame is active (see `DISPATCH_PC`).
    dispatch_step: u8,
}

impl<'a> EventWalk<'a> {
    /// Opens a walk for `detail`. `speculative` selects the view a
    /// pre-execution would observe (divergence enabled).
    pub fn new(
        image: &'a CodeImage,
        params: &'a WorkloadParams,
        detail: &EventDetail,
        speculative: bool,
    ) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(detail.seed);
        // The work-item pool grows with the event's length: a bigger
        // event does *more different* work, not the same work more often,
        // which keeps the code-churn density (and hence I-MPKI)
        // independent of event size.
        let pool_size = (params.event_pool_size as u64 * detail.len
            / params.mean_event_len.max(1))
        .clamp(8, 768) as u32;
        let pool = image.sample_event_pool(detail.kind, pool_size, &mut rng);
        let handler = image.handler_of_kind(detail.kind);
        let global_window = rng.below((params.global_bytes - 4 * 1024).max(1)) & !63;
        let kind_window = rng.below((params.kind_bytes.saturating_sub(4 * 1024)).max(1)) & !63;
        let mut walk = EventWalk {
            image,
            params,
            kind: detail.kind,
            event_index: detail.index,
            rng,
            seed: detail.seed,
            global_window,
            kind_window,
            stream_base: 0,
            stream_count: 0,
            hot_base: 0,
            frames: Vec::with_capacity(MAX_DEPTH),
            pool,
            emitted: 0,
            budget: detail.len,
            diverge_at: if speculative { detail.diverge_at } else { None },
            diverged: false,
            dispatch_step: 1,
        };
        walk.reseat_data_state();
        // The handler itself is entered through the dispatcher, so the
        // first emitted instructions are the dispatcher's; `handler` is
        // what the first dispatch call will invoke.
        let _ = handler;
        walk
    }

    fn new_frame(&mut self, func: u32, ret_to: Addr) -> Frame {
        Frame { func, block: 0, instr: 0, ret_to, loops: Vec::new() }
    }

    /// Starts a new work item: re-seats the stream walk and the hot
    /// object block. Called at each root-function start, so streams are
    /// long enough for the prefetchers and the per-event cold footprint
    /// stays bounded.
    fn reseat_data_state(&mut self) {
        self.stream_base = if self.rng.chance(0.5) {
            self.heap_base() + (self.rng.below(self.params.heap_per_event.max(64)) & !63)
        } else {
            self.kind_base() + (self.rng.below(self.params.kind_bytes) & !63)
        };
        self.stream_count = 0;
        // The hot object block persists across most work items (the DOM
        // node or object graph an event keeps poking at); only sometimes
        // does a new item move to fresh objects.
        if self.hot_base == 0 || self.rng.chance(0.25) {
            self.hot_base =
                self.heap_base() + (self.rng.below(self.params.heap_per_event.max(1024)) & !63);
        }
    }

    fn heap_base(&self) -> u64 {
        HEAP_BASE + self.event_index * self.params.heap_per_event
    }

    fn kind_base(&self) -> u64 {
        KIND_BASE + self.kind.index() as u64 * self.params.kind_bytes
    }

    /// Static per-slot hash: identical for every dynamic execution of the
    /// same instruction slot.
    fn slot_hash(&self, label: u64, frame: &Frame) -> u64 {
        let slot = ((frame.func as u64) << 28) | ((frame.block as u64) << 12) | frame.instr as u64;
        SplitMix64::derive(self.image.seed() ^ label, slot)
    }

    fn emit_body(&mut self, pc: Addr) -> Instr {
        let frame = self.frames.last().expect("emit_body with no frame");
        let h = self.slot_hash(0x0B0D, frame);
        let roll = (h % 10_000) as f64 / 10_000.0;
        let (is_load, is_store) = if roll < self.params.load_frac {
            (true, false)
        } else if roll < self.params.load_frac + self.params.store_frac {
            (false, true)
        } else {
            (false, false)
        };
        if !is_load && !is_store {
            return Instr::alu(pc);
        }
        let addr = self.data_address(h >> 16);
        if is_load {
            let chained = (h >> 60) as f64 / 16.0 < self.params.chained_frac;
            Instr::load(pc, Addr::new(addr), chained)
        } else {
            Instr::store(pc, Addr::new(addr))
        }
    }

    fn data_address(&mut self, static_bits: u64) -> u64 {
        // Streaming decision is static per slot; the stream position is
        // per-work-item dynamic state.
        let streaming = (static_bits & 0xff) as f64 / 256.0 < self.params.streaming_frac;
        if streaming {
            // 8-byte element walks: eight accesses per cache line, so the
            // stride/DCU prefetchers have a pattern worth catching.
            let a = self.stream_base + self.stream_count as u64 * 8;
            self.stream_count += 1;
            return a;
        }
        let region = ((static_bits >> 8) & 0x3ff) as f64 / 1024.0;
        let p = self.params;
        let hot_frac = 0.22;
        let (base, span) = if region < p.stack_frac {
            (STACK_BASE - STACK_SPAN, STACK_SPAN)
        } else if region < p.stack_frac + hot_frac {
            // Hot objects under manipulation: high L1 locality.
            (self.hot_base, 512)
        } else if region < p.stack_frac + hot_frac + p.global_frac {
            // A per-event window into the globals, not the whole region:
            // real events manipulate a bounded slice of shared state.
            (GLOBAL_BASE + self.global_window, 4 * 1024)
        } else if region < p.stack_frac + hot_frac + p.global_frac + p.kind_frac {
            (self.kind_base() + self.kind_window, 4 * 1024)
        } else {
            // A bounded window of the event's fresh heap (cold on first
            // touch, reused afterwards).
            (self.heap_base(), p.heap_per_event.min(4 * 1024))
        };
        base + (self.rng.below(span.max(8)) & !7)
    }

    /// Handles the terminator slot of the current block, emitting its
    /// control instruction and updating frame state.
    fn emit_terminator(&mut self) -> Instr {
        let (term, pc, block_idx, n_blocks) = {
            let frame = self.frames.last().expect("terminator with no frame");
            let f = self.image.function(frame.func);
            let b = &f.blocks[frame.block as usize];
            (b.term, b.term_pc(), frame.block, f.blocks.len() as u16)
        };
        match term {
            Terminator::FallThrough => {
                self.advance();
                Instr::alu(pc)
            }
            Terminator::CondSkip { taken_permille, skip } => {
                let taken = self.rng.below(1000) < taken_permille as u64;
                let target_block = (block_idx + 1 + skip as u16).min(n_blocks - 1);
                let frame = self.frames.last().expect("frame");
                let target = self.image.function(frame.func).blocks[target_block as usize].start;
                let frame = self.frames.last_mut().expect("frame");
                if taken {
                    frame.block = target_block;
                    frame.instr = 0;
                } else {
                    frame.block += 1;
                    frame.instr = 0;
                }
                Instr::cond_branch(pc, taken, target)
            }
            Terminator::LoopBack { to_block, mean_trips } => {
                let frame = self.frames.last().expect("frame");
                let needs_draw = !frame.loops.iter().any(|&(b, _)| b == block_idx);
                // Trip counts are mostly stable per site (the loop
                // predictor's bread and butter), with occasional ±1
                // data-dependent wobble.
                let trips = if needs_draw {
                    let base = mean_trips.max(1) as u64;
                    if self.rng.chance(0.70) {
                        base as u16
                    } else if self.rng.chance(0.5) {
                        (base + 1) as u16
                    } else {
                        (base - 1).max(1) as u16
                    }
                } else {
                    0
                };
                let target = self.image.function(frame.func).blocks[to_block as usize].start;
                let frame = self.frames.last_mut().expect("frame");
                if needs_draw {
                    frame.loops.push((block_idx, trips));
                }
                let entry = frame
                    .loops
                    .iter_mut()
                    .find(|(b, _)| *b == block_idx)
                    .expect("loop entry just ensured");
                if entry.1 > 0 {
                    entry.1 -= 1;
                    frame.block = to_block;
                    frame.instr = 0;
                    Instr::cond_branch(pc, true, target)
                } else {
                    frame.loops.retain(|&(b, _)| b != block_idx);
                    frame.block += 1;
                    frame.instr = 0;
                    Instr::cond_branch(pc, false, target)
                }
            }
            Terminator::Call { callee } => {
                if self.rng.chance(self.params.call_take_prob) {
                    self.emit_call(pc, callee, false)
                } else {
                    self.skip_call(pc)
                }
            }
            Terminator::CallPool => {
                if self.rng.chance(self.params.call_take_prob) {
                    let callee = self.pool[self.rng.below(self.pool.len() as u64) as usize];
                    self.emit_call(pc, callee, false)
                } else {
                    self.skip_call(pc)
                }
            }
            Terminator::Dispatch { base } => {
                if self.rng.chance(self.params.call_take_prob) {
                    // Dispatch targets are zipf-skewed: real dynamic
                    // sites have a hot receiver type with a tail of
                    // megamorphic cases.
                    let z = self.rng.unit_f64();
                    let i = ((z * z * z) * self.image.dispatch_fanout() as f64) as u32;
                    let callee =
                        self.image.dispatch_target(base, i.min(self.image.dispatch_fanout() - 1));
                    self.emit_call(pc, callee, true)
                } else {
                    self.skip_call(pc)
                }
            }
            Terminator::Return => {
                let frame = self.frames.pop().expect("return with no frame");
                Instr::ret(pc, frame.ret_to)
            }
        }
    }

    /// A call site whose guard did not take this time: advances past the
    /// site as straight-line code.
    fn skip_call(&mut self, pc: Addr) -> Instr {
        self.advance();
        Instr::alu(pc)
    }

    fn emit_call(&mut self, pc: Addr, callee: u32, indirect: bool) -> Instr {
        self.advance();
        if self.frames.len() >= MAX_DEPTH {
            // Depth cap: degrade to a non-control slot.
            return Instr::alu(pc);
        }
        let entry = self.image.function(callee).entry;
        let frame = self.new_frame(callee, pc + INSTR_BYTES);
        self.frames.push(frame);
        if indirect {
            Instr::indirect_call(pc, entry)
        } else {
            Instr::call(pc, entry)
        }
    }

    fn advance(&mut self) {
        let frame = self.frames.last_mut().expect("advance with no frame");
        frame.block += 1;
        frame.instr = 0;
    }
}

impl EventStream for EventWalk<'_> {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.emitted >= self.budget {
            return None;
        }
        if !self.diverged && self.diverge_at == Some(self.emitted) {
            // The pre-execution veers off the real path: every dynamic
            // decision from here on comes from an unrelated stream.
            self.rng = Xoshiro256pp::seed_from_u64(SplitMix64::derive(self.seed, 0xD1FF));
            self.diverged = true;
        }
        if self.frames.is_empty() {
            // Between work items the walk runs the dispatcher loop.
            let instr = match self.dispatch_step {
                0 => {
                    // Loop back to the dispatcher head after a root
                    // returned to DISPATCH_RET.
                    self.dispatch_step = 1;
                    Instr::cond_branch(Addr::new(DISPATCH_RET), true, Addr::new(DISPATCH_PC))
                }
                1 => {
                    self.dispatch_step = 2;
                    Instr::alu(Addr::new(DISPATCH_PC))
                }
                _ => {
                    // Pick the next work item and indirect-call its root.
                    self.dispatch_step = 0;
                    let func = if self.emitted <= 2 {
                        self.image.handler_of_kind(self.kind)
                    } else {
                        self.pool[self.rng.below(self.pool.len() as u64) as usize]
                    };
                    self.reseat_data_state();
                    let entry = self.image.function(func).entry;
                    let frame = self.new_frame(func, Addr::new(DISPATCH_RET));
                    self.frames.push(frame);
                    Instr::indirect_call(Addr::new(DISPATCH_CALL), entry)
                }
            };
            self.emitted += 1;
            return Some(instr);
        }
        let frame = self.frames.last().expect("frame");
        let f = self.image.function(frame.func);
        let b = &f.blocks[frame.block as usize];
        let instr = if frame.instr < b.body_len {
            let pc = b.start + frame.instr as u64 * INSTR_BYTES;
            let i = self.emit_body(pc);
            self.frames.last_mut().expect("frame").instr += 1;
            i
        } else {
            self.emit_terminator()
        };
        self.emitted += 1;
        Some(instr)
    }

    fn executed(&self) -> u64 {
        self.emitted
    }

    fn fork(&self) -> Box<dyn EventStream + '_> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{CodeImage, CODE_BASE};
    use esp_trace::InstrKind;

    fn setup() -> (CodeImage, WorkloadParams) {
        let params = WorkloadParams::web_default();
        let image = CodeImage::build(&params, 11);
        (image, params)
    }

    fn detail(len: u64, diverge_at: Option<u64>) -> EventDetail {
        EventDetail {
            index: 3,
            kind: EventKindId::new(2),
            seed: 0xABCD,
            len,
            diverge_at,
            order_mispredicted: false,
        }
    }

    fn collect(walk: &mut EventWalk<'_>, n: usize) -> Vec<Instr> {
        (0..n).map_while(|_| walk.next_instr()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let (image, params) = setup();
        let d = detail(5000, None);
        let mut a = EventWalk::new(&image, &params, &d, false);
        let mut b = EventWalk::new(&image, &params, &d, false);
        assert_eq!(collect(&mut a, 5000), collect(&mut b, 5000));
    }

    #[test]
    fn budget_is_exact() {
        let (image, params) = setup();
        let d = detail(1234, None);
        let mut w = EventWalk::new(&image, &params, &d, false);
        let got = collect(&mut w, 10_000);
        assert_eq!(got.len(), 1234);
        assert_eq!(w.executed(), 1234);
        assert!(w.next_instr().is_none());
    }

    #[test]
    fn speculative_view_matches_until_divergence() {
        let (image, params) = setup();
        let d = detail(4000, Some(1500));
        let mut actual = EventWalk::new(&image, &params, &d, false);
        let mut spec = EventWalk::new(&image, &params, &d, true);
        let a = collect(&mut actual, 4000);
        let s = collect(&mut spec, 4000);
        assert_eq!(a[..1500], s[..1500]);
        assert_ne!(a[1500..], s[1500..]);
    }

    #[test]
    fn speculative_view_without_divergence_matches_fully() {
        let (image, params) = setup();
        let d = detail(4000, None);
        let mut actual = EventWalk::new(&image, &params, &d, false);
        let mut spec = EventWalk::new(&image, &params, &d, true);
        assert_eq!(collect(&mut actual, 4000), collect(&mut spec, 4000));
    }

    #[test]
    fn clone_resumes_identically() {
        let (image, params) = setup();
        let d = detail(6000, None);
        let mut w = EventWalk::new(&image, &params, &d, false);
        collect(&mut w, 2000);
        let mut snapshot = w.clone();
        assert_eq!(collect(&mut w, 1000), collect(&mut snapshot, 1000));
    }

    #[test]
    fn instruction_mix_is_close_to_params() {
        let (image, params) = setup();
        let d = detail(60_000, None);
        let mut w = EventWalk::new(&image, &params, &d, false);
        let instrs = collect(&mut w, 60_000);
        let n = instrs.len() as f64;
        let loads = instrs.iter().filter(|i| matches!(i.kind, InstrKind::Load { .. })).count() as f64;
        let stores = instrs.iter().filter(|i| matches!(i.kind, InstrKind::Store { .. })).count() as f64;
        let branches = instrs.iter().filter(|i| i.is_branch()).count() as f64;
        // Body slots are ~5/6 of the stream; loads ≈ 0.30 of body slots.
        assert!((0.15..0.35).contains(&(loads / n)), "load frac {}", loads / n);
        assert!((0.04..0.16).contains(&(stores / n)), "store frac {}", stores / n);
        assert!((0.08..0.30).contains(&(branches / n)), "branch frac {}", branches / n);
    }

    #[test]
    fn pcs_are_within_the_image() {
        let (image, params) = setup();
        let d = detail(20_000, None);
        let mut w = EventWalk::new(&image, &params, &d, false);
        let hi = CODE_BASE + image.footprint_bytes();
        for i in collect(&mut w, 20_000) {
            let pc = i.pc.as_u64();
            let in_image = (CODE_BASE..hi).contains(&pc);
            let in_dispatcher = (DISPATCH_PC..=DISPATCH_RET).contains(&pc);
            assert!(in_image || in_dispatcher, "pc {pc:#x} outside image");
        }
    }

    #[test]
    fn control_flow_is_consistent() {
        // Each instruction's next_pc must equal the following
        // instruction's pc (single-threaded straight trace).
        let (image, params) = setup();
        let d = detail(30_000, None);
        let mut w = EventWalk::new(&image, &params, &d, false);
        let instrs = collect(&mut w, 30_000);
        let mut breaks = 0;
        for pair in instrs.windows(2) {
            if pair[0].next_pc() != pair[1].pc {
                breaks += 1;
            }
        }
        // With the dispatcher loop in the stream, control flow is fully
        // consistent: every instruction's next_pc is the next
        // instruction's pc.
        assert_eq!(breaks, 0, "control-flow breaks found");
    }

    #[test]
    fn different_events_use_different_heaps() {
        let (image, params) = setup();
        let d1 = EventDetail { index: 1, ..detail(5000, None) };
        let d2 = EventDetail { index: 2, ..detail(5000, None) };
        let heap_of = |d: &EventDetail| {
            let mut w = EventWalk::new(&image, &params, d, false);
            collect(&mut w, 5000)
                .iter()
                .filter_map(|i| i.mem_addr())
                .filter(|a| a.as_u64() >= HEAP_BASE)
                .map(|a| a.as_u64())
                .min()
        };
        let h1 = heap_of(&d1).unwrap();
        let h2 = heap_of(&d2).unwrap();
        assert!(h2 >= h1 + params.heap_per_event);
    }

    #[test]
    fn streaming_accesses_exist() {
        let (image, params) = setup();
        let d = detail(30_000, None);
        let mut w = EventWalk::new(&image, &params, &d, false);
        let instrs = collect(&mut w, 30_000);
        let addrs: Vec<u64> = instrs.iter().filter_map(|i| i.mem_addr()).map(|a| a.as_u64()).collect();
        // Look for +8 sequential pairs, the 8-byte-element streaming
        // signature.
        let sequential = addrs.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(sequential > 10, "sequential={sequential}");
    }
}
