//! Materialisation of generated workloads into packed trace arenas, and
//! a process-wide memoised cache so each (profile, scale, seed) is
//! decoded exactly once.
//!
//! A [`GeneratedWorkload`] regenerates instruction streams from seeds —
//! cheap to hold, expensive to replay. [`GeneratedWorkload::materialise_par`]
//! walks every event once (actual stream, plus the speculative tail past
//! the recorded divergence point) and packs the result into a shared
//! [`TraceArena`]; the returned [`PackedWorkload`] replays it with
//! allocation-free cursors. The cache in this module memoises both the
//! generation and the materialisation per `(profile name, scale, seed)`,
//! so the evaluation matrix, `repro dump`, `repro explain`, and `repro
//! check` all share one arena per workload instead of regenerating per
//! invocation.
//!
//! # Examples
//!
//! ```
//! use esp_workload::{arena, BenchmarkProfile};
//! use esp_trace::Workload;
//!
//! let profile = BenchmarkProfile::pixlr().scaled(40_000);
//! let packed = arena::packed_for(&profile, 7, 1);
//! let again = arena::packed_for(&profile, 7, 1);
//! assert!(std::sync::Arc::ptr_eq(&packed, &again), "second call is warm");
//! assert!(!packed.events().is_empty());
//! ```

use crate::{BenchmarkProfile, GeneratedWorkload};
use esp_trace::{EventStream, PackedEvent, PackedTrace, PackedWorkload, TraceArena, Workload};
use esp_types::EventId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

impl GeneratedWorkload {
    /// Materialises every event's streams into a packed arena, fanning
    /// the per-event decode out over up to `threads` workers.
    ///
    /// The result replays bit-identically: the packed actual stream is
    /// the full regenerative walk, and the speculative view shares the
    /// actual arrays up to the event's recorded divergence point, then
    /// continues in a tail recorded from the speculative walk. Decoding
    /// is seed-deterministic, so the arena contents are independent of
    /// `threads`.
    pub fn materialise_par(&self, threads: usize) -> PackedWorkload {
        let details = self.schedule().details();
        let events = esp_par::parallel_map(threads, details, |_, d| {
            let id = EventId::new(d.index);
            let mut actual = PackedTrace::from_stream(&mut self.walk_actual(id));
            actual.shrink_to_fit();
            let (diverge_at, tail) = match d.diverge_at {
                // A divergence point past the event's budget never
                // triggers; store the event as non-diverging.
                Some(at) if at < d.len => {
                    let mut spec = self.walk_speculative(id);
                    for _ in 0..at {
                        spec.next_instr();
                    }
                    let mut tail = PackedTrace::from_stream(&mut spec);
                    tail.shrink_to_fit();
                    (Some(at), tail)
                }
                _ => (None, PackedTrace::new()),
            };
            PackedEvent::new(actual, diverge_at, tail)
        });
        PackedWorkload::new(
            self.events().to_vec(),
            Arc::new(TraceArena::new(events)),
            self.approx_total_instructions(),
        )
    }

    /// Sequential [`GeneratedWorkload::materialise_par`].
    pub fn materialise(&self) -> PackedWorkload {
        self.materialise_par(1)
    }
}

/// Cache key: profile (or imported-trace) name, target instruction
/// scale, generation seed — everything [`BenchmarkProfile::scaled`] +
/// [`BenchmarkProfile::build`] depend on, and exactly the provenance
/// triple an ESPT file's META section carries.
type Key = (String, u64, u64);

struct Entry {
    /// Present for workloads this process generated; `None` for arenas
    /// seated from an imported trace file.
    generated: Option<Arc<GeneratedWorkload>>,
    packed: Option<Arc<PackedWorkload>>,
}

fn cache() -> &'static Mutex<HashMap<Key, Entry>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Entry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn key_of(profile: &BenchmarkProfile, seed: u64) -> Key {
    (profile.name().to_string(), profile.params().target_instructions, seed)
}

/// Returns the memoised generated workload for `profile` (already
/// scaled) and `seed`, generating it on first use.
///
/// Generation happens outside the cache lock; under a race both callers
/// build the same deterministic workload and the first insert wins.
pub fn generated(profile: &BenchmarkProfile, seed: u64) -> Arc<GeneratedWorkload> {
    let key = key_of(profile, seed);
    if let Some(g) = cache()
        .lock()
        .expect("arena cache poisoned")
        .get(&key)
        .and_then(|e| e.generated.clone())
    {
        return g;
    }
    let built = Arc::new(profile.build(seed));
    let mut map = cache().lock().expect("arena cache poisoned");
    let entry = map
        .entry(key)
        .or_insert(Entry { generated: None, packed: None });
    entry.generated.get_or_insert(built).clone()
}

/// Hands an already-built workload to the cache and returns its memoised
/// packed form, materialising on first use (fanned over `threads`).
///
/// Callers that built `workload` themselves (e.g. the bench runner's
/// parallel generation phase) use this to avoid a second generation;
/// everyone else can call [`packed_for`].
pub fn packed(
    profile: &BenchmarkProfile,
    workload: &Arc<GeneratedWorkload>,
    seed: u64,
    threads: usize,
) -> Arc<PackedWorkload> {
    let key = key_of(profile, seed);
    if let Some(p) = cache()
        .lock()
        .expect("arena cache poisoned")
        .get(&key)
        .and_then(|e| e.packed.clone())
    {
        return p;
    }
    let built = Arc::new(workload.materialise_par(threads));
    let mut map = cache().lock().expect("arena cache poisoned");
    let entry = map
        .entry(key)
        .or_insert(Entry { generated: Some(workload.clone()), packed: None });
    entry.packed.get_or_insert(built).clone()
}

/// The memoised packed workload for `profile` (already scaled) and
/// `seed`: generates and materialises on first use, warm afterwards.
/// If an imported trace was seated under the same (name, scale, seed)
/// triple, the import substitutes for generation and is returned
/// directly.
pub fn packed_for(profile: &BenchmarkProfile, seed: u64, threads: usize) -> Arc<PackedWorkload> {
    if let Some(p) = cache()
        .lock()
        .expect("arena cache poisoned")
        .get(&key_of(profile, seed))
        .and_then(|e| e.packed.clone())
    {
        return p;
    }
    let w = generated(profile, seed);
    packed(profile, &w, seed, threads)
}

/// Seats an already-deserialised imported workload in the memo under
/// its provenance triple, without generating anything. The first arena
/// seated for a key wins: if the key is already occupied (by an earlier
/// import *or* a materialised generation), that resident arena is
/// returned instead — "import replaces generation" therefore requires
/// importing before the first simulation touches the key, which the
/// `--trace-in` flow does.
pub fn insert_imported(
    meta: &esp_trace::espt::TraceMeta,
    workload: Arc<PackedWorkload>,
) -> Arc<PackedWorkload> {
    let key = (meta.profile.clone(), meta.scale, meta.seed);
    let mut map = cache().lock().expect("arena cache poisoned");
    let entry = map
        .entry(key)
        .or_insert(Entry { generated: None, packed: None });
    entry.packed.get_or_insert(workload).clone()
}

/// Reads an ESPT trace file and seats its workload in the memo (see
/// [`insert_imported`]). Returns the file's provenance and the resident
/// (seated or pre-existing) arena.
///
/// # Errors
///
/// Any [`esp_trace::espt::EsptError`] from decoding the file.
pub fn import<P: AsRef<std::path::Path>>(
    path: P,
) -> Result<(esp_trace::espt::TraceMeta, Arc<PackedWorkload>), esp_trace::espt::EsptError> {
    let (meta, workload) = esp_trace::espt::read_path(path)?;
    let seated = insert_imported(&meta, Arc::new(workload));
    Ok((meta, seated))
}

/// Drops every cached workload and arena (tests and memory-pressure
/// escape hatch).
pub fn reset() {
    cache().lock().expect("arena cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::{record_stream, Workload};

    fn profile() -> BenchmarkProfile {
        // Small but non-trivial: enough events for diverging ones to
        // exist at the default 2 % rate... not guaranteed, so tests that
        // need divergence pick a profile/seed checked to contain one.
        BenchmarkProfile::amazon().scaled(60_000)
    }

    #[test]
    fn packed_streams_match_walk_streams() {
        let w = profile().build(42);
        let p = w.materialise();
        assert_eq!(p.events(), w.events());
        assert_eq!(p.approx_total_instructions(), w.approx_total_instructions());
        for r in w.events() {
            let a = record_stream(&mut *w.actual_stream(r.id), usize::MAX);
            let pa = record_stream(&mut *p.actual_stream(r.id), usize::MAX);
            assert_eq!(a, pa, "actual stream of {} differs", r.id);
            let s = record_stream(&mut *w.speculative_stream(r.id), usize::MAX);
            let ps = record_stream(&mut *p.speculative_stream(r.id), usize::MAX);
            assert_eq!(s, ps, "speculative stream of {} differs", r.id);
        }
    }

    #[test]
    fn packed_covers_a_diverging_event() {
        // Hunt a seed whose schedule contains an in-budget divergence so
        // the tail path is genuinely exercised.
        for seed in 0..40 {
            let w = profile().build(seed);
            let diverging: Vec<u64> = w
                .schedule()
                .details()
                .iter()
                .filter(|d| d.diverge_at.is_some_and(|at| at < d.len))
                .map(|d| d.index)
                .collect();
            if diverging.is_empty() {
                continue;
            }
            let p = w.materialise();
            for idx in diverging {
                let id = EventId::new(idx);
                let s = record_stream(&mut *w.speculative_stream(id), usize::MAX);
                let ps = record_stream(&mut *p.speculative_stream(id), usize::MAX);
                assert_eq!(s, ps, "diverging event {id} differs");
                let a = record_stream(&mut *w.actual_stream(id), usize::MAX);
                assert_ne!(a, s, "event {id} was supposed to diverge");
            }
            return;
        }
        panic!("no diverging event found in 40 seeds");
    }

    #[test]
    fn materialise_is_thread_invariant() {
        let w = profile().build(9);
        let a = w.materialise_par(1);
        let b = w.materialise_par(4);
        assert_eq!(a.arena().len(), b.arena().len());
        for i in 0..a.arena().len() {
            assert_eq!(a.arena().event(i), b.arena().event(i), "event {i}");
        }
    }

    #[test]
    fn cache_returns_shared_arcs() {
        reset();
        let pr = BenchmarkProfile::gdocs().scaled(30_000);
        let g1 = generated(&pr, 5);
        let g2 = generated(&pr, 5);
        assert!(Arc::ptr_eq(&g1, &g2));
        let p1 = packed(&pr, &g1, 5, 2);
        let p2 = packed_for(&pr, 5, 2);
        assert!(Arc::ptr_eq(&p1, &p2));
        // Different seed or scale miss the cache.
        let g3 = generated(&pr, 6);
        assert!(!Arc::ptr_eq(&g1, &g3));
        reset();
        let g4 = generated(&pr, 5);
        assert!(!Arc::ptr_eq(&g1, &g4), "reset must drop entries");
    }

    #[test]
    fn imported_arena_substitutes_for_generation() {
        reset();
        let pr = BenchmarkProfile::iot_fsm().scaled(20_000);
        let built = packed_for(&pr, 3, 1);
        let meta = esp_trace::espt::TraceMeta {
            profile: pr.name().to_string(),
            scale: 20_000,
            seed: 3,
        };
        let mut bytes = Vec::new();
        esp_trace::espt::write(&mut bytes, &meta, &built).unwrap();

        // In a fresh memo, the seated import must be what packed_for
        // hands out — generation bypassed entirely.
        reset();
        let (m2, decoded) = esp_trace::espt::read(&bytes[..]).unwrap();
        assert_eq!(m2, meta);
        let seated = insert_imported(&m2, Arc::new(decoded));
        let served = packed_for(&pr, 3, 1);
        assert!(Arc::ptr_eq(&seated, &served), "import must replace generation");
        assert_eq!(served.events(), built.events());
        for i in 0..built.arena().len() {
            assert_eq!(served.arena().event(i), built.arena().event(i), "event {i}");
        }

        // First seat wins: a second import of the same triple returns
        // the resident arena.
        let (m3, decoded3) = esp_trace::espt::read(&bytes[..]).unwrap();
        let seated3 = insert_imported(&m3, Arc::new(decoded3));
        assert!(Arc::ptr_eq(&seated, &seated3));
        reset();
    }

    #[test]
    fn import_reads_and_seats_from_a_file() {
        reset();
        let pr = BenchmarkProfile::server_async().scaled(15_000);
        let built = packed_for(&pr, 8, 1);
        let meta = esp_trace::espt::TraceMeta {
            profile: pr.name().to_string(),
            scale: 15_000,
            seed: 8,
        };
        let path = std::env::temp_dir().join("esp_arena_import_test.espt");
        esp_trace::espt::write_path(&path, &meta, &built).unwrap();
        reset();
        let (m, seated) = import(&path).unwrap();
        assert_eq!(m, meta);
        assert_eq!(seated.events(), built.events());
        assert!(Arc::ptr_eq(&seated, &packed_for(&pr, 8, 1)));
        std::fs::remove_file(&path).ok();
        reset();
    }

    #[test]
    fn arena_reports_resident_bytes() {
        let w = BenchmarkProfile::pixlr().scaled(20_000).build(3);
        let p = w.materialise();
        let bytes = p.resident_bytes();
        assert!(bytes > 0);
        // SoA packing beats Vec<Instr> (32 B/instr) by a wide margin.
        let fat = p.approx_total_instructions() * std::mem::size_of::<esp_trace::Instr>() as u64;
        assert!(bytes * 2 < fat, "packed {bytes} vs fat {fat}");
    }
}
