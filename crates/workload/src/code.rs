//! The generated code image.

use crate::WorkloadParams;
use esp_types::{Addr, EventKindId, Rng, SplitMix64, Xoshiro256pp};

/// Base virtual address of generated code.
pub(crate) const CODE_BASE: u64 = 0x0400_0000;
/// Architectural instruction width in bytes.
pub(crate) const INSTR_BYTES: u64 = 4;

/// How a basic block ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Straight-line continuation into the next block (encoded as an ALU
    /// instruction so every block ends in a real instruction slot).
    FallThrough,
    /// A forward conditional branch skipping `skip` blocks when taken.
    CondSkip {
        /// Static taken probability in per-mille.
        taken_permille: u16,
        /// Blocks skipped on the taken path.
        skip: u8,
    },
    /// A backward conditional branch forming a counted loop.
    LoopBack {
        /// Loop header block index within the function.
        to_block: u16,
        /// Mean trip count for this site.
        mean_trips: u8,
    },
    /// A direct call to a fixed callee. Callees are drawn to mimic real
    /// call graphs: mostly into the hot shared runtime, otherwise near
    /// the caller — which is what gives events their code locality.
    Call {
        /// Callee function index.
        callee: u32,
    },
    /// A call whose callee is drawn from the executing event's function
    /// pool — the cross-event variety that defeats history predictors.
    CallPool,
    /// An indirect dispatch site (e.g. a JS property access): the target
    /// is one of [`WorkloadParams::dispatch_targets`] functions derived
    /// from `base`, chosen dynamically per execution.
    Dispatch {
        /// Anchor of the target set.
        base: u32,
    },
    /// Function return.
    Return,
}

/// One basic block: `body_len` straight-line instruction slots followed
/// by one terminator slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Address of the first instruction.
    pub start: Addr,
    /// Number of non-control body instructions.
    pub body_len: u16,
    /// The control instruction ending the block.
    pub term: Terminator,
}

impl Block {
    /// Address of the terminator instruction.
    pub fn term_pc(&self) -> Addr {
        self.start + self.body_len as u64 * INSTR_BYTES
    }

    /// Total bytes occupied by the block.
    pub fn size_bytes(&self) -> u64 {
        (self.body_len as u64 + 1) * INSTR_BYTES
    }
}

/// One generated function: contiguous blocks, ending in a `Return` block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Entry address (== first block's start).
    pub entry: Addr,
    /// The function's basic blocks in layout order.
    pub blocks: Vec<Block>,
}

/// The whole generated program text: every function of the application
/// plus its shared runtime, laid out contiguously from a fixed base.
///
/// The image is built once per workload from a seed and shared by all
/// events; per-event variety comes from which functions an event's walk
/// visits, not from regenerating code.
///
/// # Examples
///
/// ```
/// use esp_workload::{CodeImage, WorkloadParams};
///
/// let image = CodeImage::build(&WorkloadParams::web_default(), 1);
/// assert!(image.n_functions() > 100);
/// assert!(image.footprint_bytes() > 1024 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct CodeImage {
    seed: u64,
    functions: Vec<Function>,
    footprint_bytes: u64,
    n_shared: u32,
    kind_pool_permille: u32,
    dispatch_targets: u32,
}

impl CodeImage {
    /// Generates the image for `params` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation.
    pub fn build(params: &WorkloadParams, seed: u64) -> Self {
        params.validate().expect("invalid workload parameters");
        let mut rng = Xoshiro256pp::seed_from_u64(SplitMix64::derive(seed, 0xC0DE));
        let mean_fn_bytes = (params.mean_blocks_per_fn as u64)
            * (params.mean_block_len as u64 + 1)
            * INSTR_BYTES;
        let n_fns = (params.code_footprint_bytes / mean_fn_bytes).max(16) as u32;

        let n_shared = (n_fns as u64 * params.shared_pool_permille as u64 / 1000).max(1) as u32;
        let mut functions = Vec::with_capacity(n_fns as usize);
        let mut cursor = CODE_BASE;
        for idx in 0..n_fns {
            let f = Self::build_function(params, &mut rng, &mut cursor, idx, n_fns, n_shared);
            functions.push(f);
        }
        CodeImage {
            seed,
            functions,
            footprint_bytes: cursor - CODE_BASE,
            n_shared,
            kind_pool_permille: params.kind_pool_permille,
            dispatch_targets: params.dispatch_targets,
        }
    }

    fn build_function(
        params: &WorkloadParams,
        rng: &mut Xoshiro256pp,
        cursor: &mut u64,
        fn_idx: u32,
        n_fns: u32,
        n_shared: u32,
    ) -> Function {
        let n_blocks = rng.range(2, 2 * params.mean_blocks_per_fn as u64) as u16;
        let entry = Addr::new(*cursor);
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for b in 0..n_blocks {
            let body_len = rng.range(1, 2 * params.mean_block_len as u64 + 1) as u16;
            let term = if b == n_blocks - 1 {
                Terminator::Return
            } else {
                Self::draw_terminator(params, rng, b, n_blocks, fn_idx, n_fns, n_shared)
            };
            let block = Block { start: Addr::new(*cursor), body_len, term };
            *cursor += block.size_bytes();
            blocks.push(block);
        }
        Function { entry, blocks }
    }

    #[allow(clippy::too_many_arguments)]
    fn draw_terminator(
        params: &WorkloadParams,
        rng: &mut Xoshiro256pp,
        block: u16,
        n_blocks: u16,
        fn_idx: u32,
        n_fns: u32,
        n_shared: u32,
    ) -> Terminator {
        let roll = rng.unit_f64();
        let mut acc = params.call_frac;
        if roll < acc {
            // Real call graphs: ~40% of call sites hit the hot shared
            // runtime, ~25% call near the caller, the rest draw from the
            // event's function pool (cross-event variety).
            let kind = rng.unit_f64();
            return if kind < 0.20 {
                Terminator::Call { callee: rng.below(n_shared as u64) as u32 }
            } else if kind < 0.45 {
                let delta = rng.range(1, 33) as i64 * if rng.chance(0.5) { 1 } else { -1 };
                let callee = (fn_idx as i64 + delta).rem_euclid(n_fns as i64) as u32;
                Terminator::Call { callee }
            } else {
                Terminator::CallPool
            };
        }
        acc += params.dispatch_frac;
        if roll < acc {
            return Terminator::Dispatch { base: rng.below(n_fns as u64) as u32 };
        }
        acc += params.loop_frac;
        if roll < acc && block > 0 {
            let to_block = rng.below(block as u64) as u16;
            let mean_trips = rng.range(2, 2 * params.mean_loop_trips as u64) as u8;
            return Terminator::LoopBack { to_block, mean_trips };
        }
        // Conditional forward skip (the common case), occasionally a pure
        // fall-through.
        if rng.chance(0.12) {
            return Terminator::FallThrough;
        }
        let remaining = (n_blocks - 1 - block) as u64;
        let skip = rng.range(1, remaining.min(3) + 1) as u8;
        let taken_permille = if rng.chance(params.strong_bias_frac) {
            let p = (params.strong_bias_noise * 1000.0) as u16;
            // Forward branches are mostly NOT taken in real code (error
            // paths, guards), which is what makes BTFN static prediction
            // work on cold code.
            if rng.chance(0.90) {
                p
            } else {
                1000 - p
            }
        } else {
            rng.range(250, 751) as u16
        };
        Terminator::CondSkip { taken_permille, skip }
    }

    /// The image's generation seed (also salts static per-slot hashes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of generated functions.
    pub fn n_functions(&self) -> u32 {
        self.functions.len() as u32
    }

    /// Looks up a function by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn function(&self, idx: u32) -> &Function {
        &self.functions[idx as usize]
    }

    /// Total code bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Number of shared "runtime" functions (hot across all kinds).
    pub fn n_shared(&self) -> u32 {
        self.n_shared
    }

    /// The handler entry function for an event kind.
    pub fn handler_of_kind(&self, kind: EventKindId) -> u32 {
        (SplitMix64::derive(self.seed ^ 0xAB1E, kind.index() as u64) % self.n_functions() as u64)
            as u32
    }

    /// Whether function `f` belongs to kind `kind`'s pool.
    pub fn kind_pool_contains(&self, kind: EventKindId, f: u32) -> bool {
        if f < self.n_shared {
            return true;
        }
        let h = SplitMix64::derive(
            self.seed ^ 0xF00D,
            ((kind.index() as u64) << 32) | f as u64,
        );
        h % 1000 < self.kind_pool_permille as u64
    }

    /// Samples a dynamic event's function pool: `size` functions drawn
    /// from the kind's pool (shared runtime functions included).
    pub fn sample_event_pool(
        &self,
        kind: EventKindId,
        size: u32,
        rng: &mut impl Rng,
    ) -> Vec<u32> {
        let n = self.n_functions() as u64;
        let mut pool = Vec::with_capacity(size as usize);
        for _ in 0..size {
            // Rejection-sample a member of the kind pool; bound the work
            // so a tiny pool cannot stall generation.
            let mut pick = rng.below(n) as u32;
            for _ in 0..64 {
                if self.kind_pool_contains(kind, pick) {
                    break;
                }
                pick = rng.below(n) as u32;
            }
            pool.push(pick);
        }
        pool
    }

    /// Resolves the `i`-th target of a dispatch site anchored at `base`.
    pub fn dispatch_target(&self, base: u32, i: u32) -> u32 {
        (base + i * 7 + 1) % self.n_functions()
    }

    /// Number of dispatch targets per site.
    pub fn dispatch_fanout(&self) -> u32 {
        self.dispatch_targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> CodeImage {
        CodeImage::build(&WorkloadParams::web_default(), 42)
    }

    #[test]
    fn layout_is_contiguous_and_sized() {
        let img = image();
        let p = WorkloadParams::web_default();
        // Footprint should be within 50% of the requested size.
        let ratio = img.footprint_bytes() as f64 / p.code_footprint_bytes as f64;
        assert!((0.5..1.5).contains(&ratio), "ratio={ratio}");
        // Blocks within a function are contiguous; functions too.
        let mut expected = CODE_BASE;
        for fi in 0..img.n_functions() {
            let f = img.function(fi);
            assert_eq!(f.entry.as_u64(), expected);
            for b in &f.blocks {
                assert_eq!(b.start.as_u64(), expected);
                expected += b.size_bytes();
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = CodeImage::build(&WorkloadParams::web_default(), 7);
        let b = CodeImage::build(&WorkloadParams::web_default(), 7);
        assert_eq!(a.n_functions(), b.n_functions());
        for i in 0..a.n_functions() {
            assert_eq!(a.function(i), b.function(i));
        }
        let c = CodeImage::build(&WorkloadParams::web_default(), 8);
        assert_ne!(a.function(0), c.function(0));
    }

    #[test]
    fn every_function_ends_in_return() {
        let img = image();
        for fi in 0..img.n_functions() {
            let f = img.function(fi);
            assert_eq!(f.blocks.last().unwrap().term, Terminator::Return);
        }
    }

    #[test]
    fn branch_targets_are_in_range() {
        let img = image();
        for fi in 0..img.n_functions() {
            let f = img.function(fi);
            for (bi, b) in f.blocks.iter().enumerate() {
                match b.term {
                    Terminator::CondSkip { skip, .. } => {
                        assert!(bi + 1 + skip as usize <= f.blocks.len(), "skip target out of range");
                    }
                    Terminator::LoopBack { to_block, .. } => {
                        assert!((to_block as usize) < bi);
                    }
                    Terminator::Call { callee } => {
                        assert!(callee < img.n_functions());
                    }
                    Terminator::Dispatch { base } => {
                        assert!(base < img.n_functions());
                        for i in 0..img.dispatch_fanout() {
                            assert!(img.dispatch_target(base, i) < img.n_functions());
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn terminator_mix_is_reasonable() {
        let img = image();
        let (mut cond, mut call, mut disp, mut lp, mut total) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for fi in 0..img.n_functions() {
            for b in &img.function(fi).blocks {
                total += 1;
                match b.term {
                    Terminator::CondSkip { .. } => cond += 1,
                    Terminator::Call { .. } | Terminator::CallPool => call += 1,
                    Terminator::Dispatch { .. } => disp += 1,
                    Terminator::LoopBack { .. } => lp += 1,
                    _ => {}
                }
            }
        }
        let f = |n: u64| n as f64 / total as f64;
        assert!(f(cond) > 0.3, "cond frac {}", f(cond));
        assert!((0.10..0.30).contains(&f(call)), "call frac {}", f(call));
        assert!(f(disp) > 0.01 && f(disp) < 0.10, "dispatch frac {}", f(disp));
        assert!(f(lp) > 0.03, "loop frac {}", f(lp));
    }

    #[test]
    fn kind_pools_share_runtime_and_differ_otherwise() {
        let img = image();
        let k0 = EventKindId::new(0);
        let k1 = EventKindId::new(1);
        // Shared functions belong to every pool.
        for f in 0..img.n_shared() {
            assert!(img.kind_pool_contains(k0, f));
            assert!(img.kind_pool_contains(k1, f));
        }
        // Pools differ somewhere beyond the shared prefix.
        let differs = (img.n_shared()..img.n_functions())
            .any(|f| img.kind_pool_contains(k0, f) != img.kind_pool_contains(k1, f));
        assert!(differs);
    }

    #[test]
    fn event_pool_sampling_respects_membership() {
        let img = image();
        let kind = EventKindId::new(3);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let pool = img.sample_event_pool(kind, 48, &mut rng);
        assert_eq!(pool.len(), 48);
        let members = pool.iter().filter(|&&f| img.kind_pool_contains(kind, f)).count();
        assert!(members >= 46, "members={members}");
    }

    #[test]
    fn handlers_are_stable_per_kind() {
        let img = image();
        let h0 = img.handler_of_kind(EventKindId::new(2));
        let h1 = img.handler_of_kind(EventKindId::new(2));
        assert_eq!(h0, h1);
        assert!(h0 < img.n_functions());
    }
}
