//! The seven benchmark profiles of Fig. 6, plus two extra workload
//! families with deliberately different statistical shapes.

use crate::{GeneratedWorkload, WorkloadParams};

/// A named, calibrated workload preset: one of the paper's seven
/// benchmark web applications (Fig. 6), or one of the two extra
/// families ([`BenchmarkProfile::extras`]) added to probe event-driven
/// shapes the paper's browsing sessions do not cover.
///
/// Each profile stores its session's event and instruction counts (the
/// paper's reported numbers for the web profiles, our calibration
/// targets for the extras); the generated workload preserves the
/// implied *mean event length* (capped so a scaled run still contains
/// enough events for the event queue to be meaningful) and a per-site
/// flavour: code footprint, data intensity, dispatch density, and
/// burstiness.
///
/// # Examples
///
/// ```
/// use esp_workload::BenchmarkProfile;
///
/// let all = BenchmarkProfile::all();
/// assert_eq!(all.len(), 7);
/// assert_eq!(BenchmarkProfile::all_families().len(), 9);
/// let amazon = BenchmarkProfile::by_name("amazon").unwrap();
/// assert_eq!(amazon.paper_events(), 7_787);
/// let iot = BenchmarkProfile::by_name("iotfsm").unwrap();
/// assert!(iot.params().code_footprint_bytes < amazon.params().code_footprint_bytes);
/// ```
#[derive(Clone, Debug)]
pub struct BenchmarkProfile {
    name: &'static str,
    description: &'static str,
    paper_events: u64,
    paper_minstr: u64,
    params: WorkloadParams,
}

/// Minimum number of events a scaled run must contain; mean event length
/// is capped at `target / MIN_EVENTS` to guarantee it.
const MIN_EVENTS: u64 = 24;

impl BenchmarkProfile {
    fn new(
        name: &'static str,
        description: &'static str,
        paper_events: u64,
        paper_minstr: u64,
        tune: impl FnOnce(&mut WorkloadParams),
    ) -> Self {
        let mut params = WorkloadParams::web_default();
        params.mean_event_len = paper_minstr * 1_000_000 / paper_events;
        tune(&mut params);
        BenchmarkProfile { name, description, paper_events, paper_minstr, params }
    }

    /// amazon.com — e-commerce: search for headphones, browse results.
    pub fn amazon() -> Self {
        Self::new("amazon", "e-commerce", 7_787, 434, |p| {
            p.code_footprint_bytes = 2560 * 1024;
            p.dispatch_frac = 0.045;
            p.event_kinds = 24;
        })
    }

    /// bing.com — search: query, new results.
    pub fn bing() -> Self {
        Self::new("bing", "search", 4_858, 259, |p| {
            p.code_footprint_bytes = 2304 * 1024;
            p.event_kinds = 16;
            p.utilization = 0.88;
        })
    }

    /// cnn.com — news: headlines, world news.
    pub fn cnn() -> Self {
        Self::new("cnn", "news", 13_409, 1_230, |p| {
            p.code_footprint_bytes = 3072 * 1024;
            p.event_kinds = 32;
            p.mean_burst = 6.0;
        })
    }

    /// facebook.com — social networking: homepage, communities, pictures.
    pub fn facebook() -> Self {
        Self::new("facebook", "social networking", 9_305, 2_165, |p| {
            p.code_footprint_bytes = 3328 * 1024;
            p.dispatch_frac = 0.05;
            p.event_kinds = 32;
        })
    }

    /// maps.google.com — interactive maps: directions by three modes.
    pub fn gmaps() -> Self {
        Self::new("gmaps", "interactive maps", 7_298, 2_722, |p| {
            p.code_footprint_bytes = 2816 * 1024;
            p.streaming_frac = 0.22;
            p.heap_per_event = 48 * 1024;
            p.event_kinds = 24;
        })
    }

    /// docs.google.com — utilities: spreadsheet editing.
    pub fn gdocs() -> Self {
        Self::new("gdocs", "utilities", 1_714, 809, |p| {
            p.code_footprint_bytes = 2432 * 1024;
            p.event_kinds = 20;
            p.loop_frac = 0.10;
        })
    }

    /// pixlr.com — data-intensive online image editing: filter kernels.
    pub fn pixlr() -> Self {
        Self::new("pixlr", "data-intensive image editing", 465, 26, |p| {
            p.code_footprint_bytes = 768 * 1024;
            p.event_kinds = 8;
            // Compute kernels: heavy streaming over image data, loopy
            // code, smaller instruction footprint.
            p.loop_frac = 0.20;
            p.mean_loop_trips = 10;
            p.streaming_frac = 0.30;
            p.load_frac = 0.34;
            p.store_frac = 0.16;
            p.heap_per_event = 96 * 1024;
            p.kind_pool_permille = 300;
            p.event_pool_size = 24;
            p.mean_burst = 2.0;
            p.utilization = 0.80;
        })
    }

    /// Server-side async I/O: an event-loop service (think node.js or a
    /// Rust async executor under load) draining poll batches of tiny
    /// completion events. Statistically opposite to the browsing
    /// profiles: events are two orders of magnitude shorter, arrive in
    /// large bursts, chase pointers through per-connection state
    /// (deep inter-event dependence the prefetchers cannot stream), and
    /// run the *same* server code for the whole session instead of
    /// navigating to fresh pages.
    pub fn server_async() -> Self {
        Self::new("serverasync", "server-side async I/O", 120_000, 300, |p| {
            // Steady-state service: one long "phase", no page
            // navigations, moderate code image of hot loop + handlers.
            p.code_footprint_bytes = 1536 * 1024;
            p.events_per_phase = 64;
            p.event_kinds = 12;
            p.event_pool_size = 32;
            // Completion handlers chase connection/session state.
            p.chained_frac = 0.45;
            p.streaming_frac = 0.06;
            p.heap_per_event = 4 * 1024;
            p.load_frac = 0.32;
            p.store_frac = 0.10;
            // Callback dispatch on every completion.
            p.dispatch_frac = 0.04;
            // A loaded server: poll() returns big batches, little idle.
            p.mean_burst = 8.0;
            p.utilization = 0.95;
            p.p_divergence = 0.03;
        })
    }

    /// IoT/MQTT-style sensor firmware: a small finite-state machine
    /// handling bursty periodic sensor readings. The opposite corner
    /// from `server_async`: a tiny resident code image (it fits far up
    /// the cache hierarchy), few handler kinds, loopy filtering code
    /// with highly predictable branches, and long idle gaps between
    /// report bursts — lots of slack for pre-execution, little
    /// cold-miss work for it to hide.
    pub fn iot_fsm() -> Self {
        Self::new("iotfsm", "IoT sensor FSM", 2_000, 25, |p| {
            p.code_footprint_bytes = 256 * 1024;
            p.event_kinds = 6;
            p.events_per_phase = 48;
            p.event_pool_size = 16;
            p.kind_pool_permille = 400;
            p.shared_pool_permille = 150;
            // Filter/average loops over small sample windows.
            p.loop_frac = 0.14;
            p.mean_loop_trips = 6;
            p.strong_bias_frac = 0.97;
            p.chained_frac = 0.15;
            p.streaming_frac = 0.10;
            p.heap_per_event = 2 * 1024;
            // Periodic wake-ups: a burst of readings, then idle.
            p.mean_burst = 12.0;
            p.utilization = 0.35;
            p.p_divergence = 0.01;
            p.p_order_mispredict = 0.002;
        })
    }

    /// All seven profiles in the paper's presentation order.
    pub fn all() -> Vec<BenchmarkProfile> {
        vec![
            Self::amazon(),
            Self::bing(),
            Self::cnn(),
            Self::facebook(),
            Self::gmaps(),
            Self::gdocs(),
            Self::pixlr(),
        ]
    }

    /// The two extra families beyond the paper's web profiles.
    pub fn extras() -> Vec<BenchmarkProfile> {
        vec![Self::server_async(), Self::iot_fsm()]
    }

    /// Every built-in profile: the paper's seven web profiles followed
    /// by the extra families. Name lookups, `repro dump`, `repro
    /// check`, and the intra-run matrix iterate this list; the
    /// paper-replication figures keep using [`BenchmarkProfile::all`].
    pub fn all_families() -> Vec<BenchmarkProfile> {
        let mut v = Self::all();
        v.extend(Self::extras());
        v
    }

    /// Looks a profile up by its lowercase name, across every family.
    ///
    /// # Errors
    ///
    /// Returns [`esp_types::Error::UnknownName`] listing the known names
    /// for unknown input.
    pub fn by_name(name: &str) -> esp_types::Result<BenchmarkProfile> {
        Self::all_families()
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::all_families().iter().map(|p| p.name).collect();
                esp_types::Error::unknown_name(format!("{name} (known: {})", known.join(", ")))
            })
    }

    /// The profile's short name ("amazon", "gmaps", …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The application category from Fig. 6.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Events executed in the profile's reference session (the paper's
    /// reported count — Fig. 6 — for the web profiles; our calibration
    /// target for the extra families).
    pub fn paper_events(&self) -> u64 {
        self.paper_events
    }

    /// Millions of instructions in the profile's reference session
    /// (Fig. 6 for the web profiles, calibration target otherwise).
    pub fn paper_minstr(&self) -> u64 {
        self.paper_minstr
    }

    /// The reference session's implied mean event length in
    /// instructions.
    pub fn paper_mean_event_len(&self) -> u64 {
        self.paper_minstr * 1_000_000 / self.paper_events
    }

    /// The underlying generator parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Returns a copy scaled to `target_instructions` total, capping the
    /// mean event length so the run holds at least 24 events.
    pub fn scaled(&self, target_instructions: u64) -> BenchmarkProfile {
        let mut p = self.clone();
        p.params.target_instructions = target_instructions;
        p.params.mean_event_len = self
            .paper_mean_event_len()
            .min((target_instructions / MIN_EVENTS).max(1_000));
        p
    }

    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics if the (preset) parameters fail validation — a bug, since
    /// presets are validated by tests.
    pub fn build(&self, seed: u64) -> GeneratedWorkload {
        GeneratedWorkload::generate(self.params.clone(), seed)
    }

    /// Builds every profile at `target_instructions` each, fanning the
    /// generation out over up to `threads` worker threads (one job per
    /// profile). Generation is seed-deterministic, so the result is
    /// identical to a sequential `scaled(..).build(..)` loop.
    pub fn build_all_scaled(
        target_instructions: u64,
        seed: u64,
        threads: usize,
    ) -> Vec<(BenchmarkProfile, GeneratedWorkload)> {
        let profiles = Self::all();
        let workloads = esp_par::parallel_map(threads, &profiles, |_, p| {
            p.scaled(target_instructions).build(seed)
        });
        profiles.into_iter().zip(workloads).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp_trace::Workload;

    #[test]
    fn all_profiles_are_valid() {
        for p in BenchmarkProfile::all_families() {
            p.params().validate().unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            p.scaled(500_000).params().validate().unwrap();
        }
    }

    #[test]
    fn families_extend_the_paper_seven() {
        let all = BenchmarkProfile::all();
        let families = BenchmarkProfile::all_families();
        assert_eq!(all.len(), 7, "the paper's figure set stays seven");
        assert_eq!(families.len(), 9);
        let names: Vec<&str> = families.iter().map(|p| p.name()).collect();
        assert_eq!(&names[..7], &all.iter().map(|p| p.name()).collect::<Vec<_>>()[..]);
        assert_eq!(&names[7..], &["serverasync", "iotfsm"]);
        // Names stay unique across families.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn extras_have_distinct_statistical_shapes() {
        let server = BenchmarkProfile::server_async();
        let iot = BenchmarkProfile::iot_fsm();
        let amazon = BenchmarkProfile::amazon();
        // Tiny completion events, two orders under the web profiles.
        assert_eq!(server.paper_mean_event_len(), 2_500);
        assert!(server.paper_mean_event_len() * 20 < amazon.paper_mean_event_len());
        // Deep inter-event dependence: more pointer chasing than any
        // web profile.
        for p in BenchmarkProfile::all() {
            assert!(server.params().chained_frac > p.params().chained_frac, "{}", p.name());
        }
        // The FSM's firmware image is the smallest code footprint of
        // any family, and its arrivals the burstiest with the most
        // idle time.
        for p in BenchmarkProfile::all() {
            assert!(iot.params().code_footprint_bytes < p.params().code_footprint_bytes);
            assert!(iot.params().mean_burst > p.params().mean_burst);
            assert!(iot.params().utilization < p.params().utilization);
        }
    }

    #[test]
    fn fig6_numbers() {
        let rows: Vec<(&str, u64, u64)> = BenchmarkProfile::all()
            .iter()
            .map(|p| (p.name(), p.paper_events(), p.paper_minstr()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("amazon", 7_787, 434),
                ("bing", 4_858, 259),
                ("cnn", 13_409, 1_230),
                ("facebook", 9_305, 2_165),
                ("gmaps", 7_298, 2_722),
                ("gdocs", 1_714, 809),
                ("pixlr", 465, 26),
            ]
        );
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let par = BenchmarkProfile::build_all_scaled(30_000, 11, 4);
        assert_eq!(par.len(), 7);
        for (p, w) in &par {
            let seq = p.scaled(30_000).build(11);
            assert_eq!(w.events(), seq.events(), "{}", p.name());
            assert_eq!(
                w.schedule().total_instructions(),
                seq.schedule().total_instructions(),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for p in BenchmarkProfile::all_families() {
            assert_eq!(BenchmarkProfile::by_name(p.name()).unwrap().name(), p.name());
        }
        let err = BenchmarkProfile::by_name("netscape").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("netscape") && msg.contains("iotfsm"), "{msg}");
    }

    #[test]
    fn scaling_caps_event_length() {
        let g = BenchmarkProfile::gmaps().scaled(480_000);
        // gmaps' real mean (~373k) must be capped to 480k/24 = 20k.
        assert_eq!(g.params().mean_event_len, 20_000);
        // amazon's real mean (~55.7k) is also capped at small scales...
        let a = BenchmarkProfile::amazon().scaled(480_000);
        assert_eq!(a.params().mean_event_len, 20_000);
        // ...but preserved at large scales.
        let a2 = BenchmarkProfile::amazon().scaled(4_000_000);
        assert_eq!(a2.params().mean_event_len, a2.paper_mean_event_len().min(4_000_000 / 24));
    }

    #[test]
    fn pixlr_is_data_intensive() {
        let p = BenchmarkProfile::pixlr();
        let a = BenchmarkProfile::amazon();
        assert!(p.params().streaming_frac > a.params().streaming_frac);
        assert!(p.params().code_footprint_bytes < a.params().code_footprint_bytes);
    }
}
