//! The full knob set of the workload generator.

use esp_types::{Error, Result};

/// All tunable parameters of the synthetic asynchronous program.
///
/// A [`crate::BenchmarkProfile`] is a named `WorkloadParams` preset whose
/// values were calibrated so the simulated baseline lands in the paper's
/// reported metric bands. Fractions are of *instruction slots* unless
/// noted otherwise.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadParams {
    // ---- scale -------------------------------------------------------
    /// Target dynamic instructions for the whole run.
    pub target_instructions: u64,
    /// Mean dynamic instructions per event. Event lengths are drawn from
    /// a log-normal with this mean.
    pub mean_event_len: u64,
    /// Sigma of the log-normal event-length distribution (heavy tail:
    /// most events are much shorter than the mean).
    pub event_len_sigma: f64,
    /// Number of distinct event kinds (handler types) per page phase.
    pub event_kinds: u32,
    /// Events per "page phase". Browsing sessions navigate: every phase
    /// switches to a fresh set of handler kinds (new page code and
    /// structures), so long sessions keep exercising cold code instead of
    /// converging to an unrealistic warm steady state.
    pub events_per_phase: u32,

    // ---- code image --------------------------------------------------
    /// Total generated code footprint in bytes.
    pub code_footprint_bytes: u64,
    /// Mean body instructions per basic block (controls branch density:
    /// every block ends in one control instruction).
    pub mean_block_len: u32,
    /// Mean basic blocks per function.
    pub mean_blocks_per_fn: u32,
    /// Fraction of block terminators that are calls.
    pub call_frac: f64,
    /// Probability that an executed call site actually descends into the
    /// callee (the rest are guarded/inlined paths). Keeps the expected
    /// call fan-out per function visit near 1 so walks neither die out
    /// nor saturate the depth cap.
    pub call_take_prob: f64,
    /// Fraction of block terminators that are indirect dispatch sites.
    pub dispatch_frac: f64,
    /// Fraction of block terminators that are loop back-edges.
    pub loop_frac: f64,
    /// Number of possible targets at each dispatch site.
    pub dispatch_targets: u32,
    /// Mean loop trip count.
    pub mean_loop_trips: u32,
    /// Fraction of conditional branches that are strongly biased
    /// (taken-probability near 0 or 1); the rest are weakly biased.
    pub strong_bias_frac: f64,
    /// Residual taken-probability noise of strongly biased branches
    /// (e.g. 0.06 → p ∈ {0.06, 0.94}).
    pub strong_bias_noise: f64,

    // ---- per-event code locality --------------------------------------
    /// Fraction of the function space in one kind's pool (per mille).
    pub kind_pool_permille: u32,
    /// Functions shared by all kinds (the "runtime"), as a fraction of
    /// the function space (per mille).
    pub shared_pool_permille: u32,
    /// Functions sampled into one dynamic event's working pool.
    pub event_pool_size: u32,

    // ---- data model ----------------------------------------------------
    /// Fraction of body instructions that are loads.
    pub load_frac: f64,
    /// Fraction of body instructions that are stores.
    pub store_frac: f64,
    /// Bytes of the shared global region.
    pub global_bytes: u64,
    /// Bytes of each kind's data region.
    pub kind_bytes: u64,
    /// Fresh heap bytes allocated per event (cold on first touch).
    pub heap_per_event: u64,
    /// Of all memory accesses: fraction hitting the hot stack.
    pub stack_frac: f64,
    /// Fraction hitting the global region.
    pub global_frac: f64,
    /// Fraction hitting the kind region (remainder goes to the heap).
    pub kind_frac: f64,
    /// Fraction of loads/stores that stream (sequential line-granular
    /// walks the stride and DCU prefetchers can catch).
    pub streaming_frac: f64,
    /// Fraction of loads whose address chases a recent load (runahead
    /// cannot prefetch these under the blocking miss).
    pub chained_frac: f64,

    // ---- asynchrony ----------------------------------------------------
    /// Mean events per arrival burst.
    pub mean_burst: f64,
    /// Looper utilisation target in (0, 1]: arrival gaps are sized so the
    /// looper is busy this fraction of the time.
    pub utilization: f64,
    /// Probability that a speculative pre-execution of an event diverges
    /// from its real execution (§5 reports < 2 %).
    pub p_divergence: f64,
    /// Probability that an event executes out of the predicted order
    /// (§4.5's "incorrect prediction" bit).
    pub p_order_mispredict: f64,
}

impl WorkloadParams {
    /// A mid-sized default resembling a generic Web 2.0 application.
    pub fn web_default() -> Self {
        WorkloadParams {
            target_instructions: 400_000,
            mean_event_len: 30_000,
            event_len_sigma: 1.6,
            event_kinds: 16,
            events_per_phase: 12,
            code_footprint_bytes: 2560 * 1024,
            mean_block_len: 6,
            mean_blocks_per_fn: 6,
            call_frac: 0.25,
            call_take_prob: 0.80,
            dispatch_frac: 0.025,
            loop_frac: 0.08,
            dispatch_targets: 8,
            mean_loop_trips: 3,
            strong_bias_frac: 0.95,
            strong_bias_noise: 0.025,
            kind_pool_permille: 250,
            shared_pool_permille: 80,
            event_pool_size: 48,
            load_frac: 0.30,
            store_frac: 0.11,
            global_bytes: 4 * 1024 * 1024,
            kind_bytes: 256 * 1024,
            heap_per_event: 24 * 1024,
            stack_frac: 0.26,
            global_frac: 0.16,
            kind_frac: 0.18,
            streaming_frac: 0.12,
            chained_frac: 0.25,
            mean_burst: 4.0,
            utilization: 0.90,
            p_divergence: 0.02,
            p_order_mispredict: 0.005,
        }
    }

    /// Validates every knob's domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the first offending field.
    pub fn validate(&self) -> Result<()> {
        fn frac(name: &str, v: f64) -> Result<()> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(Error::invalid_config(format!("{name} must be in [0,1], got {v}")))
            }
        }
        if self.target_instructions == 0 {
            return Err(Error::invalid_config("target_instructions must be positive"));
        }
        if self.mean_event_len == 0 {
            return Err(Error::invalid_config("mean_event_len must be positive"));
        }
        if self.event_kinds == 0 {
            return Err(Error::invalid_config("event_kinds must be positive"));
        }
        if self.events_per_phase == 0 {
            return Err(Error::invalid_config("events_per_phase must be positive"));
        }
        if self.code_footprint_bytes < 64 * 1024 {
            return Err(Error::invalid_config("code_footprint_bytes must be at least 64 KiB"));
        }
        if self.mean_block_len == 0 || self.mean_blocks_per_fn < 2 {
            return Err(Error::invalid_config("block geometry too small"));
        }
        frac("call_frac", self.call_frac)?;
        frac("call_take_prob", self.call_take_prob)?;
        frac("dispatch_frac", self.dispatch_frac)?;
        frac("loop_frac", self.loop_frac)?;
        if self.call_frac + self.dispatch_frac + self.loop_frac > 0.9 {
            return Err(Error::invalid_config(
                "call/dispatch/loop fractions leave no room for conditional branches",
            ));
        }
        if self.dispatch_targets == 0 || self.mean_loop_trips == 0 {
            return Err(Error::invalid_config("dispatch_targets and mean_loop_trips must be positive"));
        }
        frac("strong_bias_frac", self.strong_bias_frac)?;
        frac("strong_bias_noise", self.strong_bias_noise)?;
        if self.kind_pool_permille == 0 || self.kind_pool_permille > 1000 {
            return Err(Error::invalid_config("kind_pool_permille must be in 1..=1000"));
        }
        if self.shared_pool_permille > 1000 {
            return Err(Error::invalid_config("shared_pool_permille must be <= 1000"));
        }
        if self.event_pool_size == 0 {
            return Err(Error::invalid_config("event_pool_size must be positive"));
        }
        frac("load_frac", self.load_frac)?;
        frac("store_frac", self.store_frac)?;
        if self.load_frac + self.store_frac > 0.8 {
            return Err(Error::invalid_config("load+store fraction too high"));
        }
        frac("stack_frac", self.stack_frac)?;
        frac("global_frac", self.global_frac)?;
        frac("kind_frac", self.kind_frac)?;
        // 0.22 is the fixed hot-frame fraction carved out by the walk.
        if self.stack_frac + self.global_frac + self.kind_frac + 0.22 > 1.0 {
            return Err(Error::invalid_config("memory region fractions exceed 1"));
        }
        frac("streaming_frac", self.streaming_frac)?;
        frac("chained_frac", self.chained_frac)?;
        if self.global_bytes == 0 || self.kind_bytes == 0 || self.heap_per_event == 0 {
            return Err(Error::invalid_config("data regions must be non-empty"));
        }
        if self.mean_burst < 1.0 {
            return Err(Error::invalid_config("mean_burst must be at least 1"));
        }
        if !(self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err(Error::invalid_config("utilization must be in (0,1]"));
        }
        frac("p_divergence", self.p_divergence)?;
        frac("p_order_mispredict", self.p_order_mispredict)?;
        Ok(())
    }

    /// Expected events in the run, from the instruction budget and the
    /// mean event length (at least 4).
    pub fn expected_events(&self) -> u64 {
        (self.target_instructions / self.mean_event_len).max(4)
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams::web_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WorkloadParams::web_default().validate().unwrap();
    }

    #[test]
    fn rejects_out_of_domain() {
        let mut p = WorkloadParams::web_default();
        p.load_frac = 1.5;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::web_default();
        p.load_frac = 0.7;
        p.store_frac = 0.3;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::web_default();
        p.utilization = 0.0;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::web_default();
        p.stack_frac = 0.5;
        p.global_frac = 0.4;
        p.kind_frac = 0.2;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::web_default();
        p.code_footprint_bytes = 1024;
        assert!(p.validate().is_err());

        let mut p = WorkloadParams::web_default();
        p.call_frac = 0.5;
        p.dispatch_frac = 0.3;
        p.loop_frac = 0.2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn expected_events_floor() {
        let mut p = WorkloadParams::web_default();
        p.target_instructions = 1000;
        p.mean_event_len = 30_000;
        assert_eq!(p.expected_events(), 4);
        p.target_instructions = 300_000;
        assert_eq!(p.expected_events(), 10);
    }
}
