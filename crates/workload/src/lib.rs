//! Synthetic asynchronous-program workloads for the ESP simulator.
//!
//! The paper drives its simulator with instruction traces of Chromium's
//! renderer process captured while browsing seven real Web 2.0 sites
//! (Fig. 6). Those traces are not available, so this crate generates
//! workloads with the same *statistical anatomy*:
//!
//! * a large generated **code image** (functions → basic blocks →
//!   instruction slots) whose footprint far exceeds the L1-I and rivals
//!   the L2, reproducing the high instruction-miss rates of §2.3;
//! * **events**: each dynamic event walks the code image from its
//!   handler's entry point — calls, loops, biased conditional branches,
//!   and indirect dispatch sites — for a heavy-tailed number of
//!   instructions whose *mean matches the paper's Fig. 6 ratio* of
//!   instructions to events for that benchmark;
//! * a **data model** with hot stack, L2-sized globals, per-kind
//!   structures, per-event cold heaps, and streaming accesses, giving the
//!   paper's moderate data-miss rates and something for the stride/DCU
//!   prefetchers to chew on;
//! * **determinism**: an event's instruction stream is a pure function of
//!   its seed, so a speculative pre-execution re-derives exactly what the
//!   real execution will do — except for a configurable ~2 % of events
//!   that diverge part-way (§5's "remaining events failed when they
//!   veered off the correct non-speculative path"), and a smaller
//!   fraction posted out of predicted order (§4.5);
//! * a bursty **arrival schedule** so the software event queue usually
//!   holds pending events for ESP to peek at, with occasional idle gaps.
//!
//! The seven benchmark profiles ([`BenchmarkProfile::all`]) are
//! parameterised to land in the paper's reported baseline bands
//! (L1-I MPKI ≈ 17–24 with next-line prefetching off, L1-D miss
//! ≈ 3–5 %, branch misprediction ≈ 10 %).
//!
//! # Examples
//!
//! ```
//! use esp_workload::BenchmarkProfile;
//! use esp_trace::Workload;
//!
//! let w = BenchmarkProfile::amazon().scaled(100_000).build(7);
//! assert!(!w.events().is_empty());
//! let mut stream = w.actual_stream(w.events()[0].id);
//! assert!(stream.next_instr().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod code;
mod generated;
mod params;
mod profiles;
mod schedule;
mod walk;

pub use code::{Block, CodeImage, Function, Terminator};
pub use generated::GeneratedWorkload;
pub use params::WorkloadParams;
pub use profiles::BenchmarkProfile;
pub use schedule::{EventDetail, Schedule};
pub use walk::EventWalk;
