//! Seeded property tests for the list capacity/eviction behaviour: bit
//! accounting never overflows, "full" is sticky and freezes state, and
//! the decoded records exactly reconstruct the accepted access stream.

use esp_lists::{AddrList, BList, ListCapacities};
use esp_trace::Instr;
use esp_types::{Addr, LineAddr, Rng, SplitMix64};

/// Drives one random access stream against an [`AddrList`], mirroring
/// the accepted lines into a reference vector, and checks every
/// invariant after every call.
fn drive_addr_list(capacity_bytes: usize, seed: u64, calls: usize) {
    let mut list = AddrList::new(capacity_bytes);
    let mut rng = SplitMix64::new(seed);
    // Accepted lines with consecutive duplicates removed must equal the
    // concatenation of the decoded records' covered blocks: run folding
    // and the escape encoding change *cost*, never *coverage*.
    let mut accepted: Vec<u64> = Vec::new();
    let mut line: u64 = rng.below(1 << 20);
    let mut went_full_at: Option<usize> = None;

    for i in 0..calls {
        // Mix of contiguous extensions, re-touches, near and far jumps.
        line = match rng.below(10) {
            0..=3 => line.wrapping_add(1),            // contiguous
            4 => line,                                // re-touch
            5..=7 => {
                let d = rng.range(1, 120);
                if rng.chance(0.5) { line.wrapping_add(d) } else { line.saturating_sub(d) }
            }
            _ => rng.below(1 << 20),                  // far jump
        };
        let ok = list.record(LineAddr::new(line), i as u64 * 3);
        assert!(
            list.used_bits() <= list.capacity_bits(),
            "seed {seed}: bit accounting overflowed at call {i}"
        );
        if ok {
            assert!(
                went_full_at.is_none(),
                "seed {seed}: record accepted after the list went full"
            );
            if accepted.last() != Some(&line) {
                accepted.push(line);
            }
        } else {
            assert!(list.is_full(), "seed {seed}: rejection without full flag");
            went_full_at.get_or_insert(i);
        }
    }

    let covered: Vec<u64> =
        list.records().iter().flat_map(|r| r.lines().map(|l| l.as_u64())).collect();
    assert_eq!(
        covered, accepted,
        "seed {seed}: decoded coverage diverged from the accepted stream"
    );

    // Once full, further records never mutate anything.
    if list.is_full() {
        let (len, bits) = (list.len(), list.used_bits());
        assert!(!list.record(LineAddr::new(line.wrapping_add(1000)), 1 << 30));
        assert_eq!(list.len(), len);
        assert_eq!(list.used_bits(), bits);
    }
}

#[test]
fn addr_list_random_streams_hold_invariants() {
    for seed in 0..24 {
        // ESP-2-sized lists go full quickly; ESP-1-sized ones rarely do.
        drive_addr_list(ListCapacities::esp2().i_list, seed, 400);
        drive_addr_list(ListCapacities::esp1().i_list, seed, 400);
    }
}

#[test]
fn addr_list_clear_then_reuse_matches_fresh_list() {
    // A cleared list must behave exactly like a brand-new one: replay
    // the same stream into both and compare full decoded state.
    let mut reused = AddrList::new(ListCapacities::esp2().d_list);
    let mut rng = SplitMix64::new(99);
    for i in 0..300 {
        reused.record(LineAddr::new(rng.below(1 << 18)), i);
    }
    reused.clear();

    let mut fresh = AddrList::new(ListCapacities::esp2().d_list);
    let mut r1 = SplitMix64::new(7);
    let mut r2 = SplitMix64::new(7);
    for i in 0..300 {
        let (a, b) = (r1.below(1 << 18), r2.below(1 << 18));
        assert_eq!(reused.record(LineAddr::new(a), i), fresh.record(LineAddr::new(b), i));
    }
    assert_eq!(reused.records(), fresh.records());
    assert_eq!(reused.used_bits(), fresh.used_bits());
    assert_eq!(reused.is_full(), fresh.is_full());
}

#[test]
fn addr_list_promotion_reevaluates_fullness_against_used_bits() {
    let mut l = AddrList::new(ListCapacities::esp2().i_list);
    let mut line = 0u64;
    while l.record(LineAddr::new(line), 0) {
        line += 500; // far jumps: every entry pays the escape cost
    }
    assert!(l.is_full());
    let n = l.len();
    // `full` latches on the first *rejected* record, so used bits sit
    // below capacity; demotion under what is already stored must stay
    // full and keep rejecting without mutating state.
    let mut small = l.clone().promoted(1);
    assert!(small.is_full());
    assert!(!small.record(LineAddr::new(line + 2_000), 9));
    assert_eq!(small.len(), n);
    // Promotion into the ESP-1 capacity resumes recording.
    let mut big = l.promoted(ListCapacities::esp1().i_list);
    assert!(!big.is_full());
    assert!(big.record(LineAddr::new(line + 1_000), 9));
    assert_eq!(big.len(), n + 1);
}

fn random_branch(rng: &mut SplitMix64, pc: u64) -> Instr {
    let target = Addr::new(rng.below(1 << 22) * 4);
    match rng.below(4) {
        0 => Instr::cond_branch(Addr::new(pc), rng.chance(0.6), target),
        1 => Instr::indirect(Addr::new(pc), target),
        2 => Instr::indirect_call(Addr::new(pc), target),
        _ => Instr::call(Addr::new(pc), target),
    }
}

#[test]
fn blist_random_streams_hold_invariants() {
    for seed in 0..24 {
        let caps = ListCapacities::esp2();
        let mut b = BList::new(caps.b_dir, caps.b_tgt);
        let mut rng = SplitMix64::new(seed);
        let mut pc = 0x1000u64;
        let mut went_full = false;
        for i in 0..600u64 {
            pc = if rng.chance(0.7) {
                pc + rng.range(4, 60) // near: one direction entry
            } else {
                rng.below(1 << 22) * 4 // far: extra spacing entry
            };
            let ok = b.record(&random_branch(&mut rng, pc), i);
            assert!(b.dir_used_bits() <= caps.b_dir * 8, "seed {seed}: dir overflow");
            assert!(b.tgt_used_bits() <= caps.b_tgt * 8, "seed {seed}: tgt overflow");
            if went_full {
                assert!(!ok, "seed {seed}: record accepted after full");
            }
            went_full |= !ok;
            assert_eq!(b.is_full(), went_full, "seed {seed}: full flag out of sync");
        }
        assert!(went_full, "seed {seed}: 600 branches must exhaust an ESP-2 B-list");
        assert_eq!(b.len(), b.records().len());
    }
}

#[test]
fn blist_target_capacity_degrades_indirect_records_first() {
    // A target list too small for even one far entry: indirect branches
    // keep being *recorded* (direction coverage survives) but lose their
    // targets — the Fig. 8 asymmetry.
    let mut b = BList::new(566, 2);
    let mut pc = 0x4000u64;
    for i in 0..40u64 {
        pc += 24;
        let far_target = Addr::new(pc + (1 << 20));
        assert!(b.record(&Instr::indirect(Addr::new(pc), far_target), i));
    }
    assert!(!b.is_full());
    assert_eq!(b.records().len(), 40);
    assert!(
        b.records().iter().all(|r| r.indirect && r.target.is_none()),
        "targets must be dropped once B-List-Target is exhausted"
    );
    // Direction-only records replay as nothing, not as garbage.
    assert!(b.records().iter().all(|r| r.to_instr().is_none()));
}
