//! The ESP prediction lists (§3.5, §4.2, §4.3).
//!
//! During speculative pre-execution ESP records what the event touched —
//! instruction cache blocks, data cache blocks, and branch outcomes — into
//! small hardware lists. Later, when the event executes for real, the
//! lists drive timely prefetches and just-in-time branch-predictor
//! training. The lists are the reason ESP works where a naive
//! "prefetch straight into L1/L2" design does not (Fig. 10): the recorded
//! addresses carry *instruction-count timestamps*, so the replay can be
//! timely instead of premature.
//!
//! This crate implements the lists with **bit-accurate capacity
//! accounting** using the paper's entry encodings:
//!
//! * [`AddrList`] (used for both the I-list and the D-list): 19-bit
//!   entries — an 8-bit signed line-address delta from the previous entry,
//!   a 3-bit contiguous-run length, a 7-bit instruction-count delta, and a
//!   large-offset escape bit that spends two further entries on a full
//!   26-bit block address.
//! * [`BList`] (B-List-Direction + B-List-Target): 6-bit direction entries
//!   (4-bit instruction-address delta, direction bit, indirect bit) with
//!   the first two entries of every thirty holding instruction-count
//!   headers; 17-bit target entries (16-bit offset + escape bit) for taken
//!   indirect branches, with a two-extra-entry escape for far targets.
//!
//! Capacities default to Fig. 8: 499 B/68 B (I-list), 510 B/57 B (D-list),
//! 566 B/80 B (B-List-Direction), 41 B/6 B (B-List-Target) for ESP-1/ESP-2
//! respectively.
//!
//! ## Modelling notes
//!
//! Two small idealizations, both documented in `DESIGN.md`: the encoded
//! 7-bit instruction-count delta saturates (the decoded record keeps the
//! exact count, so replay timing is exact while capacity accounting stays
//! faithful), and the decoded records of taken *direct* branches keep
//! their statically-known targets for replay even though
//! B-List-Direction does not store them (the hardware recovers direct
//! targets at decode; indirect targets are gated on B-List-Target capacity
//! exactly as in the paper).
//!
//! # Examples
//!
//! ```
//! use esp_lists::AddrList;
//! use esp_types::LineAddr;
//!
//! let mut list = AddrList::new(499); // the ESP-1 I-list
//! list.record(LineAddr::new(100), 0);
//! list.record(LineAddr::new(101), 16); // contiguous: extends the run
//! list.record(LineAddr::new(240), 40); // new entry
//! assert_eq!(list.records().len(), 2);
//! assert_eq!(list.records()[0].run_len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr_list;
mod blist;
mod capacity;

pub use addr_list::{AddrList, AddrRecord};
pub use blist::{BList, BranchRecord, RecordKind};
pub use capacity::ListCapacities;
