//! The Fig. 8 list capacities.

/// Byte capacities of the four list structures for one ESP mode.
///
/// # Examples
///
/// ```
/// use esp_lists::ListCapacities;
///
/// let c1 = ListCapacities::esp1();
/// let c2 = ListCapacities::esp2();
/// assert!(c1.i_list > c2.i_list);
/// assert_eq!(c1.total_bytes() + c2.total_bytes(), 499 + 68 + 510 + 57 + 566 + 80 + 41 + 6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListCapacities {
    /// I-list bytes (instruction cache block addresses).
    pub i_list: usize,
    /// D-list bytes (data cache block addresses).
    pub d_list: usize,
    /// B-List-Direction bytes.
    pub b_dir: usize,
    /// B-List-Target bytes.
    pub b_tgt: usize,
}

impl ListCapacities {
    /// Fig. 8's ESP-1 capacities: 499 B, 510 B, 566 B, 41 B.
    pub const fn esp1() -> Self {
        ListCapacities { i_list: 499, d_list: 510, b_dir: 566, b_tgt: 41 }
    }

    /// Fig. 8's ESP-2 capacities: 68 B, 57 B, 80 B, 6 B.
    pub const fn esp2() -> Self {
        ListCapacities { i_list: 68, d_list: 57, b_dir: 80, b_tgt: 6 }
    }

    /// Effectively unbounded lists, for the "ideal ESP" configurations of
    /// Figs. 11a/11b.
    pub const fn unbounded() -> Self {
        const BIG: usize = 1 << 24;
        ListCapacities { i_list: BIG, d_list: BIG, b_dir: BIG, b_tgt: BIG }
    }

    /// Total bytes across the four lists.
    pub const fn total_bytes(&self) -> usize {
        self.i_list + self.d_list + self.b_dir + self.b_tgt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_values() {
        let c1 = ListCapacities::esp1();
        assert_eq!(c1.i_list, 499);
        assert_eq!(c1.d_list, 510);
        assert_eq!(c1.b_dir, 566);
        assert_eq!(c1.b_tgt, 41);
        assert_eq!(c1.total_bytes(), 1616);
        let c2 = ListCapacities::esp2();
        assert_eq!(c2.total_bytes(), 68 + 57 + 80 + 6);
    }

    #[test]
    fn unbounded_is_large() {
        assert!(ListCapacities::unbounded().i_list > ListCapacities::esp1().i_list * 1000);
    }
}
